//! End-to-end integration tests: the headline claim of the paper.
//!
//! A single-instruction bug injected into the processor is invisible to SQED
//! (EDDI-V duplication) but caught by SEPE-SQED (EDSEP-V equivalent
//! programs), while multiple-instruction bugs are caught by both.

use sepe_isa::Opcode;
use sepe_processor::{Mutation, ProcessorConfig};
use sepe_sqed::detect::{Detector, DetectorConfig, Method};

fn detector(opcodes: &[Opcode], max_bound: usize) -> Detector {
    Detector::new(DetectorConfig {
        processor: ProcessorConfig::tiny().with_opcodes(opcodes),
        max_bound,
        ..DetectorConfig::default()
    })
}

#[test]
#[ignore = "deeper formal check (~minutes); run with cargo test -- --ignored"]
fn sub_bug_is_missed_by_sqed_and_found_by_sepe() {
    // Table-1 row "SUB": subtraction computes an addition.
    let bug = Mutation::table1()
        .into_iter()
        .find(|b| b.target_opcode() == Some(Opcode::Sub))
        .expect("SUB bug exists");
    let d = detector(&[Opcode::Sub, Opcode::Addi], 7);

    let sqed = d.check(Method::Sqed, Some(&bug));
    assert!(
        !sqed.detected && !sqed.inconclusive,
        "SQED must prove consistency up to the bound for a single-instruction bug"
    );

    let sepe = d.check(Method::SepeSqed, Some(&bug));
    assert!(sepe.detected, "SEPE-SQED must find the SUB bug");
    let witness = sepe.witness.expect("witness available");
    assert_eq!(witness.num_steps(), sepe.trace_len.expect("length"));
    // The witness ends in a QED-ready, inconsistent state: the counters match.
    let last = witness.last();
    assert_eq!(last.state("count_original"), last.state("count_equivalent"));
    assert!(last.state("count_original") >= 1);
}

#[test]
#[ignore = "deeper formal check (~minutes); run with cargo test -- --ignored"]
fn xori_bug_detection_uses_the_original_immediate() {
    // Table-1 row "XORI": XORI computes ORI.  The equivalent program
    // materialises the original immediate and uses the R-type XOR datapath.
    let bug = Mutation::table1()
        .into_iter()
        .find(|b| b.target_opcode() == Some(Opcode::Xori))
        .expect("XORI bug exists");
    let d = detector(&[Opcode::Xori, Opcode::Addi], 6);
    let sqed = d.check(Method::Sqed, Some(&bug));
    let sepe = d.check(Method::SepeSqed, Some(&bug));
    assert!(!sqed.detected);
    assert!(sepe.detected);
}

#[test]
#[ignore = "long formal check on a single-CPU host; run with cargo test -- --ignored"]
fn multiple_instruction_bug_is_found_by_both_methods() {
    // Figure-4 style bug: ADDI depending on the previous destination adds an
    // extra one (a forwarding-path bug footprint).
    let bug = Mutation::figure4()
        .into_iter()
        .find(|b| b.name == "multi-11-addi-raw")
        .expect("bug exists");
    let d = detector(&[Opcode::Addi, Opcode::Xori], 6);
    let sqed = d.check(Method::Sqed, Some(&bug));
    let sepe = d.check(Method::SepeSqed, Some(&bug));
    assert!(sqed.detected, "SQED finds multiple-instruction bugs");
    assert!(sepe.detected, "SEPE-SQED finds multiple-instruction bugs");
    assert!(sqed.trace_len.is_some() && sepe.trace_len.is_some());
}

#[test]
#[ignore = "long formal check on a single-CPU host; run with cargo test -- --ignored"]
fn clean_processor_is_consistent_under_both_methods() {
    let d = detector(&[Opcode::Add, Opcode::Sw, Opcode::Lw], 3);
    let (sqed, sepe) = d.compare(None);
    assert!(
        !sqed.detected && !sqed.inconclusive,
        "no false positives for SQED"
    );
    assert!(
        !sepe.detected && !sepe.inconclusive,
        "no false positives for SEPE-SQED"
    );
}

#[test]
#[ignore = "long formal check on a single-CPU host; run with cargo test -- --ignored"]
fn store_bug_is_caught_through_the_memory_halves() {
    // Table-1 row "SW": the store ignores its immediate offset.
    let bug = Mutation::table1()
        .into_iter()
        .find(|b| b.target_opcode() == Some(Opcode::Sw))
        .expect("SW bug exists");
    let d = detector(&[Opcode::Sw, Opcode::Addi], 6);
    let sqed = d.check(Method::Sqed, Some(&bug));
    let sepe = d.check(Method::SepeSqed, Some(&bug));
    assert!(
        !sqed.detected,
        "the duplicated store is corrupted identically"
    );
    assert!(
        sepe.detected,
        "the equivalent program computes the address differently"
    );
}

#[test]
fn or_bug_is_missed_by_sqed_and_found_by_sepe() {
    // Table-1 row "OR": the OR result has bit 4 flipped; visible even on
    // all-zero operands, so the counterexample is very short.
    let bug = Mutation::table1()
        .into_iter()
        .find(|b| b.target_opcode() == Some(Opcode::Or))
        .expect("OR bug exists");
    // Bit 4 of the corruption needs at least an 8-bit data path to exist.
    let d = Detector::new(DetectorConfig {
        processor: ProcessorConfig {
            xlen: 8,
            mem_words: 4,
            ..ProcessorConfig::default()
        }
        .with_opcodes(&[Opcode::Or]),
        max_bound: 4,
        ..DetectorConfig::default()
    });
    let sqed = d.check(Method::Sqed, Some(&bug));
    assert!(!sqed.detected);
    let sepe = d.check(Method::SepeSqed, Some(&bug));
    assert!(sepe.detected);
}
