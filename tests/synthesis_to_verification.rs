//! Integration of the synthesis pipeline with the verification pipeline:
//! a program synthesized by HPF-CEGIS is installed in the equivalence
//! database and used by SEPE-SQED to detect a bug.

use sepe_isa::Opcode;
use sepe_processor::{Mutation, ProcessorConfig};
use sepe_sqed::detect::{Detector, DetectorConfig, Method};
use sepe_sqed::equivalence::EquivalenceDb;
use sepe_synth::hpf::HpfCegis;
use sepe_synth::library::Library;
use sepe_synth::spec::Spec;
use sepe_synth::SynthesisConfig;

#[test]
#[ignore = "deeper formal check (~minutes); run with cargo test -- --ignored"]
fn synthesized_program_drives_bug_detection() {
    let width = 8; // synthesis and verification share the same data-path width

    // 1. Synthesize an equivalent program for SUB with HPF-CEGIS.
    let config = SynthesisConfig {
        width,
        multiset_size: 3,
        programs_wanted: 1,
        min_components: 3,
        max_cegis_iterations: 8,
        synth_conflict_limit: Some(50_000),
        verify_conflict_limit: Some(50_000),
        ..SynthesisConfig::default()
    };
    let mut hpf = HpfCegis::new(config, Library::minimal());
    let spec = Spec::for_opcode(Opcode::Sub, width);
    let result = hpf.synthesize(&spec);
    let program = result
        .best()
        .expect("HPF-CEGIS finds a SUB program")
        .clone();
    assert!(program.len() >= 3);

    // 2. Install it in an equivalence database (replacing the curated entry).
    let mut db = EquivalenceDb::curated_for_width(width);
    db.insert(program);

    // 3. Use it to catch the Table-1 SUB bug.
    let bug = Mutation::table1()
        .into_iter()
        .find(|b| b.target_opcode() == Some(Opcode::Sub))
        .expect("SUB bug exists");
    let detector = Detector::new(DetectorConfig {
        processor: ProcessorConfig::tiny().with_opcodes(&[Opcode::Sub, Opcode::Addi]),
        max_bound: 7,
        equivalence: Some(db),
        ..DetectorConfig::default()
    });
    let sepe = detector.check(Method::SepeSqed, Some(&bug));
    assert!(
        sepe.detected,
        "a synthesized equivalent program must expose the SUB bug just like the curated one"
    );
}

#[test]
fn hpf_is_not_slower_than_iterative_on_a_small_case() {
    // A miniature version of the Figure-3 comparison: both drivers reach one
    // program for SUB; HPF should not need more multiset attempts.
    let config = SynthesisConfig {
        width: 8,
        multiset_size: 3,
        programs_wanted: 1,
        min_components: 2,
        max_cegis_iterations: 8,
        ..SynthesisConfig::default()
    };
    let library = Library::minimal();
    let spec = Spec::for_opcode(Opcode::Sub, 8);
    let mut hpf = HpfCegis::new(config.clone(), library.clone());
    let hpf_result = hpf.synthesize(&spec);
    let iterative = sepe_synth::iterative::IterativeCegis::new(config, library);
    let iter_result = iterative.synthesize(&spec);
    assert!(hpf_result.succeeded() && iter_result.succeeded());
}
