//! Counterexamples found by the model checker replay on the concrete mutant
//! core: the same instruction sequence produces the same inconsistency.

use sepe_isa::{Instr, Opcode, Reg};
use sepe_processor::datapath::opcode_from_index;
use sepe_processor::{MutantCore, Mutation, ProcessorConfig};
use sepe_sqed::detect::{Detector, DetectorConfig, Method};
use sepe_sqed::mapping::RegisterMapping;
use sepe_tsys::Witness;

/// Reconstructs the committed instruction stream (with memory banks) from a
/// QED-system witness.
fn committed_stream(witness: &Witness) -> Vec<(Instr, bool)> {
    let mut out = Vec::new();
    for frame in &witness.frames()[..witness.num_steps()] {
        let pick = frame.input("pick_original") == 1;
        let (op, rd, rs1, rs2, imm) = if pick {
            (
                frame.input("orig_op"),
                frame.input("orig_rd"),
                frame.input("orig_rs1"),
                frame.input("orig_rs2"),
                frame.input("orig_imm"),
            )
        } else {
            (
                frame.state("q0_op"),
                frame.state("q0_rd"),
                frame.state("q0_rs1"),
                frame.state("q0_rs2"),
                frame.state("q0_imm"),
            )
        };
        let opcode = opcode_from_index(op).expect("valid opcode in witness");
        let instr = reconstruct(opcode, rd as u8, rs1 as u8, rs2 as u8, imm);
        out.push((instr, !pick));
    }
    out
}

/// Builds an [`Instr`] from raw witness fields (the immediate in the witness
/// is the materialised value).
fn reconstruct(opcode: Opcode, rd: u8, rs1: u8, rs2: u8, imm: u64) -> Instr {
    use sepe_isa::OperandKind::*;
    let signed = imm as i64 as i32;
    match opcode.operand_kind() {
        RegReg => Instr::reg_reg(opcode, Reg(rd), Reg(rs1), Reg(rs2)),
        RegImm | Load => {
            let imm12 = ((signed << 20) >> 20).clamp(-2048, 2047);
            Instr::new(opcode, Reg(rd), Reg(rs1), Reg::ZERO, imm12)
        }
        Store => {
            let imm12 = ((signed << 20) >> 20).clamp(-2048, 2047);
            Instr::new(opcode, Reg::ZERO, Reg(rs1), Reg(rs2), imm12)
        }
        RegShamt => Instr::new(opcode, Reg(rd), Reg(rs1), Reg::ZERO, signed & 0x1f),
        Upper => Instr::lui(Reg(rd), (imm >> 12) as i32),
    }
}

#[test]
fn sepe_counterexample_replays_concretely() {
    let bug = Mutation::table1()
        .into_iter()
        .find(|b| b.target_opcode() == Some(Opcode::Add))
        .expect("ADD bug exists");
    let config = ProcessorConfig {
        xlen: 4,
        mem_words: 4,
        ..ProcessorConfig::default()
    }
    .with_opcodes(&[Opcode::Add, Opcode::Addi]);
    let detector = Detector::new(DetectorConfig {
        processor: config.clone(),
        max_bound: 4,
        ..DetectorConfig::default()
    });
    let detection = detector.check(Method::SepeSqed, Some(&bug));
    assert!(detection.detected);
    let witness = detection.witness.expect("witness");

    // Replay on the concrete core (which shares the mutation semantics) and
    // check that the SEPE consistency predicate really fails.
    // The symbolic model allowed additional opcodes for the equivalent
    // programs; the concrete core must allow them too.
    let mut replay_config = config;
    replay_config.allowed_opcodes = Opcode::ALL.to_vec();
    let mut core = MutantCore::new(replay_config, Some(bug));
    for (instr, shadow_bank) in committed_stream(&witness) {
        core.commit_banked(&instr, shadow_bank);
    }
    let mapping = RegisterMapping::sepe();
    let mismatch = mapping
        .consistency_pairs()
        .into_iter()
        .any(|(o, e)| core.reg(o) != core.reg(e));
    let half = core.config().mem_words / 2;
    let mem_mismatch = (0..half).any(|w| core.mem_word(w) != core.mem_word(w + half));
    assert!(
        mismatch || mem_mismatch,
        "the formal counterexample must reproduce an inconsistency concretely"
    );
}

#[test]
#[ignore = "deeper formal check (~minutes); run with cargo test -- --ignored"]
fn sqed_counterexample_for_a_multi_instruction_bug_replays() {
    let bug = Mutation::figure4()
        .into_iter()
        .find(|b| b.name == "multi-05-waw-collision")
        .expect("bug exists");
    let config = ProcessorConfig {
        xlen: 4,
        mem_words: 4,
        ..ProcessorConfig::default()
    }
    .with_opcodes(&[Opcode::Addi, Opcode::Xori]);
    let detector = Detector::new(DetectorConfig {
        processor: config.clone(),
        max_bound: 6,
        ..DetectorConfig::default()
    });
    let detection = detector.check(Method::Sqed, Some(&bug));
    assert!(detection.detected, "SQED finds the WAW bug");
    let witness = detection.witness.expect("witness");

    let mut core = MutantCore::new(config, Some(bug));
    for (instr, shadow_bank) in committed_stream(&witness) {
        core.commit_banked(&instr, shadow_bank);
    }
    let mapping = RegisterMapping::sqed();
    let mismatch = mapping
        .consistency_pairs()
        .into_iter()
        .any(|(o, e)| core.reg(o) != core.reg(e));
    assert!(mismatch, "replayed duplicate halves must disagree");
}
