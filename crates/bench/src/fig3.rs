//! Figure 3: time overhead of instruction synthesis, HPF-CEGIS vs iterative
//! CEGIS (classical CEGIS as an additional baseline with a hard budget).

use std::time::Duration;

use serde::Serialize;

use sepe_synth::classical::ClassicalCegis;
use sepe_synth::hpf::HpfCegis;
use sepe_synth::iterative::IterativeCegis;
use sepe_synth::library::Library;
use sepe_synth::spec::SynthesisCase;
use sepe_synth::SynthesisConfig;

use sepe_smt::EncodeStats;

use crate::report::{SolverRow, SolverSummary};
use crate::Profile;

/// One bar pair of Figure 3.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3Row {
    /// Case identifier (`case1`..`case26`).
    pub case: String,
    /// The original instruction being synthesized.
    pub spec: String,
    /// HPF-CEGIS runtime in seconds.
    pub hpf_secs: f64,
    /// Iterative CEGIS runtime in seconds.
    pub iterative_secs: f64,
    /// Multisets attempted by HPF-CEGIS.
    pub hpf_multisets: usize,
    /// Multisets attempted by iterative CEGIS.
    pub iterative_multisets: usize,
    /// Programs found by HPF-CEGIS.
    pub hpf_programs: usize,
    /// Programs found by iterative CEGIS.
    pub iterative_programs: usize,
    /// Term encodings reused by HPF-CEGIS's persistent synthesis solvers.
    pub hpf_terms_reused: u64,
    /// Terms changed by the word-level rewriter across the HPF run's
    /// synthesis/verification solvers.
    pub hpf_terms_rewritten: u64,
    /// Catalogue-rule applications by the rewriter.
    pub hpf_rewrite_rules: u64,
    /// Asserted equalities the rewriter turned into variable pins.
    pub hpf_rewrite_pins: u64,
    /// Asserted conjuncts the rewriter eliminated before encoding.
    pub hpf_assertions_dropped: u64,
    /// Distinct term encodings cached by the HPF run's solvers.
    pub hpf_terms_cached: u64,
    /// AIG nodes created below the word level (strash misses).
    pub hpf_aig_nodes: u64,
    /// AIG requests answered by the structural-hashing table.
    pub hpf_aig_strash_hits: u64,
    /// AIG requests folded by constant propagation / one-level rules.
    pub hpf_aig_consts_folded: u64,
    /// Two-level local rewrites at AIG node creation.
    pub hpf_aig_rewrites: u64,
    /// CNF variables emitted by the polarity-aware Tseitin pass.
    pub hpf_cnf_vars: u64,
    /// CNF clauses emitted by the polarity-aware Tseitin pass.
    pub hpf_cnf_clauses: u64,
    /// Learnt clauses retained across HPF-CEGIS refinement rounds.
    pub hpf_learnt_retained: u64,
}

impl Fig3Row {
    /// Runtime reduction of HPF relative to iterative CEGIS (1.0 = 100 %).
    pub fn reduction(&self) -> f64 {
        if self.iterative_secs <= f64::EPSILON {
            0.0
        } else {
            1.0 - self.hpf_secs / self.iterative_secs
        }
    }

    /// This row's contribution to the shared solver summary.
    fn solver_row(&self) -> SolverRow {
        let encode = EncodeStats {
            terms_cached: self.hpf_terms_cached,
            terms_reused: self.hpf_terms_reused,
            rewrite: sepe_smt::RewriteStats {
                terms_rewritten: self.hpf_terms_rewritten,
                rule_applications: self.hpf_rewrite_rules,
                pins: self.hpf_rewrite_pins,
                assertions_dropped: self.hpf_assertions_dropped,
                ..Default::default()
            },
            aig: sepe_smt::AigStats {
                nodes: self.hpf_aig_nodes,
                strash_hits: self.hpf_aig_strash_hits,
                consts_folded: self.hpf_aig_consts_folded,
                rewrites: self.hpf_aig_rewrites,
                cnf_vars: self.hpf_cnf_vars,
                cnf_clauses: self.hpf_cnf_clauses,
            },
        };
        SolverRow {
            label: self.case.clone(),
            encode,
            learnt_retained: self.hpf_learnt_retained,
            ..SolverRow::default()
        }
    }
}

/// The synthesis configuration used for the Figure-3 sweep.
pub fn synthesis_config(profile: Profile) -> SynthesisConfig {
    match profile {
        Profile::Quick => SynthesisConfig {
            width: 8,
            multiset_size: 3,
            programs_wanted: 3,
            min_components: 3,
            max_cegis_iterations: 8,
            synth_conflict_limit: Some(50_000),
            verify_conflict_limit: Some(50_000),
            time_limit: Some(Duration::from_secs(20)),
            ..SynthesisConfig::default()
        },
        Profile::Full => SynthesisConfig {
            width: 16,
            multiset_size: 3,
            programs_wanted: 20,
            min_components: 3,
            max_cegis_iterations: 16,
            synth_conflict_limit: Some(200_000),
            verify_conflict_limit: Some(200_000),
            time_limit: Some(Duration::from_secs(240)),
            ..SynthesisConfig::default()
        },
    }
}

/// The synthesis cases exercised by a profile.
pub fn cases(profile: Profile) -> Vec<SynthesisCase> {
    let config = synthesis_config(profile);
    let all = SynthesisCase::all(config.width);
    match profile {
        Profile::Quick => all.into_iter().take(6).collect(),
        Profile::Full => all,
    }
}

/// Runs the Figure-3 comparison.
pub fn run(profile: Profile) -> Vec<Fig3Row> {
    let config = synthesis_config(profile);
    let library = Library::standard();
    cases(profile)
        .into_iter()
        .map(|case| {
            let mut hpf = HpfCegis::new(config.clone(), library.clone());
            let hpf_result = hpf.synthesize(&case.spec);
            let iterative = IterativeCegis::new(config.clone(), library.clone());
            let iterative_result = iterative.synthesize(&case.spec);
            Fig3Row {
                case: case.id,
                spec: case.spec.name.clone(),
                hpf_secs: hpf_result.duration.as_secs_f64(),
                iterative_secs: iterative_result.duration.as_secs_f64(),
                hpf_multisets: hpf_result.multisets_tried,
                iterative_multisets: iterative_result.multisets_tried,
                hpf_programs: hpf_result.programs.len(),
                iterative_programs: iterative_result.programs.len(),
                hpf_terms_reused: hpf_result.solver.encode.terms_reused,
                hpf_terms_rewritten: hpf_result.solver.encode.rewrite.terms_rewritten,
                hpf_rewrite_rules: hpf_result.solver.encode.rewrite.rule_applications,
                hpf_rewrite_pins: hpf_result.solver.encode.rewrite.pins,
                hpf_assertions_dropped: hpf_result.solver.encode.rewrite.assertions_dropped,
                hpf_terms_cached: hpf_result.solver.encode.terms_cached,
                hpf_aig_nodes: hpf_result.solver.encode.aig.nodes,
                hpf_aig_strash_hits: hpf_result.solver.encode.aig.strash_hits,
                hpf_aig_consts_folded: hpf_result.solver.encode.aig.consts_folded,
                hpf_aig_rewrites: hpf_result.solver.encode.aig.rewrites,
                hpf_cnf_vars: hpf_result.solver.encode.aig.cnf_vars,
                hpf_cnf_clauses: hpf_result.solver.encode.aig.cnf_clauses,
                hpf_learnt_retained: hpf_result.solver.learnt_retained,
            }
        })
        .collect()
}

/// Runs the classical-CEGIS baseline on the first case, with a small budget,
/// reproducing the paper's observation that it does not finish.
pub fn classical_baseline(profile: Profile) -> (String, bool, f64) {
    let mut config = synthesis_config(profile);
    config.synth_conflict_limit = Some(100_000);
    config.verify_conflict_limit = Some(100_000);
    config.max_cegis_iterations = 4;
    let case = &cases(profile)[1]; // SUB
    let classical = ClassicalCegis::new(config, Library::standard());
    let result = classical.synthesize(&case.spec);
    (
        case.spec.name.clone(),
        result.succeeded(),
        result.duration.as_secs_f64(),
    )
}

/// Prints the figure as a table plus the headline aggregate (the paper
/// reports an average ≈50 % reduction, up to ≈90 %).
pub fn print(rows: &[Fig3Row]) {
    println!(
        "{:<8} {:<10} {:>10} {:>12} {:>10} {:>12} {:>10}",
        "case", "spec", "hpf [s]", "iterative [s]", "reduction", "hpf sets", "iter sets"
    );
    for row in rows {
        println!(
            "{:<8} {:<10} {:>10.2} {:>12.2} {:>9.0}% {:>12} {:>10}",
            row.case,
            row.spec,
            row.hpf_secs,
            row.iterative_secs,
            row.reduction() * 100.0,
            row.hpf_multisets,
            row.iterative_multisets
        );
    }
    let avg: f64 = rows.iter().map(Fig3Row::reduction).sum::<f64>() / rows.len().max(1) as f64;
    let max = rows.iter().map(Fig3Row::reduction).fold(f64::MIN, f64::max);
    println!(
        "\naverage synthesis-time reduction: {:.0}%   best case: {:.0}%   (paper: ~50% average, up to ~90%)",
        avg * 100.0,
        max * 100.0
    );
    let summary = SolverSummary::new(
        "HPF incremental CEGIS",
        "refinement rounds",
        rows.iter().map(Fig3Row::solver_row).collect(),
        8,
    );
    println!("{summary}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_profile_has_six_cases() {
        assert_eq!(cases(Profile::Quick).len(), 6);
        assert_eq!(cases(Profile::Full).len(), 26);
    }

    #[test]
    fn reduction_is_computed_sensibly() {
        let row = Fig3Row {
            case: "case1".into(),
            spec: "ADD".into(),
            hpf_secs: 1.0,
            iterative_secs: 2.0,
            hpf_multisets: 3,
            iterative_multisets: 9,
            hpf_programs: 1,
            iterative_programs: 1,
            hpf_terms_reused: 0,
            hpf_terms_rewritten: 0,
            hpf_rewrite_rules: 0,
            hpf_rewrite_pins: 0,
            hpf_assertions_dropped: 0,
            hpf_terms_cached: 0,
            hpf_aig_nodes: 0,
            hpf_aig_strash_hits: 0,
            hpf_aig_consts_folded: 0,
            hpf_aig_rewrites: 0,
            hpf_cnf_vars: 0,
            hpf_cnf_clauses: 0,
            hpf_learnt_retained: 0,
        };
        assert!((row.reduction() - 0.5).abs() < 1e-9);
    }
}
