//! Table 1: injected single-instruction bugs — SEPE-SQED detection time per
//! bug, SQED reporting "-" for every one of them.

use std::time::Duration;

use serde::Serialize;

use sepe_isa::Opcode;
use sepe_processor::{Mutation, ProcessorConfig};
use sepe_smt::EncodeStats;
use sepe_sqed::batch::{BatchedStats, CatalogueEntry};
use sepe_sqed::detect::{Detector, DetectorConfig, Method};
use sepe_sqed::parallel::{BatchSpec, BatchStats, DetectionJob, Engine};
use sepe_tsys::BmcMode;

use crate::report::{SolverRow, SolverSummary};
use crate::Profile;

/// One row of Table 1.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Bug identifier.
    pub bug: String,
    /// The targeted instruction (the paper's "Type" column).
    pub opcode: String,
    /// The paper's "Function" column.
    pub function: String,
    /// SEPE-SQED detection time in seconds (`None` means not detected).
    pub sepe_secs: Option<f64>,
    /// SEPE-SQED counterexample length (committed instructions).
    pub sepe_trace_len: Option<usize>,
    /// Whether plain SQED detected the bug (expected `false` for every row).
    pub sqed_detected: bool,
    /// Bound up to which SQED proved consistency.
    pub sqed_bound: usize,
    /// Distinct term encodings cached by the SEPE-SQED incremental solver
    /// (see `sepe_smt::EncodeStats`).
    pub sepe_terms_cached: u64,
    /// Term encodings reused across depths by the SEPE-SQED incremental
    /// per-depth sweep.
    pub sepe_terms_reused: u64,
    /// Terms changed by the word-level rewriter ahead of bit-blasting.
    pub sepe_terms_rewritten: u64,
    /// Catalogue-rule applications by the rewriter.
    pub sepe_rewrite_rules: u64,
    /// Asserted equalities the rewriter turned into variable pins.
    pub sepe_rewrite_pins: u64,
    /// Asserted conjuncts the rewriter eliminated before encoding.
    pub sepe_assertions_dropped: u64,
    /// Next-state updates dropped by the BMC cone-of-influence pass.
    pub sepe_coi_dropped: u64,
    /// AIG nodes created below the word level (strash misses).
    pub sepe_aig_nodes: u64,
    /// AIG requests answered by the structural-hashing table.
    pub sepe_aig_strash_hits: u64,
    /// AIG requests folded by constant propagation / one-level rules.
    pub sepe_aig_consts_folded: u64,
    /// Two-level local rewrites at AIG node creation.
    pub sepe_aig_rewrites: u64,
    /// CNF variables emitted by the polarity-aware Tseitin pass.
    pub sepe_cnf_vars: u64,
    /// CNF clauses emitted by the polarity-aware Tseitin pass.
    pub sepe_cnf_clauses: u64,
    /// Learnt clauses retained across the sweep's SAT calls.
    pub sepe_learnt_retained: u64,
    /// High-water mark of live learnt clauses during the sweep (with
    /// database reduction on, this stays below what an unreduced solver
    /// would retain: `sepe_learnt_deleted + sepe_learnt_retained`).
    pub sepe_learnt_high_water: u64,
    /// Learnt clauses deleted by database reduction during the sweep.
    pub sepe_learnt_deleted: u64,
    /// Per-depth SAT-conflict deltas of the SEPE-SQED sweep (what each
    /// depth's query cost on top of the previous one).
    pub sepe_depth_conflicts: Vec<u64>,
}

impl Table1Row {
    /// The SEPE-SQED cell of the table.
    pub fn sepe_cell(&self) -> String {
        self.sepe_secs
            .map(|s| format!("{s:.2}s"))
            .unwrap_or_else(|| "-".into())
    }

    /// The SQED cell of the table.
    pub fn sqed_cell(&self) -> String {
        if self.sqed_detected {
            "detected".into()
        } else {
            "-".into()
        }
    }

    /// This row's contribution to the shared solver summary.
    fn solver_row(&self) -> SolverRow {
        let encode = EncodeStats {
            terms_cached: self.sepe_terms_cached,
            terms_reused: self.sepe_terms_reused,
            rewrite: sepe_smt::RewriteStats {
                terms_rewritten: self.sepe_terms_rewritten,
                rule_applications: self.sepe_rewrite_rules,
                pins: self.sepe_rewrite_pins,
                assertions_dropped: self.sepe_assertions_dropped,
                coi_dropped_updates: self.sepe_coi_dropped,
                ..Default::default()
            },
            aig: sepe_smt::AigStats {
                nodes: self.sepe_aig_nodes,
                strash_hits: self.sepe_aig_strash_hits,
                consts_folded: self.sepe_aig_consts_folded,
                rewrites: self.sepe_aig_rewrites,
                cnf_vars: self.sepe_cnf_vars,
                cnf_clauses: self.sepe_cnf_clauses,
            },
        };
        SolverRow {
            label: self.bug.clone(),
            encode,
            learnt_retained: self.sepe_learnt_retained,
            learnt_high_water: self.sepe_learnt_high_water,
            learnt_deleted: self.sepe_learnt_deleted,
            depth_conflicts: self.sepe_depth_conflicts.clone(),
        }
    }
}

/// The detector configuration used for one Table-1 bug.
pub fn detector_for(bug: &Mutation, profile: Profile) -> Detector {
    let target = bug.target_opcode().expect("table-1 bugs target an opcode");
    let (xlen, max_bound, sqed_limit) = match profile {
        Profile::Quick => (4, 10, Some(400_000)),
        Profile::Full => (8, 12, Some(2_000_000)),
    };
    Detector::new(DetectorConfig {
        processor: ProcessorConfig {
            xlen,
            mem_words: 4,
            ..ProcessorConfig::default()
        }
        .with_opcodes(&[target, Opcode::Addi]),
        max_bound,
        conflict_limit: sqed_limit,
        time_limit: Some(match profile {
            Profile::Quick => Duration::from_secs(120),
            Profile::Full => Duration::from_secs(1200),
        }),
        ..DetectorConfig::default()
    })
}

/// The bugs exercised by a profile.
pub fn bugs(profile: Profile) -> Vec<Mutation> {
    let all = Mutation::table1();
    match profile {
        Profile::Quick => all
            .into_iter()
            .filter(|b| {
                matches!(
                    b.target_opcode(),
                    Some(Opcode::Add | Opcode::Sub | Opcode::Xor | Opcode::Xori | Opcode::Sw)
                )
            })
            .collect(),
        Profile::Full => all,
    }
}

/// Runs the Table-1 experiment sequentially (one worker).
pub fn run(profile: Profile) -> Vec<Table1Row> {
    run_with_jobs(profile, 1).0
}

/// The two detection jobs of one Table-1 bug: the SQED run (shallower
/// bound — the point of the row is that it finds nothing no matter how long
/// it looks) and the SEPE-SQED run (per-depth on the persistent incremental
/// solver: shortest counterexamples first, encodings and learnt clauses
/// shared across depths).
fn jobs_for(bug: &Mutation, profile: Profile) -> [DetectionJob; 2] {
    let detector = detector_for(bug, profile);
    let sqed_bound = match profile {
        Profile::Quick => 5,
        Profile::Full => 8,
    };
    [
        DetectionJob::new(
            format!("{}-sqed", bug.name),
            DetectorConfig {
                max_bound: sqed_bound,
                ..detector.config().clone()
            },
            Method::Sqed,
            Some(bug.clone()),
        ),
        DetectionJob::new(
            format!("{}-sepe", bug.name),
            DetectorConfig {
                bmc_mode: BmcMode::PerDepth,
                ..detector.config().clone()
            },
            Method::SepeSqed,
            Some(bug.clone()),
        ),
    ]
}

/// Runs the Table-1 experiment on the parallel detection engine with the
/// given worker count.  Every bug contributes two independent jobs (SQED +
/// SEPE-SQED); `jobs = 1` runs them inline in the same order as the
/// sequential driver always has, so its rows are bit-identical to
/// [`run`]'s.
pub fn run_with_jobs(profile: Profile, jobs: usize) -> (Vec<Table1Row>, BatchStats) {
    let bugs = bugs(profile);
    let batch: Vec<DetectionJob> = bugs.iter().flat_map(|bug| jobs_for(bug, profile)).collect();
    let outcome = Engine::new(jobs).run(batch).expect_jobs();
    let rows = bugs
        .iter()
        .enumerate()
        .map(|(i, bug)| {
            let sqed = &outcome.detections[2 * i];
            let sepe = &outcome.detections[2 * i + 1];
            Table1Row {
                bug: bug.name.clone(),
                opcode: bug
                    .target_opcode()
                    .map(|o| o.mnemonic().to_uppercase())
                    .unwrap_or_default(),
                function: bug.description.clone(),
                sepe_secs: sepe.detected.then_some(sepe.runtime.as_secs_f64()),
                sepe_trace_len: sepe.trace_len,
                sqed_detected: sqed.detected,
                sqed_bound: sqed.bound_reached,
                sepe_terms_cached: sepe.solver.encode.terms_cached,
                sepe_terms_reused: sepe.solver.encode.terms_reused,
                sepe_terms_rewritten: sepe.solver.encode.rewrite.terms_rewritten,
                sepe_rewrite_rules: sepe.solver.encode.rewrite.rule_applications,
                sepe_rewrite_pins: sepe.solver.encode.rewrite.pins,
                sepe_assertions_dropped: sepe.solver.encode.rewrite.assertions_dropped,
                sepe_coi_dropped: sepe.solver.encode.rewrite.coi_dropped_updates,
                sepe_aig_nodes: sepe.solver.encode.aig.nodes,
                sepe_aig_strash_hits: sepe.solver.encode.aig.strash_hits,
                sepe_aig_consts_folded: sepe.solver.encode.aig.consts_folded,
                sepe_aig_rewrites: sepe.solver.encode.aig.rewrites,
                sepe_cnf_vars: sepe.solver.encode.aig.cnf_vars,
                sepe_cnf_clauses: sepe.solver.encode.aig.cnf_clauses,
                sepe_learnt_retained: sepe.solver.learnt_retained,
                sepe_learnt_high_water: sepe.solver.learnt_high_water,
                sepe_learnt_deleted: sepe.solver.learnt_deleted,
                sepe_depth_conflicts: sepe.depths.iter().map(|d| d.conflicts).collect(),
            }
        })
        .collect();
    (rows, outcome.stats)
}

/// One row of the batched-catalogue arm: the same verdict columns as
/// [`Table1Row`], produced by one shared unrolling instead of one detector
/// per bug (runtimes are per-entry shares of the shared solver's queries,
/// so they are not comparable to the per-job wall times row for row).
#[derive(Debug, Clone, Serialize)]
pub struct BatchedRow {
    /// Bug identifier.
    pub bug: String,
    /// The targeted instruction.
    pub opcode: String,
    /// SEPE-SQED detection time in seconds (`None` means not detected).
    pub sepe_secs: Option<f64>,
    /// SEPE-SQED counterexample length.
    pub sepe_trace_len: Option<usize>,
    /// Bound at which the entry resolved.
    pub bound_reached: usize,
}

/// The shared configuration of the batched-catalogue run: one opcode
/// universe covering every profiled bug (plus ADDI for operand setup), so
/// all catalogue entries ride the same unrolling.
pub fn batched_config(profile: Profile) -> DetectorConfig {
    let (xlen, max_bound) = match profile {
        Profile::Quick => (4, 10),
        Profile::Full => (8, 12),
    };
    let mut ops: Vec<Opcode> = bugs(profile)
        .iter()
        .filter_map(Mutation::target_opcode)
        .collect();
    ops.push(Opcode::Addi);
    ops.sort();
    ops.dedup();
    DetectorConfig::builder()
        .processor(
            ProcessorConfig {
                xlen,
                mem_words: 4,
                ..ProcessorConfig::default()
            }
            .with_opcodes(&ops),
        )
        .bound(max_bound)
        .conflict_limit(2_000_000)
        .time_limit(match profile {
            Profile::Quick => Duration::from_secs(120),
            Profile::Full => Duration::from_secs(1200),
        })
        .build()
}

/// Runs the SEPE-SQED arm of Table 1 as one batched catalogue: every bug is
/// an activation-guarded entry of a single transition system, encoded once
/// and answered by one-hot `check_assuming` flips on the persistent solver
/// (`stats.encodes` stays at 1 where the per-job engine pays one encoding
/// per bug).
pub fn run_batched(profile: Profile) -> (Vec<BatchedRow>, BatchedStats) {
    let bugs = bugs(profile);
    let entries: Vec<CatalogueEntry> = bugs
        .iter()
        .map(|bug| CatalogueEntry::new(bug.name.clone(), bug.clone()))
        .collect();
    let outcome = Engine::new(1)
        .run(BatchSpec::catalogue(
            Method::SepeSqed,
            batched_config(profile),
            entries,
        ))
        .expect_catalogue();
    let rows = bugs
        .iter()
        .zip(&outcome.detections)
        .map(|(bug, d)| BatchedRow {
            bug: bug.name.clone(),
            opcode: bug
                .target_opcode()
                .map(|o| o.mnemonic().to_uppercase())
                .unwrap_or_default(),
            sepe_secs: d.detected.then_some(d.runtime.as_secs_f64()),
            sepe_trace_len: d.trace_len,
            bound_reached: d.bound_reached,
        })
        .collect();
    (rows, outcome.stats)
}

/// Prints the batched-catalogue arm.
pub fn print_batched(rows: &[BatchedRow], stats: &BatchedStats) {
    println!(
        "{:<8} {:<32} {:>12} {:>8} {:>7}",
        "Type", "Bug", "SEPE-SQED", "len", "bound"
    );
    for row in rows {
        println!(
            "{:<8} {:<32} {:>12} {:>8} {:>7}",
            row.opcode,
            row.bug,
            row.sepe_secs
                .map(|s| format!("{s:.2}s"))
                .unwrap_or_else(|| "-".into()),
            row.sepe_trace_len
                .map(|l| l.to_string())
                .unwrap_or_else(|| "-".into()),
            row.bound_reached,
        );
    }
    let detected = rows.iter().filter(|r| r.sepe_secs.is_some()).count();
    println!(
        "\nSEPE-SQED detected {detected}/{} bugs over one shared unrolling.",
        rows.len()
    );
    println!("batched: {stats}");
    println!(
        "encode economics: {} encoding(s) answered {} entries ({} shared CNF clauses); \
         the per-job engine pays {} encodings for the same catalogue.",
        stats.encodes, stats.entries, stats.solver.cnf_clauses, stats.entries,
    );
}

/// Prints the table in the paper's layout.
pub fn print(rows: &[Table1Row]) {
    println!(
        "{:<8} {:<48} {:>12} {:>8}",
        "Type", "Function", "SEPE-SQED", "SQED"
    );
    for row in rows {
        println!(
            "{:<8} {:<48} {:>12} {:>8}",
            row.opcode,
            row.function,
            row.sepe_cell(),
            row.sqed_cell()
        );
    }
    let detected = rows.iter().filter(|r| r.sepe_secs.is_some()).count();
    let sqed_missed = rows.iter().filter(|r| !r.sqed_detected).count();
    println!(
        "\nSEPE-SQED detected {detected}/{} injected single-instruction bugs; SQED detected {}/{} (paper: 13/13 vs 0/13).",
        rows.len(),
        rows.len() - sqed_missed,
        rows.len()
    );
    let summary = SolverSummary::new(
        "SEPE-SQED incremental per-depth sweeps",
        "depths",
        rows.iter().map(Table1Row::solver_row).collect(),
        24,
    );
    println!("{summary}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_profile_targets_five_bugs() {
        assert_eq!(bugs(Profile::Quick).len(), 5);
        assert_eq!(bugs(Profile::Full).len(), 13);
    }

    #[test]
    fn row_cells_format_like_the_paper() {
        let row = Table1Row {
            bug: "single-add".into(),
            opcode: "ADD".into(),
            function: "Addition of two register types".into(),
            sepe_secs: Some(3410.93),
            sepe_trace_len: Some(4),
            sqed_detected: false,
            sqed_bound: 8,
            sepe_terms_cached: 0,
            sepe_terms_reused: 0,
            sepe_terms_rewritten: 0,
            sepe_rewrite_rules: 0,
            sepe_rewrite_pins: 0,
            sepe_assertions_dropped: 0,
            sepe_coi_dropped: 0,
            sepe_aig_nodes: 0,
            sepe_aig_strash_hits: 0,
            sepe_aig_consts_folded: 0,
            sepe_aig_rewrites: 0,
            sepe_cnf_vars: 0,
            sepe_cnf_clauses: 0,
            sepe_learnt_retained: 0,
            sepe_learnt_high_water: 0,
            sepe_learnt_deleted: 0,
            sepe_depth_conflicts: Vec::new(),
        };
        assert_eq!(row.sepe_cell(), "3410.93s");
        assert_eq!(row.sqed_cell(), "-");
    }
}
