//! Benchmark harness: workload generators and experiment runners that
//! regenerate every table and figure of the paper's evaluation section.
//!
//! * [`fig3`] — synthesis-time comparison of HPF-CEGIS vs iterative CEGIS
//!   (and the classical CEGIS baseline) over the 26 synthesis cases,
//! * [`table1`] — injected single-instruction bugs: SEPE-SQED detection times
//!   vs SQED "-" entries,
//! * [`fig4`] — injected multiple-instruction bugs: detection time and
//!   counterexample length for both methods, plus the SQED/SEPE ratios.
//!
//! Each module exposes a `run` function returning serializable row structs
//! and a `print` function producing the paper-style table.  The
//! `fig3`/`table1`/`fig4` binaries are thin wrappers; the Criterion benches
//! in `benches/` time representative slices of the same runners.

pub mod fig3;
pub mod fig4;
pub mod sweep;
pub mod table1;

use std::time::Duration;

/// How much work an experiment run performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// A few representative cases with tight budgets (minutes).
    Quick,
    /// The full sweep matching the paper's tables.
    Full,
}

impl Profile {
    /// Parses from CLI arguments (`--full` selects the full sweep).
    pub fn from_args() -> Profile {
        if std::env::args().any(|a| a == "--full") {
            Profile::Full
        } else {
            Profile::Quick
        }
    }
}

/// Formats a duration in seconds with two decimals.
pub fn secs(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}
