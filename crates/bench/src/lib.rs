//! Benchmark harness: workload generators and experiment runners that
//! regenerate every table and figure of the paper's evaluation section.
//!
//! * [`fig3`] — synthesis-time comparison of HPF-CEGIS vs iterative CEGIS
//!   (and the classical CEGIS baseline) over the 26 synthesis cases,
//! * [`table1`] — injected single-instruction bugs: SEPE-SQED detection times
//!   vs SQED "-" entries,
//! * [`fig4`] — injected multiple-instruction bugs: detection time and
//!   counterexample length for both methods, plus the SQED/SEPE ratios.
//!
//! Each module exposes a `run` function returning serializable row structs
//! and a `print` function producing the paper-style table.  The
//! `fig3`/`table1`/`fig4` binaries are thin wrappers; the Criterion benches
//! in `benches/` time representative slices of the same runners.  The
//! detection experiments additionally expose a `run_with_jobs` variant that
//! schedules the per-bug checks on the parallel engine
//! (`sepe_sqed::parallel`); `--jobs N` / `SEPE_JOBS` select the worker
//! count and `jobs = 1` reproduces the sequential runs exactly.
//!
//! # Example
//!
//! ```
//! use sepe_bench::{table1, Profile};
//!
//! // The Table-1 quick profile exercises five single-instruction bugs.
//! let bugs = table1::bugs(Profile::Quick);
//! assert_eq!(bugs.len(), 5);
//! // Every bug targets a specific opcode and gets its own detector.
//! let detector = table1::detector_for(&bugs[0], Profile::Quick);
//! assert!(detector.config().max_bound >= 4);
//! ```

pub mod fig3;
pub mod fig4;
pub mod report;
pub mod sweep;
pub mod table1;

use std::time::Duration;

/// How much work an experiment run performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// A few representative cases with tight budgets (minutes).
    Quick,
    /// The full sweep matching the paper's tables.
    Full,
}

impl Profile {
    /// Parses from CLI arguments (`--full` selects the full sweep).
    pub fn from_args() -> Profile {
        if std::env::args().any(|a| a == "--full") {
            Profile::Full
        } else {
            Profile::Quick
        }
    }
}

/// Formats a duration in seconds with two decimals.
pub fn secs(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

/// The worker count for the detection binaries: `--jobs N` on the command
/// line beats the `SEPE_JOBS` environment variable beats the machine's
/// available parallelism.  `1` runs the sequential code path exactly.
pub fn jobs_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--jobs") {
        Some(i) => {
            let value = args.get(i + 1).expect("--jobs takes a worker count");
            value
                .parse::<usize>()
                .ok()
                .filter(|&n| n > 0)
                .unwrap_or_else(|| panic!("--jobs takes a positive integer, got {value:?}"))
        }
        None => sepe_sqed::parallel::default_jobs(),
    }
}
