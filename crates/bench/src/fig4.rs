//! Figure 4: multiple-instruction bugs — detection runtime for SQED and
//! SEPE-SQED plus the runtime and counterexample-length ratio curves.

use std::time::Duration;

use serde::Serialize;

use sepe_isa::Opcode;
use sepe_processor::{Mutation, ProcessorConfig};
use sepe_smt::EncodeStats;
use sepe_sqed::batch::{BatchedStats, CatalogueEntry};
use sepe_sqed::detect::{Detector, DetectorConfig, Method};
use sepe_sqed::parallel::{BatchSpec, BatchStats, DetectionJob, Engine};
use sepe_tsys::BmcMode;

use crate::report::{SolverRow, SolverSummary};
use crate::Profile;

/// One bug of Figure 4 (one x-axis position).
#[derive(Debug, Clone, Serialize)]
pub struct Fig4Row {
    /// Bug number (1–20).
    pub index: usize,
    /// Bug identifier.
    pub bug: String,
    /// SQED detection time in seconds (`None` = not detected within budget).
    pub sqed_secs: Option<f64>,
    /// SEPE-SQED detection time in seconds.
    pub sepe_secs: Option<f64>,
    /// SQED counterexample length.
    pub sqed_len: Option<usize>,
    /// SEPE-SQED counterexample length.
    pub sepe_len: Option<usize>,
    /// Distinct term encodings cached by the SEPE-SQED incremental solver
    /// (see `sepe_smt::EncodeStats`).
    pub sepe_terms_cached: u64,
    /// Term encodings reused across depths by the SEPE-SQED incremental
    /// per-depth sweep.
    pub sepe_terms_reused: u64,
    /// Terms changed by the word-level rewriter ahead of bit-blasting.
    pub sepe_terms_rewritten: u64,
    /// Catalogue-rule applications by the rewriter.
    pub sepe_rewrite_rules: u64,
    /// Asserted equalities the rewriter turned into variable pins.
    pub sepe_rewrite_pins: u64,
    /// Asserted conjuncts the rewriter eliminated before encoding.
    pub sepe_assertions_dropped: u64,
    /// Next-state updates dropped by the BMC cone-of-influence pass.
    pub sepe_coi_dropped: u64,
    /// AIG nodes created below the word level (strash misses).
    pub sepe_aig_nodes: u64,
    /// AIG requests answered by the structural-hashing table.
    pub sepe_aig_strash_hits: u64,
    /// AIG requests folded by constant propagation / one-level rules.
    pub sepe_aig_consts_folded: u64,
    /// Two-level local rewrites at AIG node creation.
    pub sepe_aig_rewrites: u64,
    /// CNF variables emitted by the polarity-aware Tseitin pass.
    pub sepe_cnf_vars: u64,
    /// CNF clauses emitted by the polarity-aware Tseitin pass.
    pub sepe_cnf_clauses: u64,
    /// Learnt clauses retained across the sweep's SAT calls.
    pub sepe_learnt_retained: u64,
    /// High-water mark of live learnt clauses during the SEPE sweep.
    pub sepe_learnt_high_water: u64,
    /// Learnt clauses deleted by database reduction during the SEPE sweep.
    pub sepe_learnt_deleted: u64,
    /// Per-depth SAT-conflict deltas of the SEPE-SQED sweep.
    pub sepe_depth_conflicts: Vec<u64>,
}

impl Fig4Row {
    /// Runtime ratio SQED / SEPE-SQED (the blue curve).
    pub fn runtime_ratio(&self) -> Option<f64> {
        match (self.sqed_secs, self.sepe_secs) {
            (Some(a), Some(b)) if b > 0.0 => Some(a / b),
            _ => None,
        }
    }

    /// Counterexample length ratio SQED / SEPE-SQED (the yellow curve).
    pub fn length_ratio(&self) -> Option<f64> {
        match (self.sqed_len, self.sepe_len) {
            (Some(a), Some(b)) if b > 0 => Some(a as f64 / b as f64),
            _ => None,
        }
    }

    /// This row's contribution to the shared solver summary.
    fn solver_row(&self) -> SolverRow {
        let encode = EncodeStats {
            terms_cached: self.sepe_terms_cached,
            terms_reused: self.sepe_terms_reused,
            rewrite: sepe_smt::RewriteStats {
                terms_rewritten: self.sepe_terms_rewritten,
                rule_applications: self.sepe_rewrite_rules,
                pins: self.sepe_rewrite_pins,
                assertions_dropped: self.sepe_assertions_dropped,
                coi_dropped_updates: self.sepe_coi_dropped,
                ..Default::default()
            },
            aig: sepe_smt::AigStats {
                nodes: self.sepe_aig_nodes,
                strash_hits: self.sepe_aig_strash_hits,
                consts_folded: self.sepe_aig_consts_folded,
                rewrites: self.sepe_aig_rewrites,
                cnf_vars: self.sepe_cnf_vars,
                cnf_clauses: self.sepe_cnf_clauses,
            },
        };
        SolverRow {
            label: self.bug.clone(),
            encode,
            learnt_retained: self.sepe_learnt_retained,
            learnt_high_water: self.sepe_learnt_high_water,
            learnt_deleted: self.sepe_learnt_deleted,
            depth_conflicts: self.sepe_depth_conflicts.clone(),
        }
    }
}

/// The opcode universe for one Figure-4 bug: its trigger opcodes plus ADDI
/// and XORI so the model checker can construct operand values and break the
/// trigger pattern on one side.
pub fn universe(bug: &Mutation) -> Vec<Opcode> {
    let mut ops = vec![Opcode::Addi, Opcode::Xori];
    ops.extend(bug.trigger.opcode);
    ops.extend(bug.trigger.prev_opcode);
    ops.extend(bug.trigger.prev2_opcode);
    ops.sort();
    ops.dedup();
    ops
}

/// The bugs exercised by a profile.
pub fn bugs(profile: Profile) -> Vec<Mutation> {
    let all = Mutation::figure4();
    match profile {
        Profile::Quick => all.into_iter().take(6).collect(),
        Profile::Full => all,
    }
}

/// The detector for one Figure-4 bug.
pub fn detector_for(bug: &Mutation, profile: Profile) -> Detector {
    let (xlen, max_bound) = match profile {
        Profile::Quick => (4, 10),
        Profile::Full => (8, 12),
    };
    Detector::new(DetectorConfig {
        processor: ProcessorConfig {
            xlen,
            mem_words: 4,
            ..ProcessorConfig::default()
        }
        .with_opcodes(&universe(bug)),
        max_bound,
        conflict_limit: Some(2_000_000),
        // The wall-clock budget now interrupts in-flight SAT calls, so the
        // quick profile stays in the minutes even on hard sweeps.
        time_limit: Some(match profile {
            Profile::Quick => Duration::from_secs(60),
            Profile::Full => Duration::from_secs(1800),
        }),
        ..DetectorConfig::default()
    })
}

/// Runs the Figure-4 experiment sequentially (one worker).
pub fn run(profile: Profile) -> Vec<Fig4Row> {
    run_with_jobs(profile, 1).0
}

/// The two detection jobs of one Figure-4 bug.  Both methods explore depth
/// by depth on the persistent incremental solver: counterexamples are
/// genuinely shortest, so the length-ratio curve compares like for like (a
/// cumulative query would return an arbitrary-model trace and bias the
/// comparison), and the wall-clock budget is enforced between depths.
fn jobs_for(bug: &Mutation, profile: Profile) -> [DetectionJob; 2] {
    let detector = detector_for(bug, profile);
    let per_depth = DetectorConfig {
        bmc_mode: BmcMode::PerDepth,
        ..detector.config().clone()
    };
    [
        DetectionJob::new(
            format!("{}-sqed", bug.name),
            per_depth.clone(),
            Method::Sqed,
            Some(bug.clone()),
        ),
        DetectionJob::new(
            format!("{}-sepe", bug.name),
            per_depth,
            Method::SepeSqed,
            Some(bug.clone()),
        ),
    ]
}

/// Runs the Figure-4 experiment on the parallel detection engine with the
/// given worker count; `jobs = 1` runs inline in the sequential driver's
/// order, so its rows are bit-identical to [`run`]'s.
pub fn run_with_jobs(profile: Profile, jobs: usize) -> (Vec<Fig4Row>, BatchStats) {
    let bugs = bugs(profile);
    let batch: Vec<DetectionJob> = bugs.iter().flat_map(|bug| jobs_for(bug, profile)).collect();
    let outcome = Engine::new(jobs).run(batch).expect_jobs();
    let rows = bugs
        .iter()
        .enumerate()
        .map(|(i, bug)| {
            let sqed = &outcome.detections[2 * i];
            let sepe = &outcome.detections[2 * i + 1];
            Fig4Row {
                index: i + 1,
                bug: bug.name.clone(),
                sqed_secs: sqed.detected.then_some(sqed.runtime.as_secs_f64()),
                sepe_secs: sepe.detected.then_some(sepe.runtime.as_secs_f64()),
                sqed_len: sqed.trace_len,
                sepe_len: sepe.trace_len,
                sepe_terms_cached: sepe.solver.encode.terms_cached,
                sepe_terms_reused: sepe.solver.encode.terms_reused,
                sepe_terms_rewritten: sepe.solver.encode.rewrite.terms_rewritten,
                sepe_rewrite_rules: sepe.solver.encode.rewrite.rule_applications,
                sepe_rewrite_pins: sepe.solver.encode.rewrite.pins,
                sepe_assertions_dropped: sepe.solver.encode.rewrite.assertions_dropped,
                sepe_coi_dropped: sepe.solver.encode.rewrite.coi_dropped_updates,
                sepe_aig_nodes: sepe.solver.encode.aig.nodes,
                sepe_aig_strash_hits: sepe.solver.encode.aig.strash_hits,
                sepe_aig_consts_folded: sepe.solver.encode.aig.consts_folded,
                sepe_aig_rewrites: sepe.solver.encode.aig.rewrites,
                sepe_cnf_vars: sepe.solver.encode.aig.cnf_vars,
                sepe_cnf_clauses: sepe.solver.encode.aig.cnf_clauses,
                sepe_learnt_retained: sepe.solver.learnt_retained,
                sepe_learnt_high_water: sepe.solver.learnt_high_water,
                sepe_learnt_deleted: sepe.solver.learnt_deleted,
                sepe_depth_conflicts: sepe.depths.iter().map(|d| d.conflicts).collect(),
            }
        })
        .collect();
    (rows, outcome.stats)
}

/// One entry of the batched Figure-4 arm.
#[derive(Debug, Clone, Serialize)]
pub struct BatchedRow {
    /// Bug number (1–20).
    pub index: usize,
    /// Bug identifier.
    pub bug: String,
    /// SEPE-SQED detection time in seconds (`None` = not detected).
    pub sepe_secs: Option<f64>,
    /// SEPE-SQED counterexample length.
    pub sepe_len: Option<usize>,
    /// Bound at which the entry resolved.
    pub bound_reached: usize,
}

/// The shared configuration of the batched Figure-4 run: the union of every
/// profiled bug's opcode universe, so all entries share one unrolling.
pub fn batched_config(profile: Profile) -> DetectorConfig {
    let (xlen, max_bound) = match profile {
        Profile::Quick => (4, 10),
        Profile::Full => (8, 12),
    };
    let mut ops: Vec<Opcode> = bugs(profile).iter().flat_map(universe).collect();
    ops.sort();
    ops.dedup();
    DetectorConfig::builder()
        .processor(
            ProcessorConfig {
                xlen,
                mem_words: 4,
                ..ProcessorConfig::default()
            }
            .with_opcodes(&ops),
        )
        .bound(max_bound)
        .conflict_limit(2_000_000)
        .time_limit(match profile {
            Profile::Quick => Duration::from_secs(60),
            Profile::Full => Duration::from_secs(1800),
        })
        .build()
}

/// Runs the SEPE-SQED arm of Figure 4 as one batched catalogue over a
/// shared unrolling (one encoding, one-hot activation flips per entry and
/// depth on the persistent solver).
pub fn run_batched(profile: Profile) -> (Vec<BatchedRow>, BatchedStats) {
    let bugs = bugs(profile);
    let entries: Vec<CatalogueEntry> = bugs
        .iter()
        .map(|bug| CatalogueEntry::new(bug.name.clone(), bug.clone()))
        .collect();
    let outcome = Engine::new(1)
        .run(BatchSpec::catalogue(
            Method::SepeSqed,
            batched_config(profile),
            entries,
        ))
        .expect_catalogue();
    let rows = bugs
        .iter()
        .zip(&outcome.detections)
        .enumerate()
        .map(|(i, (bug, d))| BatchedRow {
            index: i + 1,
            bug: bug.name.clone(),
            sepe_secs: d.detected.then_some(d.runtime.as_secs_f64()),
            sepe_len: d.trace_len,
            bound_reached: d.bound_reached,
        })
        .collect();
    (rows, outcome.stats)
}

/// Prints the batched arm's data series.
pub fn print_batched(rows: &[BatchedRow], stats: &BatchedStats) {
    println!(
        "{:<4} {:<28} {:>10} {:>9} {:>7}",
        "No.", "bug", "SEPE [s]", "SEPE len", "bound"
    );
    for row in rows {
        println!(
            "{:<4} {:<28} {:>10} {:>9} {:>7}",
            row.index,
            row.bug,
            row.sepe_secs
                .map(|s| format!("{s:.2}"))
                .unwrap_or_else(|| "-".into()),
            row.sepe_len
                .map(|l| l.to_string())
                .unwrap_or_else(|| "-".into()),
            row.bound_reached,
        );
    }
    let detected = rows.iter().filter(|r| r.sepe_secs.is_some()).count();
    println!(
        "\nSEPE-SQED detected {detected}/{} bugs over one shared unrolling.",
        rows.len()
    );
    println!("batched: {stats}");
    println!(
        "encode economics: {} encoding(s) answered {} entries ({} shared CNF clauses); \
         the per-job engine pays {} encodings for the same catalogue.",
        stats.encodes, stats.entries, stats.solver.cnf_clauses, stats.entries,
    );
}

/// Prints the figure's data series.
pub fn print(rows: &[Fig4Row]) {
    println!(
        "{:<4} {:<28} {:>10} {:>10} {:>9} {:>9} {:>11} {:>11}",
        "No.", "bug", "SQED [s]", "SEPE [s]", "SQED len", "SEPE len", "time ratio", "len ratio"
    );
    let fmt_opt = |v: Option<f64>| v.map(|x| format!("{x:.2}")).unwrap_or_else(|| "-".into());
    let fmt_len = |v: Option<usize>| v.map(|x| x.to_string()).unwrap_or_else(|| "-".into());
    for row in rows {
        println!(
            "{:<4} {:<28} {:>10} {:>10} {:>9} {:>9} {:>11} {:>11}",
            row.index,
            row.bug,
            fmt_opt(row.sqed_secs),
            fmt_opt(row.sepe_secs),
            fmt_len(row.sqed_len),
            fmt_len(row.sepe_len),
            fmt_opt(row.runtime_ratio()),
            fmt_opt(row.length_ratio()),
        );
    }
    let both = rows
        .iter()
        .filter(|r| r.sqed_secs.is_some() && r.sepe_secs.is_some())
        .count();
    let shorter = rows
        .iter()
        .filter(|r| r.length_ratio().map(|x| x > 1.0).unwrap_or(false))
        .count();
    println!(
        "\nboth methods detected {both}/{} bugs; SEPE-SQED produced a shorter counterexample for {shorter} of them \
         (paper: both detect all 20, SEPE-SQED is sometimes shorter).",
        rows.len()
    );
    let summary = SolverSummary::new(
        "SEPE-SQED incremental per-depth sweeps",
        "depths",
        rows.iter().map(Fig4Row::solver_row).collect(),
        28,
    );
    println!("{summary}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_missing_data() {
        let row = Fig4Row {
            index: 1,
            bug: "multi-x".into(),
            sqed_secs: Some(2.0),
            sepe_secs: Some(1.0),
            sqed_len: Some(6),
            sepe_len: Some(8),
            sepe_terms_cached: 0,
            sepe_terms_reused: 0,
            sepe_terms_rewritten: 0,
            sepe_rewrite_rules: 0,
            sepe_rewrite_pins: 0,
            sepe_assertions_dropped: 0,
            sepe_coi_dropped: 0,
            sepe_aig_nodes: 0,
            sepe_aig_strash_hits: 0,
            sepe_aig_consts_folded: 0,
            sepe_aig_rewrites: 0,
            sepe_cnf_vars: 0,
            sepe_cnf_clauses: 0,
            sepe_learnt_retained: 0,
            sepe_learnt_high_water: 0,
            sepe_learnt_deleted: 0,
            sepe_depth_conflicts: Vec::new(),
        };
        assert_eq!(row.runtime_ratio(), Some(2.0));
        assert_eq!(row.length_ratio(), Some(0.75));
        let empty = Fig4Row {
            sqed_secs: None,
            ..row
        };
        assert_eq!(empty.runtime_ratio(), None);
    }

    #[test]
    fn universes_include_setup_opcodes() {
        for bug in bugs(Profile::Quick) {
            let u = universe(&bug);
            assert!(u.contains(&Opcode::Addi));
            assert!(u.len() >= 2);
        }
    }
}
