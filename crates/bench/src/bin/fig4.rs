//! Regenerates Figure 4: multiple-instruction bugs, detection time and
//! counterexample-length ratios for SQED vs SEPE-SQED.
//!
//! Usage: `cargo run --release -p sepe-bench --bin fig4 [--full] [--json] [--jobs N] [--batched]`
//!
//! `--jobs N` (or `SEPE_JOBS`) schedules the per-bug detection runs on the
//! parallel engine with `N` workers; the default is the machine's available
//! parallelism and `--jobs 1` reproduces the sequential run exactly.
//!
//! `--batched` runs the SEPE-SQED arm as one activation-multiplexed
//! catalogue over a shared unrolling (one encoding for the whole bug set)
//! instead of one detector per bug.

use sepe_bench::{fig4, jobs_from_args, Profile};

fn main() {
    let profile = Profile::from_args();
    if std::env::args().any(|a| a == "--batched") {
        let (rows, stats) = fig4::run_batched(profile);
        if std::env::args().any(|a| a == "--json") {
            println!(
                "{}",
                serde_json::to_string_pretty(&rows).expect("serializable rows")
            );
            return;
        }
        println!("# Figure 4 — batched SEPE-SQED catalogue ({profile:?} profile)\n");
        fig4::print_batched(&rows, &stats);
        return;
    }
    let jobs = jobs_from_args();
    let (rows, batch) = fig4::run_with_jobs(profile, jobs);
    if std::env::args().any(|a| a == "--json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&rows).expect("serializable rows")
        );
        return;
    }
    println!("# Figure 4 — injected multiple-instruction bugs ({profile:?} profile)\n");
    fig4::print(&rows);
    println!("\nbatch: {batch}");
}
