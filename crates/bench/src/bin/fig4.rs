//! Regenerates Figure 4: multiple-instruction bugs, detection time and
//! counterexample-length ratios for SQED vs SEPE-SQED.
//!
//! Usage: `cargo run --release -p sepe-bench --bin fig4 [--full] [--json]`

use sepe_bench::{fig4, Profile};

fn main() {
    let profile = Profile::from_args();
    let rows = fig4::run(profile);
    if std::env::args().any(|a| a == "--json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&rows).expect("serializable rows")
        );
        return;
    }
    println!("# Figure 4 — injected multiple-instruction bugs ({profile:?} profile)\n");
    fig4::print(&rows);
}
