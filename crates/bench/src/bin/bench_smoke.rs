//! CI smoke benchmark: a tiny `incremental_vs_scratch` configuration with a
//! machine-readable result and a regression gate.
//!
//! Runs the shared [`sepe_bench::sweep`] protocol (one Table-1 SQED sweep,
//! tiny processor, ADD only — the bug is invisible to SQED, so every depth
//! is explored) in four BMC modes:
//!
//! * `incremental` — [`BmcMode::PerDepth`] on the persistent solver with
//!   word-level rewriting + cone-of-influence reduction on (the default
//!   pipeline),
//! * `incremental_norewrite` — the same mode with the word-level
//!   preprocessing off: the rewrite-on-vs-off arm that isolates what the
//!   simplification pipeline buys,
//! * `cumulative_incremental` — [`BmcMode::CumulativeIncremental`], driven
//!   as growing `max_bound` calls on one `Bmc` (the cross-call reuse path),
//! * `scratch` — [`BmcMode::PerDepthScratch`] with preprocessing off, the
//!   PR-1-era re-encoding baseline.
//!
//! The measurements (wall time, conflicts, learnt-clause high-water mark,
//! encodings cached, `RewriteStats`) are written as JSON, and when
//! `--baseline <path>` is given the run **fails** (exit code 1) if any
//! mode's wall time regressed more than [`REGRESSION_FACTOR`]× against the
//! baseline's `wall_ms`.
//!
//! Usage:
//!   bench_smoke [--bound N] [--out BENCH_smoke.json] [--baseline BENCH_baseline.json]

use serde::Serialize;

use sepe_bench::sweep;
use sepe_smt::SolverReuseStats;
use sepe_tsys::BmcMode;

/// Wall-time regression tolerance against the checked-in baseline.
const REGRESSION_FACTOR: f64 = 1.5;

#[derive(Debug, Clone, Serialize)]
struct ModeResult {
    mode: String,
    wall_ms: f64,
    conflicts: u64,
    learnt_high_water: u64,
    learnt_deleted: u64,
    learnt_retained: u64,
    terms_cached: u64,
    terms_reused: u64,
    terms_rewritten: u64,
    rewrite_rules: u64,
    rewrite_pins: u64,
    assertions_dropped: u64,
    coi_dropped: u64,
}

impl ModeResult {
    fn new(mode: &str, wall: std::time::Duration, solver: SolverReuseStats) -> ModeResult {
        ModeResult {
            mode: mode.to_string(),
            wall_ms: wall.as_secs_f64() * 1e3,
            conflicts: solver.conflicts,
            learnt_high_water: solver.learnt_high_water,
            learnt_deleted: solver.learnt_deleted,
            learnt_retained: solver.learnt_retained,
            terms_cached: solver.encode.terms_cached,
            terms_reused: solver.encode.terms_reused,
            terms_rewritten: solver.encode.rewrite.terms_rewritten,
            rewrite_rules: solver.encode.rewrite.rule_applications,
            rewrite_pins: solver.encode.rewrite.pins,
            assertions_dropped: solver.encode.rewrite.assertions_dropped,
            coi_dropped: solver.encode.rewrite.coi_dropped_updates,
        }
    }
}

#[derive(Debug, Clone, Serialize)]
struct SmokeReport {
    bound: usize,
    opcode: String,
    modes: Vec<ModeResult>,
}

/// Pulls `"wall_ms": <number>` for a named mode out of a baseline JSON
/// (hand-rolled scan: the offline serde shim renders but does not parse).
fn baseline_wall_ms(json: &str, mode: &str) -> Option<f64> {
    let marker = format!("\"{mode}\"");
    let after_mode = &json[json.find(&marker)? + marker.len()..];
    let after_key = &after_mode[after_mode.find("\"wall_ms\":")? + "\"wall_ms\":".len()..];
    let number: String = after_key
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == '+')
        .collect();
    number.parse().ok()
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Bound 6 is the first depth where the SQED consistency query is hard
    // (bound 5 finishes in milliseconds): small enough for a CI smoke run,
    // big enough that learnt-database reduction actually fires.
    let bound: usize = arg_value(&args, "--bound")
        .map(|v| v.parse().expect("--bound takes a number"))
        .unwrap_or(6);
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_smoke.json".to_string());
    let baseline_path = arg_value(&args, "--baseline");

    let bug = sweep::bug(); // ADD off by one
    println!("bench-smoke: SQED sweep, tiny/ADD-only, bound {bound}");
    let (incr_wall, incr_solver) = sweep::run_with(bound, BmcMode::PerDepth, &bug, true);
    let (raw_wall, raw_solver) = sweep::run_with(bound, BmcMode::PerDepth, &bug, false);
    let (cumul_wall, cumul_solver) = sweep::run_cumulative(bound, &bug);
    let (scratch_wall, scratch_solver) =
        sweep::run_with(bound, BmcMode::PerDepthScratch, &bug, false);
    let report = SmokeReport {
        bound,
        opcode: "ADD".to_string(),
        modes: vec![
            ModeResult::new("incremental", incr_wall, incr_solver),
            ModeResult::new("incremental_norewrite", raw_wall, raw_solver),
            ModeResult::new("cumulative_incremental", cumul_wall, cumul_solver),
            ModeResult::new("scratch", scratch_wall, scratch_solver),
        ],
    };
    for m in &report.modes {
        println!(
            "  {:<24} {:>9.1} ms  {:>8} conflicts  learnt hw {:>6} (deleted {:>6}, retained {:>6})",
            m.mode,
            m.wall_ms,
            m.conflicts,
            m.learnt_high_water,
            m.learnt_deleted,
            m.learnt_retained,
        );
        println!(
            "  {:<24} cache {:>6}/{:>6}  rewritten {:>6} (rules {:>6}, pins {:>6}, dropped {:>6}, coi-dropped {:>4})",
            "", m.terms_cached, m.terms_reused, m.terms_rewritten, m.rewrite_rules, m.rewrite_pins,
            m.assertions_dropped, m.coi_dropped,
        );
    }
    if let (Some(on), Some(off)) = (
        report.modes.first(),
        report
            .modes
            .iter()
            .find(|m| m.mode == "incremental_norewrite"),
    ) {
        println!(
            "  rewrite-on vs rewrite-off: {:.2}x wall, {:.2}x conflicts",
            off.wall_ms / on.wall_ms,
            off.conflicts as f64 / (on.conflicts.max(1)) as f64,
        );
    }

    let json = serde_json::to_string_pretty(&report).expect("serializable report");
    std::fs::write(&out_path, format!("{json}\n")).expect("write smoke report");
    println!("wrote {out_path}");

    if let Some(path) = baseline_path {
        let baseline = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let mut regressed = false;
        for m in &report.modes {
            match baseline_wall_ms(&baseline, &m.mode) {
                Some(expected) => {
                    let ratio = m.wall_ms / expected;
                    let verdict = if ratio > REGRESSION_FACTOR {
                        regressed = true;
                        "REGRESSED"
                    } else {
                        "ok"
                    };
                    println!(
                        "  {:<24} {:>9.1} ms vs baseline {:>9.1} ms ({ratio:.2}x) {verdict}",
                        m.mode, m.wall_ms, expected
                    );
                }
                None => println!("  {:<24} no baseline entry, skipping", m.mode),
            }
        }
        if regressed {
            eprintln!("bench-smoke: wall time regressed >{REGRESSION_FACTOR}x against {path}");
            std::process::exit(1);
        }
    }
}
