//! CI smoke benchmark: a tiny `incremental_vs_scratch` configuration with a
//! machine-readable result and a regression gate.
//!
//! Runs the shared [`sepe_bench::sweep`] protocol (one Table-1 SQED sweep,
//! tiny processor, ADD only — the bug is invisible to SQED, so every depth
//! is explored) in five BMC modes:
//!
//! * `incremental` — [`BmcMode::PerDepth`] on the persistent solver with
//!   word-level rewriting + cone-of-influence reduction and the gate-level
//!   AIG layer on (the default pipeline),
//! * `aig_off` — the same mode with the AIG reductions off (no structural
//!   hashing, no local rewriting, biconditional Tseitin): the arm that
//!   isolates what the gate-level layer buys,
//! * `incremental_norewrite` — the default pipeline with the word-level
//!   preprocessing off: the rewrite-on-vs-off arm that isolates what the
//!   simplification pipeline buys,
//! * `cumulative_incremental` — [`BmcMode::CumulativeIncremental`], driven
//!   as growing `max_bound` calls on one `Bmc` (the cross-call reuse path),
//! * `scratch` — [`BmcMode::PerDepthScratch`] with all preprocessing off,
//!   the PR-1-era re-encoding baseline.
//!
//! The measurements (wall time, conflicts, learnt-clause high-water mark,
//! encodings cached, `RewriteStats`, AIG counters, CNF sizes) are written as
//! JSON, and when `--baseline <path>` is given the run **fails** with exit
//! code 1 if any mode's wall time regressed more than [`REGRESSION_FACTOR`]×
//! or its CNF clause count more than [`CLAUSE_REGRESSION_FACTOR`]× against
//! the baseline (the clause count is deterministic on identical code, so
//! its tight gate catches encoding regressions without runner-speed noise).
//!
//! A sixth, **parallel** arm runs a batch of identical copies of the
//! `incremental` sweep on the work-stealing detection engine
//! (`sepe_sqed::parallel`), once with one worker and once with `--jobs N`
//! workers (default: available parallelism / `SEPE_JOBS`), and records the
//! realised speedup.  The regression gate deliberately ignores the parallel
//! numbers — they depend on the runner's core count — and keeps judging the
//! deterministic single-worker modes only.
//!
//! The parallel batch also feeds a `robustness` entry — retries taken,
//! degraded re-runs, panics absorbed, and stopped-job tallies by stop
//! reason, straight from the engine's `BatchStats`.  A healthy run reports
//! all zeros; the entry exists so the CI artifact history makes any
//! engine-level recovery activity visible at a glance.  Also outside the
//! regression gate.
//!
//! A seventh, **batched** arm answers a twenty-entry mutation catalogue
//! over one shared unrolling (`sepe_sqed::BatchedDetector` via
//! `BatchSpec::catalogue`): one encoding, one persistent solver, one-hot
//! activation-literal flips per entry and depth.  Its counters are
//! deterministic, so it *is* gated: the shared encoding's clause count
//! gets the tight clause gate, and the throughput ratio (per-job total
//! clauses / batched shared clauses) must clear a hard 5x floor on every
//! run and hold its baseline value when `--baseline` is given.
//!
//! An eighth, **service_cache** arm boots the detection service
//! (`sepe_service`) on a loopback socket with a fresh crash-safe result
//! cache and submits the same small catalogue twice.  The cold pass
//! computes and commits every verdict; the hot pass must be answered
//! *entirely* from the cache.  That contract is deterministic, so it is a
//! hard gate on every run (no baseline needed): the hot pass must be 100%
//! cache hits with zero misses and zero solver encodes, or the run exits
//! nonzero.  Wall times are recorded for the artifact history only.
//!
//! A ninth, **proofs** arm runs both unbounded provers (k-induction and
//! IC3/PDR) against one clean configuration and one Table-1 mutation.  The
//! clean config must come back **Proved** by PDR — the verdict no bounded
//! sweep can give — with its inductive invariant re-verified on an
//! independent solver; k-induction must falsify the mutation with exactly
//! the bounded baseline's shortest trace; and neither prover may ever
//! contradict the baseline.  Those contracts are deterministic, so they
//! are hard gates on every run; the proof work counters (frontier depth,
//! queries, cubes blocked, clauses pushed, uniqueness constraints) are
//! recorded for the artifact history only.
//!
//! Usage:
//!   bench_smoke [--bound N] [--jobs N] [--out BENCH_smoke.json] [--baseline BENCH_baseline.json]

use serde::Serialize;

use sepe_bench::{jobs_from_args, sweep};
use sepe_smt::SolverReuseStats;
use sepe_sqed::detect::Method;
use sepe_sqed::parallel::{BatchSpec, Engine};
use sepe_tsys::BmcMode;

/// Wall-time regression tolerance against the checked-in baseline (loose:
/// runner hardware varies).
const REGRESSION_FACTOR: f64 = 1.5;

/// CNF clause-count regression tolerance (tight: the count is deterministic
/// on identical code, so anything beyond float-formatting slack is a real
/// encoding regression — intentional encoding changes refresh the baseline,
/// as its `note` describes).
const CLAUSE_REGRESSION_FACTOR: f64 = 1.05;

/// Minimum batched-throughput ratio (per-job total CNF clauses over the
/// batched shared encoding's clauses, for the same catalogue).  Both counts
/// are deterministic on identical code, so this is a hard floor, checked on
/// every run: the in-solver batched path must answer the catalogue at least
/// this many times cheaper than one encoding per entry.
const BATCHED_THROUGHPUT_FLOOR: f64 = 5.0;

/// Catalogue entries of the batched arm (the ISSUE-scale twenty-mutation
/// catalogue).
const BATCHED_ENTRIES: usize = 20;

#[derive(Debug, Clone, Serialize)]
struct ModeResult {
    mode: String,
    wall_ms: f64,
    conflicts: u64,
    learnt_high_water: u64,
    learnt_deleted: u64,
    learnt_retained: u64,
    terms_cached: u64,
    terms_reused: u64,
    terms_rewritten: u64,
    rewrite_rules: u64,
    rewrite_pins: u64,
    assertions_dropped: u64,
    coi_dropped: u64,
    aig_nodes: u64,
    aig_strash_hits: u64,
    aig_consts_folded: u64,
    aig_rewrites: u64,
    cnf_vars: u64,
    cnf_clauses: u64,
}

impl ModeResult {
    fn new(mode: &str, wall: std::time::Duration, solver: SolverReuseStats) -> ModeResult {
        ModeResult {
            mode: mode.to_string(),
            wall_ms: wall.as_secs_f64() * 1e3,
            conflicts: solver.conflicts,
            learnt_high_water: solver.learnt_high_water,
            learnt_deleted: solver.learnt_deleted,
            learnt_retained: solver.learnt_retained,
            terms_cached: solver.encode.terms_cached,
            terms_reused: solver.encode.terms_reused,
            terms_rewritten: solver.encode.rewrite.terms_rewritten,
            rewrite_rules: solver.encode.rewrite.rule_applications,
            rewrite_pins: solver.encode.rewrite.pins,
            assertions_dropped: solver.encode.rewrite.assertions_dropped,
            coi_dropped: solver.encode.rewrite.coi_dropped_updates,
            aig_nodes: solver.encode.aig.nodes,
            aig_strash_hits: solver.encode.aig.strash_hits,
            aig_consts_folded: solver.encode.aig.consts_folded,
            aig_rewrites: solver.encode.aig.rewrites,
            cnf_vars: solver.cnf_vars,
            cnf_clauses: solver.cnf_clauses,
        }
    }
}

/// The parallel-engine arm: the same batch of identical sweep jobs timed
/// with one worker and with `workers` workers.  Not part of the regression
/// gate (the speedup depends on the runner's core count); recorded so the
/// uploaded artifact tracks engine scaling over time.
#[derive(Debug, Clone, Serialize)]
struct ParallelResult {
    /// Identical sweep copies in the batch.
    batch_jobs: usize,
    /// Worker threads of the parallel run.
    workers: usize,
    /// Batch wall time with one worker (the sequential reference).
    wall_ms_jobs1: f64,
    /// Batch wall time with `workers` workers.
    wall_ms_jobsn: f64,
    /// `wall_ms_jobs1 / wall_ms_jobsn` — bounded above by `workers` and by
    /// the machine's core count.
    speedup: f64,
}

/// Robustness counters of the parallel batch, straight out of
/// [`BatchStats`](sepe_sqed::BatchStats): retries taken, degraded re-runs,
/// panics absorbed, and the per-reason tally of stopped jobs.  On a healthy
/// smoke run every counter is zero — the entry exists so the uploaded
/// artifact proves the fault-tolerance layer saw no work, and a nonzero
/// value in CI history is immediately visible.  Not part of the regression
/// gate.
#[derive(Debug, Clone, Serialize)]
struct RobustnessResult {
    retries: u64,
    degraded_runs: u64,
    panics: u64,
    witness_validations: u64,
    witness_mismatches: u64,
    stop_deadline: u64,
    stop_conflict_budget: u64,
    stop_memory_budget: u64,
    stop_cancelled: u64,
    stop_panicked: u64,
    stop_witness_mismatch: u64,
    stop_proof_mismatch: u64,
}

impl RobustnessResult {
    fn new(stats: &sepe_sqed::BatchStats) -> RobustnessResult {
        RobustnessResult {
            retries: stats.retries,
            degraded_runs: stats.degraded_runs,
            panics: stats.panics,
            witness_validations: stats.witness_validations,
            witness_mismatches: stats.witness_mismatches,
            stop_deadline: stats.stop_reasons.deadline,
            stop_conflict_budget: stats.stop_reasons.conflict_budget,
            stop_memory_budget: stats.stop_reasons.memory_budget,
            stop_cancelled: stats.stop_reasons.cancelled,
            stop_panicked: stats.stop_reasons.panicked,
            stop_witness_mismatch: stats.stop_reasons.witness_mismatch,
            stop_proof_mismatch: stats.stop_reasons.proof_mismatch,
        }
    }
}

/// The service-cache arm: cold vs hot submits through the full service
/// stack (wire protocol, admission queue, engine, crash-safe cache).  The
/// hot-pass contract is deterministic, so it is gated on every run without
/// a baseline: 100% hits, zero misses, zero encodes.
#[derive(Debug, Clone, Serialize)]
struct ServiceCacheResult {
    /// Gate key — leads so `baseline_field` scans stay bounded.
    mode: String,
    /// Catalogue entries per submit.
    entries: usize,
    /// Wall time of the cold submit (computes + commits everything).
    cold_wall_ms: f64,
    /// Wall time of the hot submit (cache only; no solver work).
    hot_wall_ms: f64,
    /// Entries the cold pass computed.
    cold_computed: u64,
    /// Transition-system encodings the cold pass paid.
    cold_encodes: u64,
    /// Hot-pass cache hits (must equal `entries`).
    hot_hits: u64,
    /// Hot-pass cache misses (must be 0).
    hot_misses: u64,
    /// Hot-pass encodes (must be 0).
    hot_encodes: u64,
    /// `hot_hits / entries` (must be 1.0).
    hit_rate: f64,
}

/// Runs the service-cache arm against a throwaway loopback server.
fn run_service_cache() -> ServiceCacheResult {
    use sepe_service::{Client, Endpoint, Server, ServerConfig, SubmitRequest};
    use std::net::{Ipv4Addr, SocketAddr};

    let dir = std::env::temp_dir().join(format!("sepe-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir); // the cold pass must be cold
    let endpoint = Endpoint::Tcp(SocketAddr::from((Ipv4Addr::LOCALHOST, 0)));
    let server = Server::bind(ServerConfig::new(endpoint, &dir)).expect("bind loopback server");
    let addr = server.local_addr().expect("tcp endpoint has an address");
    let handle = std::thread::spawn(move || server.run());
    let client = Client::new(Endpoint::Tcp(addr));

    // Four Table-1 bugs whose trigger opcode is outside the {ADD, ADDI}
    // universe: provably clean at bound 2, i.e. fast conclusive verdicts —
    // the arm measures the service stack, not the solver.
    let request = SubmitRequest {
        mutations: ["single-sub", "single-xor", "single-or", "single-and"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        ..SubmitRequest::new(
            Method::Sqed,
            2,
            sepe_processor::ProcessorConfig::tiny()
                .with_opcodes(&[sepe_isa::Opcode::Add, sepe_isa::Opcode::Addi]),
        )
    };
    let entries = request.mutations.len();
    let cold_start = std::time::Instant::now();
    let cold = client.submit(&request).expect("cold submit");
    let cold_wall = cold_start.elapsed();
    let hot_start = std::time::Instant::now();
    let hot = client.submit(&request).expect("hot submit");
    let hot_wall = hot_start.elapsed();
    client.shutdown().expect("graceful shutdown");
    handle.join().expect("server thread").expect("drain");
    let _ = std::fs::remove_dir_all(&dir);

    ServiceCacheResult {
        mode: "service_cache".to_string(),
        entries,
        cold_wall_ms: cold_wall.as_secs_f64() * 1e3,
        hot_wall_ms: hot_wall.as_secs_f64() * 1e3,
        cold_computed: cold.done.computed,
        cold_encodes: cold.done.encodes,
        hot_hits: hot.done.from_cache,
        hot_misses: hot.done.computed,
        hot_encodes: hot.done.encodes,
        hit_rate: hot.done.from_cache as f64 / entries as f64,
    }
}

/// One prover's half of the `proofs` arm: the clean configuration it was
/// asked to prove and the mutated one it was asked to falsify, with the
/// prover-specific work counters (frames, cubes, pushed clauses,
/// uniqueness constraints) for the artifact history.
#[derive(Debug, Clone, Serialize)]
struct ProofMethodResult {
    prover: String,
    /// Clean config: did the prover close an unbounded proof?
    clean_proved: bool,
    /// Clean config: did the certificate pass the independent-solver
    /// self-check? (Must be true whenever `clean_proved` is.)
    clean_self_checked: bool,
    clean_wall_ms: f64,
    /// Induction depth / PDR frontier the proof closed at (0 if none).
    clean_proof_depth: u64,
    clean_queries: u64,
    clean_cubes_blocked: u64,
    clean_clauses_pushed: u64,
    clean_uniqueness_constraints: u64,
    /// Mutated config: did the prover falsify it?
    bug_detected: bool,
    /// Length of the falsifying trace (0 if none).
    bug_trace_len: u64,
    bug_wall_ms: f64,
}

/// The `proofs` arm: both unbounded provers against one clean configuration
/// (which PDR must *prove* — the verdict bounded BMC can never give) and
/// one Table-1 mutation, cross-checked against the plain bounded sweep.
/// Deterministic agreement gates, checked on every run:
///
/// * PDR proves the clean config and its certificate self-checks;
/// * neither prover reports a counterexample on the clean config —
///   k-induction cannot close this proof (the property is not
///   k-inductive) and stops `Unknown` at a deterministic conflict budget;
/// * k-induction falsifies the mutation with exactly the bounded
///   baseline's shortest trace, and neither prover ever contradicts the
///   baseline (no proof on the buggy design; any trace found matches).
#[derive(Debug, Clone, Serialize)]
struct ProofsResult {
    /// Gate key — leads so `baseline_field` scans stay bounded.
    mode: String,
    methods: Vec<ProofMethodResult>,
}

/// Runs the `proofs` arm; panics (exits nonzero) on any agreement failure.
fn run_proofs() -> ProofsResult {
    use sepe_processor::Mutation;
    use sepe_sqed::detect::{Detector, DetectorConfig};
    use sepe_tsys::ProofMethod;

    // The cheapest configuration PDR closes: single-ADD universe, SQED.
    let clean_processor =
        sepe_processor::ProcessorConfig::tiny().with_opcodes(&[sepe_isa::Opcode::Add]);
    // The falsification target: the first Table-1 bug under the universe
    // its trigger needs, SEPE-SQED at bound 3 (a length-3 shortest trace).
    let bug = Mutation::table1().into_iter().next().expect("table 1");
    let mut bug_ops = vec![sepe_isa::Opcode::Addi];
    bug_ops.extend(bug.target_opcode());
    let bug_processor = sepe_processor::ProcessorConfig::tiny().with_opcodes(&bug_ops);

    // The agreement reference: the plain bounded sweep's shortest trace.
    let reference_config = DetectorConfig::builder()
        .processor(bug_processor.clone())
        .bound(3)
        .build();
    let reference = Detector::new(reference_config).check(Method::SepeSqed, Some(&bug));
    assert!(
        reference.detected,
        "proofs arm: the bounded baseline must detect {}: {reference:?}",
        bug.name
    );

    let mut methods = Vec::new();
    for prover in [ProofMethod::KInduction, ProofMethod::Pdr] {
        // The conflict budget is the smoke cap for the prover that *cannot*
        // close this proof: QED's property is not k-inductive, so
        // k-induction alone grinds on ever-harder step queries forever and
        // must be stopped deterministically (conflicts, unlike wall time,
        // are identical on every runner).  PDR's whole proof costs a few
        // hundred conflicts, so an order of magnitude of headroom keeps the
        // budget invisible to it while k-induction's much more expensive
        // induction-step conflicts stay inside the smoke window.
        let clean_config = DetectorConfig::builder()
            .processor(clean_processor.clone())
            .bound(4)
            .prove(prover)
            .conflict_limit(5_000)
            .build();
        println!("bench-smoke:   {prover:?} / clean (prove)");
        let clean = Detector::new(clean_config).check(Method::Sqed, None);
        assert!(
            !clean.detected,
            "proofs arm: {prover:?} falsified the clean config: {clean:?}"
        );
        if prover == ProofMethod::Pdr {
            assert!(
                clean.proved && !clean.inconclusive,
                "proofs arm: PDR must prove the clean config, got {clean:?}"
            );
        }
        if clean.proved {
            assert_eq!(
                clean.proof_checked,
                Some(true),
                "proofs arm: a proof that failed its self-check leaked out"
            );
        }

        // Falsification is a bounded job at heart: k-induction's base
        // solver *is* the bounded sweep, so it must reproduce the
        // baseline's shortest trace exactly, with no budget needed.  PDR
        // is a prover, not a bug-finder — its one-cube-at-a-time
        // enumeration is hopeless on a QED-sized state space — so it runs
        // under a short deadline and is gated only on never contradicting:
        // no proof on a buggy design, and any trace it does find must
        // match the baseline's length.
        let mut bug_builder = DetectorConfig::builder()
            .processor(bug_processor.clone())
            .bound(3)
            .prove(prover);
        if prover == ProofMethod::Pdr {
            bug_builder = bug_builder.time_limit(std::time::Duration::from_secs(10));
        }
        let bug_config = bug_builder.build();
        println!("bench-smoke:   {prover:?} / mutated (falsify)");
        let faulty = Detector::new(bug_config).check(Method::SepeSqed, Some(&bug));
        assert!(
            !faulty.proved,
            "proofs arm: {prover:?} proved a buggy design: {faulty:?}"
        );
        if prover == ProofMethod::KInduction {
            assert!(
                faulty.detected,
                "proofs arm: k-induction must falsify {}: {faulty:?}",
                bug.name
            );
        }
        if faulty.detected {
            assert_eq!(
                faulty.trace_len, reference.trace_len,
                "proofs arm: {prover:?} and the bounded baseline disagree on the \
                 shortest trace for {}",
                bug.name
            );
        }

        let work = clean.proof_work.clone().unwrap_or_default();
        methods.push(ProofMethodResult {
            prover: match prover {
                ProofMethod::KInduction => "k-induction".to_string(),
                ProofMethod::Pdr => "pdr".to_string(),
            },
            clean_proved: clean.proved,
            clean_self_checked: clean.proof_checked == Some(true),
            clean_wall_ms: clean.runtime.as_secs_f64() * 1e3,
            clean_proof_depth: clean.proof_depth.unwrap_or(0) as u64,
            clean_queries: work.queries,
            clean_cubes_blocked: work.cubes_blocked,
            clean_clauses_pushed: work.clauses_pushed,
            clean_uniqueness_constraints: work.uniqueness_constraints,
            bug_detected: faulty.detected,
            bug_trace_len: faulty.trace_len.unwrap_or(0) as u64,
            bug_wall_ms: faulty.runtime.as_secs_f64() * 1e3,
        });
    }

    // The headline: the clean config is *proved*, not merely bounded-clean.
    assert!(
        methods.iter().any(|m| m.clean_proved),
        "proofs arm: no prover closed the clean-config proof"
    );

    ProofsResult {
        mode: "proofs".to_string(),
        methods,
    }
}

/// The batched in-solver arm: [`BATCHED_ENTRIES`] identical copies of the
/// sweep's mutation answered over **one** shared unrolling
/// (`sepe_sqed::BatchedDetector` behind `BatchSpec::catalogue`).  The
/// encode-once counters are deterministic, so unlike the parallel arm this
/// one *is* part of the regression gate: `cnf_clauses` gets the tight
/// clause gate and `throughput` (per-job total clauses / batched shared
/// clauses) must clear [`BATCHED_THROUGHPUT_FLOOR`] and hold its baseline.
#[derive(Debug, Clone, Serialize)]
struct BatchedResult {
    /// Gate key — `baseline_field` scans for this value, so it leads.
    mode: String,
    /// Catalogue entries answered.
    entries: usize,
    /// Wall time of the whole batched run.
    wall_ms: f64,
    /// `check_assuming` queries issued on the shared solver.
    queries: u64,
    /// Transition-system encodings paid (1 on a healthy run).
    encodes: u64,
    /// Entries answered by the per-job fallback path (0 on a healthy run).
    fallbacks: u64,
    /// SAT conflicts spent by the shared solver.
    shared_conflicts: u64,
    /// CNF variables of the one shared encoding.
    cnf_vars: u64,
    /// CNF clauses of the one shared encoding.
    cnf_clauses: u64,
    /// What the per-job engine pays for the same catalogue: the measured
    /// single-job clause count times `entries`.
    perjob_cnf_clauses: u64,
    /// `perjob_cnf_clauses / cnf_clauses` — the deterministic form of the
    /// batched-throughput claim.
    throughput: f64,
    /// `entries / encodes` — encodings the batched path avoided.
    encode_ratio: f64,
}

#[derive(Debug, Clone, Serialize)]
struct SmokeReport {
    bound: usize,
    opcode: String,
    modes: Vec<ModeResult>,
    parallel: ParallelResult,
    robustness: RobustnessResult,
    batched: BatchedResult,
    service_cache: ServiceCacheResult,
    proofs: ProofsResult,
}

/// Pulls `"<field>": <number>` for a named mode out of a baseline JSON
/// (hand-rolled scan: the offline serde shim renders but does not parse).
/// The scan is bounded to the named mode's entry — it stops at the next
/// `"mode"` key — so a missing field reports as missing instead of
/// silently reading the next mode's value.
fn baseline_field(json: &str, mode: &str, field: &str) -> Option<f64> {
    let marker = format!("\"{mode}\"");
    let after_mode = &json[json.find(&marker)? + marker.len()..];
    let entry = &after_mode[..after_mode.find("\"mode\"").unwrap_or(after_mode.len())];
    let key = format!("\"{field}\":");
    let after_key = &entry[entry.find(&key)? + key.len()..];
    let number: String = after_key
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == '+')
        .collect();
    number.parse().ok()
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Bound 6 is the first depth where the SQED consistency query is hard
    // (bound 5 finishes in milliseconds): small enough for a CI smoke run,
    // big enough that learnt-database reduction actually fires.
    let bound: usize = arg_value(&args, "--bound")
        .map(|v| v.parse().expect("--bound takes a number"))
        .unwrap_or(6);
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_smoke.json".to_string());
    let baseline_path = arg_value(&args, "--baseline");

    let bug = sweep::bug(); // ADD off by one
    println!("bench-smoke: SQED sweep, tiny/ADD-only, bound {bound}");
    let (incr_wall, incr_solver) = sweep::run_with(bound, BmcMode::PerDepth, &bug, true, true);
    let (noaig_wall, noaig_solver) = sweep::run_with(bound, BmcMode::PerDepth, &bug, true, false);
    let (raw_wall, raw_solver) = sweep::run_with(bound, BmcMode::PerDepth, &bug, false, true);
    let (cumul_wall, cumul_solver) = sweep::run_cumulative(bound, &bug);
    let (scratch_wall, scratch_solver) =
        sweep::run_with(bound, BmcMode::PerDepthScratch, &bug, false, false);

    // Parallel arm: the same sweep × BATCH_COPIES, one worker vs N workers.
    const BATCH_COPIES: usize = 4;
    let workers = jobs_from_args();
    let seq = Engine::new(1)
        .run(sweep::batch_jobs(bound, BATCH_COPIES))
        .expect_jobs();
    let par = Engine::new(workers)
        .run(sweep::batch_jobs(bound, BATCH_COPIES))
        .expect_jobs();
    for d in seq.detections.iter().chain(&par.detections) {
        assert!(!d.detected, "SQED must miss the Table-1 bug");
        assert!(!d.inconclusive, "the smoke batch runs without budgets");
    }

    // Batched in-solver arm: one shared unrolling answers BATCHED_ENTRIES
    // activation-guarded copies of the same mutation.  The per-job clause
    // reference comes from the sequential arm above (identical jobs, so any
    // one of its detections carries the single-encoding clause count).
    let shared_config = sweep::detector(bound, BmcMode::PerDepth).config().clone();
    let batched_outcome = Engine::new(1)
        .run(BatchSpec::catalogue(
            Method::Sqed,
            shared_config,
            sweep::catalogue(BATCHED_ENTRIES),
        ))
        .expect_catalogue();
    for d in &batched_outcome.detections {
        assert!(!d.detected, "SQED must miss the Table-1 bug");
        assert!(!d.inconclusive, "the smoke catalogue runs without budgets");
    }
    let bstats = &batched_outcome.stats;
    let perjob_clauses = seq
        .detections
        .first()
        .map(|d| d.solver.cnf_clauses)
        .unwrap_or(0)
        * BATCHED_ENTRIES as u64;
    let batched = BatchedResult {
        mode: "batched".to_string(),
        entries: BATCHED_ENTRIES,
        wall_ms: bstats.wall.as_secs_f64() * 1e3,
        queries: bstats.queries,
        encodes: bstats.encodes,
        fallbacks: bstats.fallbacks,
        shared_conflicts: bstats.shared_conflicts,
        cnf_vars: bstats.solver.cnf_vars,
        cnf_clauses: bstats.solver.cnf_clauses,
        perjob_cnf_clauses: perjob_clauses,
        throughput: perjob_clauses as f64 / (bstats.solver.cnf_clauses.max(1)) as f64,
        encode_ratio: BATCHED_ENTRIES as f64 / (bstats.encodes.max(1)) as f64,
    };
    let robustness = RobustnessResult::new(&par.stats);
    let parallel = ParallelResult {
        batch_jobs: BATCH_COPIES,
        // The effective count (the engine clamps to the batch size), not
        // the requested one — this is the scaling denominator.
        workers: par.stats.workers,
        wall_ms_jobs1: seq.stats.wall.as_secs_f64() * 1e3,
        wall_ms_jobsn: par.stats.wall.as_secs_f64() * 1e3,
        speedup: seq.stats.wall.as_secs_f64() / par.stats.wall.as_secs_f64().max(1e-9),
    };

    println!("bench-smoke: service cache arm (cold vs hot submit)");
    let service_cache = run_service_cache();

    println!("bench-smoke: proofs arm (k-induction + PDR, prove clean / falsify mutated)");
    let proofs = run_proofs();

    let report = SmokeReport {
        bound,
        opcode: "ADD".to_string(),
        modes: vec![
            ModeResult::new("incremental", incr_wall, incr_solver),
            ModeResult::new("aig_off", noaig_wall, noaig_solver),
            ModeResult::new("incremental_norewrite", raw_wall, raw_solver),
            ModeResult::new("cumulative_incremental", cumul_wall, cumul_solver),
            ModeResult::new("scratch", scratch_wall, scratch_solver),
        ],
        parallel,
        robustness,
        batched,
        service_cache,
        proofs,
    };
    for m in &report.modes {
        println!(
            "  {:<24} {:>9.1} ms  {:>8} conflicts  learnt hw {:>6} (deleted {:>6}, retained {:>6})",
            m.mode,
            m.wall_ms,
            m.conflicts,
            m.learnt_high_water,
            m.learnt_deleted,
            m.learnt_retained,
        );
        println!(
            "  {:<24} cache {:>6}/{:>6}  rewritten {:>6} (rules {:>6}, pins {:>6}, dropped {:>6}, coi-dropped {:>4})",
            "", m.terms_cached, m.terms_reused, m.terms_rewritten, m.rewrite_rules, m.rewrite_pins,
            m.assertions_dropped, m.coi_dropped,
        );
        println!(
            "  {:<24} aig {:>7} nodes (strash {:>7}, folded {:>7}, rw {:>5})  cnf {:>7} vars / {:>8} clauses",
            "", m.aig_nodes, m.aig_strash_hits, m.aig_consts_folded, m.aig_rewrites, m.cnf_vars,
            m.cnf_clauses,
        );
    }
    let find = |mode: &str| report.modes.iter().find(|m| m.mode == mode);
    if let (Some(on), Some(off)) = (find("incremental"), find("incremental_norewrite")) {
        println!(
            "  rewrite-on vs rewrite-off: {:.2}x wall, {:.2}x conflicts",
            off.wall_ms / on.wall_ms,
            off.conflicts as f64 / (on.conflicts.max(1)) as f64,
        );
    }
    if let (Some(on), Some(off)) = (find("incremental"), find("aig_off")) {
        println!(
            "  aig-on vs aig-off: {:.2}x wall, {:.2}x CNF clauses, {:.2}x CNF vars",
            off.wall_ms / on.wall_ms,
            off.cnf_clauses as f64 / (on.cnf_clauses.max(1)) as f64,
            off.cnf_vars as f64 / (on.cnf_vars.max(1)) as f64,
        );
    }
    println!(
        "  parallel batch ({} jobs): {:>9.1} ms on 1 worker, {:>9.1} ms on {} workers = {:.2}x speedup",
        report.parallel.batch_jobs,
        report.parallel.wall_ms_jobs1,
        report.parallel.wall_ms_jobsn,
        report.parallel.workers,
        report.parallel.speedup,
    );
    println!(
        "  robustness: {} retries, {} degraded, {} panics, {} stopped jobs",
        report.robustness.retries,
        report.robustness.degraded_runs,
        report.robustness.panics,
        report.robustness.stop_deadline
            + report.robustness.stop_conflict_budget
            + report.robustness.stop_memory_budget
            + report.robustness.stop_cancelled
            + report.robustness.stop_panicked,
    );
    println!(
        "  batched catalogue ({} entries): {:>9.1} ms, {} queries, {} encodes, {} fallbacks, \
         {} shared clauses vs {} per-job = {:.2}x throughput ({:.0}x fewer encodings)",
        report.batched.entries,
        report.batched.wall_ms,
        report.batched.queries,
        report.batched.encodes,
        report.batched.fallbacks,
        report.batched.cnf_clauses,
        report.batched.perjob_cnf_clauses,
        report.batched.throughput,
        report.batched.encode_ratio,
    );

    println!(
        "  service cache ({} entries): cold {:>8.1} ms ({} computed, {} encodes), \
         hot {:>8.1} ms ({} hits, {} misses, {} encodes, {:.0}% hit rate)",
        report.service_cache.entries,
        report.service_cache.cold_wall_ms,
        report.service_cache.cold_computed,
        report.service_cache.cold_encodes,
        report.service_cache.hot_wall_ms,
        report.service_cache.hot_hits,
        report.service_cache.hot_misses,
        report.service_cache.hot_encodes,
        report.service_cache.hit_rate * 100.0,
    );

    for m in &report.proofs.methods {
        println!(
            "  proofs/{:<12} clean: {} in {:>8.1} ms (depth {}, {} queries, {} cubes, \
             {} pushed, {} uniq)  bug: {} in {:>8.1} ms (trace {})",
            m.prover,
            if m.clean_proved {
                "PROVED"
            } else {
                "bounded-clean"
            },
            m.clean_wall_ms,
            m.clean_proof_depth,
            m.clean_queries,
            m.clean_cubes_blocked,
            m.clean_clauses_pushed,
            m.clean_uniqueness_constraints,
            if m.bug_detected {
                "falsified"
            } else {
                "MISSED"
            },
            m.bug_wall_ms,
            m.bug_trace_len,
        );
    }

    let json = serde_json::to_string_pretty(&report).expect("serializable report");
    std::fs::write(&out_path, format!("{json}\n")).expect("write smoke report");
    println!("wrote {out_path}");

    // The service-cache contract is deterministic, so it gates on every
    // run without a baseline: a hot pass that computes anything means the
    // cache key, the atomic commit, or the recovery path broke.
    if report.service_cache.hot_hits != report.service_cache.entries as u64
        || report.service_cache.hot_misses != 0
        || report.service_cache.hot_encodes != 0
    {
        eprintln!(
            "bench-smoke: service cache hot pass must be 100% hits with zero encodes \
             (got {} hits / {} misses / {} encodes over {} entries)",
            report.service_cache.hot_hits,
            report.service_cache.hot_misses,
            report.service_cache.hot_encodes,
            report.service_cache.entries,
        );
        std::process::exit(1);
    }

    // The throughput floor is baseline-free: both clause counts are
    // deterministic, so falling below the floor means the shared encoding
    // itself bloated (or the batch fell back to per-job runs).
    if report.batched.throughput < BATCHED_THROUGHPUT_FLOOR {
        eprintln!(
            "bench-smoke: batched throughput {:.2}x is below the {BATCHED_THROUGHPUT_FLOOR}x floor",
            report.batched.throughput
        );
        std::process::exit(1);
    }

    if let Some(path) = baseline_path {
        let baseline = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let mut regressed = false;
        for m in &report.modes {
            match baseline_field(&baseline, &m.mode, "wall_ms") {
                Some(expected) => {
                    let ratio = m.wall_ms / expected;
                    let verdict = if ratio > REGRESSION_FACTOR {
                        regressed = true;
                        "REGRESSED"
                    } else {
                        "ok"
                    };
                    println!(
                        "  {:<24} {:>9.1} ms vs baseline {:>9.1} ms ({ratio:.2}x) {verdict}",
                        m.mode, m.wall_ms, expected
                    );
                }
                None => println!("  {:<24} no baseline wall_ms entry, skipping", m.mode),
            }
            // The clause gate is the noise-free half: counts are
            // deterministic on identical code, so exceeding the tight
            // factor means the encoding itself regressed, not the runner.
            match baseline_field(&baseline, &m.mode, "cnf_clauses") {
                Some(expected) if expected > 0.0 => {
                    let ratio = m.cnf_clauses as f64 / expected;
                    let verdict = if ratio > CLAUSE_REGRESSION_FACTOR {
                        regressed = true;
                        "REGRESSED"
                    } else {
                        "ok"
                    };
                    println!(
                        "  {:<24} {:>9} clauses vs baseline {:>9.0} ({ratio:.2}x) {verdict}",
                        m.mode, m.cnf_clauses, expected
                    );
                }
                _ => println!("  {:<24} no baseline cnf_clauses entry, skipping", m.mode),
            }
        }
        // Batched arm: the shared encoding's clause count gets the tight
        // deterministic gate, and the throughput ratio must hold whatever
        // the baseline recorded (both sides of the ratio are deterministic,
        // so a drop means the batched path lost ground to per-job).
        match baseline_field(&baseline, "batched", "cnf_clauses") {
            Some(expected) if expected > 0.0 => {
                let ratio = report.batched.cnf_clauses as f64 / expected;
                let verdict = if ratio > CLAUSE_REGRESSION_FACTOR {
                    regressed = true;
                    "REGRESSED"
                } else {
                    "ok"
                };
                println!(
                    "  {:<24} {:>9} clauses vs baseline {:>9.0} ({ratio:.2}x) {verdict}",
                    "batched", report.batched.cnf_clauses, expected
                );
            }
            _ => println!(
                "  {:<24} no baseline cnf_clauses entry, skipping",
                "batched"
            ),
        }
        match baseline_field(&baseline, "batched", "throughput") {
            Some(expected) if expected > 0.0 => {
                let floor = expected / CLAUSE_REGRESSION_FACTOR;
                let verdict = if report.batched.throughput < floor {
                    regressed = true;
                    "REGRESSED"
                } else {
                    "ok"
                };
                println!(
                    "  {:<24} {:.2}x throughput vs baseline {expected:.2}x {verdict}",
                    "batched", report.batched.throughput
                );
            }
            _ => println!("  {:<24} no baseline throughput entry, skipping", "batched"),
        }
        if regressed {
            eprintln!(
                "bench-smoke: wall time (>{REGRESSION_FACTOR}x) or CNF clause count \
                 (>{CLAUSE_REGRESSION_FACTOR}x) regressed against {path}"
            );
            std::process::exit(1);
        }
    }
}
