//! Regenerates Table 1: injected single-instruction bugs, SEPE-SQED detection
//! time vs SQED "-" entries.
//!
//! Usage: `cargo run --release -p sepe-bench --bin table1 [--full] [--json] [--jobs N]`
//!
//! `--jobs N` (or `SEPE_JOBS`) schedules the per-bug detection runs on the
//! parallel engine with `N` workers; the default is the machine's available
//! parallelism and `--jobs 1` reproduces the sequential run exactly.

use sepe_bench::{jobs_from_args, table1, Profile};

fn main() {
    let profile = Profile::from_args();
    let jobs = jobs_from_args();
    let (rows, batch) = table1::run_with_jobs(profile, jobs);
    if std::env::args().any(|a| a == "--json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&rows).expect("serializable rows")
        );
        return;
    }
    println!("# Table 1 — injected single-instruction bugs ({profile:?} profile)\n");
    table1::print(&rows);
    println!("\nbatch: {batch}");
}
