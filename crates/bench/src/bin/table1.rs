//! Regenerates Table 1: injected single-instruction bugs, SEPE-SQED detection
//! time vs SQED "-" entries.
//!
//! Usage: `cargo run --release -p sepe-bench --bin table1 [--full] [--json]`

use sepe_bench::{table1, Profile};

fn main() {
    let profile = Profile::from_args();
    let rows = table1::run(profile);
    if std::env::args().any(|a| a == "--json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&rows).expect("serializable rows")
        );
        return;
    }
    println!("# Table 1 — injected single-instruction bugs ({profile:?} profile)\n");
    table1::print(&rows);
}
