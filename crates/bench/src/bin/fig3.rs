//! Regenerates Figure 3: synthesis time of HPF-CEGIS vs iterative CEGIS.
//!
//! Usage: `cargo run --release -p sepe-bench --bin fig3 [--full] [--json]`

use sepe_bench::{fig3, Profile};

fn main() {
    let profile = Profile::from_args();
    let rows = fig3::run(profile);
    if std::env::args().any(|a| a == "--json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&rows).expect("serializable rows")
        );
        return;
    }
    println!("# Figure 3 — instruction-synthesis time ({profile:?} profile)\n");
    fig3::print(&rows);
    let (case, succeeded, secs) = fig3::classical_baseline(profile);
    println!(
        "\nclassical CEGIS baseline on {case}: {} after {secs:.2}s \
         (paper: failed to synthesize a single instruction in weeks)",
        if succeeded {
            "synthesized a program"
        } else {
            "gave up within its budget"
        }
    );
}
