//! Shared pretty-printing of the solver/encoding summary block.
//!
//! Every experiment binary used to carry its own copy of the same three
//! paragraphs — the aggregated [`EncodeStats`] line, the learnt-clause reuse
//! line, and the per-depth conflict table.  One [`SolverSummary`] value now
//! renders all of it through `Display`, so `table1`, `fig3` and `fig4`
//! print byte-identical summaries from one definition.

use std::fmt;

use sepe_smt::EncodeStats;

/// One experiment row's contribution to the summary: its encoding counters,
/// learnt-clause counters, and (for the BMC sweeps) per-depth conflict
/// deltas.
#[derive(Debug, Clone, Default)]
pub struct SolverRow {
    /// Row label for the per-depth conflict table (bug or case name).
    pub label: String,
    /// The row's encoding counters (summed into the aggregate line).
    pub encode: EncodeStats,
    /// Learnt clauses retained at the end of the row's sweep.
    pub learnt_retained: u64,
    /// Live learnt-clause high-water mark (aggregated by max).
    pub learnt_high_water: u64,
    /// Learnt clauses deleted by database reduction.
    pub learnt_deleted: u64,
    /// Per-depth SAT-conflict deltas (empty for non-BMC rows).
    pub depth_conflicts: Vec<u64>,
}

/// The rendered summary: construct with [`SolverSummary::new`] and print
/// with `{}`.
#[derive(Debug, Clone)]
pub struct SolverSummary {
    /// What the encoding line describes, e.g.
    /// `"SEPE-SQED incremental per-depth sweeps"`.
    encode_context: String,
    /// What the learnt clauses were retained across, e.g. `"depths"` or
    /// `"refinement rounds"`.
    reuse_context: String,
    rows: Vec<SolverRow>,
    /// Column width of the labels in the per-depth conflict table.
    label_width: usize,
}

impl SolverSummary {
    /// Builds a summary over the given rows.
    pub fn new(
        encode_context: impl Into<String>,
        reuse_context: impl Into<String>,
        rows: Vec<SolverRow>,
        label_width: usize,
    ) -> Self {
        SolverSummary {
            encode_context: encode_context.into(),
            reuse_context: reuse_context.into(),
            rows,
            label_width,
        }
    }
}

impl fmt::Display for SolverSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut encode = EncodeStats::default();
        for r in &self.rows {
            encode.absorb(&r.encode);
        }
        let learnt: u64 = self.rows.iter().map(|r| r.learnt_retained).sum();
        let deleted: u64 = self.rows.iter().map(|r| r.learnt_deleted).sum();
        let high_water = self
            .rows
            .iter()
            .map(|r| r.learnt_high_water)
            .max()
            .unwrap_or(0);
        writeln!(f, "encoding ({}): {encode}", self.encode_context)?;
        write!(
            f,
            "solver reuse: {learnt} learnt clauses retained across {}",
            self.reuse_context
        )?;
        if deleted > 0 || high_water > 0 {
            write!(
                f,
                ", {deleted} deleted by reduction (live high-water {high_water})"
            )?;
        }
        if self.rows.iter().any(|r| !r.depth_conflicts.is_empty()) {
            write!(f, "\n\nper-depth SAT conflicts (one column per depth):")?;
            for r in &self.rows {
                let cols: Vec<String> = r.depth_conflicts.iter().map(|c| c.to_string()).collect();
                write!(
                    f,
                    "\n{:<width$} {}",
                    r.label,
                    cols.join(" "),
                    width = self.label_width
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_renders_reduction_and_depth_table_only_when_present() {
        let quiet = SolverSummary::new(
            "HPF incremental CEGIS",
            "refinement rounds",
            vec![SolverRow {
                label: "case1".into(),
                learnt_retained: 7,
                ..SolverRow::default()
            }],
            8,
        );
        let text = quiet.to_string();
        assert!(text.contains("encoding (HPF incremental CEGIS):"));
        assert!(text.contains("7 learnt clauses retained across refinement rounds"));
        assert!(!text.contains("deleted by reduction"));
        assert!(!text.contains("per-depth SAT conflicts"));

        let full = SolverSummary::new(
            "sweeps",
            "depths",
            vec![SolverRow {
                label: "bug-a".into(),
                learnt_retained: 3,
                learnt_deleted: 11,
                learnt_high_water: 5,
                depth_conflicts: vec![1, 2, 3],
                ..SolverRow::default()
            }],
            10,
        );
        let text = full.to_string();
        assert!(text.contains("11 deleted by reduction (live high-water 5)"));
        assert!(text.contains("per-depth SAT conflicts"));
        assert!(text.contains("bug-a"));
        assert!(text.contains("1 2 3"));
    }
}
