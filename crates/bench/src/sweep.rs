//! The shared incremental-vs-scratch sweep protocol.
//!
//! One Table-1 SQED sweep on the tiny/ADD-only configuration: the injected
//! bug is invisible to SQED, so every depth up to the bound is explored —
//! the worst case for scratch re-encoding and cold restarts, and the
//! workload both the `incremental_vs_scratch` Criterion bench and the
//! `bench_smoke` CI gate measure.  Keeping the protocol here (one definition
//! of the detector configuration, the growing-bound loop and the
//! must-not-detect assertion) guarantees the bench and the gate measure the
//! same thing.

use std::time::{Duration, Instant};

use sepe_isa::Opcode;
use sepe_processor::{Mutation, ProcessorConfig};
use sepe_smt::{SolverReuseStats, TermManager};
use sepe_sqed::batch::CatalogueEntry;
use sepe_sqed::detect::{Detector, DetectorConfig, Method};
use sepe_sqed::parallel::DetectionJob;
use sepe_sqed::qed::{QedBuilder, Scheme};
use sepe_tsys::{Bmc, BmcConfig, BmcMode};

/// The injected bug of the sweep (ADD result off by one — undetectable by
/// plain SQED).
pub fn bug() -> Mutation {
    Mutation::table1()[0].clone()
}

/// The sweep's detector: tiny processor, ADD-only universe.
pub fn detector(max_bound: usize, mode: BmcMode) -> Detector {
    detector_with(max_bound, mode, true, true)
}

/// [`detector`] with the word-level preprocessing (rewriting +
/// cone-of-influence) and the gate-level AIG reductions (structural
/// hashing, local rewriting, polarity-aware Tseitin) each explicitly on or
/// off.
pub fn detector_with(max_bound: usize, mode: BmcMode, simplify: bool, aig: bool) -> Detector {
    Detector::new(DetectorConfig {
        processor: ProcessorConfig::tiny().with_opcodes(&[Opcode::Add]),
        max_bound,
        bmc_mode: mode,
        simplify,
        aig,
        ..DetectorConfig::default()
    })
}

/// One full sweep through the detector in the given mode (word-level
/// preprocessing on).  Returns the wall time and the solver-reuse counters
/// of the run.
///
/// # Panics
///
/// Panics if the detection unexpectedly reports the bug (SQED must miss it).
pub fn run(max_bound: usize, mode: BmcMode, bug: &Mutation) -> (Duration, SolverReuseStats) {
    run_with(max_bound, mode, bug, true, true)
}

/// [`run`] with the word-level preprocessing and the gate-level AIG
/// reductions each explicitly on or off (the bench harness's
/// rewrite-on-vs-off and aig-on-vs-off arms).
pub fn run_with(
    max_bound: usize,
    mode: BmcMode,
    bug: &Mutation,
    simplify: bool,
    aig: bool,
) -> (Duration, SolverReuseStats) {
    let d = detector_with(max_bound, mode, simplify, aig);
    let start = Instant::now();
    let detection = d.check(Method::Sqed, Some(bug));
    let wall = start.elapsed();
    assert!(!detection.detected, "SQED must miss the Table-1 bug");
    let mut solver = detection.solver;
    // The scratch modes build fresh solvers per query and report (almost)
    // all-zero reuse stats; fold the model checker's conflict total in so
    // every mode carries its conflict count in the same place.
    solver.conflicts = detection.conflicts;
    (wall, solver)
}

/// A batch of `copies` independent copies of the sweep (the default
/// pipeline, [`BmcMode::PerDepth`]), for the parallel engine's speedup
/// measurement: identical jobs make the ideal speedup exactly the worker
/// count, so the measured ratio isolates scheduling overhead and memory
/// contention from workload imbalance.
pub fn batch_jobs(max_bound: usize, copies: usize) -> Vec<DetectionJob> {
    let bug = bug();
    (0..copies)
        .map(|i| {
            DetectionJob::new(
                format!("sqed-sweep-{i}"),
                detector(max_bound, BmcMode::PerDepth).config().clone(),
                Method::Sqed,
                Some(bug.clone()),
            )
        })
        .collect()
}

/// A catalogue of `copies` independent copies of the sweep's bug, for the
/// batched in-solver arm: every copy becomes an activation-guarded mutation
/// of one shared transition system, so the whole catalogue is encoded once
/// and answered by one-hot `check_assuming` flips.  Identical entries make
/// the encode-once economics exact: the per-job engine pays `copies`
/// encodings of the same system where the batched detector pays one.
pub fn catalogue(copies: usize) -> Vec<CatalogueEntry> {
    let bug = bug();
    (0..copies)
        .map(|i| CatalogueEntry::new(format!("sqed-sweep-{i}"), bug.clone()))
        .collect()
}

/// The cumulative-incremental sweep, driven as growing `max_bound` calls on
/// one persistent [`Bmc`] — the cross-call solver-reuse path: each call
/// asserts only the new transition frame and queries only the depths not
/// proven by earlier calls.
///
/// # Panics
///
/// Panics if any call unexpectedly reports a counterexample.
pub fn run_cumulative(max_bound: usize, bug: &Mutation) -> (Duration, SolverReuseStats) {
    let d = detector(max_bound, BmcMode::CumulativeIncremental);
    let mut tm = TermManager::new();
    let builder = QedBuilder {
        processor: d.config().processor.clone(),
        original_opcodes: d.original_opcodes(Method::Sqed),
        queue_depth: d.config().queue_depth,
    };
    let system = builder.build(&mut tm, &Scheme::Sqed, Some(bug));
    let mut bmc = Bmc::new(BmcConfig {
        start_bound: 1, // the initial state is consistent by construction
        mode: BmcMode::CumulativeIncremental,
        ..BmcConfig::default()
    });
    let start = Instant::now();
    for bound in 1..=max_bound {
        let result = bmc.check(&mut tm, &system.ts, bound);
        assert!(
            !result.is_counterexample(),
            "SQED must miss the Table-1 bug"
        );
    }
    (start.elapsed(), bmc.stats().solver)
}
