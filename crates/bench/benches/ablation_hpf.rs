//! Ablation bench for the HPF-CEGIS design choices called out in the paper:
//! the influence factor α (penalising components that share the original
//! instruction's name) and the weight-update increment.

use criterion::{criterion_group, criterion_main, Criterion};

use sepe_isa::Opcode;
use sepe_synth::hpf::HpfCegis;
use sepe_synth::library::Library;
use sepe_synth::spec::Spec;
use sepe_synth::SynthesisConfig;

fn config(alpha: i64, weight_increment: u64) -> SynthesisConfig {
    SynthesisConfig {
        width: 8,
        multiset_size: 3,
        programs_wanted: 2,
        min_components: 2,
        max_cegis_iterations: 6,
        synth_conflict_limit: Some(30_000),
        verify_conflict_limit: Some(30_000),
        alpha,
        weight_increment,
        time_limit: Some(std::time::Duration::from_secs(20)),
        ..SynthesisConfig::default()
    }
}

fn bench_ablation(c: &mut Criterion) {
    let library = Library::minimal();
    let spec = Spec::for_opcode(Opcode::Add, 8);
    let mut group = c.benchmark_group("ablation_hpf");
    group.sample_size(10);
    for (label, alpha, incr) in [
        ("alpha1_incr1_paper", 1i64, 1u64),
        ("alpha0_no_name_penalty", 0, 1),
        ("alpha4_strong_penalty", 4, 1),
        ("incr4_fast_learning", 1, 4),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut hpf = HpfCegis::new(config(alpha, incr), library.clone());
                let result = hpf.synthesize(&spec);
                assert!(result.multisets_tried > 0);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
