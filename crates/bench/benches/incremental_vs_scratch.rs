//! Criterion bench: incremental vs scratch solving on a Table-1 detection
//! at increasing BMC bounds.
//!
//! Both paths run the identical per-depth exploration of the same QED
//! transition system; the only difference is the solver pipeline behind it:
//!
//! * `incremental` — [`BmcMode::PerDepth`]: one persistent
//!   `IncrementalSolver`, the unrolling asserted once, per-depth bad states
//!   as retractable assumptions, learnt clauses carried across depths;
//! * `scratch` — [`BmcMode::PerDepthScratch`]: a fresh solver per depth that
//!   re-bit-blasts the whole prefix (O(k²) total encoding work).
//!
//! After the timed groups a summary table prints the measured speedup per
//! bound together with the solver-reuse counters of the incremental run.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};

use sepe_isa::Opcode;
use sepe_processor::{Mutation, ProcessorConfig};
use sepe_sqed::detect::{Detector, DetectorConfig, Method};
use sepe_tsys::BmcMode;

fn detector(max_bound: usize, mode: BmcMode) -> Detector {
    Detector::new(DetectorConfig {
        processor: ProcessorConfig::tiny().with_opcodes(&[Opcode::Add]),
        max_bound,
        bmc_mode: mode,
        ..DetectorConfig::default()
    })
}

/// One full SQED sweep (the Table-1 bug is invisible to SQED, so every depth
/// up to `max_bound` is explored — the worst case for scratch re-encoding
/// and cold restarts).
fn run_detection(max_bound: usize, mode: BmcMode, bug: &Mutation) -> Duration {
    let d = detector(max_bound, mode);
    let start = Instant::now();
    let detection = d.check(Method::Sqed, Some(bug));
    assert!(!detection.detected, "SQED must miss the Table-1 bug");
    start.elapsed()
}

fn bench_incremental_vs_scratch(c: &mut Criterion) {
    let bug = Mutation::table1()[0].clone(); // ADD off by one
    let mut group = c.benchmark_group("incremental_vs_scratch");
    // The deepest sweeps take tens of seconds on the scratch path; keep the
    // sample count small so the whole bench stays in the minutes.
    group.sample_size(2);
    for &bound in &[2usize, 4, 6] {
        group.bench_function(&format!("incremental_bound{bound}"), |b| {
            b.iter(|| run_detection(bound, BmcMode::PerDepth, &bug))
        });
        group.bench_function(&format!("scratch_bound{bound}"), |b| {
            b.iter(|| run_detection(bound, BmcMode::PerDepthScratch, &bug))
        });
    }
    group.finish();

    // Direct measurement summary with the incremental run's reuse counters.
    println!("\n== incremental vs scratch: measured speedup");
    println!(
        "{:>6} {:>14} {:>14} {:>9} {:>12} {:>12} {:>14}",
        "bound",
        "incr [ms]",
        "scratch [ms]",
        "speedup",
        "terms-cache",
        "cache-hits",
        "learnt-retain"
    );
    for &bound in &[2usize, 4, 6] {
        let incr = run_detection(bound, BmcMode::PerDepth, &bug);
        let scratch = run_detection(bound, BmcMode::PerDepthScratch, &bug);
        let d = detector(bound, BmcMode::PerDepth);
        let reuse = d.check(Method::Sqed, Some(&bug)).solver;
        println!(
            "{:>6} {:>14.2} {:>14.2} {:>8.2}x {:>12} {:>12} {:>14}",
            bound,
            incr.as_secs_f64() * 1e3,
            scratch.as_secs_f64() * 1e3,
            scratch.as_secs_f64() / incr.as_secs_f64(),
            reuse.terms_cached,
            reuse.terms_reused,
            reuse.learnt_retained,
        );
    }
}

criterion_group!(benches, bench_incremental_vs_scratch);
criterion_main!(benches);
