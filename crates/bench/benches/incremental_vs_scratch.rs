//! Criterion bench: incremental vs scratch solving on a Table-1 detection
//! at increasing BMC bounds.
//!
//! All paths run the same QED transition system (the shared
//! [`sepe_bench::sweep`] protocol); the difference is the solver pipeline
//! behind the exploration:
//!
//! * `incremental` — [`BmcMode::PerDepth`]: one persistent
//!   `IncrementalSolver`, the unrolling asserted once, per-depth bad states
//!   as retractable assumptions, learnt clauses carried across depths;
//! * `cumulative` — [`BmcMode::CumulativeIncremental`]: the same persistent
//!   solver, driven as growing `max_bound` calls on one `Bmc` (each call
//!   asserts one new frame and checks only the not-yet-proven depths, with
//!   the bad-state disjunct as a retractable assumption);
//! * `scratch` — [`BmcMode::PerDepthScratch`]: a fresh solver per depth that
//!   re-bit-blasts the whole prefix (O(k²) total encoding work).
//!
//! After the timed groups a summary table prints the measured speedup per
//! bound together with the solver-reuse and learnt-database-reduction
//! counters of the incremental runs.

use criterion::{criterion_group, criterion_main, Criterion};

use sepe_bench::sweep;
use sepe_tsys::BmcMode;

fn bench_incremental_vs_scratch(c: &mut Criterion) {
    let bug = sweep::bug(); // ADD off by one
    let mut group = c.benchmark_group("incremental_vs_scratch");
    // The deepest sweeps take tens of seconds on the scratch path; keep the
    // sample count small so the whole bench stays in the minutes.
    group.sample_size(2);
    for &bound in &[2usize, 4, 6] {
        group.bench_function(&format!("incremental_bound{bound}"), |b| {
            b.iter(|| sweep::run(bound, BmcMode::PerDepth, &bug))
        });
        group.bench_function(&format!("cumulative_bound{bound}"), |b| {
            b.iter(|| sweep::run_cumulative(bound, &bug))
        });
        group.bench_function(&format!("scratch_bound{bound}"), |b| {
            b.iter(|| sweep::run(bound, BmcMode::PerDepthScratch, &bug))
        });
    }
    group.finish();

    // Direct measurement summary with the incremental runs' reuse counters.
    println!("\n== incremental vs scratch: measured speedup");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>9} {:>9} {:>10} {:>10} {:>10}",
        "bound",
        "incr [ms]",
        "cumul [ms]",
        "scratch[ms]",
        "spd-incr",
        "spd-cum",
        "learnt-hw",
        "deleted",
        "retained"
    );
    for &bound in &[2usize, 4, 6] {
        let (incr, _) = sweep::run(bound, BmcMode::PerDepth, &bug);
        let (cumul, reuse) = sweep::run_cumulative(bound, &bug);
        let (scratch, _) = sweep::run(bound, BmcMode::PerDepthScratch, &bug);
        println!(
            "{:>6} {:>12.2} {:>12.2} {:>12.2} {:>8.2}x {:>8.2}x {:>10} {:>10} {:>10}",
            bound,
            incr.as_secs_f64() * 1e3,
            cumul.as_secs_f64() * 1e3,
            scratch.as_secs_f64() * 1e3,
            scratch.as_secs_f64() / incr.as_secs_f64(),
            scratch.as_secs_f64() / cumul.as_secs_f64(),
            reuse.learnt_high_water,
            reuse.learnt_deleted,
            reuse.learnt_retained,
        );
    }
}

criterion_group!(benches, bench_incremental_vs_scratch);
criterion_main!(benches);
