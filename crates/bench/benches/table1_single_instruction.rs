//! Criterion bench for Table 1: SEPE-SQED detection of a single-instruction
//! bug and the SQED bounded proof that misses it (the full table is produced
//! by the `table1` harness binary).

use criterion::{criterion_group, criterion_main, Criterion};

use sepe_isa::Opcode;
use sepe_processor::{Mutation, ProcessorConfig};
use sepe_sqed::detect::{Detector, DetectorConfig, Method};

fn detector(max_bound: usize) -> Detector {
    Detector::new(DetectorConfig {
        processor: ProcessorConfig::tiny().with_opcodes(&[Opcode::Add, Opcode::Addi]),
        max_bound,
        ..DetectorConfig::default()
    })
}

fn bench_table1(c: &mut Criterion) {
    let bug = Mutation::table1()[0].clone(); // ADD off by one
    let mut group = c.benchmark_group("table1_single_instruction");
    group.sample_size(10);
    // Representative slices only: the full detections are produced by the
    // `table1` harness binary; here we time one bounded query per method so
    // the bench suite stays fast on small hosts.
    group.bench_function("sepe_sqed_add_bug_bound1", |b| {
        let d = detector(1);
        b.iter(|| {
            let detection = d.check(Method::SepeSqed, Some(&bug));
            assert!(!detection.inconclusive);
        })
    });
    group.bench_function("sqed_add_bug_bound1", |b| {
        let d = detector(1);
        b.iter(|| {
            let detection = d.check(Method::Sqed, Some(&bug));
            assert!(!detection.detected);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
