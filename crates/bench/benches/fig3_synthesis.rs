//! Criterion bench for Figure 3: HPF-CEGIS vs iterative CEGIS synthesis time
//! on a representative case (the full sweep is produced by the `fig3`
//! harness binary).

use criterion::{criterion_group, criterion_main, Criterion};

use sepe_bench::{fig3, Profile};
use sepe_isa::Opcode;
use sepe_synth::hpf::HpfCegis;
use sepe_synth::iterative::IterativeCegis;
use sepe_synth::library::Library;
use sepe_synth::spec::Spec;

fn bench_fig3(c: &mut Criterion) {
    let mut config = fig3::synthesis_config(Profile::Quick);
    config.programs_wanted = 1;
    config.min_components = 2;
    let library = Library::minimal();
    let spec = Spec::for_opcode(Opcode::Sub, config.width);

    let mut group = c.benchmark_group("fig3_synthesis");
    group.sample_size(10);
    group.bench_function("hpf_cegis_sub", |b| {
        b.iter(|| {
            let mut hpf = HpfCegis::new(config.clone(), library.clone());
            let result = hpf.synthesize(&spec);
            assert!(result.succeeded());
        })
    });
    group.bench_function("iterative_cegis_sub", |b| {
        b.iter(|| {
            let iterative = IterativeCegis::new(config.clone(), library.clone());
            let result = iterative.synthesize(&spec);
            assert!(result.succeeded());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
