//! Criterion bench for Figure 4: detection of one multiple-instruction bug
//! by both methods (the full figure is produced by the `fig4` harness
//! binary).

use criterion::{criterion_group, criterion_main, Criterion};

use sepe_bench::{fig4, Profile};
use sepe_processor::Mutation;
use sepe_sqed::detect::Method;

fn bench_fig4(c: &mut Criterion) {
    let bug = Mutation::figure4()
        .into_iter()
        .find(|b| b.name == "multi-11-addi-raw")
        .expect("bug exists");
    // Representative slice: one bounded query per method (the full figure is
    // produced by the `fig4` harness binary).
    let mut quick = fig4::detector_for(&bug, Profile::Quick).config().clone();
    quick.max_bound = 2;
    let detector = sepe_sqed::detect::Detector::new(quick);
    let mut group = c.benchmark_group("fig4_multi_instruction");
    group.sample_size(10);
    group.bench_function("sqed_addi_raw_bug_bound2", |b| {
        b.iter(|| {
            let detection = detector.check(Method::Sqed, Some(&bug));
            assert!(!detection.inconclusive);
        })
    });
    group.bench_function("sepe_sqed_addi_raw_bug_bound2", |b| {
        b.iter(|| {
            let detection = detector.check(Method::SepeSqed, Some(&bug));
            assert!(!detection.inconclusive);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
