//! Offline shim for the subset of `serde` this workspace uses.
//!
//! The build environment has no access to crates.io, so serialization is
//! provided by a minimal self-describing [`Value`] tree plus a derive macro
//! ([`Serialize`]) for plain structs.  `serde_json` (the sibling shim)
//! renders a [`Value`] as JSON text.  Only what the bench row structs need
//! is implemented: primitives, strings, options, sequences and structs.

pub use serde_derive::Serialize;

/// A self-describing serialized value (the shim's data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence.
    Array(Vec<Value>),
    /// Map with insertion order preserved (struct fields).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value under key `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Whether this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The boolean payload, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as a signed integer, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// The value as a float (integers widen losslessly where possible).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// The string payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload, if any.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object payload (ordered key/value pairs), if any.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Conversion into the shim's [`Value`] data model.
///
/// The derive macro implements this for structs by serializing every field
/// in declaration order.
pub trait Serialize {
    /// Serializes `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
impl_serialize_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(f64::from(*self))
            }
        }
    )*};
}
impl_serialize_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_serialize() {
        assert_eq!(3u32.to_value(), Value::UInt(3));
        assert_eq!((-3i32).to_value(), Value::Int(-3));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!(None::<u32>.to_value(), Value::Null);
        assert_eq!(Some(1u64).to_value(), Value::UInt(1));
        assert_eq!("x".to_string().to_value(), Value::Str("x".into()));
        assert_eq!(
            vec![1u8, 2].to_value(),
            Value::Array(vec![Value::UInt(1), Value::UInt(2)])
        );
    }
}
