//! Offline shim for the subset of the `rand` crate API this workspace uses.
//!
//! The build environment has no access to crates.io, so this crate provides
//! deterministic, dependency-free stand-ins for `StdRng`, `SeedableRng`,
//! `Rng::{gen, gen_range, gen_bool}` and `seq::SliceRandom::shuffle`.  The
//! generator is SplitMix64: not cryptographic, but high-quality enough for
//! the randomized property tests and fixed-seed shuffles used here, and
//! fully reproducible across platforms.

use std::ops::{Range, RangeInclusive};

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the generator's full range.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<G: RngCore + ?Sized>(rng: &mut G) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<G: RngCore + ?Sized>(rng: &mut G) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Integer types usable as `gen_range` bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high]` (inclusive).
    fn sample_inclusive<G: RngCore + ?Sized>(low: Self, high: Self, rng: &mut G) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<G: RngCore + ?Sized>(low: Self, high: Self, rng: &mut G) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                if span == 0 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                // Rejection sampling over the smallest binary superset keeps
                // the draw exactly uniform (the shim is used by property
                // tests, so bias-freeness matters more than speed).
                let mask = span.next_power_of_two() - 1;
                loop {
                    let bits = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) & mask;
                    if bits < span {
                        return (low as i128 + bits as i128) as $t;
                    }
                }
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value from the range.
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

impl<T: SampleUniform + One> SampleRange<T> for Range<T> {
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        T::sample_inclusive(self.start, T::dec(self.end), rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Helper for turning half-open into inclusive ranges.
pub trait One {
    /// `x - 1` (the range is checked non-empty before this is called).
    fn dec(x: Self) -> Self;
}

macro_rules! impl_one {
    ($($t:ty),*) => {$(
        impl One for $t {
            fn dec(x: Self) -> Self {
                x.checked_sub(1).expect("gen_range: empty range")
            }
        }
    )*};
}
impl_one!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform draw from the type's full range.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform draw from a range (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample(self) < p
    }
}

impl<G: RngCore + ?Sized> Rng for G {}

/// Generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    ///
    /// Unlike the real `rand::rngs::StdRng` this is not cryptographically
    /// secure; it is a small, fast, well-distributed stream suitable for the
    /// reproducible tests and shuffles in this workspace.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Slice shuffling (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-2048..2048);
            assert!((-2048..2048).contains(&v));
            let u = rng.gen_range(1..=6);
            assert!((1..=6).contains(&u));
            let w: usize = rng.gen_range(0..10);
            assert!(w < 10);
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(1);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 32-element shuffle is essentially never the identity"
        );
    }
}
