//! `#[derive(Serialize)]` for the offline `serde` shim.
//!
//! Supports plain (non-generic) structs with named fields — exactly what the
//! bench row structs need.  The implementation walks the raw token stream
//! instead of pulling in `syn`/`quote`, because the build environment cannot
//! fetch crates.  Field types may contain angle brackets (e.g. `Option<f64>`)
//! and parenthesized/bracketed groups; generic parameters with top-level
//! commas inside a field type (e.g. `HashMap<K, V>`) are also handled since
//! commas inside `<...>` are tracked by nesting depth.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the shim trait) for a named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut name: Option<String> = None;
    let mut fields: Vec<String> = Vec::new();

    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match &tt {
            TokenTree::Ident(id) if *id.to_string() == *"struct" => {
                if let Some(TokenTree::Ident(n)) = tokens.next() {
                    name = Some(n.to_string());
                }
                // The next brace group holds the fields.
                for tt in tokens.by_ref() {
                    if let TokenTree::Group(g) = &tt {
                        if g.delimiter() == Delimiter::Brace {
                            fields = field_names(g.stream());
                            break;
                        }
                    }
                }
                break;
            }
            _ => {}
        }
    }

    let name = name.expect("#[derive(Serialize)] shim: expected a struct");
    let pushes: String = fields
        .iter()
        .map(|f| {
            format!(
                "fields.push((\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
            )
        })
        .collect();
    let output = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Object(fields)\n\
             }}\n\
         }}\n"
    );
    output.parse().expect("derive shim generated invalid Rust")
}

/// Extracts field names from the token stream inside the struct braces.
fn field_names(stream: TokenStream) -> Vec<String> {
    let mut names = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip outer attributes (`#[...]`, including doc comments).
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next(); // the bracketed attribute body
                }
                _ => break,
            }
        }
        // Skip visibility (`pub`, `pub(crate)`, ...).
        if let Some(TokenTree::Ident(id)) = tokens.peek() {
            if *id.to_string() == *"pub" {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
        }
        // Field name.
        match tokens.next() {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            _ => break, // end of stream (or unsupported shape)
        }
        // Expect `:`, then skip the type up to a top-level comma.
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => break,
        }
        let mut angle_depth = 0i32;
        for tt in tokens.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
    names
}
