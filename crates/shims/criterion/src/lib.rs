//! Offline shim for the subset of the `criterion` benchmarking API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so this crate provides
//! `Criterion`, `benchmark_group`/`bench_function`/`sample_size`/`finish`,
//! `Bencher::iter`, `black_box` and the `criterion_group!`/`criterion_main!`
//! macros.  Timing is a straightforward best/mean-of-samples measurement —
//! no warm-up modelling or statistics, but the output format (one line per
//! benchmark with mean and best sample) is stable and greppable, which is
//! what the `incremental_vs_scratch` speedup check consumes.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement driver handed to each benchmark function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== group {name}");
        BenchmarkGroup {
            criterion: self,
            group: name.to_string(),
            sample_size: None,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(id, self.sample_size, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark of the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_benchmark(&format!("{}/{}", self.group, id), samples, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Runs the closure under a timer.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one sample of `f` (the routine may be called many times per
    /// sample by real criterion; the shim times single calls).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.samples.push(start.elapsed());
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
    };
    // One untimed warm-up call, then the timed samples.
    f(&mut bencher);
    bencher.samples.clear();
    for _ in 0..samples.max(1) {
        f(&mut bencher);
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len().max(1) as u32;
    let best = bencher.samples.iter().min().copied().unwrap_or_default();
    println!(
        "bench {id}: mean {mean:?}  best {best:?}  ({} samples)",
        bencher.samples.len()
    );
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($bench(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        // 1 warm-up + 3 samples
        assert_eq!(calls, 4);
    }
}
