//! Offline shim for the subset of `serde_json` this workspace uses: JSON
//! text rendering of the `serde` shim's [`serde::Value`] data model, plus a
//! strict recursive-descent parser ([`from_str`]) for the service protocol.

use std::fmt;

use serde::{Serialize, Value};

/// Serialization/parse error.  Rendering never fails (the shim's value model
/// is total); parsing reports the first malformed construct with its byte
/// offset, which the service layer forwards to hostile clients verbatim.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.message.is_empty() {
            write!(f, "serde_json shim error")
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl std::error::Error for Error {}

/// Renders a value as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Renders a value as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Maximum nesting depth the parser accepts.  The service feeds untrusted
/// bytes into this function, so recursion must be bounded — a frame of
/// 100 000 `[` characters must produce an error, not a stack overflow.
const MAX_PARSE_DEPTH: usize = 128;

/// Parses a JSON document into a [`Value`] tree.
///
/// Strict by intent: exactly one top-level value, no trailing garbage, no
/// trailing commas, no comments.  Numbers parse to `UInt`/`Int` when they
/// are integral and in range, `Float` otherwise; round-tripping a tree
/// produced by [`to_string`] yields a structurally identical tree (object
/// field order is preserved), which is what lets the result cache re-render
/// stored verdicts byte-identically.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing bytes after JSON value at offset {}",
            p.pos
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn err(&self, what: &str) -> Error {
        Error::new(format!("{what} at offset {}", self.pos))
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_PARSE_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes (valid UTF-8 by construction,
            // since the input is a &str and we only split at ASCII bytes).
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos]).expect("input is UTF-8"),
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xd800..0xdc00).contains(&code) {
                                if !(self.eat_keyword("\\u")) {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("input is UTF-8");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number '{text}' at offset {start}")))
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Match serde_json: integral floats print with a trailing .0.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&x.to_string());
                }
            } else {
                out.push_str("null"); // serde_json renders non-finite as null
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, items.iter(), indent, depth, ('[', ']'), write_value),
        Value::Object(fields) => write_seq(
            out,
            fields.iter(),
            indent,
            depth,
            ('{', '}'),
            |out, (k, val), ind, d| {
                write_string(out, k);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(out, val, ind, d);
            },
        ),
    }
}

fn write_seq<I, T, F>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: F,
) where
    I: ExactSizeIterator<Item = T>,
    F: FnMut(&mut String, T, Option<usize>, usize),
{
    out.push(brackets.0);
    let n = items.len();
    if n == 0 {
        out.push(brackets.1);
        return;
    }
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(brackets.1);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_and_pretty() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::Str("x\"y".to_string())),
            ("n".to_string(), Value::UInt(3)),
            ("f".to_string(), Value::Float(1.5)),
            ("whole".to_string(), Value::Float(2.0)),
            ("none".to_string(), Value::Null),
            (
                "seq".to_string(),
                Value::Array(vec![Value::Int(-1), Value::Bool(true)]),
            ),
        ]);
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"name":"x\"y","n":3,"f":1.5,"whole":2.0,"none":null,"seq":[-1,true]}"#
        );
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"name\": \"x\\\"y\",\n"));
        assert!(pretty.ends_with('}'));
    }

    #[test]
    fn parses_documents() {
        let v = from_str(r#"{"a": [1, -2, 2.5, true, null], "s": "x\n\"A"}"#).unwrap();
        assert_eq!(
            v,
            Value::Object(vec![
                (
                    "a".to_string(),
                    Value::Array(vec![
                        Value::UInt(1),
                        Value::Int(-2),
                        Value::Float(2.5),
                        Value::Bool(true),
                        Value::Null,
                    ])
                ),
                ("s".to_string(), Value::Str("x\n\"A".to_string())),
            ])
        );
    }

    #[test]
    fn round_trips_byte_identically() {
        let original = Value::Object(vec![
            ("label".to_string(), Value::Str("single-add".to_string())),
            ("detected".to_string(), Value::Bool(true)),
            ("trace_len".to_string(), Value::Null),
            ("conflicts".to_string(), Value::UInt(1234)),
            ("delta".to_string(), Value::Int(-5)),
            (
                "frames".to_string(),
                Value::Array(vec![Value::Object(vec![(
                    "q0_op".to_string(),
                    Value::UInt(3),
                )])]),
            ),
        ]);
        let text = to_string(&original).unwrap();
        let reparsed = from_str(&text).unwrap();
        assert_eq!(reparsed, original);
        assert_eq!(to_string(&reparsed).unwrap(), text);
    }

    #[test]
    fn parses_surrogate_pairs() {
        assert_eq!(
            from_str(r#""😀""#).unwrap(),
            Value::Str("\u{1f600}".to_string())
        );
        assert!(from_str(r#""\ud83d""#).is_err());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "\"unterminated",
            "[1] garbage",
            "{\"a\": 1,}",
            "nul",
            "--1",
        ] {
            assert!(from_str(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn bounds_nesting_depth() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(from_str(&deep).is_err());
        let ok = "[".repeat(64) + &"]".repeat(64);
        assert!(from_str(&ok).is_ok());
    }

    #[test]
    fn integer_width_boundaries() {
        assert_eq!(
            from_str("18446744073709551615").unwrap(),
            Value::UInt(u64::MAX)
        );
        assert_eq!(
            from_str("-9223372036854775808").unwrap(),
            Value::Int(i64::MIN)
        );
        // Out of u64/i64 range falls back to float.
        assert!(matches!(
            from_str("18446744073709551616").unwrap(),
            Value::Float(_)
        ));
    }
}
