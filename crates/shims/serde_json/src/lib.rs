//! Offline shim for the subset of `serde_json` this workspace uses: JSON
//! text rendering of the `serde` shim's [`serde::Value`] data model.

use std::fmt;

use serde::{Serialize, Value};

/// Serialization error (the shim's value model is total, so rendering never
/// fails; the type exists for API compatibility).
#[derive(Debug, Clone)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json shim error")
    }
}

impl std::error::Error for Error {}

/// Renders a value as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Renders a value as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Match serde_json: integral floats print with a trailing .0.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&x.to_string());
                }
            } else {
                out.push_str("null"); // serde_json renders non-finite as null
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, items.iter(), indent, depth, ('[', ']'), write_value),
        Value::Object(fields) => write_seq(
            out,
            fields.iter(),
            indent,
            depth,
            ('{', '}'),
            |out, (k, val), ind, d| {
                write_string(out, k);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(out, val, ind, d);
            },
        ),
    }
}

fn write_seq<I, T, F>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: F,
) where
    I: ExactSizeIterator<Item = T>,
    F: FnMut(&mut String, T, Option<usize>, usize),
{
    out.push(brackets.0);
    let n = items.len();
    if n == 0 {
        out.push(brackets.1);
        return;
    }
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(brackets.1);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_and_pretty() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::Str("x\"y".to_string())),
            ("n".to_string(), Value::UInt(3)),
            ("f".to_string(), Value::Float(1.5)),
            ("whole".to_string(), Value::Float(2.0)),
            ("none".to_string(), Value::Null),
            (
                "seq".to_string(),
                Value::Array(vec![Value::Int(-1), Value::Bool(true)]),
            ),
        ]);
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"name":"x\"y","n":3,"f":1.5,"whole":2.0,"none":null,"seq":[-1,true]}"#
        );
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"name\": \"x\\\"y\",\n"));
        assert!(pretty.ends_with('}'));
    }
}
