//! Deterministic fault-injection tests of the fault-tolerance layer: every
//! [`StopReason`] variant, panic isolation, the retry degradation ladder,
//! and cancel-flag chaining — all counter-indexed, no wall-clock
//! assertions.
//!
//! The workhorse job is the clean bound-2 SQED check over {ADD, XORI} on
//! the tiny processor: it completes conclusively in ~150 SAT conflicts, so
//! a fault planted at conflict 3–5 always fires, and the whole suite runs
//! in seconds.  The CI fault-injection job sweeps `SEPE_FAULT_SEED` through
//! the seeded-plan test below.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sepe_isa::Opcode;
use sepe_processor::ProcessorConfig;
use sepe_smt::{CancelFlag, StopReason};
use sepe_sqed::detect::{DetectorConfig, Method};
use sepe_sqed::fault::FaultPlan;
use sepe_sqed::parallel::{DegradationRung, DetectionJob, Engine, JobOutcome, RetryPolicy};
use sepe_tsys::BmcMode;

/// The workhorse configuration: conclusive at bound 2 with ~150 conflicts.
fn busy_config() -> DetectorConfig {
    DetectorConfig {
        processor: ProcessorConfig::tiny().with_opcodes(&[Opcode::Add, Opcode::Xori]),
        max_bound: 2,
        ..DetectorConfig::default()
    }
}

fn busy_job(label: &str, fault: Option<FaultPlan>) -> DetectionJob {
    let mut config = busy_config();
    config.fault = fault;
    DetectionJob::new(label, config, Method::Sqed, None)
}

#[test]
fn every_stop_reason_is_exercised_deterministically() {
    let jobs = || {
        let mut deadline = busy_config();
        // An already-expired wall budget trips the between-depths poll
        // before the first query — deterministic, no timing window.
        deadline.time_limit = Some(Duration::ZERO);
        deadline.bmc_mode = BmcMode::PerDepth;
        let mut conflict = busy_config();
        conflict.conflict_limit = Some(10);
        vec![
            DetectionJob::new("deadline", deadline, Method::Sqed, None),
            DetectionJob::new("conflict", conflict, Method::Sqed, None),
            busy_job("memory", Some(FaultPlan::memory_breach_at(3))),
            busy_job("cancelled", Some(FaultPlan::cancel_at(1))),
            busy_job("panicked", Some(FaultPlan::panic_at(5))),
        ]
    };
    let sequential = Engine::new(1).run(jobs()).expect_jobs();
    let parallel = Engine::new(4).run(jobs()).expect_jobs();

    for outcome in [&sequential, &parallel] {
        let expect = [
            StopReason::Deadline,
            StopReason::ConflictBudget,
            StopReason::MemoryBudget,
            StopReason::Cancelled,
            StopReason::Panicked,
        ];
        for (i, want) in expect.iter().enumerate() {
            let d = &outcome.detections[i];
            let r = &outcome.reports[i];
            assert!(d.inconclusive, "job {} must be inconclusive", r.label);
            assert_eq!(
                d.stop_reason,
                Some(*want),
                "job {} classified wrong",
                r.label
            );
            match want {
                StopReason::Panicked => {
                    let JobOutcome::Failed { message } = &r.outcome else {
                        panic!("job {} must report Failed, got {:?}", r.label, r.outcome);
                    };
                    assert!(
                        message.contains("fault injection"),
                        "panic message lost: {message}"
                    );
                }
                reason => assert_eq!(r.outcome, JobOutcome::Stopped(*reason)),
            }
        }
        let tally = outcome.stats.stop_reasons;
        assert_eq!(tally.deadline, 1);
        assert_eq!(tally.conflict_budget, 1);
        assert_eq!(tally.memory_budget, 1);
        assert_eq!(tally.cancelled, 1);
        assert_eq!(tally.panicked, 1);
        assert_eq!(tally.total(), 5);
        assert_eq!(outcome.stats.panics, 1);
        assert_eq!(outcome.stats.retries, 0, "no retry policy configured");
    }

    // The whole classification is deterministic across worker counts: same
    // outcomes, same attempt counts, same conflict counters, bit for bit.
    for (i, (seq, par)) in sequential.reports.iter().zip(&parallel.reports).enumerate() {
        assert_eq!(seq.outcome, par.outcome, "outcome diverges on job {i}");
        assert_eq!(seq.attempts, par.attempts, "attempts diverge on job {i}");
        assert_eq!(
            sequential.detections[i].conflicts, parallel.detections[i].conflicts,
            "conflict counter diverges on job {i}"
        );
    }
}

#[test]
fn a_panicking_job_does_not_poison_the_batch() {
    // Neighbors around the bomb: one conflict-free job and one that does
    // real search work.
    let neighbors = |fault| {
        let mut sepe = busy_config();
        sepe.processor = ProcessorConfig::tiny().with_opcodes(&[Opcode::Add, Opcode::Addi]);
        vec![
            DetectionJob::new("left", sepe.clone(), Method::SepeSqed, None),
            busy_job("bomb", fault),
            DetectionJob::new("right", sepe, Method::SepeSqed, None),
            busy_job("busy", None),
        ]
    };
    let clean = Engine::new(4).run(neighbors(None)).expect_jobs();
    let faulted = Engine::new(4)
        .run(neighbors(Some(FaultPlan::panic_at(5))))
        .expect_jobs();

    // No worker died: every job of the faulted batch delivered a result.
    assert_eq!(faulted.detections.len(), 4);
    assert!(matches!(
        faulted.reports[1].outcome,
        JobOutcome::Failed { .. }
    ));
    assert_eq!(
        faulted.detections[1].stop_reason,
        Some(StopReason::Panicked)
    );

    // Every other job is bit-identical to the fault-free batch.
    for i in [0, 2, 3] {
        let (c, f) = (&clean.detections[i], &faulted.detections[i]);
        assert_eq!(c.detected, f.detected, "verdict diverges on job {i}");
        assert_eq!(c.inconclusive, f.inconclusive);
        assert_eq!(c.conflicts, f.conflicts, "conflicts diverge on job {i}");
        assert_eq!(c.bound_reached, f.bound_reached);
        assert_eq!(c.trace_len, f.trace_len);
        assert_eq!(clean.reports[i].outcome, faulted.reports[i].outcome);
    }
    assert_eq!(faulted.stats.panics, 1);
}

#[test]
fn retry_ladder_recovers_a_panicking_job_one_rung_down() {
    let outcome = Engine::new(1)
        .with_retry_policy(RetryPolicy::ladder(2))
        .run(vec![busy_job("bomb", Some(FaultPlan::panic_at(5)))])
        .expect_jobs();
    let report = &outcome.reports[0];
    // First attempt panics at conflict 5; the fault applies to the first
    // attempt only, so the aig_off retry runs clean and completes.
    assert_eq!(report.outcome, JobOutcome::Completed);
    assert_eq!(report.attempts, 2);
    assert_eq!(report.panicked_attempts, 1);
    assert_eq!(report.rung, DegradationRung::AigOff);
    let d = &outcome.detections[0];
    assert!(!d.detected && !d.inconclusive, "the retry must conclude");
    assert_eq!(d.stop_reason, None);
    assert_eq!(outcome.stats.retries, 1);
    assert_eq!(outcome.stats.degraded_runs, 1);
    assert_eq!(outcome.stats.panics, 1);
}

#[test]
fn persistent_fault_exhausts_the_ladder_or_is_dodged_by_degradation() {
    // `every_attempt` keeps the panic armed on every rung.  With one retry
    // the job dies twice and stays Failed; with the full ladder the bottom
    // rung (scratch, halved bound) finishes under 5 conflicts, so the fault
    // never fires and the job legitimately completes degraded.
    let bomb = || busy_job("bomb", Some(FaultPlan::panic_at(5).every_attempt()));

    let short = Engine::new(1)
        .with_retry_policy(RetryPolicy::ladder(1))
        .run(vec![bomb()])
        .expect_jobs();
    let report = &short.reports[0];
    assert!(matches!(report.outcome, JobOutcome::Failed { .. }));
    assert_eq!(report.attempts, 2);
    assert_eq!(report.panicked_attempts, 2);
    assert_eq!(report.rung, DegradationRung::AigOff);
    assert_eq!(short.stats.stop_reasons.panicked, 1);

    let full = Engine::new(1)
        .with_retry_policy(RetryPolicy::ladder(3))
        .run(vec![bomb()])
        .expect_jobs();
    let report = &full.reports[0];
    assert_eq!(report.outcome, JobOutcome::Completed);
    assert_eq!(report.attempts, 4);
    assert_eq!(report.panicked_attempts, 3);
    assert_eq!(report.rung, DegradationRung::ScratchHalfBound);
    assert_eq!(full.stats.retries, 3);
    assert_eq!(full.stats.degraded_runs, 1);
}

#[test]
fn budget_exhaustion_is_retried_but_cancellation_is_not() {
    // A faked memory breach is a per-solver budget verdict: retry-worthy.
    let outcome = Engine::new(1)
        .with_retry_policy(RetryPolicy::ladder(1))
        .run(vec![busy_job("oom", Some(FaultPlan::memory_breach_at(3)))])
        .expect_jobs();
    assert_eq!(outcome.reports[0].outcome, JobOutcome::Completed);
    assert_eq!(outcome.reports[0].attempts, 2);
    assert_eq!(outcome.stats.retries, 1);

    // Cancellation is a verdict about the batch — never retried.
    let outcome = Engine::new(1)
        .with_retry_policy(RetryPolicy::ladder(3))
        .run(vec![busy_job("cut", Some(FaultPlan::cancel_at(1)))])
        .expect_jobs();
    assert_eq!(
        outcome.reports[0].outcome,
        JobOutcome::Stopped(StopReason::Cancelled)
    );
    assert_eq!(outcome.reports[0].attempts, 1);
    assert_eq!(outcome.stats.retries, 0);
}

#[test]
fn a_callers_cancel_flag_chains_with_the_batch_flag() {
    // The caller arms a private, already-raised flag on one job.  The
    // engine must chain it with its own batch flag — not replace it — so
    // exactly that job comes back cancelled while its neighbors complete.
    let private: CancelFlag = Arc::new(AtomicBool::new(true));
    let mut cut = busy_config();
    cut.cancel.push(private.clone());
    let jobs = vec![
        busy_job("before", None),
        DetectionJob::new("cut", cut, Method::Sqed, None),
        busy_job("after", None),
    ];
    let outcome = Engine::new(2).run(jobs).expect_jobs();
    assert_eq!(outcome.reports[0].outcome, JobOutcome::Completed);
    assert_eq!(
        outcome.reports[1].outcome,
        JobOutcome::Stopped(StopReason::Cancelled),
        "the caller's flag was swallowed by the engine"
    );
    assert!(outcome.detections[1].inconclusive);
    assert_eq!(outcome.reports[2].outcome, JobOutcome::Completed);
    // The private flag must not leak into the other jobs.
    assert_eq!(outcome.stats.stop_reasons.cancelled, 1);
    assert!(
        private.load(Ordering::Relaxed),
        "nobody lowers caller flags"
    );
}

/// The workhorse job in prove mode: k-induction over the same bound-2
/// configuration (cheap — the base case is the plain bounded sweep and
/// the step case never converges on a QED system, so the job concludes
/// `NoCounterexample` in a few hundred conflicts).
fn prove_job(label: &str, fault: Option<FaultPlan>) -> DetectionJob {
    let mut config = busy_config();
    config.prove = Some(sepe_tsys::ProofMethod::KInduction);
    config.fault = fault;
    DetectionJob::new(label, config, Method::Sqed, None)
}

#[test]
fn faults_inside_the_provers_classify_and_isolate_identically() {
    // Every fault class planted *inside* a k-induction run: the prover
    // must come back Unknown with the same structured StopReason the
    // bounded path reports, clean prove-mode bystanders must be
    // bit-identical to a fault-free batch, and the whole classification
    // must not depend on the worker count.
    let jobs = |armed: bool| {
        let mut deadline = busy_config();
        deadline.prove = Some(sepe_tsys::ProofMethod::KInduction);
        deadline.time_limit = armed.then_some(Duration::ZERO);
        let mut conflict = busy_config();
        conflict.prove = Some(sepe_tsys::ProofMethod::KInduction);
        conflict.conflict_limit = armed.then_some(10);
        let gate = |fault: FaultPlan| armed.then_some(fault);
        vec![
            prove_job("clean-left", None),
            DetectionJob::new("deadline", deadline, Method::Sqed, None),
            DetectionJob::new("conflict", conflict, Method::Sqed, None),
            prove_job("memory", gate(FaultPlan::memory_breach_at(3))),
            prove_job("cancelled", gate(FaultPlan::cancel_at(1))),
            prove_job("panicked", gate(FaultPlan::panic_at(5))),
            prove_job("clean-right", None),
        ]
    };
    let clean = Engine::new(1).run(jobs(false)).expect_jobs();
    let sequential = Engine::new(1).run(jobs(true)).expect_jobs();
    let parallel = Engine::new(4).run(jobs(true)).expect_jobs();

    for outcome in [&sequential, &parallel] {
        let expect = [
            (1, StopReason::Deadline),
            (2, StopReason::ConflictBudget),
            (3, StopReason::MemoryBudget),
            (4, StopReason::Cancelled),
            (5, StopReason::Panicked),
        ];
        for (i, want) in expect {
            let d = &outcome.detections[i];
            assert!(
                d.inconclusive,
                "prove-mode job {} must be inconclusive",
                outcome.reports[i].label
            );
            assert_eq!(
                d.stop_reason,
                Some(want),
                "prove-mode job {} classified wrong",
                outcome.reports[i].label
            );
            assert!(!d.proved, "a faulted prover must never report proved");
        }
        // The clean bystanders conclude exactly as in the fault-free batch.
        for i in [0, 6] {
            let (c, f) = (&clean.detections[i], &outcome.detections[i]);
            assert_eq!(c.detected, f.detected, "verdict diverges on job {i}");
            assert_eq!(c.inconclusive, f.inconclusive);
            assert_eq!(c.proved, f.proved);
            assert_eq!(c.conflicts, f.conflicts, "conflicts diverge on job {i}");
            assert_eq!(c.bound_reached, f.bound_reached);
        }
        assert_eq!(outcome.stats.panics, 1);
    }

    // jobs = 1 and jobs = 4 classify bit-identically.
    for i in 0..7 {
        assert_eq!(
            sequential.reports[i].outcome, parallel.reports[i].outcome,
            "outcome diverges on prove-mode job {i}"
        );
        assert_eq!(
            sequential.detections[i].conflicts, parallel.detections[i].conflicts,
            "conflict counter diverges on prove-mode job {i}"
        );
        assert_eq!(
            sequential.detections[i].stop_reason, parallel.detections[i].stop_reason,
            "stop reason diverges on prove-mode job {i}"
        );
    }
}

#[test]
fn seeded_fault_plans_reproduce_across_worker_counts() {
    // The CI seed matrix pins SEPE_FAULT_SEED; locally the test sweeps a
    // small default range.  Each seeded plan is injected into the busy job
    // surrounded by clean neighbors, and the whole batch must classify
    // identically on 1 and 4 workers.
    let seeds: Vec<u64> = match std::env::var("SEPE_FAULT_SEED") {
        Ok(s) => vec![s.parse().expect("SEPE_FAULT_SEED must be an integer")],
        Err(_) => (0..6).collect(),
    };
    for seed in seeds {
        let plan = FaultPlan::seeded(seed);
        let jobs = || vec![busy_job("clean", None), busy_job("faulted", Some(plan))];
        let sequential = Engine::new(1)
            .with_retry_policy(RetryPolicy::ladder(2))
            .run(jobs())
            .expect_jobs();
        let parallel = Engine::new(4)
            .with_retry_policy(RetryPolicy::ladder(2))
            .run(jobs())
            .expect_jobs();
        for i in 0..2 {
            assert_eq!(
                sequential.reports[i].outcome, parallel.reports[i].outcome,
                "seed {seed}: outcome diverges on job {i}"
            );
            assert_eq!(
                sequential.reports[i].attempts, parallel.reports[i].attempts,
                "seed {seed}: attempts diverge on job {i}"
            );
            assert_eq!(
                sequential.reports[i].rung, parallel.reports[i].rung,
                "seed {seed}: final rung diverges on job {i}"
            );
            assert_eq!(
                sequential.detections[i].conflicts, parallel.detections[i].conflicts,
                "seed {seed}: conflict counter diverges on job {i}"
            );
            assert_eq!(
                sequential.detections[i].stop_reason, parallel.detections[i].stop_reason,
                "seed {seed}: stop reason diverges on job {i}"
            );
        }
        assert_eq!(
            sequential.stats.retries, parallel.stats.retries,
            "seed {seed}: retry totals diverge"
        );
        assert_eq!(
            sequential.stats.stop_reasons, parallel.stats.stop_reasons,
            "seed {seed}: stop-reason tallies diverge"
        );
    }
}
