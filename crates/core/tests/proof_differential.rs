//! Proof-flow integration tests: the unbounded provers threaded through
//! the detector, the independent-solver certificate self-check, and
//! cross-method agreement with the bounded baseline over the Table-1
//! catalogue.
//!
//! The headline acceptance check lives here: IC3/PDR *proves* the clean
//! tiny+ADD SQED configuration — a query every bounded sweep previously
//! left inconclusive-at-the-bound — and the inductive invariant
//! re-verifies on a fresh solver before the verdict leaves the engine.

use std::time::Duration;

use sepe_isa::Opcode;
use sepe_processor::{Mutation, ProcessorConfig};
use sepe_smt::StopReason;
use sepe_sqed::detect::{Detection, Detector, DetectorConfig, Method};
use sepe_sqed::fault::FaultPlan;
use sepe_tsys::ProofMethod;

fn clean_config(prove: ProofMethod) -> DetectorConfig {
    DetectorConfig::builder()
        .processor(ProcessorConfig::tiny().with_opcodes(&[Opcode::Add]))
        .bound(4)
        .prove(prove)
        .build()
}

/// The acceptance criterion of the proof subsystem: a clean configuration
/// that bounded BMC can only ever report `NoCounterexample { bound }` for
/// becomes **Proved** — for *all* depths — and the certificate passes the
/// independent-solver self-check.
#[test]
fn pdr_proves_the_clean_config_and_the_certificate_self_checks() {
    let detection = Detector::new(clean_config(ProofMethod::Pdr)).check(Method::Sqed, None);
    assert!(
        detection.proved,
        "PDR must prove the clean tiny+ADD SQED config, got {detection:?}"
    );
    assert!(!detection.detected);
    assert!(!detection.inconclusive);
    assert_eq!(detection.proof_method, Some(ProofMethod::Pdr));
    assert!(
        detection.proof_depth.is_some_and(|d| d >= 1),
        "a PDR proof closes at some frontier ≥ 1"
    );
    assert_eq!(
        detection.proof_checked,
        Some(true),
        "the invariant must re-verify on an independent solver"
    );
}

/// A corrupted inductive invariant (injected via the fault plan, the
/// proof-side analogue of `corrupt_witness`) must demote the verdict to a
/// structured inconclusive with [`StopReason::ProofMismatch`] — never leak
/// a `proved` flag whose certificate did not check out.
#[test]
fn corrupted_certificate_demotes_the_proof_to_a_structured_failure() {
    let config = DetectorConfig {
        fault: Some(FaultPlan::corrupt_proof()),
        ..clean_config(ProofMethod::Pdr)
    };
    let detection = Detector::new(config).check(Method::Sqed, None);
    assert!(!detection.proved, "a corrupted proof must not count");
    assert!(!detection.detected);
    assert!(detection.inconclusive);
    assert_eq!(detection.stop_reason, Some(StopReason::ProofMismatch));
    assert_eq!(
        detection.proof_checked,
        Some(false),
        "the failed self-check is reported, mirroring witness_validated"
    );
    assert_eq!(
        detection.proof_method,
        Some(ProofMethod::Pdr),
        "the demoted verdict still names the prover that produced it"
    );
}

/// Cross-method agreement over the Table-1 catalogue: for each bug, any
/// conclusive prover verdict must agree with the bounded per-depth
/// baseline — Falsified reproduces the bounded shortest trace, Proved
/// contradicts nothing the bounded sweep found.  Inconclusive prover
/// outcomes (budget artefacts) impose no constraint.
#[test]
fn table1_catalogue_verdicts_agree_with_the_bounded_baseline() {
    let bugs: Vec<Mutation> = Mutation::table1().into_iter().take(2).collect();
    let mut ops = vec![Opcode::Addi];
    ops.extend(bugs.iter().filter_map(|b| b.target_opcode()));
    ops.sort();
    ops.dedup();
    let base = DetectorConfig::builder()
        .processor(ProcessorConfig::tiny().with_opcodes(&ops))
        .bound(3)
        .build();

    let mut falsified_pairs = 0usize;
    for bug in &bugs {
        let bounded = Detector::new(base.clone()).check(Method::SepeSqed, Some(bug));
        for prover in [ProofMethod::KInduction, ProofMethod::Pdr] {
            let config = DetectorConfig::builder()
                .processor(base.processor.clone())
                .bound(3)
                .prove(prover)
                .time_limit(Duration::from_secs(8))
                .build();
            let proven = Detector::new(config).check(Method::SepeSqed, Some(bug));
            check_agreement(&bounded, &proven, &format!("{prover:?} on {}", bug.name));
            falsified_pairs += usize::from(proven.detected);
        }
    }
    assert!(
        falsified_pairs > 0,
        "at least one prover must actually falsify a Table-1 bug here, \
         or the agreement check is vacuous"
    );
}

fn check_agreement(bounded: &Detection, proven: &Detection, label: &str) {
    if proven.proved {
        assert!(
            !bounded.detected,
            "{label}: proved, but the bounded baseline found a counterexample"
        );
    }
    if proven.detected && !bounded.inconclusive {
        assert!(
            bounded.detected,
            "{label}: prover falsified but the bounded sweep (same bound) found nothing"
        );
        assert_eq!(
            proven.trace_len, bounded.trace_len,
            "{label}: both traces are shortest-first, so lengths must match"
        );
    }
}
