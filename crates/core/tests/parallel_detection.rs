//! Integration tests of the parallel detection engine: determinism across
//! worker counts, prompt global cancellation, and portfolio
//! first-finisher-wins agreement.

use std::time::{Duration, Instant};

use sepe_isa::Opcode;
use sepe_processor::{Mutation, ProcessorConfig};
use sepe_sqed::detect::{Detector, DetectorConfig, Method};
use sepe_sqed::parallel::{BatchSpec, DetectionJob, Engine, PortfolioArm};

/// A fast per-bug configuration: tiny processor, the bug's target opcode
/// plus ADDI, shallow bound.  Small enough that the whole Table-1 mutation
/// set sweeps in seconds; the verdicts are still real model-checking
/// verdicts (consistent up to the bound).
fn tiny_config_for(bug: &Mutation, max_bound: usize) -> DetectorConfig {
    let mut opcodes = vec![Opcode::Addi];
    opcodes.extend(bug.target_opcode());
    DetectorConfig {
        processor: ProcessorConfig::tiny().with_opcodes(&opcodes),
        max_bound,
        ..DetectorConfig::default()
    }
}

/// One SEPE-SQED job per Table-1 mutation.
fn table1_jobs(max_bound: usize) -> Vec<DetectionJob> {
    Mutation::table1()
        .iter()
        .map(|bug| {
            DetectionJob::new(
                bug.name.clone(),
                tiny_config_for(bug, max_bound),
                Method::SepeSqed,
                Some(bug.clone()),
            )
        })
        .collect()
}

#[test]
fn four_workers_match_one_worker_on_the_table1_mutation_set() {
    let sequential = Engine::new(1).run(table1_jobs(2)).expect_jobs();
    let parallel = Engine::new(4).run(table1_jobs(2)).expect_jobs();
    assert_eq!(sequential.detections.len(), parallel.detections.len());
    for (i, (seq, par)) in sequential
        .detections
        .iter()
        .zip(&parallel.detections)
        .enumerate()
    {
        assert_eq!(seq.bug, par.bug, "job {i} answers a different bug");
        assert_eq!(seq.detected, par.detected, "verdict diverges on job {i}");
        assert_eq!(
            seq.inconclusive, par.inconclusive,
            "conclusiveness diverges on job {i}"
        );
        assert_eq!(
            seq.bound_reached, par.bound_reached,
            "bound diverges on job {i}"
        );
        assert_eq!(
            seq.trace_len, par.trace_len,
            "trace length diverges on job {i}"
        );
        // The solver is deterministic and each job owns its state, so even
        // the conflict counts must agree bit for bit across worker counts.
        assert_eq!(
            seq.conflicts, par.conflicts,
            "search diverges on job {i} — worker state is leaking between jobs"
        );
    }
    assert_eq!(sequential.stats.cancelled, 0);
    assert_eq!(parallel.stats.cancelled, 0);
}

#[test]
fn global_deadline_stops_all_workers_promptly() {
    // Each job alone would run for minutes (the bound-8 SQED sweep against
    // an SQED-invisible bug explores every depth); the batch budget is a
    // fraction of a second, and the shared flag must cut every in-flight
    // SAT search loose within a short burst of conflicts.
    let bug = Mutation::table1()[0].clone();
    let config = DetectorConfig {
        processor: ProcessorConfig::tiny().with_opcodes(&[Opcode::Add]),
        max_bound: 8,
        ..DetectorConfig::default()
    };
    let jobs: Vec<DetectionJob> = (0..4)
        .map(|i| {
            DetectionJob::new(
                format!("hard-{i}"),
                config.clone(),
                Method::Sqed,
                Some(bug.clone()),
            )
        })
        .collect();
    let start = Instant::now();
    let outcome = Engine::new(2)
        .with_time_limit(Some(Duration::from_millis(300)))
        .run(jobs)
        .expect_jobs();
    let wall = start.elapsed();
    assert!(
        wall < Duration::from_secs(10),
        "cancellation took {wall:?} — workers are not being interrupted"
    );
    assert_eq!(outcome.detections.len(), 4);
    for (i, d) in outcome.detections.iter().enumerate() {
        assert!(
            d.inconclusive && !d.detected,
            "job {i} should be cut off inconclusive"
        );
    }
    assert!(
        outcome.stats.cancelled >= 1,
        "at least the in-flight jobs must report as cancelled"
    );
}

#[test]
fn portfolio_first_finisher_matches_every_arm_run_alone() {
    // The clean design is consistent, so every arm must conclude UNSAT up
    // to the bound; whichever arm finishes first, the portfolio's verdict
    // has to agree with each arm run by itself.
    let job = DetectionJob::new(
        "clean",
        DetectorConfig {
            processor: ProcessorConfig::tiny().with_opcodes(&[Opcode::Add, Opcode::Xori]),
            max_bound: 2,
            ..DetectorConfig::default()
        },
        Method::Sqed,
        None,
    );
    let arms = PortfolioArm::standard();
    let outcome = Engine::new(arms.len())
        .run(BatchSpec::portfolio(job.clone(), arms.clone()))
        .expect_portfolio();
    assert!(outcome.winner < arms.len());
    assert!(!outcome.detection.detected);
    assert!(!outcome.detection.inconclusive);
    assert_eq!(outcome.arms.len(), arms.len());
    for (i, arm) in arms.iter().enumerate() {
        assert_eq!(outcome.arms[i].arm, arm.name, "arm results out of order");
        // Each arm alone, sequentially, with the same knobs.
        let mut config = job.config.clone();
        config.bmc_mode = arm.bmc_mode;
        config.simplify = arm.simplify;
        config.aig = arm.aig;
        let alone = Detector::new(config).check(job.method, None);
        assert!(
            !alone.detected && !alone.inconclusive,
            "arm {} diverges from its solo run",
            arm.name
        );
        assert_eq!(alone.detected, outcome.detection.detected);
    }
}

#[test]
#[ignore = "long formal check on a single-CPU host; run with cargo test -- --ignored"]
fn portfolio_detects_a_real_bug_and_agrees_with_the_arms() {
    // A detected (SAT) verdict through the portfolio: the ADD off-by-one
    // bug is visible to SEPE-SQED within bound 4.
    let bug = Mutation::table1()[0].clone();
    let job = DetectionJob::new(
        "add-bug",
        DetectorConfig {
            processor: ProcessorConfig::tiny().with_opcodes(&[Opcode::Add, Opcode::Addi]),
            max_bound: 4,
            ..DetectorConfig::default()
        },
        Method::SepeSqed,
        Some(bug),
    );
    let arms = PortfolioArm::standard();
    let outcome = Engine::new(arms.len())
        .run(BatchSpec::portfolio(job.clone(), arms.clone()))
        .expect_portfolio();
    assert!(
        outcome.detection.detected,
        "the portfolio must find the bug"
    );
    for (i, arm) in arms.iter().enumerate() {
        let mut config = job.config.clone();
        config.bmc_mode = arm.bmc_mode;
        config.simplify = arm.simplify;
        config.aig = arm.aig;
        let alone = Detector::new(config).check(job.method, job.mutation.as_ref());
        assert!(
            alone.detected,
            "arm {} misses the bug its portfolio found",
            arms[i].name
        );
    }
}
