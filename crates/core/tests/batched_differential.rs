//! Differential suite for the batched in-solver detector: over the Table-1
//! mutation set, the activation-multiplexed shared unrolling must produce
//! verdicts, bounds and trace lengths **bit-identical** to the per-job
//! engine at `jobs = 1` under the same shared configuration — including
//! when one catalogue entry carries an injected fault, in which case the
//! neighbours' answers must be unaffected.

use sepe_isa::Opcode;
use sepe_processor::{Mutation, ProcessorConfig};
use sepe_sqed::batch::CatalogueEntry;
use sepe_sqed::detect::{Detector, DetectorConfig, Method};
use sepe_sqed::fault::FaultPlan;
use sepe_sqed::parallel::{BatchSpec, DetectionJob, Engine, RetryPolicy};
use sepe_tsys::{BmcMode, ProofMethod};

/// The first `n` Table-1 bugs with the shared opcode universe their
/// triggers need (plus ADDI for operand setup), per-depth so batched and
/// per-job sweeps report shortest counterexamples alike.
fn shared_setup(n: usize, max_bound: usize) -> (DetectorConfig, Vec<Mutation>) {
    let bugs: Vec<Mutation> = Mutation::table1().into_iter().take(n).collect();
    let mut ops = vec![Opcode::Addi];
    ops.extend(bugs.iter().filter_map(|b| b.target_opcode()));
    ops.sort();
    ops.dedup();
    let config = DetectorConfig::builder()
        .processor(ProcessorConfig::tiny().with_opcodes(&ops))
        .bound(max_bound)
        .bmc_mode(BmcMode::PerDepth)
        .build();
    (config, bugs)
}

fn catalogue_of(bugs: &[Mutation]) -> Vec<CatalogueEntry> {
    bugs.iter()
        .map(|b| CatalogueEntry::new(b.name.clone(), b.clone()))
        .collect()
}

fn jobs_of(bugs: &[Mutation], config: &DetectorConfig, method: Method) -> Vec<DetectionJob> {
    bugs.iter()
        .map(|b| DetectionJob::new(b.name.clone(), config.clone(), method, Some(b.clone())))
        .collect()
}

/// Batched vs per-job over the Table-1 set: same verdict, same bound, same
/// counterexample length for every bug, for both methods.
#[test]
fn batched_matches_per_job_over_the_table1_set() {
    // Bound 3 is the sweet spot: SEPE-SQED detects the ADD bug there (a
    // length-3 counterexample) while the SUB bug stays clean, so the suite
    // exercises both the witness path and the proven-clean path — and the
    // SQED consistency sweep is still sub-second per depth.
    let (config, bugs) = shared_setup(2, 3);
    for method in [Method::Sqed, Method::SepeSqed] {
        let batched = Engine::new(1)
            .run(BatchSpec::catalogue(
                method,
                config.clone(),
                catalogue_of(&bugs),
            ))
            .expect_catalogue();
        let per_job = Engine::new(1)
            .run(jobs_of(&bugs, &config, method))
            .expect_jobs();
        assert_eq!(batched.stats.encodes, 1, "one shared encoding ({method})");
        assert_eq!(batched.stats.fallbacks, 0, "no fallbacks ({method})");
        for ((bug, b), p) in bugs
            .iter()
            .zip(&batched.detections)
            .zip(&per_job.detections)
        {
            assert_eq!(b.detected, p.detected, "{method} verdict on {}", bug.name);
            assert_eq!(
                b.inconclusive, p.inconclusive,
                "{method} conclusiveness on {}",
                bug.name
            );
            assert_eq!(
                b.bound_reached, p.bound_reached,
                "{method} bound on {}",
                bug.name
            );
            assert_eq!(
                b.trace_len, p.trace_len,
                "{method} counterexample length on {}",
                bug.name
            );
        }
    }
}

/// A panic planted in one entry poisons only the shared session, never the
/// catalogue's answers: the failed entry resumes on the retry ladder, the
/// bystanders fall back to fresh per-job runs, and every final verdict is
/// bit-identical to a fault-free per-job sweep.
#[test]
fn a_faulted_entry_leaves_neighbour_verdicts_bit_identical() {
    // The busy bound-2 SQED workload: its queries conflict early, so the
    // conflict-indexed panic hook always fires while the faulted entry's
    // query runs.  The bomb goes first so learnt-clause reuse cannot make
    // its queries conflict-free.
    let bug = Mutation::table1()[0].clone();
    let config = DetectorConfig::builder()
        .processor(ProcessorConfig::tiny().with_opcodes(&[Opcode::Add, Opcode::Xori]))
        .bound(2)
        .bmc_mode(BmcMode::PerDepth)
        .retry(RetryPolicy::ladder(2))
        .build();
    let mut catalogue: Vec<CatalogueEntry> = (0..3)
        .map(|i| CatalogueEntry::new(format!("entry-{i}"), bug.clone()))
        .collect();
    catalogue[0] = catalogue[0].clone().with_fault(FaultPlan::panic_at(5));

    let batched = Engine::new(1)
        .run(BatchSpec::catalogue(
            Method::Sqed,
            config.clone(),
            catalogue,
        ))
        .expect_catalogue();
    let reference = Engine::new(1)
        .run(vec![DetectionJob::new(
            "reference",
            config,
            Method::Sqed,
            Some(bug),
        )])
        .expect_jobs();
    let clean = &reference.detections[0];

    assert_eq!(batched.stats.panics, 1, "the bomb fired exactly once");
    assert_eq!(
        batched.stats.fallbacks, 3,
        "the failed entry resumes, both bystanders run fresh"
    );
    assert_eq!(
        batched.stats.retries, 1,
        "only the failed entry takes a second attempt"
    );
    assert_eq!(
        batched.stats.encodes, 4,
        "the shared encoding plus one re-encode per fallback attempt"
    );
    assert_eq!(batched.reports[0].panicked_attempts, 1);
    assert_eq!(batched.reports[0].attempts, 2, "shared attempt + one rung");
    for (i, d) in batched.detections.iter().enumerate() {
        assert_eq!(d.detected, clean.detected, "verdict on entry {i}");
        assert_eq!(
            d.inconclusive, clean.inconclusive,
            "conclusiveness on entry {i}"
        );
        assert_eq!(d.bound_reached, clean.bound_reached, "bound on entry {i}");
        assert_eq!(d.trace_len, clean.trace_len, "trace length on entry {i}");
    }
}

/// With a prover configured, every entry the shared bounded pass leaves
/// undetected gets an unbounded re-run — and each final verdict (detected,
/// proved, or merely bounded-clean) must match the scalar detector run
/// with the identical configuration.
#[test]
fn batched_prove_pass_matches_the_scalar_detector() {
    let (config, bugs) = shared_setup(2, 3);
    let config = DetectorConfig {
        prove: Some(ProofMethod::KInduction),
        ..config
    };
    let batched = Engine::new(1)
        .run(BatchSpec::catalogue(
            Method::SepeSqed,
            config.clone(),
            catalogue_of(&bugs),
        ))
        .expect_catalogue();

    let survivors = batched.detections.iter().filter(|d| d.detected).count();
    assert_eq!(
        batched.stats.proof_attempts,
        (bugs.len() - survivors) as u64,
        "exactly the entries the bounded pass left undetected get a proof attempt"
    );
    assert!(
        batched.stats.proof_attempts > 0,
        "the bound-3 sweep leaves at least one entry for the prover"
    );

    for (bug, b) in bugs.iter().zip(&batched.detections) {
        let scalar = Detector::new(config.clone()).check(Method::SepeSqed, Some(bug));
        assert_eq!(b.detected, scalar.detected, "verdict on {}", bug.name);
        assert_eq!(
            b.inconclusive, scalar.inconclusive,
            "conclusiveness on {}",
            bug.name
        );
        assert_eq!(b.proved, scalar.proved, "proved flag on {}", bug.name);
        assert_eq!(
            b.proof_method, scalar.proof_method,
            "proof method on {}",
            bug.name
        );
        assert_eq!(
            b.trace_len, scalar.trace_len,
            "trace length on {}",
            bug.name
        );
    }
}
