//! EDDI-V: error detection using duplicated instructions for validation
//! (the transformation behind plain SQED).

use sepe_isa::Instr;
use sepe_processor::MutantCore;

use crate::mapping::RegisterMapping;

/// The EDDI-V transformation: every original instruction is duplicated into
/// the shadow register half, and memory accesses of duplicates go to the
/// shadow memory bank.
#[derive(Debug, Clone)]
pub struct EddiV {
    mapping: RegisterMapping,
}

impl Default for EddiV {
    fn default() -> Self {
        Self::new()
    }
}

impl EddiV {
    /// Creates the transformation with the standard SQED register split.
    pub fn new() -> Self {
        EddiV {
            mapping: RegisterMapping::sqed(),
        }
    }

    /// The register mapping in use.
    pub fn mapping(&self) -> &RegisterMapping {
        &self.mapping
    }

    /// The duplicate of an original instruction (all registers shifted into
    /// the shadow half).
    ///
    /// # Panics
    ///
    /// Panics if the instruction uses registers outside the original set.
    pub fn duplicate(&self, instr: &Instr) -> Instr {
        instr.map_registers(|r| self.mapping.shadow(r))
    }

    /// Whether an original instruction is legal for a QED run (its registers
    /// all lie in the original set).
    pub fn is_legal_original(&self, instr: &Instr) -> bool {
        let mut regs = instr.sources();
        if let Some(rd) = instr.dest() {
            regs.push(rd);
        }
        regs.into_iter().all(|r| self.mapping.is_original(r))
    }

    /// Runs a QED test concretely: executes each original instruction and its
    /// duplicate on `core` (originals on memory bank 0, duplicates on bank 1)
    /// and reports whether the final state is QED-consistent.
    pub fn concrete_check(&self, core: &mut MutantCore, originals: &[Instr]) -> bool {
        for instr in originals {
            assert!(
                self.is_legal_original(instr),
                "{instr} uses non-original registers"
            );
            core.commit_banked(instr, false);
            core.commit_banked(&self.duplicate(instr), true);
        }
        self.is_consistent(core)
    }

    /// The QED-consistency predicate over a concrete core state.
    pub fn is_consistent(&self, core: &MutantCore) -> bool {
        let regs_ok = self
            .mapping
            .consistency_pairs()
            .into_iter()
            .all(|(o, e)| core.reg(o) == core.reg(e));
        let half = core.config().mem_words / 2;
        let mem_ok = (0..half).all(|w| core.mem_word(w) == core.mem_word(w + half));
        regs_ok && mem_ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepe_isa::{Opcode, Reg};
    use sepe_processor::{Mutation, ProcessorConfig};

    #[test]
    fn duplicate_shifts_every_register() {
        let eddiv = EddiV::new();
        let d = eddiv.duplicate(&Instr::add(Reg(1), Reg(2), Reg(3)));
        assert_eq!(d, Instr::add(Reg(17), Reg(18), Reg(19)));
        let d = eddiv.duplicate(&Instr::sw(Reg(2), Reg(3), 8));
        assert_eq!(d, Instr::sw(Reg(18), Reg(19), 8));
        assert!(eddiv.is_legal_original(&Instr::add(Reg(1), Reg(2), Reg(3))));
        assert!(!eddiv.is_legal_original(&Instr::add(Reg(1), Reg(2), Reg(20))));
    }

    #[test]
    fn clean_core_stays_consistent() {
        let eddiv = EddiV::new();
        let mut core = MutantCore::new(ProcessorConfig::default(), None);
        let program = vec![
            Instr::addi(Reg(1), Reg(0), 7),
            Instr::addi(Reg(2), Reg(0), 9),
            Instr::add(Reg(3), Reg(1), Reg(2)),
            Instr::sw(Reg(1), Reg(3), 4),
            Instr::lw(Reg(4), Reg(1), 4),
            Instr::sub(Reg(5), Reg(4), Reg(2)),
        ];
        assert!(eddiv.concrete_check(&mut core, &program));
    }

    #[test]
    fn single_instruction_bug_stays_hidden_from_eddiv() {
        // The Table-1 ADD bug corrupts original and duplicate identically, so
        // the self-consistency property cannot see it.
        let eddiv = EddiV::new();
        let bug = Mutation::table1()[0].clone();
        let mut core = MutantCore::new(ProcessorConfig::default(), Some(bug));
        let program = vec![
            Instr::addi(Reg(1), Reg(0), 3),
            Instr::addi(Reg(2), Reg(0), 4),
            Instr::add(Reg(3), Reg(1), Reg(2)),
        ];
        assert!(
            eddiv.concrete_check(&mut core, &program),
            "EDDI-V must remain consistent under a single-instruction bug"
        );
        // ... even though the architectural result is wrong:
        assert_eq!(core.reg(Reg(3)), 8, "the ADD bug really fired");
    }

    #[test]
    fn multi_instruction_bug_can_break_consistency() {
        // multi-04: an ADD immediately after a MUL drops its write-back.  By
        // interleaving original MUL, original ADD, duplicate MUL, duplicate
        // ADD, only the original ADD follows a MUL *in commit order*... both
        // orderings trigger here, so interleave differently: run the original
        // pair back-to-back and separate the duplicates with another
        // instruction pattern.
        let bug = Mutation::figure4()
            .into_iter()
            .find(|b| b.name == "multi-04-add-after-mul")
            .expect("bug exists");
        let eddiv = EddiV::new();
        let mut core = MutantCore::new(ProcessorConfig::default(), Some(bug));
        // Manual interleaving: orig MUL, orig ADD (bug fires, write dropped),
        // dup MUL, orig XOR, dup ADD (previous commit is XOR, no bug),
        // dup XOR.
        let mul = Instr::reg_reg(Opcode::Mul, Reg(1), Reg(2), Reg(3));
        let add = Instr::add(Reg(4), Reg(5), Reg(6));
        let xor = Instr::reg_reg(Opcode::Xor, Reg(7), Reg(5), Reg(6));
        core.set_reg(Reg(5), 11);
        core.set_reg(Reg(21), 11);
        core.commit_banked(&mul, false);
        core.commit_banked(&add, false);
        core.commit_banked(&eddiv.duplicate(&mul), true);
        core.commit_banked(&xor, false);
        core.commit_banked(&eddiv.duplicate(&add), true);
        core.commit_banked(&eddiv.duplicate(&xor), true);
        assert!(
            !eddiv.is_consistent(&core),
            "x4 != x20 exposes the dropped write-back"
        );
    }
}
