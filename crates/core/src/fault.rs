//! Deterministic fault injection for detection runs.
//!
//! A [`FaultPlan`] describes one failure to force during a detection run —
//! a panic at the k-th SAT conflict, a faked memory-cap breach, or a
//! cancellation at a chosen BMC depth.  Everything is counter-indexed,
//! never wall-clock, so an injected failure reproduces bit-identically on
//! any machine: the fault-injection test suite and the CI seed matrix rely
//! on this to exercise every recovery path of the engine (panic isolation,
//! budget classification, retry-with-degradation) without timing
//! assertions.
//!
//! Plans are either written out explicitly ([`panic_at`](FaultPlan::panic_at),
//! [`memory_breach_at`](FaultPlan::memory_breach_at),
//! [`cancel_at`](FaultPlan::cancel_at)) or derived from a seed
//! ([`seeded`](FaultPlan::seeded)) with a small std-only xorshift mix —
//! no RNG dependency, same plan for the same seed forever.

use sepe_smt::FaultHooks;
use sepe_tsys::BmcFaultPlan;

/// One deterministic failure to inject into a detection run.
///
/// The default plan injects nothing.  By default a plan applies only to the
/// *first* attempt at a job — the retry ladder of
/// [`Engine`](crate::Engine) re-runs the job fault-free, so
/// the "failed once, retried, succeeded degraded" path is itself
/// deterministic; set [`every_attempt`](FaultPlan::every_attempt) to keep
/// the fault armed on every retry instead (exhausting the ladder).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Force a panic inside the SAT search at exactly this conflict count.
    pub panic_at_conflict: Option<u64>,
    /// Fake a memory-budget breach at exactly this conflict count (the real
    /// budget samples 1-in-64 conflicts; the fake is exact).
    pub memory_breach_at_conflict: Option<u64>,
    /// Act as a raised cancellation flag when the BMC run reaches this
    /// depth.
    pub cancel_at_depth: Option<usize>,
    /// Corrupt the extracted counterexample before the witness self-check
    /// sees it — exercises the
    /// [`StopReason::WitnessMismatch`](sepe_smt::StopReason::WitnessMismatch)
    /// demotion path deterministically.
    pub corrupt_witness: bool,
    /// Corrupt the prover's certificate before the proof self-check sees
    /// it — exercises the
    /// [`StopReason::ProofMismatch`](sepe_smt::StopReason::ProofMismatch)
    /// demotion path deterministically (only observable in prove mode).
    pub corrupt_proof: bool,
    /// Protocol layer (service crate): sever the connection after writing
    /// only half of the k-th frame this plan is applied to.  Counter-indexed
    /// per connection, like everything else here.
    pub drop_connection_at_frame: Option<u64>,
    /// Protocol layer: write a frame header promising the full payload but
    /// deliver only half of the k-th frame's bytes, then close — a torn
    /// frame as seen by the peer.
    pub truncate_frame_at: Option<u64>,
    /// Protocol layer: stall for a fixed short delay before reading the
    /// k-th frame (exercises the peer's read deadline without a flaky
    /// wall-clock assertion — the delay is fixed, the deadline is the knob).
    pub delay_read_at_frame: Option<u64>,
    /// Keep the fault armed on retries instead of only the first attempt.
    pub every_attempt: bool,
}

impl FaultPlan {
    /// A plan that panics at the `k`-th SAT conflict.
    pub fn panic_at(k: u64) -> FaultPlan {
        FaultPlan {
            panic_at_conflict: Some(k),
            ..FaultPlan::default()
        }
    }

    /// A plan that fakes a memory-cap breach at the `k`-th SAT conflict.
    pub fn memory_breach_at(k: u64) -> FaultPlan {
        FaultPlan {
            memory_breach_at_conflict: Some(k),
            ..FaultPlan::default()
        }
    }

    /// A plan that trips cancellation when the BMC run reaches `depth`.
    pub fn cancel_at(depth: usize) -> FaultPlan {
        FaultPlan {
            cancel_at_depth: Some(depth),
            ..FaultPlan::default()
        }
    }

    /// A plan that corrupts the extracted counterexample so the witness
    /// self-check must demote the verdict.
    pub fn corrupt_witness() -> FaultPlan {
        FaultPlan {
            corrupt_witness: true,
            ..FaultPlan::default()
        }
    }

    /// A plan that corrupts the prover's certificate so the proof
    /// self-check must demote the verdict.
    pub fn corrupt_proof() -> FaultPlan {
        FaultPlan {
            corrupt_proof: true,
            ..FaultPlan::default()
        }
    }

    /// A plan that severs the connection halfway through writing the `k`-th
    /// protocol frame.
    pub fn drop_mid_frame(k: u64) -> FaultPlan {
        FaultPlan {
            drop_connection_at_frame: Some(k),
            ..FaultPlan::default()
        }
    }

    /// A plan that truncates the `k`-th protocol frame (full header, half
    /// the promised payload, then close).
    pub fn truncate_frame(k: u64) -> FaultPlan {
        FaultPlan {
            truncate_frame_at: Some(k),
            ..FaultPlan::default()
        }
    }

    /// A plan that delays reading the `k`-th protocol frame.
    pub fn delay_read(k: u64) -> FaultPlan {
        FaultPlan {
            delay_read_at_frame: Some(k),
            ..FaultPlan::default()
        }
    }

    /// Keeps the fault armed on every retry attempt (by default it fires
    /// only on the first, so retries run clean).
    pub fn every_attempt(mut self) -> FaultPlan {
        self.every_attempt = true;
        self
    }

    /// Derives a plan from a seed: a std-only xorshift mix picks the fault
    /// kind and its trigger point.  Same seed, same plan, forever — the CI
    /// fault-injection job sweeps a seed matrix through here.
    pub fn seeded(seed: u64) -> FaultPlan {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let kind = next() % 3;
        let k = 1 + next() % 16;
        match kind {
            0 => FaultPlan::panic_at(k),
            1 => FaultPlan::memory_breach_at(k),
            _ => FaultPlan::cancel_at(1 + (k as usize % 4)),
        }
    }

    /// Derives a *protocol-layer* plan from a seed: picks one of the three
    /// wire faults (drop mid-frame, truncate, delay) and its frame index.
    /// Kept separate from [`seeded`](FaultPlan::seeded) so the existing
    /// solver-fault seed matrix keeps its plans bit-for-bit.
    pub fn seeded_protocol(seed: u64) -> FaultPlan {
        let mut s = seed
            .wrapping_mul(0xD6E8_FEB8_6659_FD93)
            .wrapping_add(0x2545_F491_4F6C_DD1D);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let kind = next() % 3;
        let k = 1 + next() % 4;
        match kind {
            0 => FaultPlan::drop_mid_frame(k),
            1 => FaultPlan::truncate_frame(k),
            _ => FaultPlan::delay_read(k),
        }
    }

    /// Whether the plan carries any protocol-layer fault.
    pub fn has_protocol_fault(&self) -> bool {
        self.drop_connection_at_frame.is_some()
            || self.truncate_frame_at.is_some()
            || self.delay_read_at_frame.is_some()
    }

    /// Whether the plan injects nothing (the default).
    pub fn is_empty(&self) -> bool {
        *self == FaultPlan::default()
    }

    /// Lowers the plan to the BMC layer's fault configuration.
    pub fn to_bmc(self) -> BmcFaultPlan {
        BmcFaultPlan {
            sat: FaultHooks {
                panic_at_conflict: self.panic_at_conflict,
                memory_breach_at_conflict: self.memory_breach_at_conflict,
            },
            cancel_at_depth: self.cancel_at_depth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_nonempty() {
        for seed in 0..64 {
            let a = FaultPlan::seeded(seed);
            let b = FaultPlan::seeded(seed);
            assert_eq!(a, b, "seed {seed} must reproduce");
            assert!(!a.is_empty(), "seed {seed} must inject something");
        }
    }

    #[test]
    fn seeded_plans_cover_every_fault_kind() {
        let plans: Vec<FaultPlan> = (0..64).map(FaultPlan::seeded).collect();
        assert!(plans.iter().any(|p| p.panic_at_conflict.is_some()));
        assert!(plans.iter().any(|p| p.memory_breach_at_conflict.is_some()));
        assert!(plans.iter().any(|p| p.cancel_at_depth.is_some()));
    }

    #[test]
    fn seeded_protocol_plans_are_deterministic_and_cover_every_kind() {
        let plans: Vec<FaultPlan> = (0..64).map(FaultPlan::seeded_protocol).collect();
        for (seed, plan) in plans.iter().enumerate() {
            assert_eq!(*plan, FaultPlan::seeded_protocol(seed as u64));
            assert!(plan.has_protocol_fault());
            assert!(
                plan.to_bmc().sat.is_empty(),
                "wire faults stay off the solver"
            );
        }
        assert!(plans.iter().any(|p| p.drop_connection_at_frame.is_some()));
        assert!(plans.iter().any(|p| p.truncate_frame_at.is_some()));
        assert!(plans.iter().any(|p| p.delay_read_at_frame.is_some()));
    }

    #[test]
    fn corrupt_witness_plan_is_nonempty_but_not_a_wire_fault() {
        let plan = FaultPlan::corrupt_witness();
        assert!(!plan.is_empty());
        assert!(!plan.has_protocol_fault());
        assert!(plan.to_bmc().sat.is_empty());
    }

    #[test]
    fn lowering_preserves_the_trigger_points() {
        let bmc = FaultPlan::panic_at(7).to_bmc();
        assert_eq!(bmc.sat.panic_at_conflict, Some(7));
        assert_eq!(bmc.cancel_at_depth, None);
        let bmc = FaultPlan::cancel_at(3).to_bmc();
        assert!(bmc.sat.is_empty());
        assert_eq!(bmc.cancel_at_depth, Some(3));
    }
}
