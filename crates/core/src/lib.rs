//! SEPE-SQED: symbolic quick error detection by semantically equivalent
//! program execution.
//!
//! This is the core crate of the reproduction.  It implements both
//! verification methods evaluated in the paper:
//!
//! * **SQED** (the baseline) — the EDDI-V transformation duplicates every
//!   original instruction into the shadow register half (`x16`–`x31`) and the
//!   self-consistency property `QED-ready ⇒ regs[i] == regs[i+16]` is model
//!   checked,
//! * **SEPE-SQED** (the contribution) — the EDSEP-V transformation replaces
//!   the duplicate with a *semantically equivalent program* drawn from the
//!   equivalence database (synthesized by `sepe-synth` or curated), using the
//!   O/E/T register split of Section 5, and the property
//!   `QED-ready ⇒ ⋀_{i=0..12} regs[i] == regs[i+13]` is checked instead.
//!
//! Both methods are driven by [`detect::Detector`], which wires the
//! symbolic processor model (`sepe-processor`), the QED module built here and
//! the bounded model checker (`sepe-tsys`) together, and reports whether an
//! injected bug was detected, in how much time, and with how long a
//! counterexample trace.
//!
//! # Example
//!
//! ```
//! use sepe_processor::{Mutation, ProcessorConfig};
//! use sepe_sqed::detect::{Detector, DetectorConfig, Method};
//!
//! // A Table-1 bug: the OR result has a bit flipped.
//! let bug = Mutation::table1()
//!     .into_iter()
//!     .find(|b| b.target_opcode() == Some(sepe_isa::Opcode::Or))
//!     .expect("OR bug exists");
//! let config = DetectorConfig {
//!     // bit 4 of the injected corruption needs an 8-bit data path
//!     processor: ProcessorConfig { xlen: 8, mem_words: 4, ..ProcessorConfig::default() }
//!         .with_opcodes(&[sepe_isa::Opcode::Or]),
//!     max_bound: 4,
//!     ..DetectorConfig::default()
//! };
//! let detection = Detector::new(config).check(Method::SepeSqed, Some(&bug));
//! assert!(detection.detected, "SEPE-SQED catches single-instruction bugs");
//! ```

pub mod batch;
pub mod detect;
pub mod eddiv;
pub mod edsepv;
pub mod equivalence;
pub mod fault;
pub mod mapping;
pub mod parallel;
pub mod qed;
pub mod selfcheck;

pub use batch::{BatchedDetector, BatchedOutcome, BatchedStats, CatalogueEntry};
pub use detect::{Detection, Detector, DetectorConfig, Method};
pub use eddiv::EddiV;
pub use edsepv::EdsepV;
pub use equivalence::EquivalenceDb;
pub use fault::FaultPlan;
pub use mapping::RegisterMapping;
#[allow(deprecated)]
pub use parallel::ParallelEngine;
pub use parallel::{
    BatchOutcome, BatchSpec, BatchStats, DegradationRung, DetectionJob, Engine, EngineOutcome,
    JobOutcome, JobReport, PortfolioArm, PortfolioOutcome, RetryPolicy, StopReasonTally,
};
