//! The equivalence database: original opcode → semantically equivalent
//! program template.
//!
//! Templates come from two sources: the synthesis drivers of `sepe-synth`
//! (the paper's HPF-CEGIS pipeline) and a curated set of hand-verified
//! identities.  The curated set means the verification experiments can run
//! without first running synthesis, and it covers the multiply instructions
//! that the paper routes around the synthesizer via CIC components.

use std::collections::HashMap;

use sepe_isa::Opcode;
use sepe_synth::program::{EquivTemplate, ImmSlot, Slot, TemplateInstr};

/// Maps opcodes to their chosen semantically equivalent program.
#[derive(Debug, Clone, Default)]
pub struct EquivalenceDb {
    templates: HashMap<Opcode, EquivTemplate>,
}

fn rr(opcode: Opcode, dest: Slot, src1: Slot, src2: Slot) -> TemplateInstr {
    TemplateInstr {
        opcode,
        dest,
        src1,
        src2,
        imm: ImmSlot::Const(0),
    }
}

fn ri(opcode: Opcode, dest: Slot, src1: Slot, imm: ImmSlot) -> TemplateInstr {
    TemplateInstr {
        opcode,
        dest,
        src1,
        src2: Slot::Zero,
        imm,
    }
}

impl EquivalenceDb {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// The curated database covering every non-memory opcode of the subset,
    /// with RV32 (32-bit) constants.
    ///
    /// Each template avoids the original instruction's own datapath whenever
    /// the instruction appears in the paper's Table 1, so single-instruction
    /// bugs on those opcodes cannot corrupt both sides identically.
    pub fn curated() -> Self {
        Self::curated_for_width(32)
    }

    /// The curated database with sign-bit and shift constants adjusted to a
    /// reduced data-path width (used by the fast benchmark configurations;
    /// `width` must be a power of two between 8 and 32).
    pub fn curated_for_width(width: u32) -> Self {
        use ImmSlot::{Const, FromOriginal};
        use Opcode::*;
        use Slot::{Dest, Rs1, Rs2, Temp, Zero};
        assert!(
            (4..=32).contains(&width) && width.is_power_of_two(),
            "unsupported width"
        );
        // an instruction materialising the single sign bit of the data path
        let sign_bit_instr = |dest: Slot| {
            if width > 12 {
                TemplateInstr {
                    opcode: Lui,
                    dest,
                    src1: Zero,
                    src2: Zero,
                    imm: Const(1 << (width - 13)),
                }
            } else {
                ri(Addi, dest, Zero, Const(-(1 << (width - 1))))
            }
        };
        let msb = width as i32 - 1;
        let mut db = EquivalenceDb::new();
        let mut add = |op: Opcode, instrs: Vec<TemplateInstr>, names: Vec<&str>| {
            db.templates.insert(
                op,
                EquivTemplate {
                    for_opcode: op,
                    instrs,
                    component_names: names.into_iter().map(String::from).collect(),
                },
            );
        };

        // ADD rd,rs1,rs2  ==  rs1 - (0 - rs2)
        add(
            Add,
            vec![rr(Sub, Temp(0), Zero, Rs2), rr(Sub, Dest, Rs1, Temp(0))],
            vec!["SUB", "SUB"],
        );
        // SUB: Listing 1 of the paper.
        add(
            Sub,
            vec![
                ri(Xori, Temp(0), Rs1, Const(-1)),
                rr(Add, Temp(1), Temp(0), Rs2),
                ri(Xori, Dest, Temp(1), Const(-1)),
            ],
            vec!["XORI", "ADD", "XORI"],
        );
        // SLL via a copied shift amount (SLL is not a Table-1 target).
        add(
            Sll,
            vec![rr(Add, Temp(0), Rs2, Zero), rr(Sll, Dest, Rs1, Temp(0))],
            vec!["ADD", "SLL"],
        );
        // SLT via the unsigned comparison after biasing both operands.
        add(
            Slt,
            vec![
                sign_bit_instr(Temp(0)),
                rr(Add, Temp(1), Rs1, Temp(0)),
                rr(Add, Temp(2), Rs2, Temp(0)),
                rr(Sltu, Dest, Temp(1), Temp(2)),
            ],
            vec!["LUI", "ADD", "ADD", "SLTU"],
        );
        // SLTU via the signed comparison after flipping the sign bits.
        add(
            Sltu,
            vec![
                sign_bit_instr(Temp(0)),
                rr(Xor, Temp(1), Rs1, Temp(0)),
                rr(Xor, Temp(2), Rs2, Temp(0)),
                rr(Slt, Dest, Temp(1), Temp(2)),
            ],
            vec!["LUI", "XOR", "XOR", "SLT"],
        );
        // XOR == (rs1 | rs2) & ~(rs1 & rs2)
        add(
            Xor,
            vec![
                rr(Or, Temp(0), Rs1, Rs2),
                rr(And, Temp(1), Rs1, Rs2),
                ri(Xori, Temp(2), Temp(1), Const(-1)),
                rr(And, Dest, Temp(0), Temp(2)),
            ],
            vec!["OR", "AND", "XORI", "AND"],
        );
        // SRL via a copied shift amount.
        add(
            Srl,
            vec![rr(Add, Temp(0), Rs2, Zero), rr(Srl, Dest, Rs1, Temp(0))],
            vec!["ADD", "SRL"],
        );
        // SRA == (rs1 >>u sh) | (sign ? ~(~0 >>u sh) : 0), built without SRA.
        add(
            Sra,
            vec![
                ri(Addi, Temp(0), Zero, Const(-1)),
                rr(Srl, Temp(1), Temp(0), Rs2),
                ri(Xori, Temp(2), Temp(1), Const(-1)),
                ri(Srai, Temp(3), Rs1, Const(msb)),
                rr(And, Temp(4), Temp(3), Temp(2)),
                rr(Srl, Temp(5), Rs1, Rs2),
                rr(Or, Dest, Temp(5), Temp(4)),
            ],
            vec!["ADDI", "SRL", "XORI", "SRAI", "AND", "SRL", "OR"],
        );
        // OR == (rs1 ^ rs2) + (rs1 & rs2)
        add(
            Or,
            vec![
                rr(Xor, Temp(0), Rs1, Rs2),
                rr(And, Temp(1), Rs1, Rs2),
                rr(Add, Dest, Temp(0), Temp(1)),
            ],
            vec!["XOR", "AND", "ADD"],
        );
        // AND == (rs1 | rs2) - (rs1 ^ rs2)
        add(
            And,
            vec![
                rr(Or, Temp(0), Rs1, Rs2),
                rr(Xor, Temp(1), Rs1, Rs2),
                rr(Sub, Dest, Temp(0), Temp(1)),
            ],
            vec!["OR", "XOR", "SUB"],
        );
        // MUL / MULHU / MULHSU via a copied operand (not Table-1 targets).
        add(
            Mul,
            vec![rr(Add, Temp(0), Rs2, Zero), rr(Mul, Dest, Rs1, Temp(0))],
            vec!["ADD", "MUL"],
        );
        add(
            Mulhu,
            vec![rr(Add, Temp(0), Rs2, Zero), rr(Mulhu, Dest, Rs1, Temp(0))],
            vec!["ADD", "MULHU"],
        );
        add(
            Mulhsu,
            vec![rr(Add, Temp(0), Rs2, Zero), rr(Mulhsu, Dest, Rs1, Temp(0))],
            vec!["ADD", "MULHSU"],
        );
        // MULH == MULHU adjusted for the operand signs (no MULH used).
        add(
            Mulh,
            vec![
                ri(Srai, Temp(0), Rs1, Const(msb)),
                rr(And, Temp(1), Temp(0), Rs2),
                ri(Srai, Temp(2), Rs2, Const(msb)),
                rr(And, Temp(3), Temp(2), Rs1),
                rr(Mulhu, Temp(4), Rs1, Rs2),
                rr(Sub, Temp(5), Temp(4), Temp(1)),
                rr(Sub, Dest, Temp(5), Temp(3)),
            ],
            vec!["SRAI", "AND", "SRAI", "AND", "MULHU", "SUB", "SUB"],
        );
        // Immediate forms: materialise the immediate, then use the R-type
        // datapath instead of the immediate datapath.
        let imm_pairs = [
            (Addi, Add),
            (Slti, Slt),
            (Sltiu, Sltu),
            (Xori, Xor),
            (Ori, Or),
            (Andi, And),
            (Slli, Sll),
            (Srli, Srl),
            (Srai, Sra),
        ];
        for (imm_op, reg_op) in imm_pairs {
            add(
                imm_op,
                vec![
                    ri(Addi, Temp(0), Zero, FromOriginal),
                    rr(reg_op, Dest, Rs1, Temp(0)),
                ],
                vec!["ADDI", "R-TYPE"],
            );
        }
        // LUI: materialise in a temporary, move through the adder.
        add(
            Lui,
            vec![
                TemplateInstr {
                    opcode: Lui,
                    dest: Temp(0),
                    src1: Zero,
                    src2: Zero,
                    imm: FromOriginal,
                },
                rr(Add, Dest, Temp(0), Zero),
            ],
            vec!["LUI", "ADD"],
        );
        db
    }

    /// Number of templates.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }

    /// The template for an opcode, if present.
    pub fn template(&self, opcode: Opcode) -> Option<&EquivTemplate> {
        self.templates.get(&opcode)
    }

    /// Inserts (or replaces) a template, e.g. one produced by the synthesis
    /// drivers.
    pub fn insert(&mut self, template: EquivTemplate) {
        self.templates.insert(template.for_opcode, template);
    }

    /// The opcodes covered by the database.
    pub fn opcodes(&self) -> Vec<Opcode> {
        let mut ops: Vec<Opcode> = self.templates.keys().copied().collect();
        ops.sort();
        ops
    }

    /// The maximum template length in the database (the QED module sizes its
    /// dispatch queue from this).
    pub fn max_template_len(&self) -> usize {
        self.templates.values().map(|t| t.len()).max().unwrap_or(1)
    }

    /// Whether a template avoids using its own original opcode (the property
    /// that makes single-instruction bugs on that opcode detectable).
    pub fn avoids_own_opcode(&self, opcode: Opcode) -> bool {
        self.template(opcode)
            .map(|t| t.instrs.iter().all(|i| i.opcode != opcode))
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepe_isa::OperandKind;

    #[test]
    fn curated_db_covers_every_non_memory_opcode() {
        let db = EquivalenceDb::curated();
        for op in Opcode::ALL {
            if op.touches_memory() {
                assert!(db.template(op).is_none());
            } else {
                assert!(db.template(op).is_some(), "missing template for {op}");
            }
        }
        assert_eq!(db.len(), 24);
        assert!(db.max_template_len() >= 3);
        assert!(db.max_template_len() <= 7);
    }

    #[test]
    fn every_curated_template_is_semantically_equivalent() {
        let db = EquivalenceDb::curated();
        for op in db.opcodes() {
            let template = db.template(op).expect("template exists");
            let imms: Vec<i32> = match op.operand_kind() {
                OperandKind::RegImm => vec![-2048, -1, 0, 1, 5, 2047],
                OperandKind::RegShamt => vec![0, 1, 13, 31],
                OperandKind::Upper => vec![0, 1, 0x12345, 0xfffff],
                _ => vec![0],
            };
            for imm in imms {
                assert_eq!(
                    template.differential_check(imm, 300, 0xc0ffee ^ imm as u64),
                    0,
                    "template for {op} disagrees with the ISA semantics at imm={imm}"
                );
            }
        }
    }

    #[test]
    fn table1_opcodes_avoid_their_own_datapath() {
        let db = EquivalenceDb::curated();
        // the Table-1 single-instruction bug targets (minus SW, which the
        // EDSEP-V module handles natively)
        for op in [
            Opcode::Add,
            Opcode::Sub,
            Opcode::Xor,
            Opcode::Or,
            Opcode::And,
            Opcode::Slt,
            Opcode::Sltu,
            Opcode::Sra,
            Opcode::Mulh,
            Opcode::Xori,
            Opcode::Slli,
            Opcode::Srai,
        ] {
            assert!(
                db.avoids_own_opcode(op),
                "the equivalent program for {op} must not use {op} itself"
            );
        }
    }

    #[test]
    fn templates_fit_the_sepe_temporary_budget() {
        let db = EquivalenceDb::curated();
        for op in db.opcodes() {
            let t = db.template(op).expect("template exists");
            assert!(
                t.temps_used() <= 6,
                "{op}: equivalent programs may use at most the six T registers"
            );
        }
    }

    #[test]
    fn insert_replaces_existing_templates() {
        let mut db = EquivalenceDb::curated();
        let custom = sepe_synth::program::listing1_sub_template();
        db.insert(custom.clone());
        assert_eq!(db.template(Opcode::Sub), Some(&custom));
    }
}
