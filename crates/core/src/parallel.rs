//! Parallel multi-bug detection: a work-stealing engine over independent
//! `Detector::check` jobs, plus a portfolio mode that races solver
//! configurations against each other.
//!
//! The paper's headline experiments (Table 1, Figure 4) are sweeps of one
//! detection run per mutation × method × bound.  [`Engine::run`] is the one
//! entry point for all of them: it takes a [`BatchSpec`] describing *what*
//! to schedule and returns an [`EngineOutcome`] describing what happened.
//! The three spec modes:
//!
//! * [`BatchSpec::Jobs`] — independent [`DetectionJob`]s: each worker gets
//!   its own [`Detector`] (nothing is shared between jobs but the job queue
//!   and the cancellation flag) and pulls jobs off a shared atomic counter
//!   so fast workers steal the remaining work.  With `workers == 1` the
//!   batch runs inline on the calling thread in job order — byte-for-byte
//!   the sequential drivers, which is what the determinism tests and the
//!   bench regression gate rely on.
//! * [`BatchSpec::Portfolio`] — the *same* query raced under differing
//!   configurations ([`PortfolioArm`]: AIG on/off, rewriting on/off,
//!   per-depth vs cumulative); the first conclusive arm wins and the losers
//!   are cancelled through the shared flag.  The PR-4 measurements showed
//!   `aig_off` propagates better on some cones while the shared encoding
//!   wins on others — racing both gets the minimum of the arms' runtimes
//!   without predicting the winner.
//! * [`BatchSpec::Catalogue`] — a mutation catalogue answered over **one
//!   shared unrolling** by the batched detector
//!   ([`BatchedDetector`]): the whole group
//!   is one scheduling unit (one solver, so no intra-group parallelism to
//!   steal), run under the engine's global budget and retry policy like any
//!   other unit of work.
//!
//! A **global time budget** ([`Engine::with_time_limit`]) bounds the whole
//! batch in every mode: a watchdog raises one shared [`CancelFlag`] when the
//! budget expires, every in-flight SAT search aborts within a short burst
//! of conflicts (the flag is polled at the same sampled check point as the
//! solver deadline), and jobs not yet started return immediately as
//! cancelled, inconclusive [`Detection`]s.
//!
//! Per-job [`SolverReuseStats`] are aggregated into a [`BatchStats`] so a
//! batch reports the same counters the sequential drivers print.
//!
//! The pre-redesign entry points survive as deprecated shims:
//! `ParallelEngine` is an alias of [`Engine`], and
//! [`Engine::run_portfolio`] forwards to [`Engine::run`] with a
//! [`BatchSpec::Portfolio`].
//!
//! # Example
//!
//! ```
//! use sepe_isa::Opcode;
//! use sepe_processor::ProcessorConfig;
//! use sepe_sqed::detect::{DetectorConfig, Method};
//! use sepe_sqed::parallel::{DetectionJob, Engine};
//!
//! let config = DetectorConfig::builder()
//!     .processor(ProcessorConfig::tiny().with_opcodes(&[Opcode::Add, Opcode::Xori]))
//!     .bound(2)
//!     .build();
//! // Two independent jobs: the clean design under both methods.
//! let jobs = vec![
//!     DetectionJob::new("clean-sqed", config.clone(), Method::Sqed, None),
//!     DetectionJob::new("clean-sepe", config, Method::SepeSqed, None),
//! ];
//! let outcome = Engine::new(2).run(jobs).expect_jobs();
//! assert_eq!(outcome.detections.len(), 2);
//! assert!(outcome.detections.iter().all(|d| !d.detected));
//! ```

use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

use sepe_processor::Mutation;
use sepe_smt::{CancelFlag, SolverReuseStats, StopReason};
use sepe_tsys::BmcMode;

use crate::batch::{BatchedDetector, BatchedOutcome, CatalogueEntry};
use crate::detect::{Detection, Detector, DetectorConfig, Method};

/// One unit of detection work: a full detector configuration plus the
/// method and the (optional) injected bug to check it against.
///
/// Jobs carry their own [`DetectorConfig`] rather than sharing the engine's,
/// because real sweeps vary the configuration per job (Table 1 narrows the
/// opcode universe to each bug's target; Figure 4 derives it from the bug's
/// trigger pattern).
///
/// Cancellation *chains*: when the job is scheduled, the engine **pushes**
/// the batch's shared flag onto the job's own `config.cancel` set instead of
/// replacing it, so either source tripping cancels the job — the batch
/// budget through [`Engine::with_time_limit`], or a caller-supplied
/// per-job flag raised from outside.
#[derive(Debug, Clone)]
pub struct DetectionJob {
    /// Human-readable job label, carried through to results and logs.
    pub label: String,
    /// The detector configuration to run (per-job; never shared).
    pub config: DetectorConfig,
    /// Which verification method to run.
    pub method: Method,
    /// The injected bug, if any (`None` checks the clean design).
    pub mutation: Option<Mutation>,
}

impl DetectionJob {
    /// Creates a job.
    pub fn new(
        label: impl Into<String>,
        config: DetectorConfig,
        method: Method,
        mutation: Option<Mutation>,
    ) -> Self {
        DetectionJob {
            label: label.into(),
            config,
            method,
            mutation,
        }
    }
}

/// The classified final outcome of one job, after any retries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome {
    /// A conclusive verdict: detected, or proven clean within the bound.
    Completed,
    /// The job stopped without a verdict for the given reason (budget
    /// exhaustion, cancellation).
    Stopped(StopReason),
    /// The job panicked; the panic was caught, the worker survived, and the
    /// payload's message is carried here.
    Failed {
        /// The panic payload, when it was a string (the common case).
        message: String,
    },
}

impl JobOutcome {
    /// Whether the retry ladder re-runs a job that ended this way: panics
    /// and per-solver budget exhaustion are worth a degraded retry, while
    /// deadline expiry and cancellation are verdicts about the *batch* (its
    /// wall budget is gone either way), so retrying would only burn more of
    /// it.
    pub(crate) fn should_retry(&self) -> bool {
        match self {
            JobOutcome::Completed => false,
            JobOutcome::Failed { .. } => true,
            JobOutcome::Stopped(reason) => matches!(
                reason,
                StopReason::ConflictBudget
                    | StopReason::MemoryBudget
                    | StopReason::WitnessMismatch
                    | StopReason::ProofMismatch
            ),
        }
    }

    /// The stop reason this outcome tallies under (`None` for a conclusive
    /// verdict).
    pub(crate) fn stop_reason(&self) -> Option<StopReason> {
        match self {
            JobOutcome::Completed => None,
            JobOutcome::Stopped(reason) => Some(*reason),
            JobOutcome::Failed { .. } => Some(StopReason::Panicked),
        }
    }
}

/// One rung of the retry degradation ladder: each retry re-runs the job
/// under a configuration one step simpler/cheaper than the last, mirroring
/// the ablation arms of [`PortfolioArm::standard`].  A panic or budget
/// breach tied to a specific optimisation (AIG rewriting, word-level
/// simplification, solver persistence) clears at the rung that removes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradationRung {
    /// The job's own configuration, untouched (every first attempt).
    Full,
    /// Gate-level AIG reductions off.
    AigOff,
    /// Word-level rewriting + cone-of-influence reduction off.
    NoRewrite,
    /// Per-depth scratch solving (no persistent solver state at all) with
    /// the bound halved — the cheapest, most conservative configuration.
    ScratchHalfBound,
}

impl DegradationRung {
    /// The next rung down (saturating at the bottom).
    pub(crate) fn next(self) -> DegradationRung {
        match self {
            DegradationRung::Full => DegradationRung::AigOff,
            DegradationRung::AigOff => DegradationRung::NoRewrite,
            DegradationRung::NoRewrite => DegradationRung::ScratchHalfBound,
            DegradationRung::ScratchHalfBound => DegradationRung::ScratchHalfBound,
        }
    }

    /// Applies the rung's knobs on top of a job's base configuration.
    fn apply(self, config: &mut DetectorConfig) {
        match self {
            DegradationRung::Full => {}
            DegradationRung::AigOff => config.aig = false,
            DegradationRung::NoRewrite => config.simplify = false,
            DegradationRung::ScratchHalfBound => {
                config.bmc_mode = BmcMode::PerDepthScratch;
                config.max_bound = (config.max_bound / 2).max(1);
            }
        }
    }
}

impl fmt::Display for DegradationRung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DegradationRung::Full => "full",
            DegradationRung::AigOff => "aig_off",
            DegradationRung::NoRewrite => "norewrite",
            DegradationRung::ScratchHalfBound => "scratch_half_bound",
        };
        write!(f, "{s}")
    }
}

/// How the engine re-runs jobs that failed or exhausted a per-solver
/// budget: up to `max_retries` additional attempts, each one rung further
/// down the [`DegradationRung`] ladder.  The default retries nothing, which
/// reproduces the pre-retry engine exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Additional attempts after the first (0 disables retrying).
    pub max_retries: u32,
}

impl RetryPolicy {
    /// No retries (the default): one attempt per job, failures reported
    /// as-is.
    pub fn none() -> RetryPolicy {
        RetryPolicy::default()
    }

    /// Up to `max_retries` degraded re-runs per failed/budget-exhausted
    /// job.
    pub fn ladder(max_retries: u32) -> RetryPolicy {
        RetryPolicy { max_retries }
    }
}

/// Per-job execution report: how the job ended and what it took to get
/// there.  `BatchOutcome::reports[i]` describes `jobs[i]`, parallel to
/// `detections[i]`.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// The job's label.
    pub label: String,
    /// The classified final outcome (after any retries).
    pub outcome: JobOutcome,
    /// Attempts run, including the first (0 for a job cancelled before it
    /// ever started).
    pub attempts: u32,
    /// Attempts that panicked along the way (caught, worker kept alive).
    pub panicked_attempts: u32,
    /// The degradation rung of the final attempt (`Full` when the job never
    /// needed the ladder).
    pub rung: DegradationRung,
}

/// Final-outcome tallies by [`StopReason`] — how many jobs of a batch ended
/// on each non-verdict path.  Jobs that completed are not tallied.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StopReasonTally {
    /// Jobs that ran out of wall-clock budget.
    pub deadline: u64,
    /// Jobs that ran out of SAT conflict budget.
    pub conflict_budget: u64,
    /// Jobs that breached the SAT memory cap.
    pub memory_budget: u64,
    /// Jobs cancelled through a shared flag.
    pub cancelled: u64,
    /// Jobs whose final attempt panicked.
    pub panicked: u64,
    /// Jobs whose final counterexample failed the concrete witness
    /// self-check (the verdict was demoted instead of reported).
    pub witness_mismatch: u64,
    /// Jobs whose final proof certificate failed the independent-solver
    /// self-check (the `Proved` verdict was demoted instead of reported).
    pub proof_mismatch: u64,
}

impl StopReasonTally {
    /// Bumps the counter for a reason.
    pub fn record(&mut self, reason: StopReason) {
        match reason {
            StopReason::Deadline => self.deadline += 1,
            StopReason::ConflictBudget => self.conflict_budget += 1,
            StopReason::MemoryBudget => self.memory_budget += 1,
            StopReason::Cancelled => self.cancelled += 1,
            StopReason::Panicked => self.panicked += 1,
            StopReason::WitnessMismatch => self.witness_mismatch += 1,
            StopReason::ProofMismatch => self.proof_mismatch += 1,
        }
    }

    /// Total jobs tallied (the batch's non-verdict count).
    pub fn total(&self) -> u64 {
        self.deadline
            + self.conflict_budget
            + self.memory_budget
            + self.cancelled
            + self.panicked
            + self.witness_mismatch
            + self.proof_mismatch
    }
}

/// Aggregate statistics of one batch (or portfolio) run.
#[derive(Debug, Clone, Default)]
pub struct BatchStats {
    /// Jobs (or portfolio arms) that were scheduled.
    pub jobs: u64,
    /// Worker threads the batch ran on.
    pub workers: usize,
    /// Wall-clock time of the whole batch, queue to last result.
    pub wall: Duration,
    /// Sum of the per-job model-checking runtimes — on an otherwise idle
    /// machine, `job_wall_total / wall` approximates the realised speedup.
    pub job_wall_total: Duration,
    /// Longest single job — the lower bound on batch wall time no worker
    /// count can beat.
    pub job_wall_max: Duration,
    /// Jobs or portfolio arms that ended inconclusive because the shared
    /// cancellation flag was raised (global budget expiry, or a portfolio
    /// race being decided by another arm).
    pub cancelled: u64,
    /// Total SAT conflicts across all jobs.
    pub conflicts: u64,
    /// Retry attempts across all jobs (attempts beyond each job's first).
    pub retries: u64,
    /// Jobs whose *final* attempt ran below the [`DegradationRung::Full`]
    /// rung (i.e. the answer, conclusive or not, came from a degraded
    /// configuration).
    pub degraded_runs: u64,
    /// Attempts that panicked and were caught (workers survive panics, so
    /// this can exceed the failed-job count when retries also panic).
    pub panics: u64,
    /// Final-outcome tallies by stop reason (jobs that completed are not
    /// tallied).
    pub stop_reasons: StopReasonTally,
    /// Concrete witness replays performed on final counterexamples (the
    /// self-check of [`DetectorConfig::validate_witness`]).
    pub witness_validations: u64,
    /// Replays whose final verdict was a mismatch — the counterexample did
    /// not reproduce and the job was demoted.
    pub witness_mismatches: u64,
    /// Per-job solver-reuse counters, summed (encode/rewrite/AIG work,
    /// learnt-database reduction, CNF sizes).
    pub solver: SolverReuseStats,
}

impl BatchStats {
    fn absorb_job(&mut self, detection: &Detection, report: &JobReport, cancelled: bool) {
        self.jobs += 1;
        self.job_wall_total += detection.runtime;
        self.job_wall_max = self.job_wall_max.max(detection.runtime);
        self.cancelled += u64::from(cancelled);
        self.conflicts += detection.conflicts;
        self.retries += u64::from(report.attempts.saturating_sub(1));
        self.degraded_runs += u64::from(report.rung != DegradationRung::Full);
        self.panics += u64::from(report.panicked_attempts);
        if let Some(reason) = report.outcome.stop_reason() {
            self.stop_reasons.record(reason);
        }
        self.witness_validations += u64::from(detection.witness_validated.is_some());
        self.witness_mismatches += u64::from(detection.witness_validated == Some(false));
        self.solver.absorb(&detection.solver);
    }
}

impl fmt::Display for BatchStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} jobs on {} workers in {:.2}s (job wall {:.2}s total / {:.2}s max, \
             {} cancelled, {} conflicts, {} retries, {} degraded, {} panics)",
            self.jobs,
            self.workers,
            self.wall.as_secs_f64(),
            self.job_wall_total.as_secs_f64(),
            self.job_wall_max.as_secs_f64(),
            self.cancelled,
            self.conflicts,
            self.retries,
            self.degraded_runs,
            self.panics,
        )
    }
}

/// The result of an independent-jobs run ([`BatchSpec::Jobs`]): one
/// [`Detection`] per job, in job
/// order, plus the aggregate counters.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Per-job results; `detections[i]` answers `jobs[i]` regardless of
    /// which worker ran it or when it finished.
    pub detections: Vec<Detection>,
    /// Per-job execution reports (classified outcome, attempts, ladder
    /// rung), parallel to `detections`.
    pub reports: Vec<JobReport>,
    /// Aggregate batch counters.
    pub stats: BatchStats,
}

/// One configuration of a portfolio race: the knobs that change *how* a
/// query is solved without changing *what* it decides.
#[derive(Debug, Clone)]
pub struct PortfolioArm {
    /// Arm label (reported in [`ArmOutcome`]).
    pub name: String,
    /// Depth-exploration strategy.
    pub bmc_mode: BmcMode,
    /// Word-level rewriting + cone-of-influence reduction.
    pub simplify: bool,
    /// Gate-level AIG reductions.
    pub aig: bool,
}

impl PortfolioArm {
    /// Creates an arm.
    pub fn new(name: impl Into<String>, bmc_mode: BmcMode, simplify: bool, aig: bool) -> Self {
        PortfolioArm {
            name: name.into(),
            bmc_mode,
            simplify,
            aig,
        }
    }

    /// The standard four-arm portfolio: the default pipeline, the two
    /// single-knob ablations that PR 3/4 measured as workload-dependent
    /// (AIG off propagates better on some cones; rewriting off occasionally
    /// wins on tiny queries), and the cumulative single-query mode (fastest
    /// when a counterexample exists).
    pub fn standard() -> Vec<PortfolioArm> {
        vec![
            PortfolioArm::new("per_depth", BmcMode::PerDepth, true, true),
            PortfolioArm::new("per_depth_aig_off", BmcMode::PerDepth, true, false),
            PortfolioArm::new("per_depth_norewrite", BmcMode::PerDepth, false, true),
            PortfolioArm::new("cumulative", BmcMode::Cumulative, true, true),
        ]
    }

    /// The base configuration with this arm's knobs applied.
    fn apply(&self, base: &DetectorConfig) -> DetectorConfig {
        DetectorConfig {
            bmc_mode: self.bmc_mode,
            simplify: self.simplify,
            aig: self.aig,
            ..base.clone()
        }
    }
}

/// The result of one portfolio arm.
#[derive(Debug, Clone)]
pub struct ArmOutcome {
    /// The arm's label.
    pub arm: String,
    /// What the arm reported (inconclusive for cancelled losers).
    pub detection: Detection,
    /// Whether the arm was cut off by the race being decided (or by the
    /// global budget) rather than finishing on its own.
    pub cancelled: bool,
}

/// The result of a portfolio race ([`BatchSpec::Portfolio`]).
#[derive(Debug, Clone)]
pub struct PortfolioOutcome {
    /// Index (into the arm list) of the winning arm.
    pub winner: usize,
    /// The winning arm's detection — the portfolio's answer.
    pub detection: Detection,
    /// Every arm's outcome, in arm order.
    pub arms: Vec<ArmOutcome>,
    /// Aggregate counters over the arms (cancelled losers included).
    pub stats: BatchStats,
}

/// What one [`Engine::run`] invocation schedules.
///
/// `Vec<DetectionJob>` converts [`Into`] the independent-jobs mode, so the
/// common case reads `engine.run(jobs)`.
#[derive(Debug, Clone)]
pub enum BatchSpec {
    /// Independent detection jobs, scheduled by work stealing.
    Jobs(Vec<DetectionJob>),
    /// One query raced under several solver configurations; first
    /// conclusive arm wins.
    Portfolio {
        /// The query every arm decides.
        job: Box<DetectionJob>,
        /// The solver configurations to race.
        arms: Vec<PortfolioArm>,
    },
    /// A mutation catalogue answered over one shared unrolling (see
    /// [`BatchedDetector`]); the whole group
    /// is one scheduling unit.
    Catalogue {
        /// The verification method every entry runs under.
        method: Method,
        /// The shared configuration (processor universe, budgets, knobs),
        /// boxed to keep the enum's variants near one size.
        config: Box<DetectorConfig>,
        /// The catalogue.
        entries: Vec<CatalogueEntry>,
    },
}

impl From<Vec<DetectionJob>> for BatchSpec {
    fn from(jobs: Vec<DetectionJob>) -> Self {
        BatchSpec::Jobs(jobs)
    }
}

impl BatchSpec {
    /// A portfolio spec (convenience over the enum literal).
    pub fn portfolio(job: DetectionJob, arms: Vec<PortfolioArm>) -> Self {
        BatchSpec::Portfolio {
            job: Box::new(job),
            arms,
        }
    }

    /// A batched-catalogue spec (convenience over the enum literal).
    pub fn catalogue(method: Method, config: DetectorConfig, entries: Vec<CatalogueEntry>) -> Self {
        BatchSpec::Catalogue {
            method,
            config: Box::new(config),
            entries,
        }
    }
}

/// What one [`Engine::run`] invocation produced — the variant mirrors the
/// [`BatchSpec`] that was scheduled.
#[derive(Debug, Clone)]
pub enum EngineOutcome {
    /// The result of a [`BatchSpec::Jobs`] run.
    Jobs(BatchOutcome),
    /// The result of a [`BatchSpec::Portfolio`] race.
    Portfolio(Box<PortfolioOutcome>),
    /// The result of a [`BatchSpec::Catalogue`] run.
    Catalogue(BatchedOutcome),
}

impl EngineOutcome {
    /// The jobs outcome.
    ///
    /// # Panics
    ///
    /// Panics if the run was not a [`BatchSpec::Jobs`] run.
    pub fn expect_jobs(self) -> BatchOutcome {
        match self {
            EngineOutcome::Jobs(outcome) => outcome,
            other => panic!("expected a jobs outcome, got {}", other.mode()),
        }
    }

    /// The portfolio outcome.
    ///
    /// # Panics
    ///
    /// Panics if the run was not a [`BatchSpec::Portfolio`] race.
    pub fn expect_portfolio(self) -> PortfolioOutcome {
        match self {
            EngineOutcome::Portfolio(outcome) => *outcome,
            other => panic!("expected a portfolio outcome, got {}", other.mode()),
        }
    }

    /// The batched-catalogue outcome.
    ///
    /// # Panics
    ///
    /// Panics if the run was not a [`BatchSpec::Catalogue`] run.
    pub fn expect_catalogue(self) -> BatchedOutcome {
        match self {
            EngineOutcome::Catalogue(outcome) => outcome,
            other => panic!("expected a catalogue outcome, got {}", other.mode()),
        }
    }

    /// The scheduling mode this outcome came from.
    pub fn mode(&self) -> &'static str {
        match self {
            EngineOutcome::Jobs(_) => "jobs",
            EngineOutcome::Portfolio(_) => "portfolio",
            EngineOutcome::Catalogue(_) => "catalogue",
        }
    }

    /// Every detection the run produced, in schedule order — mode-agnostic
    /// access for drivers that only care about verdicts.
    pub fn detections(&self) -> Vec<&Detection> {
        match self {
            EngineOutcome::Jobs(outcome) => outcome.detections.iter().collect(),
            EngineOutcome::Portfolio(outcome) => {
                outcome.arms.iter().map(|a| &a.detection).collect()
            }
            EngineOutcome::Catalogue(outcome) => outcome.detections.iter().collect(),
        }
    }
}

/// The detection engine: one scheduler for independent jobs, portfolio
/// races and batched catalogues.
///
/// See the [module docs](self) for the scheduling and cancellation model.
#[derive(Debug, Clone)]
pub struct Engine {
    workers: usize,
    time_limit: Option<Duration>,
    retry: RetryPolicy,
}

/// The engine's pre-redesign name.
#[deprecated(note = "renamed to `Engine`; drive it through `Engine::run(BatchSpec)`")]
pub type ParallelEngine = Engine;

impl Engine {
    /// Creates an engine with the given worker count (clamped to ≥ 1).
    pub fn new(workers: usize) -> Self {
        Engine {
            workers: workers.max(1),
            time_limit: None,
            retry: RetryPolicy::none(),
        }
    }

    /// Sets a wall-clock budget for each subsequent batch: when it expires,
    /// every in-flight job is interrupted and the not-yet-started ones
    /// return cancelled.
    pub fn with_time_limit(mut self, limit: Option<Duration>) -> Self {
        self.time_limit = limit;
        self
    }

    /// Sets the retry policy for each subsequent batch: jobs that panic or
    /// exhaust a per-solver budget are re-run down the
    /// [`DegradationRung`] ladder up to the policy's attempt count.  The
    /// default retries nothing.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs a [`BatchSpec`] — independent jobs, a portfolio race, or a
    /// batched catalogue — and returns the matching [`EngineOutcome`]
    /// variant.  `Vec<DetectionJob>` converts into the jobs mode, so the
    /// common case is `engine.run(jobs).expect_jobs()`.
    pub fn run(&self, spec: impl Into<BatchSpec>) -> EngineOutcome {
        match spec.into() {
            BatchSpec::Jobs(jobs) => EngineOutcome::Jobs(self.run_jobs(jobs)),
            BatchSpec::Portfolio { job, arms } => {
                EngineOutcome::Portfolio(Box::new(self.race_portfolio(&job, &arms)))
            }
            BatchSpec::Catalogue {
                method,
                config,
                entries,
            } => EngineOutcome::Catalogue(self.run_catalogue(method, *config, &entries)),
        }
    }

    /// Runs a batch of independent detection jobs, returning one
    /// [`Detection`] per job in job order.
    ///
    /// Workers pull jobs off a shared counter (work stealing by exhaustion:
    /// whichever worker frees up first takes the next job), and each job
    /// runs on a fresh [`Detector`] owned by its worker.  With one worker
    /// the batch runs inline on the calling thread, reproducing the
    /// sequential drivers exactly.
    fn run_jobs(&self, jobs: Vec<DetectionJob>) -> BatchOutcome {
        let start = Instant::now();
        let cancel: CancelFlag = Arc::new(AtomicBool::new(false));
        let deadline = self.time_limit.map(|budget| start + budget);
        let watchdog = self.spawn_watchdog(&cancel);
        let workers = self.workers.min(jobs.len().max(1));
        let next = AtomicUsize::new(0);
        let retry = self.retry;
        let (tx, rx) = mpsc::channel::<(usize, Detection, JobReport, bool)>();

        if workers <= 1 {
            worker_loop(&jobs, &next, &cancel, deadline, retry, &tx);
        } else {
            thread::scope(|scope| {
                for _ in 0..workers {
                    let tx = tx.clone();
                    let (jobs, next, cancel) = (&jobs, &next, &cancel);
                    scope.spawn(move || worker_loop(jobs, next, cancel, deadline, retry, &tx));
                }
            });
        }
        drop(tx);

        let mut detections: Vec<Option<Detection>> = vec![None; jobs.len()];
        let mut reports: Vec<Option<JobReport>> = vec![None; jobs.len()];
        let mut stats = BatchStats {
            workers,
            ..BatchStats::default()
        };
        for (i, detection, report, cancelled) in rx {
            stats.absorb_job(&detection, &report, cancelled);
            detections[i] = Some(detection);
            reports[i] = Some(report);
        }
        if let Some((done, handle)) = watchdog {
            let _ = done.send(());
            let _ = handle.join();
        }
        stats.wall = start.elapsed();
        BatchOutcome {
            detections: detections
                .into_iter()
                .map(|d| d.expect("every job sends exactly one result"))
                .collect(),
            reports: reports
                .into_iter()
                .map(|r| r.expect("every job sends exactly one report"))
                .collect(),
            stats,
        }
    }

    /// Races the same query under each arm's configuration; the first arm
    /// to return a *conclusive* verdict wins and the others are cancelled
    /// through the shared flag (they report as inconclusive, cancelled
    /// [`ArmOutcome`]s).  If every arm is inconclusive — budget expiry, or
    /// conflict limits all round — the earliest finisher is the "winner" so
    /// the outcome always carries a detection.
    ///
    /// Soundness makes first-finisher-wins safe: every arm decides the same
    /// bounded reachability question, so conclusive arms can only agree on
    /// `detected`.  Only trace *lengths* may differ (the cumulative arm
    /// returns an arbitrary-model trace, not a shortest one).
    ///
    /// The arm count is capped by neither `workers` nor the job queue —
    /// a portfolio is one query's race, and arms only pay off when they
    /// actually run concurrently.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    #[deprecated(note = "use `Engine::run(BatchSpec::portfolio(job, arms))`")]
    pub fn run_portfolio(&self, job: &DetectionJob, arms: &[PortfolioArm]) -> PortfolioOutcome {
        self.race_portfolio(job, arms)
    }

    /// The portfolio race behind [`BatchSpec::Portfolio`]; see
    /// [`Engine::run`].
    fn race_portfolio(&self, job: &DetectionJob, arms: &[PortfolioArm]) -> PortfolioOutcome {
        assert!(!arms.is_empty(), "a portfolio needs at least one arm");
        let start = Instant::now();
        let cancel: CancelFlag = Arc::new(AtomicBool::new(false));
        let deadline = self.time_limit.map(|budget| start + budget);
        let watchdog = self.spawn_watchdog(&cancel);
        let (tx, rx) = mpsc::channel::<(usize, Detection, JobReport, bool)>();

        let mut outcomes: Vec<Option<(ArmOutcome, JobReport)>> = vec![None; arms.len()];
        let mut winner: Option<usize> = None;
        thread::scope(|scope| {
            for (i, arm) in arms.iter().enumerate() {
                let tx = tx.clone();
                let cancel = cancel.clone();
                let mut config = arm.apply(&job.config);
                // Chain, don't replace: the caller's own flags stay armed
                // alongside the race's flag.
                config.cancel.push(cancel.clone());
                clamp_time_limit(&mut config, deadline);
                let method = job.method;
                let mutation = job.mutation.clone();
                let label = format!("{}:{}", job.label, arm.name);
                scope.spawn(move || {
                    let (detection, outcome, panicked) =
                        run_isolated(config, method, mutation.as_ref());
                    let report = JobReport {
                        label,
                        outcome,
                        attempts: 1,
                        panicked_attempts: u32::from(panicked),
                        rung: DegradationRung::Full,
                    };
                    // Sample the flag here, not at receive time: an arm
                    // that gave up on its own budget before the race was
                    // decided must not be mislabeled as cancelled just
                    // because the winner's flag landed while its result
                    // sat in the channel.
                    let cancelled = detection.inconclusive && cancel.load(Ordering::Relaxed);
                    let _ = tx.send((i, detection, report, cancelled));
                });
            }
            drop(tx);
            // Collect in arrival order so the first conclusive verdict can
            // cut the still-running arms loose immediately.
            for (i, detection, report, cancelled) in rx {
                if winner.is_none() && !detection.inconclusive {
                    winner = Some(i);
                    cancel.store(true, Ordering::Relaxed);
                }
                outcomes[i] = Some((
                    ArmOutcome {
                        arm: arms[i].name.clone(),
                        detection,
                        cancelled,
                    },
                    report,
                ));
            }
        });
        if let Some((done, handle)) = watchdog {
            let _ = done.send(());
            let _ = handle.join();
        }

        let (arms_out, arm_reports): (Vec<ArmOutcome>, Vec<JobReport>) = outcomes
            .into_iter()
            .map(|o| o.expect("every arm sends exactly one result"))
            .unzip();
        // All-inconclusive fallback: the arm that gave up first.
        let winner = winner.unwrap_or_else(|| {
            arms_out
                .iter()
                .enumerate()
                .min_by_key(|(_, o)| o.detection.runtime)
                .map(|(i, _)| i)
                .expect("arms is non-empty")
        });
        let mut stats = BatchStats {
            workers: arms_out.len(),
            ..BatchStats::default()
        };
        for (o, report) in arms_out.iter().zip(&arm_reports) {
            stats.absorb_job(&o.detection, report, o.cancelled);
        }
        stats.wall = start.elapsed();
        PortfolioOutcome {
            winner,
            detection: arms_out[winner].detection.clone(),
            arms: arms_out,
            stats,
        }
    }

    /// The batched-catalogue mode behind [`BatchSpec::Catalogue`]: the whole
    /// catalogue is one scheduling unit (one shared solver leaves no
    /// intra-group parallelism to steal), run inline under the engine's
    /// global budget — the watchdog's flag chains onto the configuration's
    /// own flags, and the retry policy (the configuration's override, else
    /// the engine's) governs the per-entry fallback ladder.
    fn run_catalogue(
        &self,
        method: Method,
        config: DetectorConfig,
        entries: &[CatalogueEntry],
    ) -> BatchedOutcome {
        let start = Instant::now();
        let cancel: CancelFlag = Arc::new(AtomicBool::new(false));
        let deadline = self.time_limit.map(|budget| start + budget);
        let watchdog = self.spawn_watchdog(&cancel);
        let retry = config.retry.unwrap_or(self.retry);
        let detector = BatchedDetector::new(config).with_retry_policy(retry);
        let outcome = detector.run_under(method, entries, &cancel, deadline);
        if let Some((done, handle)) = watchdog {
            let _ = done.send(());
            let _ = handle.join();
        }
        outcome
    }

    /// Arms the global budget: a watchdog thread that raises the shared
    /// flag when the budget expires, unless released first through the
    /// returned channel.  `None` when the engine has no time limit.
    #[allow(clippy::type_complexity)]
    fn spawn_watchdog(
        &self,
        cancel: &CancelFlag,
    ) -> Option<(mpsc::Sender<()>, thread::JoinHandle<()>)> {
        let budget = self.time_limit?;
        let cancel = cancel.clone();
        let (done, release) = mpsc::channel::<()>();
        let handle = thread::spawn(move || {
            if release.recv_timeout(budget).is_err() {
                cancel.store(true, Ordering::Relaxed);
            }
        });
        Some((done, handle))
    }
}

/// One worker: pull the next job index, run it (with panic isolation and
/// the retry ladder) on fresh detectors, send the result home, repeat until
/// the queue is exhausted.  A panicking job never takes the worker down —
/// the panic is caught, classified, and the loop continues.
fn worker_loop(
    jobs: &[DetectionJob],
    next: &AtomicUsize,
    cancel: &CancelFlag,
    deadline: Option<Instant>,
    retry: RetryPolicy,
    tx: &mpsc::Sender<(usize, Detection, JobReport, bool)>,
) {
    loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= jobs.len() {
            return;
        }
        let job = &jobs[i];
        let (detection, report, cancelled) = if cancel.load(Ordering::Relaxed) {
            // The budget expired before this job started: report it
            // cancelled without building a detector at all.
            let report = JobReport {
                label: job.label.clone(),
                outcome: JobOutcome::Stopped(StopReason::Cancelled),
                attempts: 0,
                panicked_attempts: 0,
                rung: DegradationRung::Full,
            };
            (stub_detection(job), report, true)
        } else {
            let (detection, report) = run_with_retry(job, cancel, deadline, retry);
            let cancelled = detection.inconclusive && cancel.load(Ordering::Relaxed);
            (detection, report, cancelled)
        };
        if tx.send((i, detection, report, cancelled)).is_err() {
            return; // receiver gone — nothing left to report to
        }
    }
}

/// Runs one job down the retry ladder: the first attempt under the job's
/// own configuration, each subsequent attempt — granted only for panics and
/// per-solver budget exhaustion, see [`JobOutcome::should_retry`] — one
/// rung further down [`DegradationRung`].  The job's fault plan applies to
/// the first attempt only unless it says otherwise
/// ([`FaultPlan::every_attempt`](crate::fault::FaultPlan)), so
/// "failed once, retried clean, succeeded degraded" is itself a
/// deterministic path.
pub(crate) fn run_with_retry(
    job: &DetectionJob,
    cancel: &CancelFlag,
    deadline: Option<Instant>,
    retry: RetryPolicy,
) -> (Detection, JobReport) {
    resume_retry_ladder(job, cancel, deadline, retry, DegradationRung::Full, 0, 0)
}

/// [`run_with_retry`] with the ladder state pre-advanced: `rung` is the rung
/// of the *next* attempt, `attempts`/`panicked_attempts` count the attempts
/// already spent elsewhere.  The batched detector
/// ([`BatchedDetector`]) uses this to continue
/// a job whose first attempt was a shared-solver query that panicked or blew
/// a budget — that query counts as attempt one at [`DegradationRung::Full`],
/// and the per-job fallback resumes at the next rung down.
pub(crate) fn resume_retry_ladder(
    job: &DetectionJob,
    cancel: &CancelFlag,
    deadline: Option<Instant>,
    retry: RetryPolicy,
    mut rung: DegradationRung,
    mut attempts: u32,
    mut panicked_attempts: u32,
) -> (Detection, JobReport) {
    // A job's own retry override beats the engine-wide policy.
    let retry = job.config.retry.unwrap_or(retry);
    loop {
        attempts += 1;
        let mut config = job.config.clone();
        rung.apply(&mut config);
        // Chain, don't replace: the job's own cancel flags stay armed
        // alongside the batch flag — either tripping cancels the job.
        config.cancel.push(cancel.clone());
        clamp_time_limit(&mut config, deadline);
        if attempts > 1 && !config.fault.is_some_and(|f| f.every_attempt) {
            config.fault = None; // retries run clean by default
        }
        let (detection, outcome, panicked) =
            run_isolated(config, job.method, job.mutation.as_ref());
        panicked_attempts += u32::from(panicked);
        if attempts > retry.max_retries || !outcome.should_retry() {
            let report = JobReport {
                label: job.label.clone(),
                outcome,
                attempts,
                panicked_attempts,
                rung,
            };
            return (detection, report);
        }
        rung = rung.next();
    }
}

/// Runs one detection attempt with panic isolation: a panicking check is
/// caught, classified as [`JobOutcome::Failed`], and replaced by an
/// inconclusive stub detection so the worker (and the batch) survive.
/// Unwind safety: the detector, its term manager and its solvers are all
/// constructed inside the closure and dropped with it, so a panic can leave
/// no torn state behind for anyone else to observe.
fn run_isolated(
    config: DetectorConfig,
    method: Method,
    mutation: Option<&Mutation>,
) -> (Detection, JobOutcome, bool) {
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        Detector::new(config).check(method, mutation)
    }));
    match result {
        Ok(detection) => {
            let outcome = if detection.inconclusive {
                JobOutcome::Stopped(detection.stop_reason.unwrap_or(StopReason::Cancelled))
            } else {
                JobOutcome::Completed
            };
            (detection, outcome, false)
        }
        Err(payload) => {
            let mut stub = stub_detection_raw(method, mutation);
            stub.stop_reason = Some(StopReason::Panicked);
            let outcome = JobOutcome::Failed {
                message: panic_message(payload.as_ref()),
            };
            (stub, outcome, true)
        }
    }
}

/// Best-effort extraction of a panic payload's message (`&str` and `String`
/// payloads cover `panic!` and formatted panics; anything else is opaque).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Tightens a job's own time limit to whatever remains of the global
/// batch deadline (in-flight SAT calls then stop through the existing
/// per-solver deadline even between flag polls).
fn clamp_time_limit(config: &mut DetectorConfig, deadline: Option<Instant>) {
    if let Some(deadline) = deadline {
        let remaining = deadline.saturating_duration_since(Instant::now());
        config.time_limit = Some(config.time_limit.map_or(remaining, |t| t.min(remaining)));
    }
}

/// An inconclusive result for a job that never ran.
fn stub_detection(job: &DetectionJob) -> Detection {
    let mut d = stub_detection_raw(job.method, job.mutation.as_ref());
    d.stop_reason = Some(StopReason::Cancelled);
    d
}

/// An inconclusive result with no run behind it (no stop reason assigned —
/// callers set one).
fn stub_detection_raw(method: Method, mutation: Option<&Mutation>) -> Detection {
    Detection {
        method,
        bug: mutation.map(|m| m.name.clone()),
        detected: false,
        inconclusive: true,
        stop_reason: None,
        runtime: Duration::ZERO,
        trace_len: None,
        witness: None,
        witness_validated: None,
        proved: false,
        proof_method: None,
        proof_depth: None,
        proof_checked: None,
        proof_work: None,
        bound_reached: 0,
        conflicts: 0,
        solver: SolverReuseStats::default(),
        depths: Vec::new(),
    }
}

/// The default worker count: `SEPE_JOBS` if set to a positive integer,
/// otherwise the machine's available parallelism.
pub fn default_jobs() -> usize {
    parse_jobs(std::env::var("SEPE_JOBS").ok().as_deref())
        .unwrap_or_else(|| thread::available_parallelism().map_or(1, |n| n.get()))
}

/// The worker count encoded by an override value like `SEPE_JOBS`, if it is
/// a positive integer.  Split out of [`default_jobs`] so the parsing is
/// testable without mutating the process environment (`setenv` races
/// against `getenv` from concurrently spawned threads).
fn parse_jobs(value: Option<&str>) -> Option<usize> {
    value
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// Compile-time audit: everything a worker thread owns or shares must be
/// `Send`.  A regression (say, an `Rc` slipping into solver state) fails
/// right here instead of deep inside a `thread::scope` bound error.
#[allow(dead_code)]
fn assert_engine_types_are_send() {
    fn is_send<T: Send>() {}
    is_send::<Detector>();
    is_send::<DetectorConfig>();
    is_send::<DetectionJob>();
    is_send::<Detection>();
    is_send::<sepe_smt::TermManager>();
    is_send::<sepe_smt::SatSolver>();
    is_send::<sepe_smt::Solver>();
    is_send::<sepe_smt::IncrementalSolver>();
    is_send::<sepe_tsys::Bmc>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepe_isa::Opcode;
    use sepe_processor::ProcessorConfig;

    fn tiny_config(opcodes: &[Opcode], max_bound: usize) -> DetectorConfig {
        DetectorConfig {
            processor: ProcessorConfig::tiny().with_opcodes(opcodes),
            max_bound,
            ..DetectorConfig::default()
        }
    }

    #[test]
    fn empty_batch_returns_immediately() {
        let outcome = Engine::new(4).run(Vec::new()).expect_jobs();
        assert!(outcome.detections.is_empty());
        assert_eq!(outcome.stats.jobs, 0);
    }

    #[test]
    fn single_worker_runs_jobs_in_order() {
        let config = tiny_config(&[Opcode::Add, Opcode::Xori], 2);
        let jobs = vec![
            DetectionJob::new("a", config.clone(), Method::Sqed, None),
            DetectionJob::new("b", config, Method::SepeSqed, None),
        ];
        let outcome = Engine::new(1).run(jobs).expect_jobs();
        assert_eq!(outcome.detections.len(), 2);
        assert_eq!(outcome.detections[0].method, Method::Sqed);
        assert_eq!(outcome.detections[1].method, Method::SepeSqed);
        assert!(outcome.detections.iter().all(|d| !d.detected));
        assert_eq!(outcome.stats.jobs, 2);
        assert_eq!(outcome.stats.cancelled, 0);
        assert_eq!(outcome.stats.workers, 1);
    }

    #[test]
    fn results_land_in_job_order_regardless_of_worker_count() {
        let config = tiny_config(&[Opcode::Add], 2);
        let jobs: Vec<DetectionJob> = (0..6)
            .map(|i| {
                DetectionJob::new(
                    format!("job{i}"),
                    config.clone(),
                    if i % 2 == 0 {
                        Method::Sqed
                    } else {
                        Method::SepeSqed
                    },
                    None,
                )
            })
            .collect();
        let outcome = Engine::new(3).run(jobs).expect_jobs();
        assert_eq!(outcome.detections.len(), 6);
        for (i, d) in outcome.detections.iter().enumerate() {
            let want = if i % 2 == 0 {
                Method::Sqed
            } else {
                Method::SepeSqed
            };
            assert_eq!(d.method, want, "job {i} out of order");
        }
    }

    #[test]
    fn jobs_override_parsing_accepts_only_positive_integers() {
        assert_eq!(parse_jobs(Some("3")), Some(3));
        assert_eq!(parse_jobs(Some("not-a-number")), None);
        assert_eq!(parse_jobs(Some("0")), None);
        assert_eq!(parse_jobs(Some("")), None);
        assert_eq!(parse_jobs(None), None);
        // Whatever the environment says, the default is a usable count.
        assert!(default_jobs() >= 1);
    }
}
