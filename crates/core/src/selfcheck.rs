//! Witness self-check: replay counterexamples on the concrete processor twin
//! before a `Bug` verdict leaves the engine.
//!
//! A model checker that reports a counterexample is making a falsifiable
//! claim: *this instruction sequence drives the mutated design into a
//! QED-inconsistent state*.  The claim is cheap to check — the repository
//! carries a concrete mutant core (`sepe_processor::MutantCore`) that shares
//! the mutation semantics with the symbolic model, so the committed stream
//! can be replayed in microseconds and the consistency predicate re-evaluated
//! on real values.  If the replay does **not** reproduce an inconsistency,
//! something upstream is wrong (an encoding bug, a bit-blaster defect, or an
//! injected fault corrupting the witness), and the honest answer is a
//! structured failure — [`StopReason::WitnessMismatch`] — not a silently
//! wrong `Bug` verdict.
//!
//! The replay is sound because the QED module constrains every witness input
//! to a materialisable instruction: opcodes are drawn from the allowed
//! universe, register indices are range-limited, and
//! `immediate_constraint` in `qed.rs` forces each immediate to a value the
//! operand format can actually encode (sign-extension-consistent 12-bit
//! immediates, in-range shift amounts, page-aligned upper immediates).  The
//! reconstruction in [`committed_stream`] therefore round-trips exactly.
//!
//! This check runs by default in both the scalar [`Detector`] path and the
//! batched shared-unrolling path; `DetectorConfig::validate_witness` turns it
//! off for callers that want raw solver output.
//!
//! [`Detector`]: crate::detect::Detector
//! [`StopReason::WitnessMismatch`]: sepe_smt::StopReason::WitnessMismatch

use sepe_isa::{Instr, Opcode, Reg};
use sepe_processor::datapath::opcode_from_index;
use sepe_processor::{MutantCore, Mutation, ProcessorConfig};
use sepe_tsys::Witness;

use crate::detect::Method;
use crate::mapping::RegisterMapping;

/// Reconstructs the committed instruction stream (instruction, memory bank)
/// from a QED-system witness.
///
/// Each committed step either dispatches the original instruction from the
/// input port (`pick_original`) into bank 0, or pops the head of the
/// transformed-program queue (`q0_*` state) into the shadow bank 1 — the
/// same convention `commit_banked` uses on the concrete core.
pub fn committed_stream(witness: &Witness) -> Vec<(Instr, bool)> {
    let mut out = Vec::new();
    for frame in &witness.frames()[..witness.num_steps()] {
        let pick = frame.input("pick_original") == 1;
        let (op, rd, rs1, rs2, imm) = if pick {
            (
                frame.input("orig_op"),
                frame.input("orig_rd"),
                frame.input("orig_rs1"),
                frame.input("orig_rs2"),
                frame.input("orig_imm"),
            )
        } else {
            (
                frame.state("q0_op"),
                frame.state("q0_rd"),
                frame.state("q0_rs1"),
                frame.state("q0_rs2"),
                frame.state("q0_imm"),
            )
        };
        let Some(opcode) = opcode_from_index(op) else {
            // An out-of-range opcode index cannot come from a constrained
            // witness; treat the step as unreplayable (the caller will
            // report a mismatch rather than panic on hostile data).
            continue;
        };
        let instr = reconstruct(opcode, rd as u8, rs1 as u8, rs2 as u8, imm);
        out.push((instr, !pick));
    }
    out
}

/// Builds an [`Instr`] from raw witness fields (the immediate in the witness
/// is the materialised value).
fn reconstruct(opcode: Opcode, rd: u8, rs1: u8, rs2: u8, imm: u64) -> Instr {
    use sepe_isa::OperandKind::*;
    let signed = imm as i64 as i32;
    match opcode.operand_kind() {
        RegReg => Instr::reg_reg(opcode, Reg(rd), Reg(rs1), Reg(rs2)),
        RegImm | Load => {
            let imm12 = ((signed << 20) >> 20).clamp(-2048, 2047);
            Instr::new(opcode, Reg(rd), Reg(rs1), Reg::ZERO, imm12)
        }
        Store => {
            let imm12 = ((signed << 20) >> 20).clamp(-2048, 2047);
            Instr::new(opcode, Reg::ZERO, Reg(rs1), Reg(rs2), imm12)
        }
        RegShamt => Instr::new(opcode, Reg(rd), Reg(rs1), Reg::ZERO, signed & 0x1f),
        Upper => Instr::lui(Reg(rd), (imm >> 12) as i32),
    }
}

/// Replays `witness` on the concrete mutant core and reports whether the
/// QED consistency predicate really fails (i.e. the counterexample is
/// confirmed).
///
/// The replay core widens `allowed_opcodes` to the full ISA: the symbolic
/// model legally commits equivalent-program instructions outside the
/// original universe, and the concrete twin must accept them too.
pub fn replay_confirms(
    processor: &ProcessorConfig,
    mutation: Option<&Mutation>,
    method: Method,
    witness: &Witness,
) -> bool {
    let mut replay_config = processor.clone();
    replay_config.allowed_opcodes = Opcode::ALL.to_vec();
    let mut core = MutantCore::new(replay_config, mutation.cloned());
    for (instr, shadow_bank) in committed_stream(witness) {
        core.commit_banked(&instr, shadow_bank);
    }
    let mapping = match method {
        Method::Sqed => RegisterMapping::sqed(),
        Method::SepeSqed => RegisterMapping::sepe(),
    };
    let reg_mismatch = mapping
        .consistency_pairs()
        .into_iter()
        .any(|(o, e)| core.reg(o) != core.reg(e));
    let half = core.config().mem_words / 2;
    let mem_mismatch = (0..half).any(|w| core.mem_word(w) != core.mem_word(w + half));
    reg_mismatch || mem_mismatch
}

/// Deterministically corrupts a witness (fault injection for the
/// [`FaultPlan::corrupt_witness`](crate::fault::FaultPlan) hook): flips the
/// `pick_original` input of the first committed step, so the replayed stream
/// diverges from the solver's model and the self-check must demote the
/// verdict.
pub fn corrupt_witness(witness: &Witness) -> Witness {
    let mut frames = witness.frames().to_vec();
    if let Some(first) = frames.first_mut() {
        let flipped = 1 - (first.input("pick_original") & 1);
        first.inputs.insert("pick_original".to_string(), flipped);
    }
    Witness::new(frames)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepe_tsys::witness::Frame;

    #[test]
    fn corrupt_flips_the_first_pick() {
        let mut frame = Frame::default();
        frame.inputs.insert("pick_original".to_string(), 1);
        let w = Witness::new(vec![frame.clone(), frame]);
        let corrupted = corrupt_witness(&w);
        assert_eq!(corrupted.frames()[0].input("pick_original"), 0);
        assert_eq!(corrupted.frames()[1].input("pick_original"), 1);
        // Corruption is idempotent in shape: a second flip restores.
        let restored = corrupt_witness(&corrupted);
        assert_eq!(restored.frames()[0].input("pick_original"), 1);
    }

    #[test]
    fn unreplayable_opcode_indices_are_skipped_not_fatal() {
        let mut frame = Frame::default();
        frame.inputs.insert("pick_original".to_string(), 1);
        frame.inputs.insert("orig_op".to_string(), 999);
        let w = Witness::new(vec![frame, Frame::default()]);
        assert!(committed_stream(&w).is_empty());
    }
}
