//! Detection drivers: run SQED or SEPE-SQED against an (optionally mutated)
//! processor model and report the outcome.

use std::fmt;
use std::time::Duration;

use sepe_isa::Opcode;
use sepe_processor::{Mutation, ProcessorConfig};
use sepe_smt::{CancelFlag, StopReason, TermManager};
use sepe_tsys::{
    corrupt_certificate, verify_certificate, Bmc, BmcConfig, BmcMode, BmcResult, KInduction, Pdr,
    ProofCertificate, ProofMethod, TransitionSystem, Witness,
};

use crate::equivalence::EquivalenceDb;
use crate::fault::FaultPlan;
use crate::parallel::RetryPolicy;
use crate::qed::{QedBuilder, Scheme};

/// Which verification method to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Plain SQED with the EDDI-V duplication.
    Sqed,
    /// SEPE-SQED with the EDSEP-V equivalent programs.
    SepeSqed,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Method::Sqed => write!(f, "SQED"),
            Method::SepeSqed => write!(f, "SEPE-SQED"),
        }
    }
}

/// Configuration of a detection run.
#[derive(Debug, Clone)]
pub struct DetectorConfig {
    /// The processor model configuration; its `allowed_opcodes` also define
    /// the original-instruction universe of the experiment.
    pub processor: ProcessorConfig,
    /// Maximum BMC bound (transition steps).
    pub max_bound: usize,
    /// SAT conflict budget per BMC query.
    pub conflict_limit: Option<u64>,
    /// Wall-clock budget for the whole run.
    pub time_limit: Option<Duration>,
    /// Dispatch-queue depth override.
    pub queue_depth: Option<usize>,
    /// Equivalence database for SEPE-SQED (`None` uses the curated database
    /// at the processor's data-path width).
    pub equivalence: Option<EquivalenceDb>,
    /// Depth-exploration strategy of the model checker.
    ///
    /// The default is [`BmcMode::Cumulative`] (one query over all depths,
    /// usually fastest when a counterexample exists); the per-depth modes
    /// are exposed for shortest-counterexample-first exploration and for the
    /// incremental-vs-scratch benchmarks.
    pub bmc_mode: BmcMode,
    /// Word-level preprocessing (on by default): rewriting ahead of
    /// bit-blasting plus the BMC cone-of-influence reduction.  Off is the
    /// pre-rewrite baseline, kept for the bench harness's
    /// rewrite-on-vs-off arm.
    pub simplify: bool,
    /// Gate-level AIG reductions below the word level (on by default):
    /// structural hashing, local rewriting, polarity-aware Tseitin.  Off is
    /// the direct-blasting baseline of the bench harness's `aig_off` arm.
    pub aig: bool,
    /// Shared cancellation flags passed down to the model checker (default
    /// empty).  Raising *any* flag from another thread aborts an in-flight
    /// run with an inconclusive [`Detection`] within a short burst of SAT
    /// conflicts.  Independent cancellation sources chain by each pushing
    /// their own flag: the [`parallel`](crate::parallel) engine *adds* its
    /// batch/portfolio flag to whatever the caller configured, so a
    /// caller's flag keeps working inside a batch.
    pub cancel: Vec<CancelFlag>,
    /// Caps the estimated SAT clause-arena + watcher bytes per solver
    /// (`None` = unlimited); a run that exceeds the cap comes back
    /// inconclusive with [`StopReason::MemoryBudget`] instead of growing
    /// without bound.
    pub memory_limit: Option<usize>,
    /// Deterministic fault injection (default `None`: no faults); see
    /// [`FaultPlan`].  Test-only machinery — the parallel engine's retry
    /// ladder strips it on retries unless the plan says otherwise.
    pub fault: Option<FaultPlan>,
    /// Per-run retry policy override (default `None`: inherit the engine's
    /// policy).  Lets one job of a batch climb the degradation ladder
    /// further (or not at all) than its batchmates.
    pub retry: Option<RetryPolicy>,
    /// Replay every counterexample on the concrete processor twin before
    /// reporting it (on by default); a replay that does not reproduce the
    /// inconsistency demotes the verdict to an inconclusive
    /// [`StopReason::WitnessMismatch`] instead of a silently wrong `Bug`.
    pub validate_witness: bool,
    /// Run an unbounded prover instead of plain bounded model checking
    /// (default `None`: bounded BMC up to `max_bound`).  With a method set,
    /// `max_bound` becomes the prover's depth/frontier cap; a run may now
    /// end `Proved` — a conclusive "no bug at *any* depth" the bounded
    /// checker can never give.
    pub prove: Option<ProofMethod>,
    /// Re-check every `Proved` verdict's certificate on an independent
    /// fresh solver before it leaves the detector (on by default); a
    /// certificate that fails demotes the verdict to an inconclusive
    /// [`StopReason::ProofMismatch`] — the proof-side twin of the witness
    /// self-check.
    pub validate_proof: bool,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            processor: ProcessorConfig::fast(),
            max_bound: 10,
            conflict_limit: None,
            time_limit: None,
            queue_depth: None,
            equivalence: None,
            bmc_mode: BmcMode::Cumulative,
            simplify: true,
            aig: true,
            cancel: Vec::new(),
            memory_limit: None,
            fault: None,
            retry: None,
            validate_witness: true,
            prove: None,
            validate_proof: true,
        }
    }
}

impl DetectorConfig {
    /// Starts a builder over the default configuration.  The struct fields
    /// stay public — the builder is the ergonomic front for the common
    /// "defaults plus a few knobs" case:
    ///
    /// ```
    /// use sepe_sqed::detect::DetectorConfig;
    /// use sepe_sqed::parallel::RetryPolicy;
    ///
    /// let config = DetectorConfig::builder()
    ///     .bound(6)
    ///     .aig(false)
    ///     .retry(RetryPolicy::ladder(2))
    ///     .build();
    /// assert_eq!(config.max_bound, 6);
    /// assert!(!config.aig);
    /// assert_eq!(config.retry, Some(RetryPolicy::ladder(2)));
    /// ```
    pub fn builder() -> DetectorConfigBuilder {
        DetectorConfigBuilder {
            config: DetectorConfig::default(),
        }
    }
}

/// Builder for [`DetectorConfig`]; see [`DetectorConfig::builder`].
#[derive(Debug, Clone, Default)]
pub struct DetectorConfigBuilder {
    config: DetectorConfig,
}

impl DetectorConfigBuilder {
    /// Sets the processor model configuration (its `allowed_opcodes` also
    /// define the original-instruction universe).
    pub fn processor(mut self, processor: ProcessorConfig) -> Self {
        self.config.processor = processor;
        self
    }

    /// Sets the maximum BMC bound (transition steps).
    pub fn bound(mut self, max_bound: usize) -> Self {
        self.config.max_bound = max_bound;
        self
    }

    /// Sets the SAT conflict budget per BMC query.
    pub fn conflict_limit(mut self, limit: u64) -> Self {
        self.config.conflict_limit = Some(limit);
        self
    }

    /// Sets the wall-clock budget for the whole run.
    pub fn time_limit(mut self, limit: Duration) -> Self {
        self.config.time_limit = Some(limit);
        self
    }

    /// Overrides the dispatch-queue depth.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.config.queue_depth = Some(depth);
        self
    }

    /// Sets the equivalence database for SEPE-SQED.
    pub fn equivalence(mut self, db: EquivalenceDb) -> Self {
        self.config.equivalence = Some(db);
        self
    }

    /// Sets the depth-exploration strategy of the model checker.
    pub fn bmc_mode(mut self, mode: BmcMode) -> Self {
        self.config.bmc_mode = mode;
        self
    }

    /// Turns word-level preprocessing on or off.
    pub fn simplify(mut self, simplify: bool) -> Self {
        self.config.simplify = simplify;
        self
    }

    /// Turns the gate-level AIG reductions on or off.
    pub fn aig(mut self, aig: bool) -> Self {
        self.config.aig = aig;
        self
    }

    /// Chains a cancellation flag (pushes — flags from every caller stay
    /// armed together, per the PR-6 chaining semantics).
    pub fn cancel(mut self, flag: CancelFlag) -> Self {
        self.config.cancel.push(flag);
        self
    }

    /// Caps the estimated SAT memory per solver.
    pub fn memory_limit(mut self, bytes: usize) -> Self {
        self.config.memory_limit = Some(bytes);
        self
    }

    /// Arms a deterministic fault plan.
    pub fn fault(mut self, fault: FaultPlan) -> Self {
        self.config.fault = Some(fault);
        self
    }

    /// Sets the per-run retry policy (overrides the engine's).
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.config.retry = Some(retry);
        self
    }

    /// Turns the concrete witness self-check on or off.
    pub fn validate_witness(mut self, validate: bool) -> Self {
        self.config.validate_witness = validate;
        self
    }

    /// Runs an unbounded prover (k-induction or IC3/PDR) instead of plain
    /// bounded model checking.
    pub fn prove(mut self, method: ProofMethod) -> Self {
        self.config.prove = Some(method);
        self
    }

    /// Turns the independent-solver certificate self-check on or off.
    pub fn validate_proof(mut self, validate: bool) -> Self {
        self.config.validate_proof = validate;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> DetectorConfig {
        self.config
    }
}

/// The outcome of one detection run.
#[derive(Debug, Clone)]
pub struct Detection {
    /// The method that was run.
    pub method: Method,
    /// Name of the injected bug, if any.
    pub bug: Option<String>,
    /// Whether a counterexample (inconsistency) was found.
    pub detected: bool,
    /// Whether the run ended because a resource budget was exhausted rather
    /// than because the bound was fully explored.
    pub inconclusive: bool,
    /// Why an inconclusive run stopped (`None` on a conclusive verdict):
    /// deadline, conflict budget, memory budget, or cancellation — the
    /// previously indistinguishable give-ups, classified.
    pub stop_reason: Option<StopReason>,
    /// Wall-clock runtime of the model-checking run.
    pub runtime: Duration,
    /// Counterexample length in committed instructions, when detected.
    pub trace_len: Option<usize>,
    /// The full counterexample, when detected.
    pub witness: Option<Witness>,
    /// Result of the concrete witness self-check: `Some(true)` when the
    /// counterexample replayed and reproduced the inconsistency,
    /// `Some(false)` when it did not (the verdict was demoted to
    /// [`StopReason::WitnessMismatch`]), `None` when no counterexample was
    /// found or validation was disabled.
    pub witness_validated: Option<bool>,
    /// Whether the property was *proved* for all depths (an unbounded
    /// prover converged).  Strictly stronger than `!detected &&
    /// !inconclusive`, which only covers the explored bound.
    pub proved: bool,
    /// The prover that produced a `proved` verdict.
    pub proof_method: Option<ProofMethod>,
    /// Induction depth / PDR frontier frame at which the proof closed.
    pub proof_depth: Option<usize>,
    /// Result of the independent-solver certificate self-check:
    /// `Some(true)` when the invariant re-verified, `Some(false)` when it
    /// did not (the verdict was demoted to
    /// [`StopReason::ProofMismatch`]), `None` when nothing was proved or
    /// validation was disabled.
    pub proof_checked: Option<bool>,
    /// Work counters of the prover run (`None` when no prover was
    /// configured): queries, cubes blocked, clauses pushed, uniqueness
    /// constraints — what the bench `proofs` arm records.
    pub proof_work: Option<sepe_tsys::ProveStats>,
    /// Deepest bound explored.
    pub bound_reached: usize,
    /// Total SAT conflicts spent by the model checker.
    pub conflicts: u64,
    /// Solver-reuse counters of the model-checking run (all zero for the
    /// scratch/cumulative modes, which build fresh solvers per query).
    pub solver: sepe_smt::SolverReuseStats,
    /// Per-query solver-work deltas, one entry per SAT query in issue order
    /// (one per depth in the per-depth BMC modes).  The cumulative counters
    /// above hide how the work is distributed over the sweep; these deltas
    /// are what the table1/fig4 binaries report so the effect of
    /// learnt-database reduction is readable per depth.
    pub depths: Vec<sepe_tsys::DepthStats>,
}

impl Detection {
    /// Formats the runtime like the paper's tables (seconds, or "-" when the
    /// bug was not detected).
    pub fn table_cell(&self) -> String {
        if self.detected {
            format!("{:.2}s", self.runtime.as_secs_f64())
        } else {
            "-".to_string()
        }
    }
}

/// Aggregate solver-work totals of one model-checking (or prover) run,
/// flattened to what [`Detection`] reports.
struct RunTotals {
    runtime: Duration,
    deepest: usize,
    conflicts: u64,
    solver: sepe_smt::SolverReuseStats,
    depths: Vec<sepe_tsys::DepthStats>,
}

/// Runs detection experiments.
#[derive(Debug, Clone)]
pub struct Detector {
    config: DetectorConfig,
}

impl Detector {
    /// Creates a detector.
    pub fn new(config: DetectorConfig) -> Self {
        Detector { config }
    }

    /// The configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// The equivalence database a SEPE-SQED run will use.
    pub fn equivalence_db(&self) -> EquivalenceDb {
        self.config
            .equivalence
            .clone()
            .unwrap_or_else(|| EquivalenceDb::curated_for_width(self.config.processor.xlen))
    }

    /// The original-instruction opcodes of the experiment for a method: the
    /// processor's allowed opcodes, restricted (for SEPE-SQED) to the ones the
    /// equivalence database can transform.
    pub fn original_opcodes(&self, method: Method) -> Vec<Opcode> {
        let allowed = &self.config.processor.allowed_opcodes;
        match method {
            Method::Sqed => allowed.clone(),
            Method::SepeSqed => {
                let db = self.equivalence_db();
                allowed
                    .iter()
                    .copied()
                    .filter(|op| op.touches_memory() || db.template(*op).is_some())
                    .collect()
            }
        }
    }

    /// Runs one method against one (optional) injected bug.
    pub fn check(&self, method: Method, mutation: Option<&Mutation>) -> Detection {
        let mut tm = TermManager::new();
        let scheme = match method {
            Method::Sqed => Scheme::Sqed,
            Method::SepeSqed => Scheme::Sepe(self.equivalence_db()),
        };
        let builder = QedBuilder {
            processor: self.config.processor.clone(),
            original_opcodes: self.original_opcodes(method),
            queue_depth: self.config.queue_depth,
        };
        let system = builder.build(&mut tm, &scheme, mutation);
        let bmc_config = BmcConfig {
            conflict_limit: self.config.conflict_limit,
            time_limit: self.config.time_limit,
            // the initial state is consistent by construction, start at 1
            start_bound: 1,
            // default: one cumulative query over all depths (fastest when a
            // counterexample exists); per-depth modes guarantee shortest
            // counterexamples and enable incremental solver reuse
            mode: self.config.bmc_mode,
            simplify: self.config.simplify,
            aig: self.config.aig,
            frame_rescore: None,
            cancel: self.config.cancel.clone(),
            memory_limit: self.config.memory_limit,
            fault: self.config.fault.map(FaultPlan::to_bmc).unwrap_or_default(),
        };
        if let Some(prover) = self.config.prove {
            let run = match prover {
                ProofMethod::KInduction => {
                    KInduction::new(bmc_config).check(&mut tm, &system.ts, self.config.max_bound)
                }
                ProofMethod::Pdr => {
                    Pdr::new(bmc_config).check(&mut tm, &system.ts, self.config.max_bound)
                }
            };
            let totals = RunTotals {
                runtime: run.stats.duration,
                deepest: run.stats.depth_reached,
                conflicts: run.stats.conflicts,
                solver: run.stats.solver,
                depths: Vec::new(),
            };
            let work = run.stats;
            let mut detection = self.classify(
                &mut tm,
                &system.ts,
                method,
                mutation,
                run.result,
                run.certificate,
                totals,
            );
            detection.proof_work = Some(work);
            return detection;
        }
        let mut bmc = Bmc::new(bmc_config);
        let result = bmc.check(&mut tm, &system.ts, self.config.max_bound);
        let stats = bmc.stats();
        let totals = RunTotals {
            runtime: stats.duration,
            deepest: stats.deepest_bound,
            conflicts: stats.conflicts,
            solver: stats.solver,
            depths: stats.depths.clone(),
        };
        self.classify(&mut tm, &system.ts, method, mutation, result, None, totals)
    }

    /// Turns a raw model-checking (or prover) result into a [`Detection`],
    /// running the witness and certificate self-checks on the way.
    #[allow(clippy::too_many_arguments)]
    fn classify(
        &self,
        tm: &mut TermManager,
        ts: &TransitionSystem,
        method: Method,
        mutation: Option<&Mutation>,
        result: BmcResult,
        certificate: Option<ProofCertificate>,
        totals: RunTotals,
    ) -> Detection {
        let bug = mutation.map(|m| m.name.clone());
        match result {
            BmcResult::Counterexample(witness) => {
                // Fault hook: hand the self-check a corrupted witness so the
                // demotion path is deterministically testable.
                let witness = match self.config.fault {
                    Some(f) if f.corrupt_witness => crate::selfcheck::corrupt_witness(&witness),
                    _ => witness,
                };
                let validated = self.config.validate_witness.then(|| {
                    crate::selfcheck::replay_confirms(
                        &self.config.processor,
                        mutation,
                        method,
                        &witness,
                    )
                });
                if validated == Some(false) {
                    // The solver's counterexample does not reproduce on the
                    // concrete twin: a structured failure, not a bug report.
                    return Detection {
                        method,
                        bug,
                        detected: false,
                        inconclusive: true,
                        stop_reason: Some(StopReason::WitnessMismatch),
                        runtime: totals.runtime,
                        trace_len: None,
                        witness: Some(witness),
                        witness_validated: Some(false),
                        proved: false,
                        proof_method: None,
                        proof_depth: None,
                        proof_checked: None,
                        proof_work: None,
                        bound_reached: totals.deepest,
                        conflicts: totals.conflicts,
                        solver: totals.solver,
                        depths: totals.depths,
                    };
                }
                Detection {
                    method,
                    bug,
                    detected: true,
                    inconclusive: false,
                    stop_reason: None,
                    runtime: totals.runtime,
                    trace_len: Some(witness.num_steps()),
                    witness: Some(witness),
                    witness_validated: validated,
                    proved: false,
                    proof_method: None,
                    proof_depth: None,
                    proof_checked: None,
                    proof_work: None,
                    bound_reached: totals.deepest,
                    conflicts: totals.conflicts,
                    solver: totals.solver,
                    depths: totals.depths,
                }
            }
            BmcResult::Proved {
                method: prover,
                depth,
            } => {
                // Fault hook: hand the self-check a corrupted certificate so
                // the demotion path is deterministically testable.
                let certificate = match self.config.fault {
                    Some(f) if f.corrupt_proof => certificate
                        .as_ref()
                        .map(|cert| corrupt_certificate(tm, cert)),
                    _ => certificate,
                };
                let checked = self.config.validate_proof.then(|| {
                    certificate
                        .as_ref()
                        .is_some_and(|cert| verify_certificate(tm, ts, cert).is_ok())
                });
                if checked == Some(false) {
                    // The prover's certificate does not re-verify on an
                    // independent solver: a structured failure, not a proof.
                    return Detection {
                        method,
                        bug,
                        detected: false,
                        inconclusive: true,
                        stop_reason: Some(StopReason::ProofMismatch),
                        runtime: totals.runtime,
                        trace_len: None,
                        witness: None,
                        witness_validated: None,
                        proved: false,
                        proof_method: Some(prover),
                        proof_depth: Some(depth),
                        proof_checked: Some(false),
                        proof_work: None,
                        bound_reached: totals.deepest,
                        conflicts: totals.conflicts,
                        solver: totals.solver,
                        depths: totals.depths,
                    };
                }
                Detection {
                    method,
                    bug,
                    detected: false,
                    inconclusive: false,
                    stop_reason: None,
                    runtime: totals.runtime,
                    trace_len: None,
                    witness: None,
                    witness_validated: None,
                    proved: true,
                    proof_method: Some(prover),
                    proof_depth: Some(depth),
                    proof_checked: checked,
                    proof_work: None,
                    bound_reached: totals.deepest,
                    conflicts: totals.conflicts,
                    solver: totals.solver,
                    depths: totals.depths,
                }
            }
            BmcResult::NoCounterexample { bound } => Detection {
                method,
                bug,
                detected: false,
                inconclusive: false,
                stop_reason: None,
                runtime: totals.runtime,
                trace_len: None,
                witness: None,
                witness_validated: None,
                proved: false,
                proof_method: None,
                proof_depth: None,
                proof_checked: None,
                proof_work: None,
                bound_reached: bound,
                conflicts: totals.conflicts,
                solver: totals.solver,
                depths: totals.depths,
            },
            BmcResult::Unknown { bound, reason } => Detection {
                method,
                bug,
                detected: false,
                inconclusive: true,
                stop_reason: Some(reason),
                runtime: totals.runtime,
                trace_len: None,
                witness: None,
                witness_validated: None,
                proved: false,
                proof_method: None,
                proof_depth: None,
                proof_checked: None,
                proof_work: None,
                bound_reached: bound,
                conflicts: totals.conflicts,
                solver: totals.solver,
                depths: totals.depths,
            },
        }
    }

    /// Convenience: runs both methods on the same bug.
    pub fn compare(&self, mutation: Option<&Mutation>) -> (Detection, Detection) {
        (
            self.check(Method::Sqed, mutation),
            self.check(Method::SepeSqed, mutation),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector(opcodes: &[Opcode], max_bound: usize) -> Detector {
        Detector::new(DetectorConfig {
            processor: ProcessorConfig::tiny().with_opcodes(opcodes),
            max_bound,
            ..DetectorConfig::default()
        })
    }

    #[test]
    fn clean_design_has_no_counterexample_under_either_method() {
        let d = detector(&[Opcode::Add, Opcode::Xori], 2);
        let sqed = d.check(Method::Sqed, None);
        assert!(!sqed.detected, "the unmutated design is self-consistent");
        assert!(!sqed.inconclusive);
        let sepe = d.check(Method::SepeSqed, None);
        assert!(!sepe.detected, "the unmutated design is SEPE-consistent");
        assert!(!sepe.inconclusive);
    }

    #[test]
    #[ignore = "long formal check on a single-CPU host; run with cargo test -- --ignored"]
    fn sepe_detects_a_single_instruction_bug_that_sqed_misses() {
        let bug = &Mutation::table1()[0]; // ADD off by one
        let d = detector(&[Opcode::Add, Opcode::Addi], 4);
        let sqed = d.check(Method::Sqed, Some(bug));
        assert!(
            !sqed.detected,
            "EDDI-V duplication cannot see single-instruction bugs"
        );
        let sepe = d.check(Method::SepeSqed, Some(bug));
        assert!(sepe.detected, "SEPE-SQED must detect the ADD bug");
        let len = sepe.trace_len.expect("counterexample length");
        assert!(
            len >= 2,
            "the trace commits the original and its equivalent program"
        );
        assert!(sepe.table_cell().ends_with('s'));
        assert_eq!(sqed.table_cell(), "-");
    }

    #[test]
    #[ignore = "long formal check on a single-CPU host; run with cargo test -- --ignored"]
    fn both_methods_detect_a_multiple_instruction_bug() {
        let bug = Mutation::figure4()
            .into_iter()
            .find(|b| b.name == "multi-11-addi-raw")
            .expect("bug exists");
        let d = detector(&[Opcode::Addi, Opcode::Xori], 6);
        let sqed = d.check(Method::Sqed, Some(&bug));
        assert!(sqed.detected, "SQED detects multiple-instruction bugs");
        let sepe = d.check(Method::SepeSqed, Some(&bug));
        assert!(sepe.detected, "SEPE-SQED detects multiple-instruction bugs");
    }

    #[test]
    fn original_opcode_filtering_respects_the_database() {
        let d = detector(&[Opcode::Add, Opcode::Lw, Opcode::Sw], 4);
        let sqed_ops = d.original_opcodes(Method::Sqed);
        let sepe_ops = d.original_opcodes(Method::SepeSqed);
        assert_eq!(sqed_ops.len(), 3);
        assert_eq!(
            sepe_ops.len(),
            3,
            "memory ops are handled natively by EDSEP-V"
        );
    }
}
