//! EDSEP-V: error detection using semantically equivalent programs for
//! validation (the transformation behind SEPE-SQED, Section 5).

use sepe_isa::{Instr, Opcode, Reg};
use sepe_processor::MutantCore;

use crate::equivalence::EquivalenceDb;
use crate::mapping::RegisterMapping;

/// The EDSEP-V transformation: every original instruction is replaced, on the
/// shadow side, by its semantically equivalent program with registers
/// allocated from the `E` and `T` sets (Listing 2 of the paper).
#[derive(Debug, Clone)]
pub struct EdsepV {
    mapping: RegisterMapping,
    db: EquivalenceDb,
}

impl EdsepV {
    /// Creates the transformation from an equivalence database.
    pub fn new(db: EquivalenceDb) -> Self {
        EdsepV {
            mapping: RegisterMapping::sepe(),
            db,
        }
    }

    /// Creates the transformation from the curated database.
    pub fn curated() -> Self {
        Self::new(EquivalenceDb::curated())
    }

    /// The register mapping in use.
    pub fn mapping(&self) -> &RegisterMapping {
        &self.mapping
    }

    /// The equivalence database in use.
    pub fn database(&self) -> &EquivalenceDb {
        &self.db
    }

    /// Whether an original instruction is legal for a SEPE-SQED run.
    pub fn is_legal_original(&self, instr: &Instr) -> bool {
        let mut regs = instr.sources();
        if let Some(rd) = instr.dest() {
            regs.push(rd);
        }
        regs.into_iter().all(|r| self.mapping.is_original(r))
            && (instr.opcode.touches_memory() || self.db.template(instr.opcode).is_some())
    }

    /// The semantically equivalent instruction sequence of an original
    /// instruction, with registers allocated per Listing 2: sources map into
    /// `E`, the destination maps to its `E` counterpart, temporaries come
    /// from `T`.
    ///
    /// Memory instructions are transformed natively (the address is computed
    /// through the adder instead of the load/store offset path), since memory
    /// behaviour is not expressible as a register-to-register template.
    ///
    /// # Panics
    ///
    /// Panics if the instruction has no template and is not a memory
    /// instruction, or uses registers outside the original set.
    pub fn equivalent_program(&self, instr: &Instr) -> Vec<Instr> {
        let rs1 = self.mapped(instr.rs1);
        let rs2 = self.mapped(instr.rs2);
        let t0 = self.mapping.temps[0];
        match instr.opcode {
            Opcode::Lw => vec![
                Instr::addi(t0, rs1, instr.imm),
                Instr::lw(self.mapped(instr.rd), t0, 0),
            ],
            Opcode::Sw => vec![Instr::addi(t0, rs1, instr.imm), Instr::sw(t0, rs2, 0)],
            op => {
                let template = self
                    .db
                    .template(op)
                    .unwrap_or_else(|| panic!("no equivalent program known for {op}"));
                let dest = self.mapped(if op.writes_rd() { instr.rd } else { Reg::ZERO });
                template.instantiate(rs1, rs2, dest, &self.mapping.temps, instr.imm)
            }
        }
    }

    fn mapped(&self, r: Reg) -> Reg {
        self.mapping.shadow(r)
    }

    /// Runs a SEPE-SQED test concretely: executes every original instruction
    /// (memory bank 0) and its equivalent program (memory bank 1) and reports
    /// whether the final state is QED-consistent.
    pub fn concrete_check(&self, core: &mut MutantCore, originals: &[Instr]) -> bool {
        for instr in originals {
            assert!(
                self.is_legal_original(instr),
                "{instr} is not a legal original"
            );
            core.commit_banked(instr, false);
            for eq in self.equivalent_program(instr) {
                core.commit_banked(&eq, true);
            }
        }
        self.is_consistent(core)
    }

    /// The SEPE-SQED consistency predicate over a concrete core state.
    pub fn is_consistent(&self, core: &MutantCore) -> bool {
        let regs_ok = self
            .mapping
            .consistency_pairs()
            .into_iter()
            .all(|(o, e)| core.reg(o) == core.reg(e));
        let half = core.config().mem_words / 2;
        let mem_ok = (0..half).all(|w| core.mem_word(w) == core.mem_word(w + half));
        regs_ok && mem_ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepe_processor::{Mutation, ProcessorConfig};

    #[test]
    fn listing2_register_allocation() {
        // SUB regs[1], regs[2], regs[3] expands exactly as Listing 2 shows.
        let edsepv = EdsepV::curated();
        let program = edsepv.equivalent_program(&Instr::sub(Reg(1), Reg(2), Reg(3)));
        let rendered: Vec<String> = program.iter().map(|i| i.to_string()).collect();
        assert_eq!(
            rendered,
            vec![
                "xori x26, x15, -1".to_string(),
                "add x27, x26, x16".to_string(),
                "xori x14, x27, -1".to_string(),
            ]
        );
    }

    #[test]
    fn every_equivalent_program_stays_inside_e_and_t() {
        let edsepv = EdsepV::curated();
        let mapping = edsepv.mapping().clone();
        for op in edsepv.database().opcodes() {
            let instr = match op.operand_kind() {
                sepe_isa::OperandKind::RegReg => Instr::reg_reg(op, Reg(1), Reg(2), Reg(3)),
                sepe_isa::OperandKind::RegImm => Instr::new(op, Reg(1), Reg(2), Reg::ZERO, -9),
                sepe_isa::OperandKind::RegShamt => Instr::new(op, Reg(1), Reg(2), Reg::ZERO, 3),
                sepe_isa::OperandKind::Upper => Instr::lui(Reg(1), 0x4000),
                _ => continue,
            };
            for eq in edsepv.equivalent_program(&instr) {
                let mut regs = eq.sources();
                if let Some(rd) = eq.dest() {
                    regs.push(rd);
                }
                for r in regs {
                    assert!(
                        r.is_zero() || mapping.is_shadow(r) || mapping.is_temp(r),
                        "{op}: register {r} escapes the E/T sets"
                    );
                }
            }
        }
    }

    #[test]
    fn clean_core_stays_consistent() {
        let edsepv = EdsepV::curated();
        let mut core = MutantCore::new(ProcessorConfig::default(), None);
        let program = vec![
            Instr::addi(Reg(1), Reg(0), 7),
            Instr::lui(Reg(2), 0x3),
            Instr::add(Reg(3), Reg(1), Reg(2)),
            Instr::reg_reg(Opcode::Mulh, Reg(4), Reg(3), Reg(1)),
            Instr::sw(Reg(1), Reg(3), 4),
            Instr::lw(Reg(5), Reg(1), 4),
        ];
        assert!(edsepv.concrete_check(&mut core, &program));
    }

    #[test]
    fn single_instruction_bugs_break_consistency_under_edsepv() {
        // Unlike EDDI-V, the equivalent program computes through a different
        // datapath, so Table-1 bugs surface as inconsistencies.
        for bug in Mutation::table1() {
            let target = bug.target_opcode().expect("table-1 bugs target an opcode");
            let edsepv = EdsepV::curated();
            let mut core = MutantCore::new(ProcessorConfig::default(), Some(bug.clone()));
            // set up distinguishing operand values in both O and E copies
            for (o, e) in edsepv.mapping().consistency_pairs() {
                if o.is_zero() {
                    continue;
                }
                let v = 0x1234_5678u64 ^ u64::from(o.0);
                core.set_reg(o, v);
                core.set_reg(e, v);
            }
            // a negative first operand and a small positive second operand
            // make every Table-1 corruption observable (sign-sensitive
            // compares, shifts and multiplies included)
            for (o, e) in [(Reg(2), Reg(15)), (Reg(3), Reg(16))] {
                let v = if o == Reg(2) { 0x8000_0005u64 } else { 3 };
                core.set_reg(o, v);
                core.set_reg(e, v);
            }
            let original = match target.operand_kind() {
                sepe_isa::OperandKind::RegReg => Instr::reg_reg(target, Reg(1), Reg(2), Reg(3)),
                sepe_isa::OperandKind::RegImm => Instr::new(target, Reg(1), Reg(2), Reg::ZERO, 5),
                sepe_isa::OperandKind::RegShamt => Instr::new(target, Reg(1), Reg(2), Reg::ZERO, 3),
                sepe_isa::OperandKind::Upper => Instr::lui(Reg(1), 0x123),
                sepe_isa::OperandKind::Store => Instr::sw(Reg(2), Reg(3), 8),
                sepe_isa::OperandKind::Load => Instr::lw(Reg(1), Reg(2), 8),
            };
            let consistent = edsepv.concrete_check(&mut core, &[original]);
            assert!(
                !consistent,
                "bug {} must be visible to EDSEP-V on a distinguishing input",
                bug.name
            );
        }
    }

    #[test]
    #[should_panic(expected = "not a legal original")]
    fn originals_outside_o_are_rejected() {
        let edsepv = EdsepV::curated();
        let mut core = MutantCore::new(ProcessorConfig::default(), None);
        edsepv.concrete_check(&mut core, &[Instr::add(Reg(20), Reg(1), Reg(2))]);
    }
}
