//! In-solver batched multi-bug detection over one shared unrolling.
//!
//! The per-job engine ([`crate::parallel`]) answers a twenty-mutation
//! catalogue with twenty independent detectors: twenty term managers, twenty
//! unrollings, twenty cold SAT solvers — even though every job checks the
//! *same* processor under the *same* QED property and differs only in which
//! mutated-gate condition is wired into the datapath.  [`BatchedDetector`]
//! collapses that redundancy inside the solver:
//!
//! * the transition system is built **once** with every catalogue entry's
//!   mutation guarded by a fresh *activation literal*
//!   ([`QedBuilder::build_catalogue`]) — a free boolean variable that is
//!   neither a state variable nor an input, so unrolling maps it to itself
//!   in every frame and one literal switches its mutation on or off across
//!   the whole trace,
//! * the unrolling is encoded **once** into one persistent
//!   [`BmcSession`] (rewriting, pinning,
//!   cone-of-influence refinement and the AIG layer all run once, and the
//!   append-only node→CNF-variable contract keeps every encoding valid for
//!   the session's lifetime),
//! * each entry×depth query is a
//!   [`check_assuming`](sepe_smt::IncrementalSolver::check_assuming) call
//!   under a one-hot assumption set
//!   ([`one_hot_assumptions`]): the entry's literal true, every other
//!   entry's literal false, plus the depth's bad state.  Learnt clauses and
//!   branching activities accumulated by one entry's queries transfer to the
//!   next — most of the QED machinery is mutation-independent, so most
//!   learnt clauses are too.
//!
//! Depths advance in lock-step: at each bound the session extends the
//! unrolling once, then queries every still-unresolved entry, so a detected
//! entry reports its *shortest* counterexample exactly like the per-depth
//! per-job modes, and verdicts/bounds/trace lengths are bit-identical to the
//! per-job engine at `jobs = 1` (the differential test suite holds the two
//! paths to that).
//!
//! # Failure model
//!
//! The PR-6 fault machinery applies per *query*, not per run: an entry's
//! [`FaultPlan`] is armed on the shared solver only while that entry's query
//! executes.  A faked budget breach or an entry-level cancellation resolves
//! only its own entry.  A *panic* (or a genuine memory-cap breach) poisons
//! the shared solver, so the batch degrades instead of dying: the failed
//! entry re-runs on the per-job retry ladder (its shared-solver query counts
//! as attempt one at [`DegradationRung::Full`]), and every other unresolved
//! entry falls back to a fresh, fault-free per-job run — bystanders keep
//! their verdicts even when a neighbour detonates.

use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sepe_processor::Mutation;
use sepe_smt::{
    one_hot_assumptions, CancelFlag, FaultHooks, SolverReuseStats, StopReason, TermId, TermManager,
};
use sepe_tsys::{BmcConfig, BmcFaultPlan, BmcMode, BmcSession, DepthStats, QueryOutcome};

use crate::detect::{Detection, Detector, DetectorConfig, Method};
use crate::fault::FaultPlan;
use crate::parallel::{
    panic_message, resume_retry_ladder, run_with_retry, DegradationRung, DetectionJob, JobOutcome,
    JobReport, RetryPolicy, StopReasonTally,
};
use crate::qed::{QedBuilder, Scheme};

/// One entry of a mutation catalogue: a labelled bug, with an optional
/// per-entry fault plan (armed on the shared solver only while this entry's
/// queries run).
#[derive(Debug, Clone)]
pub struct CatalogueEntry {
    /// Human-readable entry label, carried through to results and reports.
    pub label: String,
    /// The injected bug this entry checks for.
    pub mutation: Mutation,
    /// Deterministic fault injection scoped to this entry's queries
    /// (default `None`).  The shared configuration's own `fault` field is
    /// ignored in batched mode — faults are per entry here.
    pub fault: Option<FaultPlan>,
}

impl CatalogueEntry {
    /// Creates an entry with no fault plan.
    pub fn new(label: impl Into<String>, mutation: Mutation) -> Self {
        CatalogueEntry {
            label: label.into(),
            mutation,
            fault: None,
        }
    }

    /// Arms a fault plan on this entry.
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        self.fault = Some(fault);
        self
    }
}

/// Aggregate counters of one batched run.  The encode-once economics are
/// all here: `encodes` stays at 1 unless something poisons the shared
/// solver, while the per-job engine pays one encoding per job.
#[derive(Debug, Clone, Default)]
pub struct BatchedStats {
    /// Catalogue entries scheduled.
    pub entries: u64,
    /// Wall-clock time of the whole batch.
    pub wall: Duration,
    /// Queries issued on the shared solver (≤ entries × bounds; resolved
    /// entries stop querying).
    pub queries: u64,
    /// Transition-system encodings paid for: 1 for the shared session, plus
    /// one per per-job fallback attempt.  The per-job engine pays
    /// `entries` here — this counter against that baseline is the
    /// deterministic form of the batched-throughput claim.
    pub encodes: u64,
    /// Entries whose final answer came from the per-job fallback path
    /// (shared-solver poisoning, or a budget-stopped entry granted a
    /// retry).
    pub fallbacks: u64,
    /// Deepest bound the shared unrolling was extended to.
    pub deepest_bound: usize,
    /// SAT conflicts spent by the shared solver (fallback runs not
    /// included; their conflicts are in the per-entry detections).
    pub shared_conflicts: u64,
    /// Retry attempts across all entries (attempts beyond each entry's
    /// first).
    pub retries: u64,
    /// Entries whose final attempt ran below [`DegradationRung::Full`].
    pub degraded_runs: u64,
    /// Attempts that panicked and were caught.
    pub panics: u64,
    /// Entries that ended inconclusive because a cancellation flag was
    /// raised.
    pub cancelled: u64,
    /// Final-outcome tallies by stop reason (completed entries are not
    /// tallied).
    pub stop_reasons: StopReasonTally,
    /// Concrete witness replays performed on final counterexamples.
    pub witness_validations: u64,
    /// Replays whose final verdict was a mismatch (the entry was demoted to
    /// [`StopReason::WitnessMismatch`] instead of reporting a wrong bug).
    pub witness_mismatches: u64,
    /// Per-entry unbounded-prover runs dispatched for entries that survived
    /// the shared bounded phase (prove mode only).
    pub proof_attempts: u64,
    /// Entries whose final verdict was `Proved` — clean at *every* depth,
    /// certificate checked.
    pub proved: u64,
    /// Certificates whose independent-solver self-check failed (the entry
    /// was demoted to [`StopReason::ProofMismatch`] instead of reporting a
    /// wrong proof).
    pub proof_mismatches: u64,
    /// The shared session's solver-reuse counters: one encoding's worth of
    /// CNF (`cnf_vars`/`cnf_clauses`), cache hits across queries, learnt
    /// clauses retained between them.
    pub solver: SolverReuseStats,
}

impl fmt::Display for BatchedStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} entries in {:.2}s: {} shared queries to bound {}, {} encodes, \
             {} fallbacks, {} shared conflicts, {} retries, {} panics",
            self.entries,
            self.wall.as_secs_f64(),
            self.queries,
            self.deepest_bound,
            self.encodes,
            self.fallbacks,
            self.shared_conflicts,
            self.retries,
            self.panics,
        )
    }
}

/// The result of [`BatchedDetector::run`]: one [`Detection`] per catalogue
/// entry, in catalogue order, plus execution reports and the aggregate
/// counters — the same shape as the per-job engine's
/// [`BatchOutcome`](crate::parallel::BatchOutcome), so drivers can consume
/// either.
#[derive(Debug, Clone)]
pub struct BatchedOutcome {
    /// Per-entry results; `detections[i]` answers `catalogue[i]`.
    pub detections: Vec<Detection>,
    /// Per-entry execution reports, parallel to `detections`.
    pub reports: Vec<JobReport>,
    /// Aggregate batched counters.
    pub stats: BatchedStats,
}

/// Per-entry accumulators across the entry's shared-solver queries.
#[derive(Debug, Clone, Default)]
struct EntryAcc {
    conflicts: u64,
    runtime: Duration,
    queries: u64,
    depths: Vec<DepthStats>,
}

/// How an entry left the shared session for the per-job path.
enum Fallback {
    /// The entry's own query failed (panic, budget) and the retry policy
    /// grants more attempts: resume the ladder one rung down.
    Resume { panicked: bool },
    /// An innocent bystander of a poisoned shared solver: run the job fresh,
    /// from the top of the ladder, with its own fault plan.
    Fresh,
}

/// The batched multi-bug detector.
///
/// See the [module docs](self) for the encoding and failure model.
#[derive(Debug, Clone)]
pub struct BatchedDetector {
    config: DetectorConfig,
    retry: RetryPolicy,
}

impl BatchedDetector {
    /// Creates a batched detector over one shared configuration: the
    /// processor (whose `allowed_opcodes` are the catalogue's shared
    /// original-instruction universe), budgets and solver knobs apply to
    /// every entry.
    pub fn new(config: DetectorConfig) -> Self {
        let retry = config.retry.unwrap_or_default();
        BatchedDetector { config, retry }
    }

    /// Sets the retry policy for budget-stopped or panicked entries: their
    /// shared-solver attempt counts as the first rung, and fallback re-runs
    /// descend the same [`DegradationRung`] ladder as the per-job engine.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The shared configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Runs the whole catalogue under one method over one shared unrolling,
    /// returning one [`Detection`] per entry in catalogue order.
    pub fn run(&self, method: Method, catalogue: &[CatalogueEntry]) -> BatchedOutcome {
        let cancel: CancelFlag = Arc::new(AtomicBool::new(false));
        self.run_under(method, catalogue, &cancel, None)
    }

    /// [`run`](Self::run) under an external cancellation flag and deadline —
    /// the entry point the engine uses to schedule a catalogue as one work
    /// unit inside a batch (the flag chains onto the configuration's own
    /// flags, the deadline tightens the configuration's own budget).
    pub(crate) fn run_under(
        &self,
        method: Method,
        catalogue: &[CatalogueEntry],
        batch_cancel: &CancelFlag,
        batch_deadline: Option<Instant>,
    ) -> BatchedOutcome {
        let start = Instant::now();
        let n = catalogue.len();
        let mut stats = BatchedStats {
            entries: n as u64,
            ..BatchedStats::default()
        };
        if n == 0 {
            stats.wall = start.elapsed();
            return BatchedOutcome {
                detections: Vec::new(),
                reports: Vec::new(),
                stats,
            };
        }
        let deadline = match (self.config.time_limit.map(|l| start + l), batch_deadline) {
            (Some(own), Some(batch)) => Some(own.min(batch)),
            (own, batch) => own.or(batch),
        };

        // One build, one encoding: every entry's mutation rides in the same
        // transition system behind its activation literal.
        let helper = Detector::new(self.config.clone());
        let scheme = match method {
            Method::Sqed => Scheme::Sqed,
            Method::SepeSqed => Scheme::Sepe(helper.equivalence_db()),
        };
        let builder = QedBuilder {
            processor: self.config.processor.clone(),
            original_opcodes: helper.original_opcodes(method),
            queue_depth: self.config.queue_depth,
        };
        let mut tm = TermManager::new();
        let mutations: Vec<Mutation> = catalogue.iter().map(|e| e.mutation.clone()).collect();
        let (system, activated) = builder.build_catalogue(&mut tm, &scheme, &mutations);
        let acts: Vec<TermId> = activated.iter().map(|a| a.activation).collect();

        let mut chained = self.config.cancel.clone();
        chained.push(batch_cancel.clone());
        let session_config = BmcConfig {
            conflict_limit: self.config.conflict_limit,
            time_limit: deadline.map(|d| d.saturating_duration_since(start)),
            start_bound: 1,
            // lock-step depths: shortest counterexamples, like PerDepth
            mode: BmcMode::PerDepth,
            simplify: self.config.simplify,
            aig: self.config.aig,
            frame_rescore: None,
            cancel: chained.clone(),
            memory_limit: self.config.memory_limit,
            // per-entry faults are armed around individual queries instead
            fault: BmcFaultPlan::default(),
        };
        let mut session = BmcSession::open(&mut tm, &system.ts, &session_config);
        stats.encodes = 1;

        let mut detections: Vec<Option<Detection>> = vec![None; n];
        let mut reports: Vec<Option<JobReport>> = vec![None; n];
        let mut acc: Vec<EntryAcc> = vec![EntryAcc::default(); n];
        let mut unresolved: Vec<usize> = (0..n).collect();
        let mut fallback: Vec<(usize, Fallback)> = Vec::new();
        let mut aborted: Option<StopReason> = None;
        let mut extended = 0usize;

        'depths: for bound in 1..=self.config.max_bound {
            if unresolved.is_empty() {
                break;
            }
            if chained.iter().any(|f| f.load(Ordering::Relaxed)) {
                aborted = Some(StopReason::Cancelled);
                break;
            }
            if deadline.is_some_and(|d| Instant::now() >= d) {
                aborted = Some(StopReason::Deadline);
                break;
            }
            session.extend(&mut tm, bound);
            extended = bound;

            let mut still = Vec::with_capacity(unresolved.len());
            let mut idx = 0;
            while idx < unresolved.len() {
                let i = unresolved[idx];
                idx += 1;
                let entry = &catalogue[i];
                let fplan = entry.fault.unwrap_or_default();
                if fplan.cancel_at_depth == Some(bound) {
                    // Entry-level cancellation: resolved here, never
                    // retried (cancellation is a verdict, not a failure).
                    detections[i] = Some(inconclusive_detection(
                        method,
                        entry,
                        StopReason::Cancelled,
                        bound,
                        &mut acc[i],
                    ));
                    reports[i] = Some(shared_report(
                        entry,
                        JobOutcome::Stopped(StopReason::Cancelled),
                        false,
                    ));
                    continue;
                }
                let hooks = fplan.to_bmc().sat;
                if !hooks.is_empty() {
                    session.solver().set_fault_hooks(hooks);
                }
                let bad = session.bad_at(&mut tm, bound);
                let assumptions = one_hot_assumptions(&mut tm, &acts, i, &[bad]);
                let result = panic::catch_unwind(AssertUnwindSafe(|| {
                    session.query(&mut tm, bound, &assumptions)
                }));
                if !hooks.is_empty() {
                    session.solver().set_fault_hooks(FaultHooks::default());
                }
                match result {
                    Err(payload) => {
                        // The shared solver is poisoned: this entry resumes
                        // on the ladder (if granted), everyone else still
                        // unresolved falls back to fresh per-job runs.
                        stats.queries += 1;
                        acc[i].queries += 1;
                        let outcome = JobOutcome::Failed {
                            message: panic_message(payload.as_ref()),
                        };
                        if self.retry.max_retries >= 1 {
                            fallback.push((i, Fallback::Resume { panicked: true }));
                        } else {
                            detections[i] = Some(inconclusive_detection(
                                method,
                                entry,
                                StopReason::Panicked,
                                bound,
                                &mut acc[i],
                            ));
                            reports[i] = Some(shared_report(entry, outcome, true));
                        }
                        for &j in still.iter().chain(&unresolved[idx..]) {
                            fallback.push((j, Fallback::Fresh));
                        }
                        unresolved.clear();
                        break 'depths;
                    }
                    Ok(outcome) => {
                        let q = session.last_query_stats().cloned().unwrap_or_default();
                        stats.queries += 1;
                        acc[i].queries += 1;
                        acc[i].conflicts += q.conflicts;
                        acc[i].runtime += q.duration;
                        acc[i].depths.push(q);
                        match outcome {
                            QueryOutcome::Counterexample(witness) => {
                                // Fault hook, then the witness self-check:
                                // a counterexample that does not replay on
                                // the concrete twin is a structured failure,
                                // retried on the per-job ladder if granted.
                                let witness = if fplan.corrupt_witness {
                                    crate::selfcheck::corrupt_witness(&witness)
                                } else {
                                    witness
                                };
                                let validated = self.config.validate_witness.then(|| {
                                    crate::selfcheck::replay_confirms(
                                        &self.config.processor,
                                        Some(&entry.mutation),
                                        method,
                                        &witness,
                                    )
                                });
                                if validated == Some(false) {
                                    if self.retry.max_retries >= 1 {
                                        fallback.push((i, Fallback::Resume { panicked: false }));
                                    } else {
                                        let mut demoted = inconclusive_detection(
                                            method,
                                            entry,
                                            StopReason::WitnessMismatch,
                                            bound,
                                            &mut acc[i],
                                        );
                                        demoted.witness = Some(witness);
                                        demoted.witness_validated = Some(false);
                                        detections[i] = Some(demoted);
                                        reports[i] = Some(shared_report(
                                            entry,
                                            JobOutcome::Stopped(StopReason::WitnessMismatch),
                                            false,
                                        ));
                                    }
                                    continue;
                                }
                                detections[i] = Some(Detection {
                                    method,
                                    bug: Some(entry.mutation.name.clone()),
                                    detected: true,
                                    inconclusive: false,
                                    stop_reason: None,
                                    runtime: acc[i].runtime,
                                    trace_len: Some(witness.num_steps()),
                                    witness: Some(witness),
                                    witness_validated: validated,
                                    proved: false,
                                    proof_method: None,
                                    proof_depth: None,
                                    proof_checked: None,
                                    proof_work: None,
                                    bound_reached: bound,
                                    conflicts: acc[i].conflicts,
                                    solver: SolverReuseStats::default(),
                                    depths: std::mem::take(&mut acc[i].depths),
                                });
                                reports[i] =
                                    Some(shared_report(entry, JobOutcome::Completed, false));
                            }
                            QueryOutcome::Unreachable => still.push(i),
                            QueryOutcome::Unknown(
                                reason @ (StopReason::Cancelled | StopReason::Deadline),
                            ) => {
                                // Shared budgets: gone for everyone.
                                aborted = Some(reason);
                                still.push(i);
                                still.extend(unresolved[idx..].iter().copied());
                                unresolved = still;
                                break 'depths;
                            }
                            QueryOutcome::Unknown(StopReason::MemoryBudget) if hooks.is_empty() => {
                                // A genuine breach: the shared arena is over
                                // the cap and every later query would breach
                                // too — degrade like a poisoning.
                                if self.retry.max_retries >= 1 {
                                    fallback.push((i, Fallback::Resume { panicked: false }));
                                } else {
                                    detections[i] = Some(inconclusive_detection(
                                        method,
                                        entry,
                                        StopReason::MemoryBudget,
                                        bound,
                                        &mut acc[i],
                                    ));
                                    reports[i] = Some(shared_report(
                                        entry,
                                        JobOutcome::Stopped(StopReason::MemoryBudget),
                                        false,
                                    ));
                                }
                                for &j in still.iter().chain(&unresolved[idx..]) {
                                    fallback.push((j, Fallback::Fresh));
                                }
                                unresolved.clear();
                                break 'depths;
                            }
                            QueryOutcome::Unknown(reason) => {
                                // Per-query exhaustion (conflict budget, a
                                // faked breach): this entry alone stops, or
                                // resumes on the ladder if granted.
                                let retryable = JobOutcome::Stopped(reason).should_retry()
                                    || reason == StopReason::Panicked;
                                if retryable && self.retry.max_retries >= 1 {
                                    fallback.push((i, Fallback::Resume { panicked: false }));
                                } else {
                                    detections[i] = Some(inconclusive_detection(
                                        method,
                                        entry,
                                        reason,
                                        bound,
                                        &mut acc[i],
                                    ));
                                    reports[i] = Some(shared_report(
                                        entry,
                                        JobOutcome::Stopped(reason),
                                        false,
                                    ));
                                }
                            }
                        }
                    }
                }
            }
            if aborted.is_some() {
                break;
            }
            unresolved = still;
        }

        // Shared-session counters, before the fallback runs muddy the water.
        let bmc_stats = session.stats();
        stats.solver = bmc_stats.solver;
        stats.shared_conflicts = bmc_stats.conflicts;
        stats.deepest_bound = bmc_stats.deepest_bound;
        drop(session);

        if let Some(reason) = aborted {
            for &i in &unresolved {
                let entry = &catalogue[i];
                let started = acc[i].queries > 0;
                detections[i] = Some(inconclusive_detection(
                    method,
                    entry,
                    reason,
                    extended,
                    &mut acc[i],
                ));
                let mut report = shared_report(entry, JobOutcome::Stopped(reason), false);
                report.attempts = u32::from(started);
                reports[i] = Some(report);
            }
        } else if self.config.prove.is_some() {
            // Entries that survived every bound get a dedicated per-entry
            // proof attempt (fresh system, concrete mutation — activation
            // literals would leak into cubes and uniqueness constraints):
            // the prover can upgrade the bounded "clean to the bound" to a
            // conclusive `Proved`.  Runs through the per-job retry ladder,
            // so prover panics and budget faults degrade instead of
            // poisoning the batch.
            for &i in &unresolved {
                let entry = &catalogue[i];
                let job = DetectionJob::new(
                    entry.label.clone(),
                    DetectorConfig {
                        fault: entry.fault,
                        ..self.config.clone()
                    },
                    method,
                    Some(entry.mutation.clone()),
                );
                let (detection, report) = run_with_retry(&job, batch_cancel, deadline, self.retry);
                stats.proof_attempts += 1;
                // Each prover attempt re-encodes the entry's system.
                stats.encodes += u64::from(report.attempts);
                detections[i] = Some(detection);
                reports[i] = Some(report);
            }
        } else {
            // Entries that survived every bound: proven clean to the bound.
            for &i in &unresolved {
                let entry = &catalogue[i];
                detections[i] = Some(Detection {
                    method,
                    bug: Some(entry.mutation.name.clone()),
                    detected: false,
                    inconclusive: false,
                    stop_reason: None,
                    runtime: acc[i].runtime,
                    trace_len: None,
                    witness: None,
                    witness_validated: None,
                    proved: false,
                    proof_method: None,
                    proof_depth: None,
                    proof_checked: None,
                    proof_work: None,
                    bound_reached: self.config.max_bound,
                    conflicts: acc[i].conflicts,
                    solver: SolverReuseStats::default(),
                    depths: std::mem::take(&mut acc[i].depths),
                });
                reports[i] = Some(shared_report(entry, JobOutcome::Completed, false));
            }
        }

        // Per-job fallback: poisoning bystanders run fresh, failed entries
        // resume the retry ladder one rung down from their shared attempt.
        for (i, kind) in fallback {
            let entry = &catalogue[i];
            let job = DetectionJob::new(
                entry.label.clone(),
                DetectorConfig {
                    fault: entry.fault,
                    ..self.config.clone()
                },
                method,
                Some(entry.mutation.clone()),
            );
            let (detection, report) = match kind {
                Fallback::Fresh => run_with_retry(&job, batch_cancel, deadline, self.retry),
                Fallback::Resume { panicked } => resume_retry_ladder(
                    &job,
                    batch_cancel,
                    deadline,
                    self.retry,
                    DegradationRung::Full.next(),
                    1,
                    u32::from(panicked),
                ),
            };
            stats.fallbacks += 1;
            // Every fallback attempt re-encodes from scratch; the shared
            // attempt (counted inside `report.attempts` for resumed
            // entries) already paid into `encodes = 1`.
            let shared_attempts = u64::from(matches!(kind, Fallback::Resume { .. }));
            stats.encodes += u64::from(report.attempts).saturating_sub(shared_attempts);
            detections[i] = Some(detection);
            reports[i] = Some(report);
        }

        let reports: Vec<JobReport> = reports
            .into_iter()
            .map(|r| r.expect("every entry resolves exactly once"))
            .collect();
        let detections: Vec<Detection> = detections
            .into_iter()
            .map(|d| d.expect("every entry resolves exactly once"))
            .collect();
        for (detection, report) in detections.iter().zip(&reports) {
            stats.retries += u64::from(report.attempts.saturating_sub(1));
            stats.degraded_runs += u64::from(report.rung != DegradationRung::Full);
            stats.panics += u64::from(report.panicked_attempts);
            if let Some(reason) = report.outcome.stop_reason() {
                stats.stop_reasons.record(reason);
            }
            stats.cancelled += u64::from(
                detection.inconclusive && detection.stop_reason == Some(StopReason::Cancelled),
            );
            stats.witness_validations += u64::from(detection.witness_validated.is_some());
            stats.witness_mismatches += u64::from(detection.witness_validated == Some(false));
            stats.proved += u64::from(detection.proved);
            stats.proof_mismatches += u64::from(detection.proof_checked == Some(false));
        }
        stats.wall = start.elapsed();
        BatchedOutcome {
            detections,
            reports,
            stats,
        }
    }
}

/// An inconclusive per-entry detection carrying whatever shared-solver work
/// the entry accumulated before it stopped.
fn inconclusive_detection(
    method: Method,
    entry: &CatalogueEntry,
    reason: StopReason,
    bound: usize,
    acc: &mut EntryAcc,
) -> Detection {
    Detection {
        method,
        bug: Some(entry.mutation.name.clone()),
        detected: false,
        inconclusive: true,
        stop_reason: Some(reason),
        runtime: acc.runtime,
        trace_len: None,
        witness: None,
        witness_validated: None,
        proved: false,
        proof_method: None,
        proof_depth: None,
        proof_checked: None,
        proof_work: None,
        bound_reached: bound,
        conflicts: acc.conflicts,
        solver: SolverReuseStats::default(),
        depths: std::mem::take(&mut acc.depths),
    }
}

/// The report of an entry resolved by the shared session (one attempt, full
/// rung).
fn shared_report(entry: &CatalogueEntry, outcome: JobOutcome, panicked: bool) -> JobReport {
    JobReport {
        label: entry.label.clone(),
        outcome,
        attempts: 1,
        panicked_attempts: u32::from(panicked),
        rung: DegradationRung::Full,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepe_isa::Opcode;
    use sepe_processor::ProcessorConfig;

    /// Two Table-1 bugs plus the shared universe their triggers need.
    fn tiny_catalogue() -> (DetectorConfig, Vec<CatalogueEntry>) {
        let bugs: Vec<Mutation> = Mutation::table1().into_iter().take(2).collect();
        let mut opcodes = vec![Opcode::Addi];
        opcodes.extend(bugs.iter().filter_map(|b| b.target_opcode()));
        opcodes.dedup();
        let config = DetectorConfig {
            processor: ProcessorConfig::tiny().with_opcodes(&opcodes),
            max_bound: 2,
            ..DetectorConfig::default()
        };
        let catalogue = bugs
            .into_iter()
            .map(|b| CatalogueEntry::new(b.name.clone(), b))
            .collect();
        (config, catalogue)
    }

    #[test]
    fn empty_catalogue_returns_immediately() {
        let (config, _) = tiny_catalogue();
        let outcome = BatchedDetector::new(config).run(Method::Sqed, &[]);
        assert!(outcome.detections.is_empty());
        assert_eq!(outcome.stats.entries, 0);
        assert_eq!(outcome.stats.encodes, 0);
    }

    #[test]
    fn shared_session_encodes_once_and_matches_per_job_verdicts() {
        let (config, catalogue) = tiny_catalogue();
        let outcome = BatchedDetector::new(config.clone()).run(Method::Sqed, &catalogue);
        assert_eq!(outcome.detections.len(), 2);
        assert_eq!(outcome.stats.encodes, 1, "one shared encoding");
        assert_eq!(outcome.stats.fallbacks, 0);
        assert_eq!(
            outcome.stats.queries,
            2 * 2,
            "every entry queried at every bound"
        );
        let per_job = Detector::new(config);
        for (entry, batched) in catalogue.iter().zip(&outcome.detections) {
            let solo = per_job.check(Method::Sqed, Some(&entry.mutation));
            assert_eq!(batched.detected, solo.detected, "{}", entry.label);
            assert_eq!(batched.inconclusive, solo.inconclusive, "{}", entry.label);
            assert_eq!(batched.trace_len, solo.trace_len, "{}", entry.label);
        }
    }

    #[test]
    fn entry_level_cancellation_leaves_neighbours_untouched() {
        let (config, mut catalogue) = tiny_catalogue();
        catalogue[0].fault = Some(FaultPlan::cancel_at(1));
        let outcome = BatchedDetector::new(config).run(Method::Sqed, &catalogue);
        let cancelled = &outcome.detections[0];
        assert!(cancelled.inconclusive);
        assert_eq!(cancelled.stop_reason, Some(StopReason::Cancelled));
        let neighbour = &outcome.detections[1];
        assert!(!neighbour.inconclusive, "the neighbour completes normally");
        assert_eq!(outcome.stats.cancelled, 1);
        assert_eq!(outcome.stats.encodes, 1, "no fallback for a cancellation");
    }
}
