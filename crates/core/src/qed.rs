//! The symbolic QED module: dispatch queue, commit counters and the
//! universal property, wired onto the symbolic processor model.
//!
//! This is the formal counterpart of Figure 2 of the paper.  Each cycle the
//! model checker chooses an *original instruction* (constrained to the
//! original register set) and a selection signal.  When the original is
//! selected it executes on the design under verification and its transformed
//! counterpart — the EDDI-V duplicate for SQED, or the EDSEP-V semantically
//! equivalent program for SEPE-SQED — is pushed into a dispatch queue.  When
//! the queue is selected its head instruction executes instead.  Once the
//! number of committed originals equals the number of completed transformed
//! programs (`QED-ready`), the consistency property over the register-file
//! split (and the memory halves) must hold; its violation is the bad state
//! handed to the bounded model checker.

use sepe_isa::{Opcode, OperandKind};
use sepe_processor::datapath::{opcode_in, opcode_index, opcode_is, OPCODE_BITS, REG_BITS};
use sepe_processor::{ActivatedMutation, Mutation, ProcessorConfig, SymbolicProcessor};
use sepe_smt::{Sort, TermId, TermManager};
use sepe_synth::program::{ImmSlot, Slot};
use sepe_tsys::TransitionSystem;

use crate::equivalence::EquivalenceDb;
use crate::mapping::RegisterMapping;

/// Which QED transformation the module applies.
#[derive(Debug, Clone)]
pub enum Scheme {
    /// SQED: EDDI-V instruction duplication.
    Sqed,
    /// SEPE-SQED: EDSEP-V semantically equivalent programs drawn from the
    /// given database.
    Sepe(EquivalenceDb),
}

impl Scheme {
    /// The register mapping the scheme uses.
    pub fn mapping(&self) -> RegisterMapping {
        match self {
            Scheme::Sqed => RegisterMapping::sqed(),
            Scheme::Sepe(_) => RegisterMapping::sepe(),
        }
    }

    /// Length of the transformed program for one original opcode.
    pub fn program_len(&self, opcode: Opcode) -> usize {
        match self {
            Scheme::Sqed => 1,
            Scheme::Sepe(db) => {
                if opcode.touches_memory() {
                    2
                } else {
                    db.template(opcode).map(|t| t.len()).unwrap_or(1)
                }
            }
        }
    }

    /// The opcodes the transformed programs may introduce (beyond the
    /// original opcodes themselves); the processor's allowed-opcode universe
    /// must include them.
    pub fn transform_opcodes(&self, originals: &[Opcode]) -> Vec<Opcode> {
        let mut ops = Vec::new();
        match self {
            Scheme::Sqed => {}
            Scheme::Sepe(db) => {
                for &op in originals {
                    if op.touches_memory() {
                        ops.push(Opcode::Addi);
                        ops.push(op);
                    } else if let Some(t) = db.template(op) {
                        ops.extend(t.instrs.iter().map(|i| i.opcode));
                    }
                }
            }
        }
        ops.sort();
        ops.dedup();
        ops
    }
}

/// Handles to the QED-level inputs (useful for witness interpretation).
#[derive(Debug, Clone, Copy)]
pub struct QedPort {
    /// Original instruction opcode selector.
    pub op: TermId,
    /// Original destination register.
    pub rd: TermId,
    /// Original first source register.
    pub rs1: TermId,
    /// Original second source register.
    pub rs2: TermId,
    /// Original materialised immediate.
    pub imm: TermId,
    /// Selection signal: `true` dispatches the original instruction, `false`
    /// dispatches the head of the transformed-program queue.
    pub pick_original: TermId,
}

/// The fully assembled verification model.
#[derive(Debug, Clone)]
pub struct QedSystem {
    /// The transition system handed to the bounded model checker.
    pub ts: TransitionSystem,
    /// The register mapping in use.
    pub mapping: RegisterMapping,
    /// QED-level input handles.
    pub port: QedPort,
    /// The underlying processor model.
    pub processor: SymbolicProcessor,
    /// Depth of the dispatch queue.
    pub queue_depth: usize,
}

/// Everything needed to build a [`QedSystem`].
#[derive(Debug, Clone)]
pub struct QedBuilder {
    /// Processor configuration (its allowed opcodes must include the
    /// transform opcodes; [`QedBuilder::build`] extends them automatically).
    pub processor: ProcessorConfig,
    /// The opcodes the *original* instruction stream may use.
    pub original_opcodes: Vec<Opcode>,
    /// Queue depth override (`None` sizes it as `max_program_len + 3`).
    pub queue_depth: Option<usize>,
}

impl QedBuilder {
    /// Builds the verification model for a scheme and an optional injected
    /// bug.
    pub fn build(
        &self,
        tm: &mut TermManager,
        scheme: &Scheme,
        mutation: Option<&Mutation>,
    ) -> QedSystem {
        self.build_with(tm, scheme, |tm, cfg| {
            SymbolicProcessor::build(tm, cfg, mutation)
        })
    }

    /// Builds one verification model with a whole mutation catalogue compiled
    /// into the shared datapath, each entry guarded by a fresh activation
    /// literal (see [`SymbolicProcessor::build_catalogue`]).
    ///
    /// The QED layer — dispatch queue, commit counters, the universal
    /// property — is built once and shared by every entry; the returned
    /// activation terms select which bug the bounded model checker is asking
    /// about, via `check_assuming` assumptions.
    pub fn build_catalogue(
        &self,
        tm: &mut TermManager,
        scheme: &Scheme,
        mutations: &[Mutation],
    ) -> (QedSystem, Vec<ActivatedMutation>) {
        let mut activated = Vec::new();
        let system = self.build_with(tm, scheme, |tm, cfg| {
            let (proc, acts) = SymbolicProcessor::build_catalogue(tm, cfg, mutations);
            activated = acts;
            proc
        });
        (system, activated)
    }

    /// The shared assembly, parameterised over how the processor model is
    /// constructed.
    fn build_with(
        &self,
        tm: &mut TermManager,
        scheme: &Scheme,
        build_processor: impl FnOnce(&mut TermManager, &ProcessorConfig) -> SymbolicProcessor,
    ) -> QedSystem {
        let mapping = scheme.mapping();
        let originals = &self.original_opcodes;
        assert!(
            !originals.is_empty(),
            "at least one original opcode is required"
        );

        // The DUV must accept both the original opcodes and whatever the
        // transformed programs contain.
        let mut allowed = self.processor.allowed_opcodes.clone();
        allowed.extend(originals.iter().copied());
        allowed.extend(scheme.transform_opcodes(originals));
        allowed.sort();
        allowed.dedup();
        let proc_config = ProcessorConfig {
            allowed_opcodes: allowed,
            ..self.processor.clone()
        };

        let max_prog_len = originals
            .iter()
            .map(|&op| scheme.program_len(op))
            .max()
            .unwrap_or(1);
        let depth = self
            .queue_depth
            .unwrap_or(max_prog_len + 3)
            .max(max_prog_len + 1);

        let processor = build_processor(tm, &proc_config);
        let mut ts = processor.ts.clone();
        let xlen = proc_config.xlen;

        // ------------------------------------------------------------------
        // QED-level inputs.
        // ------------------------------------------------------------------
        let port = QedPort {
            op: tm.var("orig_op", Sort::BitVec(OPCODE_BITS)),
            rd: tm.var("orig_rd", Sort::BitVec(REG_BITS)),
            rs1: tm.var("orig_rs1", Sort::BitVec(REG_BITS)),
            rs2: tm.var("orig_rs2", Sort::BitVec(REG_BITS)),
            imm: tm.var("orig_imm", Sort::BitVec(xlen)),
            pick_original: tm.var("pick_original", Sort::Bool),
        };
        for input in [
            port.op,
            port.rd,
            port.rs1,
            port.rs2,
            port.imm,
            port.pick_original,
        ] {
            ts.add_input(tm, input);
        }

        // ------------------------------------------------------------------
        // Constraints on the original instruction stream.
        // ------------------------------------------------------------------
        let legal_orig_op = opcode_in(tm, port.op, originals);
        ts.add_constraint(legal_orig_op);
        let orig_count = tm.bv_const(u64::from(mapping.original_count), REG_BITS);
        let one_reg = tm.bv_const(1, REG_BITS);
        for reg in [port.rs1, port.rs2] {
            let in_set = tm.bv_ult(reg, orig_count);
            ts.add_constraint(in_set);
        }
        let rd_low = tm.bv_ule(one_reg, port.rd);
        let rd_high = tm.bv_ult(port.rd, orig_count);
        ts.add_constraint(rd_low);
        ts.add_constraint(rd_high);
        ts.add_constraint(immediate_constraint(tm, port.op, port.imm, originals, xlen));

        // ------------------------------------------------------------------
        // Transformed-program entries (functions of the original fields).
        // ------------------------------------------------------------------
        let entries = transform_entries(tm, scheme, &mapping, &port, originals, max_prog_len, xlen);
        let len_bits = {
            let mut bits = 1;
            while (1usize << bits) <= depth + max_prog_len {
                bits += 1;
            }
            bits as u32
        };
        let prog_len = {
            let mut acc = tm.bv_const(1, len_bits);
            for &op in originals {
                let len = tm.bv_const(scheme.program_len(op) as u64, len_bits);
                let hit = opcode_is(tm, port.op, op);
                acc = tm.ite(hit, len, acc);
            }
            acc
        };

        // ------------------------------------------------------------------
        // Dispatch queue state.
        // ------------------------------------------------------------------
        let slot_sorts = [
            ("op", Sort::BitVec(OPCODE_BITS)),
            ("rd", Sort::BitVec(REG_BITS)),
            ("rs1", Sort::BitVec(REG_BITS)),
            ("rs2", Sort::BitVec(REG_BITS)),
            ("imm", Sort::BitVec(xlen)),
            ("last", Sort::Bool),
        ];
        // queue[field][slot]
        let mut queue: Vec<Vec<TermId>> = Vec::new();
        for (field, sort) in slot_sorts {
            let slots = (0..depth)
                .map(|i| tm.var(&format!("q{i}_{field}"), sort))
                .collect::<Vec<_>>();
            queue.push(slots);
        }
        let q_len = tm.var("q_len", Sort::BitVec(len_bits));

        let pick = port.pick_original;
        let not_pick = tm.not(pick);

        // Dispatch legality: pushing must fit, popping needs a non-empty queue.
        let depth_const = tm.bv_const(depth as u64, len_bits);
        let after_push = tm.bv_add(q_len, prog_len);
        let fits = tm.bv_ule(after_push, depth_const);
        let push_ok = tm.implies(pick, fits);
        ts.add_constraint(push_ok);
        let zero_len = tm.bv_const(0, len_bits);
        let non_empty = tm.neq(q_len, zero_len);
        let pop_ok = tm.implies(not_pick, non_empty);
        ts.add_constraint(pop_ok);

        // The executed instruction is the original or the queue head.
        let in_port = processor.port;
        let tie = |tm: &mut TermManager, processor_field: TermId, orig: TermId, head: TermId| {
            let chosen = tm.ite(pick, orig, head);
            tm.eq(processor_field, chosen)
        };
        ts.add_constraint(tie(tm, in_port.op, port.op, queue[0][0]));
        ts.add_constraint(tie(tm, in_port.rd, port.rd, queue[1][0]));
        ts.add_constraint(tie(tm, in_port.rs1, port.rs1, queue[2][0]));
        ts.add_constraint(tie(tm, in_port.rs2, port.rs2, queue[3][0]));
        ts.add_constraint(tie(tm, in_port.imm, port.imm, queue[4][0]));
        let tru = tm.tru();
        let valid_always = tm.eq(in_port.valid, tru);
        ts.add_constraint(valid_always);
        let bank0 = tm.bv_const(0, 1);
        let bank1 = tm.bv_const(1, 1);
        let bank_sel = tm.ite(pick, bank0, bank1);
        let bank_tie = tm.eq(in_port.bank, bank_sel);
        ts.add_constraint(bank_tie);

        // ------------------------------------------------------------------
        // Queue next-state functions.
        // ------------------------------------------------------------------
        for (field_idx, (_, sort)) in slot_sorts.iter().enumerate() {
            let zero_field = match sort {
                Sort::Bool => tm.fls(),
                Sort::BitVec(w) => tm.bv_const(0, *w),
            };
            for j in 0..depth {
                let current = queue[field_idx][j];
                // Pop: everything shifts down by one.
                let popped = if j + 1 < depth {
                    queue[field_idx][j + 1]
                } else {
                    zero_field
                };
                // Push: entries are appended starting at the current length.
                let mut pushed = current;
                for ql in 0..=j.min(depth - 1) {
                    let offset = j - ql;
                    if offset >= max_prog_len {
                        continue;
                    }
                    let ql_const = tm.bv_const(ql as u64, len_bits);
                    let len_is_ql = tm.eq(q_len, ql_const);
                    let offset_const = tm.bv_const(offset as u64, len_bits);
                    let within = tm.bv_ult(offset_const, prog_len);
                    let value = tm.ite(within, entries[offset][field_idx], current);
                    pushed = tm.ite(len_is_ql, value, pushed);
                }
                let next = tm.ite(pick, pushed, popped);
                ts.add_state_var(tm, current, Some(zero_field), next);
            }
        }
        let len_after_pop = {
            let one = tm.bv_const(1, len_bits);
            tm.bv_sub(q_len, one)
        };
        let next_len = tm.ite(pick, after_push, len_after_pop);
        ts.add_state_var(tm, q_len, Some(zero_len), next_len);

        // ------------------------------------------------------------------
        // Commit counters and the universal property.
        // ------------------------------------------------------------------
        let count_bits = 8;
        let count_o = tm.var("count_original", Sort::BitVec(count_bits));
        let count_e = tm.var("count_equivalent", Sort::BitVec(count_bits));
        let one_count = tm.bv_const(1, count_bits);
        let zero_count = tm.bv_const(0, count_bits);
        let inc_o = tm.bv_add(count_o, one_count);
        let next_o = tm.ite(pick, inc_o, count_o);
        ts.add_state_var(tm, count_o, Some(zero_count), next_o);
        let head_is_last = queue[5][0];
        let completes = tm.and(not_pick, head_is_last);
        let inc_e = tm.bv_add(count_e, one_count);
        let next_e = tm.ite(completes, inc_e, count_e);
        ts.add_state_var(tm, count_e, Some(zero_count), next_e);

        let counts_match = tm.eq(count_o, count_e);
        let some_committed = tm.bv_ult(zero_count, count_o);
        let qed_ready = tm.and(counts_match, some_committed);

        let mut consistent = tm.tru();
        for (o, e) in mapping.consistency_pairs() {
            let eq = tm.eq(processor.regs[o.index()], processor.regs[e.index()]);
            consistent = tm.and(consistent, eq);
        }
        let half = proc_config.mem_words / 2;
        for w in 0..half {
            let eq = tm.eq(processor.mem[w], processor.mem[w + half]);
            consistent = tm.and(consistent, eq);
        }
        let inconsistent = tm.not(consistent);
        let bad = tm.and(qed_ready, inconsistent);
        ts.add_bad(bad);

        QedSystem {
            ts,
            mapping,
            port,
            processor,
            queue_depth: depth,
        }
    }
}

/// Constraints tying the original immediate input to values its instruction
/// format can encode (materialised form).
fn immediate_constraint(
    tm: &mut TermManager,
    op: TermId,
    imm: TermId,
    originals: &[Opcode],
    xlen: u32,
) -> TermId {
    let mut acc = tm.tru();
    for &o in originals {
        let applies = opcode_is(tm, op, o);
        let legal = match o.operand_kind() {
            OperandKind::RegReg => {
                let zero = tm.zero(xlen);
                tm.eq(imm, zero)
            }
            OperandKind::RegShamt => {
                let limit = tm.bv_const(u64::from(xlen), xlen);
                tm.bv_ult(imm, limit)
            }
            OperandKind::Upper => {
                if xlen <= 12 {
                    let zero = tm.zero(xlen);
                    tm.eq(imm, zero)
                } else {
                    let low = tm.bv_extract(imm, 11, 0);
                    let zero = tm.zero(12);
                    tm.eq(low, zero)
                }
            }
            OperandKind::RegImm | OperandKind::Load | OperandKind::Store => {
                if xlen <= 12 {
                    tm.tru()
                } else {
                    let low = tm.bv_extract(imm, 11, 0);
                    let sext = tm.bv_sign_ext(low, xlen - 12);
                    tm.eq(imm, sext)
                }
            }
        };
        let implied = tm.implies(applies, legal);
        acc = tm.and(acc, implied);
    }
    acc
}

/// Builds the transformed-program entry fields, indexed `[position][field]`
/// with fields ordered op, rd, rs1, rs2, imm, last.
fn transform_entries(
    tm: &mut TermManager,
    scheme: &Scheme,
    mapping: &RegisterMapping,
    port: &QedPort,
    originals: &[Opcode],
    max_prog_len: usize,
    xlen: u32,
) -> Vec<Vec<TermId>> {
    let offset = tm.bv_const(u64::from(mapping.offset), REG_BITS);
    let shadow_rd = tm.bv_add(port.rd, offset);
    let shadow_rs1 = tm.bv_add(port.rs1, offset);
    let shadow_rs2 = tm.bv_add(port.rs2, offset);
    let zero_reg = tm.bv_const(0, REG_BITS);
    let zero_imm = tm.zero(xlen);
    let fls = tm.fls();
    let tru = tm.tru();

    match scheme {
        Scheme::Sqed => {
            vec![vec![
                port.op, shadow_rd, shadow_rs1, shadow_rs2, port.imm, tru,
            ]]
        }
        Scheme::Sepe(db) => {
            let temp_reg = |t: u8| u64::from(mapping.temps[t as usize].0);
            let slot_term = |tm: &mut TermManager, slot: Slot| match slot {
                Slot::Rs1 => shadow_rs1,
                Slot::Rs2 => shadow_rs2,
                Slot::Zero => zero_reg,
                Slot::Dest => shadow_rd,
                Slot::Temp(t) => tm.bv_const(temp_reg(t), REG_BITS),
            };
            let mut entries = Vec::with_capacity(max_prog_len);
            for position in 0..max_prog_len {
                // default (never dispatched): a NOP-shaped entry
                let mut fields = vec![
                    tm.bv_const(opcode_index(Opcode::Addi), OPCODE_BITS),
                    zero_reg,
                    zero_reg,
                    zero_reg,
                    zero_imm,
                    fls,
                ];
                for &orig in originals {
                    let hit = opcode_is(tm, port.op, orig);
                    let instr_fields: Option<[TermId; 6]> = if orig.touches_memory() {
                        match position {
                            0 => Some([
                                tm.bv_const(opcode_index(Opcode::Addi), OPCODE_BITS),
                                tm.bv_const(temp_reg(0), REG_BITS),
                                shadow_rs1,
                                zero_reg,
                                port.imm,
                                fls,
                            ]),
                            1 => {
                                let t0 = tm.bv_const(temp_reg(0), REG_BITS);
                                if orig == Opcode::Lw {
                                    Some([
                                        tm.bv_const(opcode_index(Opcode::Lw), OPCODE_BITS),
                                        shadow_rd,
                                        t0,
                                        zero_reg,
                                        zero_imm,
                                        tru,
                                    ])
                                } else {
                                    Some([
                                        tm.bv_const(opcode_index(Opcode::Sw), OPCODE_BITS),
                                        zero_reg,
                                        t0,
                                        shadow_rs2,
                                        zero_imm,
                                        tru,
                                    ])
                                }
                            }
                            _ => None,
                        }
                    } else if let Some(template) = db.template(orig) {
                        template.instrs.get(position).map(|ti| {
                            let imm_term = match ti.imm {
                                ImmSlot::FromOriginal => port.imm,
                                ImmSlot::Const(c) => match ti.opcode {
                                    Opcode::Lui => tm.bv_const(((c as u32) as u64) << 12, xlen),
                                    _ => tm.bv_const(c as i64 as u64, xlen),
                                },
                            };
                            let last = position == template.len() - 1;
                            [
                                tm.bv_const(opcode_index(ti.opcode), OPCODE_BITS),
                                slot_term(tm, ti.dest),
                                slot_term(tm, ti.src1),
                                slot_term(tm, ti.src2),
                                imm_term,
                                if last { tru } else { fls },
                            ]
                        })
                    } else {
                        None
                    };
                    if let Some(values) = instr_fields {
                        for (f, value) in values.into_iter().enumerate() {
                            fields[f] = tm.ite(hit, value, fields[f]);
                        }
                    }
                }
                entries.push(fields);
            }
            entries
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepe_isa::{Instr, Reg};
    use sepe_processor::MutantCore;
    use std::collections::HashMap;

    fn builder(opcodes: &[Opcode]) -> QedBuilder {
        QedBuilder {
            processor: ProcessorConfig::tiny().with_opcodes(opcodes),
            original_opcodes: opcodes.to_vec(),
            queue_depth: None,
        }
    }

    /// Simulates the QED system concretely for a sequence of decisions
    /// (`Some(instr)` dispatches an original, `None` pops the queue head) and
    /// returns the state trace.
    ///
    /// `TransitionSystem::simulate` does not solve constraints, and the
    /// processor port is tied to the QED port by constraints, so this helper
    /// resolves the dispatch mux explicitly while stepping the next-state
    /// functions.
    fn simulate(
        tm: &TermManager,
        system: &QedSystem,
        steps: &[Option<Instr>],
        xlen: u32,
    ) -> Vec<HashMap<TermId, u64>> {
        use sepe_smt::concrete::eval;
        // initial state
        let mut state: HashMap<TermId, u64> = system
            .ts
            .state_vars()
            .iter()
            .map(|sv| {
                let v = sv.init.map(|t| eval(tm, t, &HashMap::new())).unwrap_or(0);
                (sv.current, v)
            })
            .collect();
        let mut trace = vec![state.clone()];
        let port = system.processor.port;
        let queue_head: Vec<TermId> = ["q0_op", "q0_rd", "q0_rs1", "q0_rs2", "q0_imm"]
            .iter()
            .map(|name| tm.find_var(name).expect("queue head variable"))
            .collect();
        for step in steps {
            let mut env = state.clone();
            match step {
                Some(instr) => {
                    env.insert(system.port.pick_original, 1);
                    env.insert(system.port.op, opcode_index(instr.opcode));
                    env.insert(system.port.rd, u64::from(instr.rd.0));
                    env.insert(system.port.rs1, u64::from(instr.rs1.0));
                    env.insert(system.port.rs2, u64::from(instr.rs2.0));
                    env.insert(
                        system.port.imm,
                        sepe_processor::symbolic::materialise_imm(instr, xlen),
                    );
                    env.insert(port.valid, 1);
                    env.insert(port.bank, 0);
                    env.insert(port.op, env[&system.port.op]);
                    env.insert(port.rd, env[&system.port.rd]);
                    env.insert(port.rs1, env[&system.port.rs1]);
                    env.insert(port.rs2, env[&system.port.rs2]);
                    env.insert(port.imm, env[&system.port.imm]);
                }
                None => {
                    env.insert(system.port.pick_original, 0);
                    env.insert(port.valid, 1);
                    env.insert(port.bank, 1);
                    env.insert(port.op, state[&queue_head[0]]);
                    env.insert(port.rd, state[&queue_head[1]]);
                    env.insert(port.rs1, state[&queue_head[2]]);
                    env.insert(port.rs2, state[&queue_head[3]]);
                    env.insert(port.imm, state[&queue_head[4]]);
                }
            }
            let next: HashMap<TermId, u64> = system
                .ts
                .state_vars()
                .iter()
                .map(|sv| (sv.current, eval(tm, sv.next, &env)))
                .collect();
            state = next;
            trace.push(state.clone());
        }
        trace
    }

    #[test]
    fn sqed_queue_dispatches_duplicates() {
        let mut tm = TermManager::new();
        let b = builder(&[Opcode::Add, Opcode::Addi]);
        let system = b.build(&mut tm, &Scheme::Sqed, None);
        assert_eq!(system.mapping, RegisterMapping::sqed());

        // original ADDI x1, x0, 5 ; pop its duplicate ; original ADD x2,x1,x1 ; pop
        let steps = vec![
            Some(Instr::addi(Reg(1), Reg(0), 5)),
            None,
            Some(Instr::add(Reg(2), Reg(1), Reg(1))),
            None,
        ];
        let trace = simulate(&tm, &system, &steps, 8);
        let last = trace.last().expect("trace");
        // originals
        assert_eq!(last[&system.processor.regs[1]], 5);
        assert_eq!(last[&system.processor.regs[2]], 10);
        // duplicates in the shadow half
        assert_eq!(last[&system.processor.regs[17]], 5);
        assert_eq!(last[&system.processor.regs[18]], 10);
        // counters agree
        let count_o = tm.find_var("count_original").expect("counter");
        let count_e = tm.find_var("count_equivalent").expect("counter");
        assert_eq!(last[&count_o], 2);
        assert_eq!(last[&count_e], 2);
        let q_len = tm.find_var("q_len").expect("q_len");
        assert_eq!(last[&q_len], 0);
    }

    #[test]
    fn sepe_queue_dispatches_equivalent_programs() {
        let mut tm = TermManager::new();
        let b = QedBuilder {
            processor: ProcessorConfig {
                xlen: 32,
                ..ProcessorConfig::tiny()
            }
            .with_opcodes(&[Opcode::Sub]),
            original_opcodes: vec![Opcode::Sub],
            queue_depth: None,
        };
        let db = EquivalenceDb::curated();
        let system = b.build(&mut tm, &Scheme::Sepe(db), None);
        assert_eq!(system.mapping, RegisterMapping::sepe());

        // prepare distinct operands by running ADDI originals is not possible
        // here (only SUB allowed), so rely on zero-initialised registers:
        // SUB x1, x2, x3 = 0, and its equivalent program also produces 0.
        let steps = vec![Some(Instr::sub(Reg(1), Reg(2), Reg(3))), None, None, None];
        let trace = simulate(&tm, &system, &steps, 32);
        let last = trace.last().expect("trace");
        assert_eq!(last[&system.processor.regs[1]], 0);
        assert_eq!(
            last[&system.processor.regs[14]], 0,
            "equivalent program wrote rd+13"
        );
        let count_o = tm.find_var("count_original").expect("counter");
        let count_e = tm.find_var("count_equivalent").expect("counter");
        assert_eq!(last[&count_o], 1);
        assert_eq!(last[&count_e], 1);
    }

    #[test]
    fn transform_opcodes_cover_template_contents() {
        let db = EquivalenceDb::curated();
        let scheme = Scheme::Sepe(db);
        let ops = scheme.transform_opcodes(&[Opcode::Sub]);
        assert!(ops.contains(&Opcode::Xori));
        assert!(ops.contains(&Opcode::Add));
        assert_eq!(scheme.program_len(Opcode::Sub), 3);
        assert_eq!(Scheme::Sqed.program_len(Opcode::Sub), 1);
        assert_eq!(Scheme::Sqed.transform_opcodes(&[Opcode::Sub]), vec![]);
    }

    #[test]
    fn concrete_duplicate_semantics_match_the_eddiv_transformation() {
        // The queue entry produced for SQED must equal EddiV::duplicate.
        let mut tm = TermManager::new();
        let b = builder(&[Opcode::Add]);
        let system = b.build(&mut tm, &Scheme::Sqed, None);
        let steps = vec![Some(Instr::add(Reg(3), Reg(4), Reg(5))), None];
        let trace = simulate(&tm, &system, &steps, 8);
        // after the pop both x3 and x19 were written (with zero operands)
        let last = trace.last().expect("trace");
        let mut core = MutantCore::new(system.processor.config.clone(), None);
        core.commit_banked(&Instr::add(Reg(3), Reg(4), Reg(5)), false);
        core.commit_banked(
            &crate::eddiv::EddiV::new().duplicate(&Instr::add(Reg(3), Reg(4), Reg(5))),
            true,
        );
        for r in 0..32 {
            assert_eq!(
                last[&system.processor.regs[r]],
                core.regs()[r],
                "register x{r}"
            );
        }
    }
}
