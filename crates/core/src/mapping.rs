//! Register-file partitioning for the QED transformations.

use sepe_isa::Reg;

/// How the 32 general-purpose registers are split between the original
/// instruction stream and its transformed counterpart.
///
/// * SQED / EDDI-V: originals use `x0`–`x15`, duplicates use `x16`–`x31`
///   (`x[i] ↔ x[i+16]`).
/// * SEPE-SQED / EDSEP-V (Section 5): originals use the set `O = x0..x12`,
///   equivalent programs write to `E = x13..x25` (`x[i] ↔ x[i+13]`) and use
///   `T = x26..x31` for intermediate values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterMapping {
    /// Number of registers in the original set (including `x0`).
    pub original_count: u8,
    /// Offset added to an original register to reach its counterpart.
    pub offset: u8,
    /// Temporary registers available to equivalent programs.
    pub temps: Vec<Reg>,
}

impl RegisterMapping {
    /// The SQED (EDDI-V) mapping: `x0..x15` original, `x16..x31` duplicate.
    pub fn sqed() -> Self {
        RegisterMapping {
            original_count: 16,
            offset: 16,
            temps: Vec::new(),
        }
    }

    /// The SEPE-SQED (EDSEP-V) mapping: `O = x0..x12`, `E = x13..x25`,
    /// `T = x26..x31`.
    pub fn sepe() -> Self {
        RegisterMapping {
            original_count: 13,
            offset: 13,
            temps: (26..32).map(Reg).collect(),
        }
    }

    /// Whether a register belongs to the original set.
    pub fn is_original(&self, r: Reg) -> bool {
        r.0 < self.original_count
    }

    /// Whether a register belongs to the shadow (duplicate / equivalent) set.
    pub fn is_shadow(&self, r: Reg) -> bool {
        r.0 >= self.offset && r.0 < self.offset + self.original_count
    }

    /// Whether a register is one of the temporaries.
    pub fn is_temp(&self, r: Reg) -> bool {
        self.temps.contains(&r)
    }

    /// Maps an original register to its shadow counterpart.
    ///
    /// # Panics
    ///
    /// Panics if the register is not in the original set.
    pub fn shadow(&self, r: Reg) -> Reg {
        assert!(self.is_original(r), "{r} is not an original-set register");
        Reg(r.0 + self.offset)
    }

    /// The pairs `(original, shadow)` compared by the QED-consistency
    /// property.
    pub fn consistency_pairs(&self) -> Vec<(Reg, Reg)> {
        (0..self.original_count)
            .map(|i| (Reg(i), Reg(i + self.offset)))
            .collect()
    }

    /// Number of temporaries available.
    pub fn num_temps(&self) -> usize {
        self.temps.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sqed_mapping_matches_the_background_section() {
        let m = RegisterMapping::sqed();
        assert_eq!(m.consistency_pairs().len(), 16);
        assert_eq!(m.shadow(Reg(0)), Reg(16));
        assert_eq!(m.shadow(Reg(15)), Reg(31));
        assert!(m.is_original(Reg(15)));
        assert!(!m.is_original(Reg(16)));
        assert!(m.is_shadow(Reg(16)));
        assert_eq!(m.num_temps(), 0);
    }

    #[test]
    fn sepe_mapping_matches_section5() {
        let m = RegisterMapping::sepe();
        assert_eq!(m.consistency_pairs().len(), 13);
        assert_eq!(m.shadow(Reg(1)), Reg(14));
        assert_eq!(m.shadow(Reg(12)), Reg(25));
        assert!(m.is_original(Reg(12)));
        assert!(!m.is_original(Reg(13)));
        assert!(m.is_shadow(Reg(13)));
        assert!(m.is_shadow(Reg(25)));
        assert!(!m.is_shadow(Reg(26)));
        assert!(m.is_temp(Reg(26)));
        assert!(m.is_temp(Reg(31)));
        assert!(!m.is_temp(Reg(25)));
        assert_eq!(m.num_temps(), 6);
        // the three sets partition the register file
        for r in Reg::all() {
            let in_sets = [m.is_original(r), m.is_shadow(r), m.is_temp(r)];
            assert_eq!(
                in_sets.iter().filter(|&&b| b).count(),
                1,
                "{r} must be in exactly one set"
            );
        }
    }

    #[test]
    #[should_panic(expected = "not an original-set register")]
    fn shadow_of_shadow_panics() {
        RegisterMapping::sepe().shadow(Reg(20));
    }
}
