//! RV32IM instruction-set substrate for the SEPE-SQED reproduction.
//!
//! The paper exercises a portion of the RV32IM instruction set (Section 4.1)
//! on the RIDECORE processor.  This crate provides everything the rest of the
//! workspace needs to talk about those instructions:
//!
//! * [`Instr`] / [`Opcode`] — a typed representation of the instruction
//!   subset (ALU register/immediate forms, `LUI`, the M-extension multiplies,
//!   and `LW`/`SW`),
//! * [`encode`](encoding::encode) / [`decode`](encoding::decode) — the RISC-V
//!   base-ISA binary encoding,
//! * [`ArchState`](exec::ArchState) — the concrete architectural golden
//!   model used for differential testing and witness replay,
//! * [`semantics`] — the *symbolic* input/output semantics of each
//!   instruction as bit-vector terms, shared by the synthesis components and
//!   by the symbolic processor datapath so that both agree by construction.
//!
//! # Example
//!
//! ```
//! use sepe_isa::{Instr, Reg, exec::ArchState};
//!
//! let mut state = ArchState::new();
//! state.set_reg(Reg(2), 40);
//! state.set_reg(Reg(3), 2);
//! state.step(&Instr::add(Reg(1), Reg(2), Reg(3)));
//! assert_eq!(state.reg(Reg(1)), 42);
//! ```

pub mod encoding;
pub mod exec;
pub mod instr;
pub mod reg;
pub mod semantics;

pub use instr::{Instr, Opcode, OperandKind};
pub use reg::Reg;
