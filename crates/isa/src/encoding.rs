//! RISC-V binary encoding and decoding of the supported subset.

use std::fmt;

use crate::instr::{Instr, Opcode};
use crate::reg::Reg;

/// Error returned by [`decode`] for words outside the supported subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The word that failed to decode.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unsupported instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

const OPCODE_OP: u32 = 0b011_0011;
const OPCODE_OP_IMM: u32 = 0b001_0011;
const OPCODE_LUI: u32 = 0b011_0111;
const OPCODE_LOAD: u32 = 0b000_0011;
const OPCODE_STORE: u32 = 0b010_0011;

fn r_type(funct7: u32, rs2: Reg, rs1: Reg, funct3: u32, rd: Reg, opcode: u32) -> u32 {
    (funct7 << 25)
        | ((rs2.0 as u32) << 20)
        | ((rs1.0 as u32) << 15)
        | (funct3 << 12)
        | ((rd.0 as u32) << 7)
        | opcode
}

fn i_type(imm: i32, rs1: Reg, funct3: u32, rd: Reg, opcode: u32) -> u32 {
    let imm = (imm as u32) & 0xfff;
    (imm << 20) | ((rs1.0 as u32) << 15) | (funct3 << 12) | ((rd.0 as u32) << 7) | opcode
}

fn s_type(imm: i32, rs2: Reg, rs1: Reg, funct3: u32, opcode: u32) -> u32 {
    let imm = (imm as u32) & 0xfff;
    ((imm >> 5) << 25)
        | ((rs2.0 as u32) << 20)
        | ((rs1.0 as u32) << 15)
        | (funct3 << 12)
        | ((imm & 0x1f) << 7)
        | opcode
}

/// Encodes an instruction into its 32-bit RISC-V machine word.
pub fn encode(instr: &Instr) -> u32 {
    use Opcode::*;
    let Instr {
        opcode,
        rd,
        rs1,
        rs2,
        imm,
    } = *instr;
    match opcode {
        Add => r_type(0b000_0000, rs2, rs1, 0b000, rd, OPCODE_OP),
        Sub => r_type(0b010_0000, rs2, rs1, 0b000, rd, OPCODE_OP),
        Sll => r_type(0b000_0000, rs2, rs1, 0b001, rd, OPCODE_OP),
        Slt => r_type(0b000_0000, rs2, rs1, 0b010, rd, OPCODE_OP),
        Sltu => r_type(0b000_0000, rs2, rs1, 0b011, rd, OPCODE_OP),
        Xor => r_type(0b000_0000, rs2, rs1, 0b100, rd, OPCODE_OP),
        Srl => r_type(0b000_0000, rs2, rs1, 0b101, rd, OPCODE_OP),
        Sra => r_type(0b010_0000, rs2, rs1, 0b101, rd, OPCODE_OP),
        Or => r_type(0b000_0000, rs2, rs1, 0b110, rd, OPCODE_OP),
        And => r_type(0b000_0000, rs2, rs1, 0b111, rd, OPCODE_OP),
        Mul => r_type(0b000_0001, rs2, rs1, 0b000, rd, OPCODE_OP),
        Mulh => r_type(0b000_0001, rs2, rs1, 0b001, rd, OPCODE_OP),
        Mulhsu => r_type(0b000_0001, rs2, rs1, 0b010, rd, OPCODE_OP),
        Mulhu => r_type(0b000_0001, rs2, rs1, 0b011, rd, OPCODE_OP),
        Addi => i_type(imm, rs1, 0b000, rd, OPCODE_OP_IMM),
        Slti => i_type(imm, rs1, 0b010, rd, OPCODE_OP_IMM),
        Sltiu => i_type(imm, rs1, 0b011, rd, OPCODE_OP_IMM),
        Xori => i_type(imm, rs1, 0b100, rd, OPCODE_OP_IMM),
        Ori => i_type(imm, rs1, 0b110, rd, OPCODE_OP_IMM),
        Andi => i_type(imm, rs1, 0b111, rd, OPCODE_OP_IMM),
        Slli => i_type(imm & 0x1f, rs1, 0b001, rd, OPCODE_OP_IMM),
        Srli => i_type(imm & 0x1f, rs1, 0b101, rd, OPCODE_OP_IMM),
        Srai => i_type(
            (imm & 0x1f) | (0b010_0000 << 5),
            rs1,
            0b101,
            rd,
            OPCODE_OP_IMM,
        ),
        Lui => ((imm as u32) << 12) | ((rd.0 as u32) << 7) | OPCODE_LUI,
        Lw => i_type(imm, rs1, 0b010, rd, OPCODE_LOAD),
        Sw => s_type(imm, rs2, rs1, 0b010, OPCODE_STORE),
    }
}

fn sext12(v: u32) -> i32 {
    ((v << 20) as i32) >> 20
}

/// Decodes a 32-bit machine word into an instruction of the supported subset.
///
/// # Errors
///
/// Returns [`DecodeError`] when the word does not belong to the subset (other
/// RISC-V instructions, reserved encodings, or malformed funct fields).
pub fn decode(word: u32) -> Result<Instr, DecodeError> {
    let opcode = word & 0x7f;
    let rd = Reg(((word >> 7) & 0x1f) as u8);
    let funct3 = (word >> 12) & 0x7;
    let rs1 = Reg(((word >> 15) & 0x1f) as u8);
    let rs2 = Reg(((word >> 20) & 0x1f) as u8);
    let funct7 = (word >> 25) & 0x7f;
    let imm_i = sext12(word >> 20);
    let err = Err(DecodeError { word });

    let instr = match opcode {
        OPCODE_OP => {
            let op = match (funct7, funct3) {
                (0b000_0000, 0b000) => Opcode::Add,
                (0b010_0000, 0b000) => Opcode::Sub,
                (0b000_0000, 0b001) => Opcode::Sll,
                (0b000_0000, 0b010) => Opcode::Slt,
                (0b000_0000, 0b011) => Opcode::Sltu,
                (0b000_0000, 0b100) => Opcode::Xor,
                (0b000_0000, 0b101) => Opcode::Srl,
                (0b010_0000, 0b101) => Opcode::Sra,
                (0b000_0000, 0b110) => Opcode::Or,
                (0b000_0000, 0b111) => Opcode::And,
                (0b000_0001, 0b000) => Opcode::Mul,
                (0b000_0001, 0b001) => Opcode::Mulh,
                (0b000_0001, 0b010) => Opcode::Mulhsu,
                (0b000_0001, 0b011) => Opcode::Mulhu,
                _ => return err,
            };
            Instr::new(op, rd, rs1, rs2, 0)
        }
        OPCODE_OP_IMM => match funct3 {
            0b000 => Instr::new(Opcode::Addi, rd, rs1, Reg::ZERO, imm_i),
            0b010 => Instr::new(Opcode::Slti, rd, rs1, Reg::ZERO, imm_i),
            0b011 => Instr::new(Opcode::Sltiu, rd, rs1, Reg::ZERO, imm_i),
            0b100 => Instr::new(Opcode::Xori, rd, rs1, Reg::ZERO, imm_i),
            0b110 => Instr::new(Opcode::Ori, rd, rs1, Reg::ZERO, imm_i),
            0b111 => Instr::new(Opcode::Andi, rd, rs1, Reg::ZERO, imm_i),
            0b001 if funct7 == 0 => Instr::new(Opcode::Slli, rd, rs1, Reg::ZERO, (rs2.0) as i32),
            0b101 if funct7 == 0 => Instr::new(Opcode::Srli, rd, rs1, Reg::ZERO, (rs2.0) as i32),
            0b101 if funct7 == 0b010_0000 => {
                Instr::new(Opcode::Srai, rd, rs1, Reg::ZERO, (rs2.0) as i32)
            }
            _ => return err,
        },
        OPCODE_LUI => Instr::new(Opcode::Lui, rd, Reg::ZERO, Reg::ZERO, (word >> 12) as i32),
        OPCODE_LOAD if funct3 == 0b010 => Instr::new(Opcode::Lw, rd, rs1, Reg::ZERO, imm_i),
        OPCODE_STORE if funct3 == 0b010 => {
            let imm = sext12(((word >> 25) << 5) | ((word >> 7) & 0x1f));
            Instr::new(Opcode::Sw, Reg::ZERO, rs1, rs2, imm)
        }
        _ => return err,
    };
    Ok(instr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn known_encodings_match_the_spec() {
        // add x1, x2, x3 = 0x003100b3
        assert_eq!(encode(&Instr::add(Reg(1), Reg(2), Reg(3))), 0x0031_00b3);
        // sub x1, x2, x3 = 0x403100b3
        assert_eq!(encode(&Instr::sub(Reg(1), Reg(2), Reg(3))), 0x4031_00b3);
        // addi x5, x6, -1 = 0xfff30293
        assert_eq!(encode(&Instr::addi(Reg(5), Reg(6), -1)), 0xfff3_0293);
        // lui x7, 0x12345 = 0x123453b7
        assert_eq!(encode(&Instr::lui(Reg(7), 0x12345)), 0x1234_53b7);
        // lw x8, 16(x9) = 0x0104a403
        assert_eq!(encode(&Instr::lw(Reg(8), Reg(9), 16)), 0x0104_a403);
        // sw x10, 20(x11) = 0x00a5aa23
        assert_eq!(encode(&Instr::sw(Reg(11), Reg(10), 20)), 0x00a5_aa23);
        // srai x1, x2, 4 = 0x40415093
        assert_eq!(
            encode(&Instr::reg_imm(Opcode::Srai, Reg(1), Reg(2), 4)),
            0x4041_5093
        );
        // mulh x3, x4, x5 = 0x025211b3
        assert_eq!(
            encode(&Instr::reg_reg(Opcode::Mulh, Reg(3), Reg(4), Reg(5))),
            0x0252_11b3
        );
    }

    #[test]
    fn decode_rejects_unsupported_words() {
        assert!(decode(0x0000_0000).is_err());
        // jal x0, 0 (opcode 1101111) is outside the subset
        assert!(decode(0x0000_006f).is_err());
        // lb (funct3 000 on LOAD) is outside the subset
        assert!(decode(0x0000_0003).is_err());
        let e = decode(0xffff_ffff).unwrap_err();
        assert!(e.to_string().contains("0xffffffff"));
    }

    #[test]
    fn roundtrip_all_opcodes() {
        for &op in &Opcode::ALL {
            let instr = match op.operand_kind() {
                crate::instr::OperandKind::RegReg => Instr::reg_reg(op, Reg(1), Reg(2), Reg(3)),
                crate::instr::OperandKind::RegImm => Instr::new(op, Reg(1), Reg(2), Reg::ZERO, -7),
                crate::instr::OperandKind::RegShamt => {
                    Instr::new(op, Reg(1), Reg(2), Reg::ZERO, 13)
                }
                crate::instr::OperandKind::Upper => Instr::lui(Reg(1), 0xabcde),
                crate::instr::OperandKind::Load => Instr::lw(Reg(1), Reg(2), -8),
                crate::instr::OperandKind::Store => Instr::sw(Reg(2), Reg(3), -12),
            };
            let word = encode(&instr);
            let back = decode(word).unwrap_or_else(|e| panic!("decode failed for {op}: {e}"));
            assert_eq!(back, instr, "round-trip mismatch for {op}");
        }
    }

    fn arb_instr(rng: &mut StdRng) -> Instr {
        let op = Opcode::ALL[rng.gen_range(0..Opcode::ALL.len())];
        let rd = Reg(rng.gen_range(0u8..32));
        let rs1 = Reg(rng.gen_range(0u8..32));
        let rs2 = Reg(rng.gen_range(0u8..32));
        let imm12 = rng.gen_range(-2048i32..2048);
        let shamt = rng.gen_range(0i32..32);
        let imm20 = rng.gen_range(0i32..(1 << 20));
        match op.operand_kind() {
            crate::instr::OperandKind::RegReg => Instr::reg_reg(op, rd, rs1, rs2),
            crate::instr::OperandKind::RegImm => Instr::new(op, rd, rs1, Reg::ZERO, imm12),
            crate::instr::OperandKind::RegShamt => Instr::new(op, rd, rs1, Reg::ZERO, shamt),
            crate::instr::OperandKind::Upper => Instr::lui(rd, imm20),
            crate::instr::OperandKind::Load => Instr::lw(rd, rs1, imm12),
            crate::instr::OperandKind::Store => Instr::sw(rs1, rs2, imm12),
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut rng = StdRng::seed_from_u64(0x15a_c0de);
        for _ in 0..512 {
            let instr = arb_instr(&mut rng);
            let word = encode(&instr);
            let back = decode(word).expect("generated instructions are decodable");
            assert_eq!(back, instr);
        }
    }
}
