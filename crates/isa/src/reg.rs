//! Architectural register names.

use std::fmt;

/// Number of general-purpose registers in RV32.
pub const NUM_REGS: u8 = 32;

/// A general-purpose register `x0`–`x31`.
///
/// `x0` is hard-wired to zero by the architectural model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Reg(pub u8);

impl Reg {
    /// The zero register `x0`.
    pub const ZERO: Reg = Reg(0);

    /// Creates a register, checking the range.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn new(index: u8) -> Self {
        assert!(index < NUM_REGS, "register index {index} out of range");
        Reg(index)
    }

    /// The register index (0–31).
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// Whether this is `x0`.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// All registers, in order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..NUM_REGS).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl From<Reg> for u8 {
    fn from(r: Reg) -> u8 {
        r.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let r = Reg::new(17);
        assert_eq!(r.index(), 17);
        assert_eq!(r.to_string(), "x17");
        assert!(!r.is_zero());
        assert!(Reg::ZERO.is_zero());
        assert_eq!(Reg::all().count(), 32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        Reg::new(32);
    }
}
