//! Typed representation of the RV32IM instruction subset.

use std::fmt;

use crate::reg::Reg;

/// Operation codes of the supported instruction subset.
///
/// The subset is the one the paper's component library covers (Section 4.1 /
/// Table 1): the ten R-type ALU operations, the immediate ALU operations,
/// `LUI`, the M-extension multiplies and the `LW`/`SW` memory instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Opcode {
    /// `rd = rs1 + rs2`
    Add,
    /// `rd = rs1 - rs2`
    Sub,
    /// `rd = rs1 << rs2[4:0]`
    Sll,
    /// `rd = (rs1 <s rs2) ? 1 : 0`
    Slt,
    /// `rd = (rs1 <u rs2) ? 1 : 0`
    Sltu,
    /// `rd = rs1 ^ rs2`
    Xor,
    /// `rd = rs1 >>u rs2[4:0]`
    Srl,
    /// `rd = rs1 >>s rs2[4:0]`
    Sra,
    /// `rd = rs1 | rs2`
    Or,
    /// `rd = rs1 & rs2`
    And,
    /// `rd = (rs1 * rs2)[31:0]`
    Mul,
    /// `rd = (rs1 *s rs2)[63:32]`
    Mulh,
    /// `rd = (rs1 *s rs2u)[63:32]`
    Mulhsu,
    /// `rd = (rs1 *u rs2)[63:32]`
    Mulhu,
    /// `rd = rs1 + sext(imm)`
    Addi,
    /// `rd = (rs1 <s sext(imm)) ? 1 : 0`
    Slti,
    /// `rd = (rs1 <u sext(imm)) ? 1 : 0`
    Sltiu,
    /// `rd = rs1 ^ sext(imm)`
    Xori,
    /// `rd = rs1 | sext(imm)`
    Ori,
    /// `rd = rs1 & sext(imm)`
    Andi,
    /// `rd = rs1 << shamt`
    Slli,
    /// `rd = rs1 >>u shamt`
    Srli,
    /// `rd = rs1 >>s shamt`
    Srai,
    /// `rd = imm << 12`
    Lui,
    /// `rd = mem[rs1 + sext(imm)]`
    Lw,
    /// `mem[rs1 + sext(imm)] = rs2`
    Sw,
}

/// How an instruction uses its operand fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperandKind {
    /// R-type: `rd`, `rs1`, `rs2`.
    RegReg,
    /// I-type ALU: `rd`, `rs1`, 12-bit signed immediate.
    RegImm,
    /// I-type shift: `rd`, `rs1`, 5-bit shift amount.
    RegShamt,
    /// U-type: `rd`, 20-bit immediate.
    Upper,
    /// Load: `rd`, `rs1`, 12-bit signed offset.
    Load,
    /// Store: `rs1` (base), `rs2` (data), 12-bit signed offset.
    Store,
}

impl Opcode {
    /// All supported opcodes.
    pub const ALL: [Opcode; 26] = [
        Opcode::Add,
        Opcode::Sub,
        Opcode::Sll,
        Opcode::Slt,
        Opcode::Sltu,
        Opcode::Xor,
        Opcode::Srl,
        Opcode::Sra,
        Opcode::Or,
        Opcode::And,
        Opcode::Mul,
        Opcode::Mulh,
        Opcode::Mulhsu,
        Opcode::Mulhu,
        Opcode::Addi,
        Opcode::Slti,
        Opcode::Sltiu,
        Opcode::Xori,
        Opcode::Ori,
        Opcode::Andi,
        Opcode::Slli,
        Opcode::Srli,
        Opcode::Srai,
        Opcode::Lui,
        Opcode::Lw,
        Opcode::Sw,
    ];

    /// The operand layout of this opcode.
    pub fn operand_kind(self) -> OperandKind {
        use Opcode::*;
        match self {
            Add | Sub | Sll | Slt | Sltu | Xor | Srl | Sra | Or | And | Mul | Mulh | Mulhsu
            | Mulhu => OperandKind::RegReg,
            Addi | Slti | Sltiu | Xori | Ori | Andi => OperandKind::RegImm,
            Slli | Srli | Srai => OperandKind::RegShamt,
            Lui => OperandKind::Upper,
            Lw => OperandKind::Load,
            Sw => OperandKind::Store,
        }
    }

    /// Whether the instruction writes a destination register.
    pub fn writes_rd(self) -> bool {
        !matches!(self, Opcode::Sw)
    }

    /// Whether the instruction reads `rs1`.
    pub fn reads_rs1(self) -> bool {
        !matches!(self, Opcode::Lui)
    }

    /// Whether the instruction reads `rs2`.
    pub fn reads_rs2(self) -> bool {
        matches!(
            self.operand_kind(),
            OperandKind::RegReg | OperandKind::Store
        )
    }

    /// Whether the instruction accesses data memory.
    pub fn touches_memory(self) -> bool {
        matches!(self, Opcode::Lw | Opcode::Sw)
    }

    /// Whether the instruction belongs to the M extension.
    pub fn is_multiply(self) -> bool {
        matches!(
            self,
            Opcode::Mul | Opcode::Mulh | Opcode::Mulhsu | Opcode::Mulhu
        )
    }

    /// The assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        use Opcode::*;
        match self {
            Add => "add",
            Sub => "sub",
            Sll => "sll",
            Slt => "slt",
            Sltu => "sltu",
            Xor => "xor",
            Srl => "srl",
            Sra => "sra",
            Or => "or",
            And => "and",
            Mul => "mul",
            Mulh => "mulh",
            Mulhsu => "mulhsu",
            Mulhu => "mulhu",
            Addi => "addi",
            Slti => "slti",
            Sltiu => "sltiu",
            Xori => "xori",
            Ori => "ori",
            Andi => "andi",
            Slli => "slli",
            Srli => "srli",
            Srai => "srai",
            Lui => "lui",
            Lw => "lw",
            Sw => "sw",
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// One instruction of the supported subset.
///
/// Fields that an opcode does not use are ignored (and normalised to zero by
/// the constructors).  Use the per-format constructors ([`Instr::add`],
/// [`Instr::addi`], …) or [`Instr::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instr {
    /// Operation.
    pub opcode: Opcode,
    /// Destination register (ignored by `SW`).
    pub rd: Reg,
    /// First source register (ignored by `LUI`).
    pub rs1: Reg,
    /// Second source register (R-type and `SW` only).
    pub rs2: Reg,
    /// Immediate: sign-extended 12-bit value for I/S-type, 20-bit value for
    /// `LUI`, 5-bit shift amount for immediate shifts.
    pub imm: i32,
}

impl Instr {
    /// Creates an instruction, validating and normalising the operands.
    ///
    /// # Panics
    ///
    /// Panics if the immediate is out of range for the opcode's format.
    pub fn new(opcode: Opcode, rd: Reg, rs1: Reg, rs2: Reg, imm: i32) -> Self {
        let mut instr = Instr {
            opcode,
            rd,
            rs1,
            rs2,
            imm,
        };
        match opcode.operand_kind() {
            OperandKind::RegReg => {
                instr.imm = 0;
            }
            OperandKind::RegImm | OperandKind::Load | OperandKind::Store => {
                assert!(
                    (-2048..=2047).contains(&imm),
                    "immediate {imm} out of range for {opcode}"
                );
                instr.rs2 = if opcode.operand_kind() == OperandKind::Store {
                    rs2
                } else {
                    Reg::ZERO
                };
            }
            OperandKind::RegShamt => {
                assert!((0..32).contains(&imm), "shift amount {imm} out of range");
                instr.rs2 = Reg::ZERO;
            }
            OperandKind::Upper => {
                assert!(
                    (0..(1 << 20)).contains(&imm),
                    "LUI immediate {imm} out of range"
                );
                instr.rs1 = Reg::ZERO;
                instr.rs2 = Reg::ZERO;
            }
        }
        if !opcode.writes_rd() {
            instr.rd = Reg::ZERO;
        }
        instr
    }

    /// `add rd, rs1, rs2`
    pub fn add(rd: Reg, rs1: Reg, rs2: Reg) -> Self {
        Instr::new(Opcode::Add, rd, rs1, rs2, 0)
    }

    /// `sub rd, rs1, rs2`
    pub fn sub(rd: Reg, rs1: Reg, rs2: Reg) -> Self {
        Instr::new(Opcode::Sub, rd, rs1, rs2, 0)
    }

    /// An R-type ALU instruction.
    pub fn reg_reg(opcode: Opcode, rd: Reg, rs1: Reg, rs2: Reg) -> Self {
        assert_eq!(
            opcode.operand_kind(),
            OperandKind::RegReg,
            "{opcode} is not R-type"
        );
        Instr::new(opcode, rd, rs1, rs2, 0)
    }

    /// An I-type ALU instruction (including immediate shifts).
    pub fn reg_imm(opcode: Opcode, rd: Reg, rs1: Reg, imm: i32) -> Self {
        assert!(
            matches!(
                opcode.operand_kind(),
                OperandKind::RegImm | OperandKind::RegShamt
            ),
            "{opcode} is not I-type"
        );
        Instr::new(opcode, rd, rs1, Reg::ZERO, imm)
    }

    /// `addi rd, rs1, imm`
    pub fn addi(rd: Reg, rs1: Reg, imm: i32) -> Self {
        Instr::new(Opcode::Addi, rd, rs1, Reg::ZERO, imm)
    }

    /// `xori rd, rs1, imm`
    pub fn xori(rd: Reg, rs1: Reg, imm: i32) -> Self {
        Instr::new(Opcode::Xori, rd, rs1, Reg::ZERO, imm)
    }

    /// `lui rd, imm20`
    pub fn lui(rd: Reg, imm20: i32) -> Self {
        Instr::new(Opcode::Lui, rd, Reg::ZERO, Reg::ZERO, imm20)
    }

    /// `lw rd, offset(rs1)`
    pub fn lw(rd: Reg, rs1: Reg, offset: i32) -> Self {
        Instr::new(Opcode::Lw, rd, rs1, Reg::ZERO, offset)
    }

    /// `sw rs2, offset(rs1)`
    pub fn sw(rs1: Reg, rs2: Reg, offset: i32) -> Self {
        Instr::new(Opcode::Sw, Reg::ZERO, rs1, rs2, offset)
    }

    /// The canonical no-op `addi x0, x0, 0`.
    pub fn nop() -> Self {
        Instr::addi(Reg::ZERO, Reg::ZERO, 0)
    }

    /// Whether this is the canonical no-op.
    pub fn is_nop(&self) -> bool {
        *self == Instr::nop()
    }

    /// The destination register, if the instruction writes one (and it is not
    /// `x0`).
    pub fn dest(&self) -> Option<Reg> {
        if self.opcode.writes_rd() && !self.rd.is_zero() {
            Some(self.rd)
        } else {
            None
        }
    }

    /// The source registers actually read by this instruction.
    pub fn sources(&self) -> Vec<Reg> {
        let mut out = Vec::new();
        if self.opcode.reads_rs1() {
            out.push(self.rs1);
        }
        if self.opcode.reads_rs2() {
            out.push(self.rs2);
        }
        out
    }

    /// Rewrites every register through `map` (used by the QED
    /// transformations).
    pub fn map_registers(&self, mut map: impl FnMut(Reg) -> Reg) -> Instr {
        let mut out = *self;
        if self.opcode.writes_rd() {
            out.rd = map(self.rd);
        }
        if self.opcode.reads_rs1() {
            out.rs1 = map(self.rs1);
        }
        if self.opcode.reads_rs2() {
            out.rs2 = map(self.rs2);
        }
        out
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.opcode.operand_kind() {
            OperandKind::RegReg => {
                write!(f, "{} {}, {}, {}", self.opcode, self.rd, self.rs1, self.rs2)
            }
            OperandKind::RegImm | OperandKind::RegShamt => {
                write!(f, "{} {}, {}, {}", self.opcode, self.rd, self.rs1, self.imm)
            }
            OperandKind::Upper => write!(f, "{} {}, {:#x}", self.opcode, self.rd, self.imm),
            OperandKind::Load => {
                write!(f, "{} {}, {}({})", self.opcode, self.rd, self.imm, self.rs1)
            }
            OperandKind::Store => {
                write!(
                    f,
                    "{} {}, {}({})",
                    self.opcode, self.rs2, self.imm, self.rs1
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_normalise_unused_fields() {
        let i = Instr::new(Opcode::Add, Reg(1), Reg(2), Reg(3), 77);
        assert_eq!(i.imm, 0, "R-type ignores the immediate");
        let i = Instr::addi(Reg(1), Reg(2), -5);
        assert_eq!(i.rs2, Reg::ZERO);
        let i = Instr::lui(Reg(4), 0xfffff);
        assert_eq!(i.rs1, Reg::ZERO);
        let i = Instr::sw(Reg(2), Reg(3), 4);
        assert_eq!(i.rd, Reg::ZERO);
    }

    #[test]
    fn operand_kind_classification() {
        assert_eq!(Opcode::Add.operand_kind(), OperandKind::RegReg);
        assert_eq!(Opcode::Addi.operand_kind(), OperandKind::RegImm);
        assert_eq!(Opcode::Slli.operand_kind(), OperandKind::RegShamt);
        assert_eq!(Opcode::Lui.operand_kind(), OperandKind::Upper);
        assert_eq!(Opcode::Lw.operand_kind(), OperandKind::Load);
        assert_eq!(Opcode::Sw.operand_kind(), OperandKind::Store);
        assert!(Opcode::Mulh.is_multiply());
        assert!(!Opcode::Add.is_multiply());
        assert!(Opcode::Sw.touches_memory());
        assert!(!Opcode::Sw.writes_rd());
        assert!(!Opcode::Lui.reads_rs1());
        assert!(Opcode::Sw.reads_rs2());
        assert!(!Opcode::Addi.reads_rs2());
    }

    #[test]
    #[should_panic(expected = "immediate")]
    fn immediate_out_of_range_panics() {
        Instr::addi(Reg(1), Reg(2), 4096);
    }

    #[test]
    #[should_panic(expected = "shift amount")]
    fn shamt_out_of_range_panics() {
        Instr::reg_imm(Opcode::Slli, Reg(1), Reg(2), 32);
    }

    #[test]
    fn dest_and_sources() {
        let i = Instr::sub(Reg(5), Reg(6), Reg(7));
        assert_eq!(i.dest(), Some(Reg(5)));
        assert_eq!(i.sources(), vec![Reg(6), Reg(7)]);
        let i = Instr::sw(Reg(2), Reg(3), 0);
        assert_eq!(i.dest(), None);
        assert_eq!(i.sources(), vec![Reg(2), Reg(3)]);
        let i = Instr::add(Reg(0), Reg(1), Reg(2));
        assert_eq!(i.dest(), None, "writes to x0 are discarded");
        let i = Instr::lui(Reg(3), 1);
        assert_eq!(i.sources(), vec![]);
    }

    #[test]
    fn register_mapping_respects_operand_use() {
        let i = Instr::lui(Reg(3), 10);
        let mapped = i.map_registers(|r| Reg(r.0 + 13));
        assert_eq!(mapped.rd, Reg(16));
        assert_eq!(mapped.rs1, Reg::ZERO, "LUI does not read rs1");
        let i = Instr::add(Reg(1), Reg(2), Reg(3));
        let mapped = i.map_registers(|r| Reg(r.0 + 13));
        assert_eq!(
            (mapped.rd, mapped.rs1, mapped.rs2),
            (Reg(14), Reg(15), Reg(16))
        );
    }

    #[test]
    fn display_formats_assembly() {
        assert_eq!(
            Instr::add(Reg(1), Reg(2), Reg(3)).to_string(),
            "add x1, x2, x3"
        );
        assert_eq!(
            Instr::xori(Reg(1), Reg(2), -1).to_string(),
            "xori x1, x2, -1"
        );
        assert_eq!(Instr::lw(Reg(1), Reg(2), 8).to_string(), "lw x1, 8(x2)");
        assert_eq!(Instr::sw(Reg(2), Reg(3), 12).to_string(), "sw x3, 12(x2)");
        assert_eq!(Instr::lui(Reg(1), 0x12345).to_string(), "lui x1, 0x12345");
    }

    #[test]
    fn nop_roundtrip() {
        assert!(Instr::nop().is_nop());
        assert!(!Instr::addi(Reg(1), Reg(0), 0).is_nop());
    }

    #[test]
    fn all_opcodes_have_distinct_mnemonics() {
        let mut names: Vec<_> = Opcode::ALL.iter().map(|o| o.mnemonic()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Opcode::ALL.len());
    }
}
