//! Concrete architectural execution (the golden model).

use std::collections::BTreeMap;

use crate::instr::{Instr, Opcode};
use crate::reg::{Reg, NUM_REGS};

/// Computes the value an ALU-class instruction writes, given its operand
/// values (`b` is the `rs2` value or the already sign-extended immediate).
///
/// This is the single concrete definition of the instruction semantics; the
/// pipelined simulator, the architectural model and the synthesis validator
/// all call it.
pub fn alu_value(opcode: Opcode, a: u32, b: u32) -> u32 {
    use Opcode::*;
    match opcode {
        Add | Addi => a.wrapping_add(b),
        Sub => a.wrapping_sub(b),
        Sll | Slli => a.wrapping_shl(b & 0x1f),
        Slt | Slti => u32::from((a as i32) < (b as i32)),
        Sltu | Sltiu => u32::from(a < b),
        Xor | Xori => a ^ b,
        Srl | Srli => a.wrapping_shr(b & 0x1f),
        Sra | Srai => ((a as i32).wrapping_shr(b & 0x1f)) as u32,
        Or | Ori => a | b,
        And | Andi => a & b,
        Mul => a.wrapping_mul(b),
        Mulh => ((i64::from(a as i32) * i64::from(b as i32)) >> 32) as u32,
        Mulhsu => ((i64::from(a as i32) * i64::from(b)) >> 32) as u32,
        Mulhu => ((u64::from(a) * u64::from(b)) >> 32) as u32,
        Lui => b << 12,
        Lw | Sw => unreachable!("memory instructions are not ALU operations"),
    }
}

/// The architectural state of the processor: register file and data memory.
///
/// Memory is a sparse word-addressed map (addresses are word aligned by
/// masking the low two bits), which is sufficient for the `LW`/`SW` subset.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ArchState {
    regs: [u32; NUM_REGS as usize],
    mem: BTreeMap<u32, u32>,
}

impl ArchState {
    /// Creates a state with all registers and memory zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads a register (`x0` always reads zero).
    pub fn reg(&self, r: Reg) -> u32 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// Writes a register (writes to `x0` are discarded).
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        if !r.is_zero() {
            self.regs[r.index()] = value;
        }
    }

    /// Reads a memory word (unwritten locations read zero).
    pub fn mem(&self, addr: u32) -> u32 {
        self.mem.get(&(addr & !3)).copied().unwrap_or(0)
    }

    /// Writes a memory word.
    pub fn set_mem(&mut self, addr: u32, value: u32) {
        self.mem.insert(addr & !3, value);
    }

    /// The set of memory words written so far (address, value).
    pub fn mem_contents(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.mem.iter().map(|(&a, &v)| (a, v))
    }

    /// A snapshot of the whole register file.
    pub fn regs(&self) -> [u32; NUM_REGS as usize] {
        let mut out = self.regs;
        out[0] = 0;
        out
    }

    /// Executes one instruction, updating registers and memory.
    pub fn step(&mut self, instr: &Instr) {
        use Opcode::*;
        let a = self.reg(instr.rs1);
        match instr.opcode {
            Lw => {
                let addr = a.wrapping_add(instr.imm as u32);
                let v = self.mem(addr);
                self.set_reg(instr.rd, v);
            }
            Sw => {
                let addr = a.wrapping_add(instr.imm as u32);
                self.set_mem(addr, self.reg(instr.rs2));
            }
            Lui => {
                self.set_reg(instr.rd, (instr.imm as u32) << 12);
            }
            op => {
                let b = if op.reads_rs2() {
                    self.reg(instr.rs2)
                } else {
                    instr.imm as u32
                };
                self.set_reg(instr.rd, alu_value(op, a, b));
            }
        }
    }

    /// Executes a sequence of instructions.
    pub fn run<'a, I: IntoIterator<Item = &'a Instr>>(&mut self, program: I) {
        for instr in program {
            self.step(instr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x0_is_hardwired_to_zero() {
        let mut s = ArchState::new();
        s.set_reg(Reg::ZERO, 55);
        assert_eq!(s.reg(Reg::ZERO), 0);
        s.step(&Instr::addi(Reg::ZERO, Reg::ZERO, 7));
        assert_eq!(s.reg(Reg::ZERO), 0);
    }

    #[test]
    fn alu_semantics_spot_checks() {
        assert_eq!(alu_value(Opcode::Add, 3, 4), 7);
        assert_eq!(alu_value(Opcode::Sub, 3, 4), u32::MAX);
        assert_eq!(alu_value(Opcode::Slt, 0xffff_ffff, 0), 1); // -1 < 0
        assert_eq!(alu_value(Opcode::Sltu, 0xffff_ffff, 0), 0);
        assert_eq!(alu_value(Opcode::Sra, 0x8000_0000, 4), 0xf800_0000);
        assert_eq!(alu_value(Opcode::Srl, 0x8000_0000, 4), 0x0800_0000);
        assert_eq!(
            alu_value(Opcode::Sll, 1, 33),
            2,
            "shift amounts use the low 5 bits"
        );
        assert_eq!(alu_value(Opcode::Mulh, 0x8000_0000, 2), 0xffff_ffff);
        assert_eq!(alu_value(Opcode::Mulhu, 0x8000_0000, 2), 1);
        assert_eq!(alu_value(Opcode::Mulhsu, 0xffff_ffff, 2), 0xffff_ffff);
        assert_eq!(alu_value(Opcode::Mul, 0x0001_0000, 0x0001_0000), 0);
    }

    #[test]
    fn immediates_are_sign_extended_by_step() {
        let mut s = ArchState::new();
        s.set_reg(Reg(2), 10);
        s.step(&Instr::addi(Reg(1), Reg(2), -3));
        assert_eq!(s.reg(Reg(1)), 7);
        s.step(&Instr::xori(Reg(1), Reg(2), -1));
        assert_eq!(s.reg(Reg(1)), !10);
    }

    #[test]
    fn loads_and_stores_roundtrip() {
        let mut s = ArchState::new();
        s.set_reg(Reg(2), 0x100);
        s.set_reg(Reg(3), 0xdead_beef);
        s.step(&Instr::sw(Reg(2), Reg(3), 8));
        assert_eq!(s.mem(0x108), 0xdead_beef);
        s.step(&Instr::lw(Reg(4), Reg(2), 8));
        assert_eq!(s.reg(Reg(4)), 0xdead_beef);
        // unaligned accesses fold onto the word
        assert_eq!(s.mem(0x109), 0xdead_beef);
        assert_eq!(s.mem_contents().count(), 1);
    }

    #[test]
    fn lui_writes_upper_bits() {
        let mut s = ArchState::new();
        s.step(&Instr::lui(Reg(5), 0x12345));
        assert_eq!(s.reg(Reg(5)), 0x1234_5000);
    }

    #[test]
    fn listing1_equivalence_holds_concretely() {
        // SUB rd rs1 rs2  ==  XORI t1 rs1 -1 ; ADD t2 t1 rs2 ; XORI rd t2 -1
        for (a, b) in [(5u32, 3u32), (0, 0), (0xffff_ffff, 1), (123456, 654321)] {
            let mut original = ArchState::new();
            original.set_reg(Reg(2), a);
            original.set_reg(Reg(3), b);
            original.step(&Instr::sub(Reg(1), Reg(2), Reg(3)));

            let mut equivalent = ArchState::new();
            equivalent.set_reg(Reg(2), a);
            equivalent.set_reg(Reg(3), b);
            equivalent.run(&[
                Instr::xori(Reg(26), Reg(2), -1),
                Instr::add(Reg(27), Reg(26), Reg(3)),
                Instr::xori(Reg(1), Reg(27), -1),
            ]);
            assert_eq!(original.reg(Reg(1)), equivalent.reg(Reg(1)));
        }
    }

    #[test]
    fn run_executes_in_order() {
        let mut s = ArchState::new();
        s.run(&[
            Instr::addi(Reg(1), Reg(0), 5),
            Instr::addi(Reg(2), Reg(1), 6),
            Instr::add(Reg(3), Reg(1), Reg(2)),
        ]);
        assert_eq!(s.reg(Reg(3)), 16);
    }
}
