//! Symbolic (bit-vector) semantics of the instruction subset.
//!
//! The formal semantic model of Section 4.1 of the paper describes every
//! instruction's input/output behaviour as a bit-vector formula
//! `φ_instr(I, A, O)`.  This module provides those formulas as term builders
//! over [`sepe_smt::TermManager`].  They are used in two places:
//!
//! * the synthesis component library (`sepe-synth`), where each component's
//!   `Φ_j` is exactly one of these builders, and
//! * the symbolic processor datapath (`sepe-processor`), so the design under
//!   verification and the specification share one semantic definition.
//!
//! All builders are parametric in the operand width.  The paper works at
//! XLEN = 32; reduced widths (8 or 16) are used by some benchmarks to keep
//! full parameter sweeps fast, and must be powers of two so that shift
//! amounts can be masked the same way RV32 masks them to 5 bits.

use sepe_smt::{TermId, TermManager};

use crate::instr::{Instr, Opcode};

/// Sign-extends a 12-bit style immediate into a `width`-bit constant term.
pub fn imm_term(tm: &mut TermManager, imm: i32, width: u32) -> TermId {
    tm.bv_const(imm as i64 as u64, width)
}

/// Masks a shift-amount operand to `log2(width)` bits, mirroring how RV32
/// uses only `rs2[4:0]`.
///
/// # Panics
///
/// Panics if `width` is not a power of two.
pub fn shift_amount(tm: &mut TermManager, amount: TermId, width: u32) -> TermId {
    assert!(
        width.is_power_of_two(),
        "symbolic semantics require a power-of-two width"
    );
    let mask = tm.bv_const(u64::from(width) - 1, width);
    tm.bv_and(amount, mask)
}

/// The value written by an ALU-class instruction, given operand terms `a`
/// (rs1) and `b` (rs2 value or sign-extended immediate) of equal width.
///
/// This is the symbolic counterpart of [`crate::exec::alu_value`].
///
/// # Panics
///
/// Panics for `LW`/`SW` (memory semantics live in the processor model) and
/// for non-power-of-two widths when a shift opcode is requested.
pub fn alu_result(tm: &mut TermManager, opcode: Opcode, a: TermId, b: TermId) -> TermId {
    use Opcode::*;
    let width = tm.width(a);
    debug_assert_eq!(width, tm.width(b), "ALU operands must have equal width");
    match opcode {
        Add | Addi => tm.bv_add(a, b),
        Sub => tm.bv_sub(a, b),
        Sll | Slli => {
            let s = shift_amount(tm, b, width);
            tm.bv_shl(a, s)
        }
        Srl | Srli => {
            let s = shift_amount(tm, b, width);
            tm.bv_lshr(a, s)
        }
        Sra | Srai => {
            let s = shift_amount(tm, b, width);
            tm.bv_ashr(a, s)
        }
        Slt | Slti => {
            let c = tm.bv_slt(a, b);
            tm.bool_to_bv(c, width)
        }
        Sltu | Sltiu => {
            let c = tm.bv_ult(a, b);
            tm.bool_to_bv(c, width)
        }
        Xor | Xori => tm.bv_xor(a, b),
        Or | Ori => tm.bv_or(a, b),
        And | Andi => tm.bv_and(a, b),
        Mul => tm.bv_mul(a, b),
        Mulh => mul_high(tm, a, b, true, true),
        Mulhsu => mul_high(tm, a, b, true, false),
        Mulhu => mul_high(tm, a, b, false, false),
        Lui => {
            let twelve = tm.bv_const(12 % u64::from(width), width);
            tm.bv_shl(b, twelve)
        }
        Lw | Sw => unreachable!("memory instructions have no ALU result"),
    }
}

fn mul_high(tm: &mut TermManager, a: TermId, b: TermId, a_signed: bool, b_signed: bool) -> TermId {
    let width = tm.width(a);
    assert!(width * 2 <= 64, "MULH semantics need 2*width <= 64");
    let ea = if a_signed {
        tm.bv_sign_ext(a, width)
    } else {
        tm.bv_zero_ext(a, width)
    };
    let eb = if b_signed {
        tm.bv_sign_ext(b, width)
    } else {
        tm.bv_zero_ext(b, width)
    };
    let p = tm.bv_mul(ea, eb);
    tm.bv_extract(p, 2 * width - 1, width)
}

/// The value written to `rd` by a non-memory instruction, given the symbolic
/// values of its source registers.
///
/// Immediates are taken from the instruction and materialised as constants of
/// the requested width (sign-extended for I-type, shifted for `LUI`).
///
/// # Panics
///
/// Panics for `LW`/`SW`.
pub fn instr_result(
    tm: &mut TermManager,
    instr: &Instr,
    rs1: TermId,
    rs2: TermId,
    width: u32,
) -> TermId {
    use crate::instr::OperandKind::*;
    match instr.opcode.operand_kind() {
        RegReg => alu_result(tm, instr.opcode, rs1, rs2),
        RegImm | RegShamt => {
            let imm = imm_term(tm, instr.imm, width);
            alu_result(tm, instr.opcode, rs1, imm)
        }
        Upper => {
            let value = ((instr.imm as u32) << 12) as u64;
            tm.bv_const(value, width)
        }
        Load | Store => unreachable!("memory instructions have no pure result"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::alu_value;
    use crate::reg::Reg;
    use sepe_smt::{concrete, SatResult, Solver, Sort};
    use std::collections::HashMap;

    /// Cross-checks the symbolic semantics against the concrete golden model
    /// on random operand values for every ALU opcode at 32 bits.
    #[test]
    fn symbolic_matches_concrete_semantics() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let alu_opcodes = [
            Opcode::Add,
            Opcode::Sub,
            Opcode::Sll,
            Opcode::Slt,
            Opcode::Sltu,
            Opcode::Xor,
            Opcode::Srl,
            Opcode::Sra,
            Opcode::Or,
            Opcode::And,
            Opcode::Mul,
            Opcode::Mulh,
            Opcode::Mulhsu,
            Opcode::Mulhu,
        ];
        for &op in &alu_opcodes {
            for _ in 0..20 {
                let av: u32 = rng.gen();
                let bv: u32 = rng.gen();
                let mut tm = TermManager::new();
                let a = tm.var("a", Sort::BitVec(32));
                let b = tm.var("b", Sort::BitVec(32));
                let r = alu_result(&mut tm, op, a, b);
                let env: HashMap<_, _> = [(a, u64::from(av)), (b, u64::from(bv))]
                    .into_iter()
                    .collect();
                let got = concrete::eval(&tm, r, &env) as u32;
                assert_eq!(
                    got,
                    alu_value(op, av, bv),
                    "mismatch for {op} on {av:#x},{bv:#x}"
                );
            }
        }
    }

    #[test]
    fn instr_result_handles_immediates_and_lui() {
        let mut tm = TermManager::new();
        let a = tm.var("a", Sort::BitVec(32));
        let b = tm.var("b", Sort::BitVec(32));
        let env: HashMap<_, _> = [(a, 100u64), (b, 7u64)].into_iter().collect();

        let addi = Instr::addi(Reg(1), Reg(2), -1);
        let r = instr_result(&mut tm, &addi, a, b, 32);
        assert_eq!(concrete::eval(&tm, r, &env), 99);

        let srai = Instr::reg_imm(Opcode::Srai, Reg(1), Reg(2), 2);
        let r = instr_result(&mut tm, &srai, a, b, 32);
        assert_eq!(concrete::eval(&tm, r, &env), 25);

        let lui = Instr::lui(Reg(1), 0x12345);
        let r = instr_result(&mut tm, &lui, a, b, 32);
        assert_eq!(concrete::eval(&tm, r, &env), 0x1234_5000);
    }

    #[test]
    fn shift_amount_uses_low_bits_only() {
        let mut tm = TermManager::new();
        let a = tm.var("a", Sort::BitVec(32));
        let b = tm.var("b", Sort::BitVec(32));
        let r = alu_result(&mut tm, Opcode::Sll, a, b);
        let env: HashMap<_, _> = [(a, 1u64), (b, 33u64)].into_iter().collect();
        assert_eq!(concrete::eval(&tm, r, &env), 2);
    }

    /// Proves the Listing-1 equivalence symbolically at 16 bits through the
    /// SMT solver: SUB(a,b) == XORI(ADD(XORI(a,-1), b), -1).
    #[test]
    fn listing1_equivalence_is_valid_symbolically() {
        let mut tm = TermManager::new();
        let a = tm.var("a", Sort::BitVec(16));
        let b = tm.var("b", Sort::BitVec(16));
        let sub = alu_result(&mut tm, Opcode::Sub, a, b);
        let minus_one = imm_term(&mut tm, -1, 16);
        let t1 = alu_result(&mut tm, Opcode::Xori, a, minus_one);
        let t2 = alu_result(&mut tm, Opcode::Add, t1, b);
        let rd = alu_result(&mut tm, Opcode::Xori, t2, minus_one);
        let goal = tm.neq(sub, rd);
        let mut solver = Solver::new();
        solver.assert_term(&tm, goal);
        assert_eq!(solver.check(&mut tm), SatResult::Unsat);
    }

    #[test]
    fn mulh_agrees_with_reference_at_reduced_width() {
        // exhaustive check at 8 bits
        let mut tm = TermManager::new();
        let a = tm.var("a", Sort::BitVec(8));
        let b = tm.var("b", Sort::BitVec(8));
        let r = mul_high(&mut tm, a, b, true, true);
        for av in 0..=255u64 {
            for bv in (0..=255u64).step_by(17) {
                let env: HashMap<_, _> = [(a, av), (b, bv)].into_iter().collect();
                let expect = (((av as i8 as i16) * (bv as i8 as i16)) as u16 >> 8) as u64 & 0xff;
                assert_eq!(concrete::eval(&tm, r, &env), expect);
            }
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_width_shift_panics() {
        let mut tm = TermManager::new();
        let a = tm.var("a", Sort::BitVec(12));
        let b = tm.var("b", Sort::BitVec(12));
        let _ = alu_result(&mut tm, Opcode::Sll, a, b);
    }
}
