//! Randomized differential tests of the gate-level AIG layer.
//!
//! Every round builds a random assertion set and checks that with the AIG
//! reductions (structural hashing, local rewriting, polarity-aware Tseitin)
//! forced **on** and **off** (the direct-blasting baseline):
//!
//! * `Solver::check` returns the same verdict, and on SAT both models
//!   satisfy every asserted term under the concrete evaluator — i.e. the
//!   polarity-aware encoding reads models back exactly like the
//!   biconditional one;
//! * `IncrementalSolver::check_assuming` returns the same verdict per round
//!   across a shared permanent prefix and changing assumption sets, with
//!   the same model guarantee and sane unsat cores — including runs with
//!   the word-level simplification off and with the clause-database
//!   reduction forced to fire constantly, so the append-only node→variable
//!   mapping is exercised against SAT-state churn.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sepe_smt::concrete::eval;
use sepe_smt::{IncrementalSolver, SatResult, Solver, Sort, TermId, TermManager};

const WIDTH: u32 = 8;

struct Gen {
    rng: StdRng,
}

impl Gen {
    fn new(seed: u64) -> Self {
        Gen {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// A random bit-vector expression over the given leaves.
    fn bv_expr(&mut self, tm: &mut TermManager, leaves: &[TermId], depth: usize) -> TermId {
        if depth == 0 || self.rng.gen_bool(0.3) {
            if self.rng.gen_bool(0.3) {
                return tm.bv_const(self.rng.gen_range(0..1u64 << WIDTH), WIDTH);
            }
            return leaves[self.rng.gen_range(0..leaves.len())];
        }
        let a = self.bv_expr(tm, leaves, depth - 1);
        let b = self.bv_expr(tm, leaves, depth - 1);
        match self.rng.gen_range(0..14) {
            0 => tm.bv_add(a, b),
            1 => tm.bv_sub(a, b),
            2 => tm.bv_and(a, b),
            3 => tm.bv_or(a, b),
            4 => tm.bv_xor(a, b),
            5 => tm.bv_mul(a, b),
            6 => tm.bv_shl(a, b),
            7 => tm.bv_lshr(a, b),
            8 => tm.bv_ashr(a, b),
            9 => tm.bv_not(a),
            10 => tm.bv_neg(a),
            11 => {
                let c = self.bool_expr(tm, leaves, 1);
                tm.ite(c, a, b)
            }
            12 => {
                let lo = tm.bv_extract(a, 3, 0);
                let hi = tm.bv_extract(b, 7, 4);
                tm.bv_concat(hi, lo)
            }
            _ => tm.bv_urem(a, b),
        }
    }

    /// A random boolean expression over the given bit-vector leaves.
    fn bool_expr(&mut self, tm: &mut TermManager, leaves: &[TermId], depth: usize) -> TermId {
        let a = self.bv_expr(tm, leaves, depth);
        let b = self.bv_expr(tm, leaves, depth);
        let base = match self.rng.gen_range(0..6) {
            0 => tm.eq(a, b),
            1 => tm.bv_ult(a, b),
            2 => tm.bv_ule(a, b),
            3 => tm.bv_slt(a, b),
            4 => tm.bv_sle(a, b),
            _ => tm.neq(a, b),
        };
        if depth > 0 && self.rng.gen_bool(0.4) {
            let other = self.bool_expr(tm, leaves, depth - 1);
            return match self.rng.gen_range(0..4) {
                0 => tm.and(base, other),
                1 => tm.or(base, other),
                2 => tm.implies(base, other),
                _ => tm.xor(base, other),
            };
        }
        base
    }

    /// A random assertion set with deliberately repeated substructure, so
    /// structural hashing has sharing to find.
    fn assertion_set(&mut self, tm: &mut TermManager, tag: &str) -> Vec<TermId> {
        let x = tm.var(&format!("x_{tag}"), Sort::BitVec(WIDTH));
        let y = tm.var(&format!("y_{tag}"), Sort::BitVec(WIDTH));
        let z = tm.var(&format!("z_{tag}"), Sort::BitVec(WIDTH));
        let leaves = vec![x, y, z];
        let mut out = Vec::new();
        for _ in 0..self.rng.gen_range(2..6) {
            let c = self.bool_expr(tm, &leaves, 2);
            out.push(c);
        }
        out
    }
}

/// Every original assertion must evaluate to 1 under the model.
fn model_satisfies(tm: &TermManager, model: &sepe_smt::Model, asserted: &[TermId]) -> bool {
    asserted
        .iter()
        .all(|&t| eval(tm, t, model.assignment()) == 1)
}

#[test]
fn scratch_solver_aig_is_equisatisfiable_with_agreeing_models() {
    for round in 0..60 {
        let mut gen = Gen::new(0xa160 + round);
        let mut tm = TermManager::new();
        let asserted = gen.assertion_set(&mut tm, "s");

        // Both word-level settings, so the AIG layer is also exercised on
        // raw (unsimplified) structure.
        let simplify = round % 2 == 0;
        let mut on = Solver::new();
        let mut off = Solver::new();
        off.set_aig(false);
        on.set_simplify(simplify);
        off.set_simplify(simplify);
        for &t in &asserted {
            on.assert_term(&tm, t);
            off.assert_term(&tm, t);
        }
        let r_on = on.check(&mut tm);
        let r_off = off.check(&mut tm);
        assert_eq!(r_on, r_off, "round {round}: scratch verdicts diverge");
        if r_on == SatResult::Sat {
            assert!(
                model_satisfies(&tm, on.model(&tm), &asserted),
                "round {round}: AIG model violates an assertion"
            );
            assert!(
                model_satisfies(&tm, off.model(&tm), &asserted),
                "round {round}: direct-blasting model violates an assertion"
            );
        }
    }
}

#[test]
fn incremental_aig_matches_direct_blasting_across_assumption_rounds() {
    for round in 0..40 {
        let mut gen = Gen::new(0xcafe + round);
        let mut tm = TermManager::new();
        let asserted = gen.assertion_set(&mut tm, "i");
        // Last few terms become a pool of retractable assumptions; their
        // complements join it so both polarities of shared cones are
        // assumed across checks (the polarity top-up path).
        let split = 1 + asserted.len() / 2;
        let (permanent, base_pool) = asserted.split_at(split.min(asserted.len() - 1));
        let mut pool: Vec<TermId> = base_pool.to_vec();
        for &t in base_pool {
            pool.push(tm.not(t));
        }

        let simplify = round % 2 == 0;
        let mut on = IncrementalSolver::new();
        let mut off = IncrementalSolver::new();
        off.set_aig(false);
        on.set_simplify(simplify);
        off.set_simplify(simplify);
        if round % 3 == 0 {
            // Force the learnt-database reduction to fire constantly, so
            // the append-only mapping is exercised against clause-arena
            // compaction and watcher remapping.
            on.set_reduce_interval(1);
            off.set_reduce_interval(1);
        }
        for &t in permanent {
            on.assert_term(&mut tm, t);
            off.assert_term(&mut tm, t);
        }
        for sub_round in 0..4 {
            let assumed: Vec<TermId> = pool
                .iter()
                .copied()
                .filter(|_| gen.rng.gen_bool(0.4))
                .collect();
            let r_on = on.check_assuming(&mut tm, &assumed);
            let r_off = off.check_assuming(&mut tm, &assumed);
            assert_eq!(
                r_on, r_off,
                "round {round}.{sub_round}: incremental verdicts diverge"
            );
            match r_on {
                SatResult::Sat => {
                    let mut all: Vec<TermId> = permanent.to_vec();
                    all.extend(&assumed);
                    assert!(
                        model_satisfies(&tm, on.model(&tm), &all),
                        "round {round}.{sub_round}: AIG incremental model is wrong"
                    );
                    assert!(
                        model_satisfies(&tm, off.model(&tm), &all),
                        "round {round}.{sub_round}: direct incremental model is wrong"
                    );
                }
                SatResult::Unsat => {
                    let core = on.unsat_core().to_vec();
                    assert!(
                        core.iter().all(|t| assumed.contains(t)),
                        "round {round}.{sub_round}: core ⊄ assumptions"
                    );
                    assert_eq!(
                        on.check_assuming(&mut tm, &core),
                        SatResult::Unsat,
                        "round {round}.{sub_round}: core is not unsatisfiable"
                    );
                }
                SatResult::Unknown => unreachable!("no budgets set"),
            }
        }
    }
}

#[test]
fn aig_on_emits_fewer_clauses_on_shared_structure() {
    // A set with heavy cross-assertion sharing: the same products appear
    // under many roots, so strash + one-definition-per-node must beat
    // direct blasting on both variables and clauses.
    let mut tm = TermManager::new();
    let x = tm.var("x", Sort::BitVec(WIDTH));
    let y = tm.var("y", Sort::BitVec(WIDTH));
    let z = tm.var("z", Sort::BitVec(WIDTH));
    let sum = tm.bv_add(x, y);
    let prod_a = tm.bv_and(sum, z);
    let xo = tm.bv_xor(sum, z);
    let asserted = vec![
        {
            let c = tm.bv_const(9, WIDTH);
            tm.bv_ult(prod_a, c)
        },
        {
            let c = tm.bv_const(100, WIDTH);
            tm.bv_ult(xo, c)
        },
        {
            // xnor of the same operands: one complement away from `xo`
            let n = tm.bv_not(xo);
            let c = tm.bv_const(17, WIDTH);
            tm.neq(n, c)
        },
    ];
    let run = |aig: bool, tm: &mut TermManager| {
        let mut s = Solver::new();
        s.set_aig(aig);
        s.set_simplify(false);
        for &t in &asserted {
            s.assert_term(tm, t);
        }
        assert_eq!(s.check(tm), SatResult::Sat);
        s.stats()
    };
    let on = run(true, &mut tm);
    let off = run(false, &mut tm);
    assert!(
        on.aig.cnf_clauses < off.aig.cnf_clauses,
        "AIG must emit fewer clauses: {} vs {}",
        on.aig.cnf_clauses,
        off.aig.cnf_clauses
    );
    assert!(
        on.aig.cnf_vars < off.aig.cnf_vars,
        "AIG must emit fewer variables: {} vs {}",
        on.aig.cnf_vars,
        off.aig.cnf_vars
    );
    assert!(on.aig.strash_hits > 0);
    assert_eq!(off.aig.strash_hits, 0);
}

#[test]
fn deadline_interrupted_aig_solver_stays_reusable() {
    // A hard query under an already-expired deadline returns Unknown; the
    // same solver must then finish an easy query correctly, with the AIG
    // mapping intact.
    let mut tm = TermManager::new();
    let x = tm.var("x", Sort::BitVec(20));
    let y = tm.var("y", Sort::BitVec(20));
    let p = tm.bv_mul(x, y);
    let c = tm.bv_const(1048573, 20); // prime
    let goal = tm.eq(p, c);
    let one = tm.one(20);
    let gx = tm.bv_ugt(x, one);
    let gy = tm.bv_ugt(y, one);
    let mut inc = IncrementalSolver::new();
    inc.assert_term(&mut tm, goal);
    inc.set_deadline(Some(std::time::Instant::now()));
    let r = inc.check_assuming(&mut tm, &[gx, gy]);
    // the deadline is polled every few conflicts, so a lucky early model
    // can still slip through
    assert!(matches!(r, SatResult::Unknown | SatResult::Sat));
    inc.set_deadline(None);
    let easy = tm.eq(x, one);
    assert_eq!(inc.check_assuming(&mut tm, &[easy]), SatResult::Sat);
    let m = inc.model(&tm);
    assert_eq!(m.value(x), 1);
    assert_eq!((m.value(x) * m.value(y)) & 0xf_ffff, 1048573);
}
