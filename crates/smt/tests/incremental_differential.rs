//! Randomized differential test: [`IncrementalSolver`] vs the scratch
//! [`Solver`] on random term-graph query sequences.
//!
//! Each round builds a random bit-vector term graph, then drives one
//! incremental solver through a sequence of queries — permanent assertions
//! interleaved with `check_assuming` calls over random boolean terms — and
//! cross-checks every verdict against a fresh scratch solver given the same
//! conjunction.  UNSAT answers also get core sanity checks: the core is a
//! subset of the assumptions and is itself unsatisfiable together with the
//! permanent assertions.
//!
//! Everything is seeded (no time/randomness nondeterminism), so failures
//! reproduce exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sepe_smt::{IncrementalSolver, SatResult, Solver, Sort, TermId, TermManager};

/// Builds a pool of random bit-vector terms over three variables.
fn random_bv_pool(tm: &mut TermManager, rng: &mut StdRng, width: u32) -> Vec<TermId> {
    let x = tm.var("x", Sort::BitVec(width));
    let y = tm.var("y", Sort::BitVec(width));
    let z = tm.var("z", Sort::BitVec(width));
    let mut pool = vec![x, y, z];
    for _ in 0..10 {
        let a = pool[rng.gen_range(0..pool.len())];
        let b = pool[rng.gen_range(0..pool.len())];
        let t = match rng.gen_range(0..8) {
            0 => tm.bv_add(a, b),
            1 => tm.bv_sub(a, b),
            2 => tm.bv_and(a, b),
            3 => tm.bv_or(a, b),
            4 => tm.bv_xor(a, b),
            5 => tm.bv_mul(a, b),
            6 => tm.bv_not(a),
            _ => {
                let c = tm.bv_ult(a, b);
                tm.ite(c, a, b)
            }
        };
        pool.push(t);
    }
    pool
}

/// Builds a random boolean constraint over the term pool.
fn random_constraint(
    tm: &mut TermManager,
    rng: &mut StdRng,
    pool: &[TermId],
    width: u32,
) -> TermId {
    let a = pool[rng.gen_range(0..pool.len())];
    let b = pool[rng.gen_range(0..pool.len())];
    match rng.gen_range(0..5) {
        0 => tm.eq(a, b),
        1 => tm.neq(a, b),
        2 => tm.bv_ult(a, b),
        3 => tm.bv_ule(a, b),
        _ => {
            let c = tm.bv_const(rng.gen_range(0..(1u64 << width)), width);
            tm.eq(a, c)
        }
    }
}

#[test]
fn incremental_agrees_with_scratch_on_random_query_sequences() {
    let mut rng = StdRng::seed_from_u64(0x01ec_5eed);
    let width = 6;
    let mut checks = 0usize;
    for round in 0..25 {
        let mut tm = TermManager::new();
        let pool = random_bv_pool(&mut tm, &mut rng, width);
        let mut incremental = IncrementalSolver::new();
        let mut permanent: Vec<TermId> = Vec::new();
        let mut permanently_unsat = false;

        // A sequence of interleaved asserts and checks per round.
        for _step in 0..6 {
            if rng.gen_bool(0.4) && !permanently_unsat {
                let c = random_constraint(&mut tm, &mut rng, &pool, width);
                incremental.assert_term(&tm, c);
                permanent.push(c);
            }
            let num_assumed = rng.gen_range(0..3);
            let assumed: Vec<TermId> = (0..num_assumed)
                .map(|_| random_constraint(&mut tm, &mut rng, &pool, width))
                .collect();

            let got = incremental.check_assuming(&tm, &assumed);
            checks += 1;

            // Scratch reference over the identical conjunction.
            let mut scratch = Solver::new();
            for &p in &permanent {
                scratch.assert_term(&tm, p);
            }
            for &a in &assumed {
                scratch.assert_term(&tm, a);
            }
            let expected = scratch.check(&tm);
            assert_eq!(
                got, expected,
                "round {round}: incremental disagrees with scratch \
                 (permanent: {permanent:?}, assumed: {assumed:?})"
            );

            match got {
                SatResult::Sat => {
                    // The incremental model must satisfy every constraint.
                    let model = incremental.model(&tm);
                    for &p in permanent.iter().chain(&assumed) {
                        assert_eq!(
                            model.eval(&tm, p),
                            1,
                            "round {round}: model violates a constraint"
                        );
                    }
                }
                SatResult::Unsat => {
                    // Core sanity: subset of assumptions, itself UNSAT with
                    // the permanent assertions (checked on a scratch solver
                    // so the incremental state is not disturbed).
                    let core: Vec<TermId> = incremental.unsat_core().to_vec();
                    for t in &core {
                        assert!(
                            assumed.contains(t),
                            "round {round}: core member not among assumptions"
                        );
                    }
                    let mut core_check = Solver::new();
                    for &p in &permanent {
                        core_check.assert_term(&tm, p);
                    }
                    for &t in &core {
                        core_check.assert_term(&tm, t);
                    }
                    assert_eq!(
                        core_check.check(&tm),
                        SatResult::Unsat,
                        "round {round}: unsat core {core:?} is not unsatisfiable"
                    );
                    if assumed.is_empty() || core.is_empty() {
                        permanently_unsat = true;
                    }
                }
                SatResult::Unknown => unreachable!("no conflict limit is set"),
            }
        }
    }
    assert!(checks >= 100, "need ≥100 differential checks, ran {checks}");
}

#[test]
fn incremental_depth_sweep_matches_scratch_with_growing_assertions() {
    // A second shape: monotonically growing assertion sets (the BMC pattern)
    // with one retractable "bad state" per check.
    let mut rng = StdRng::seed_from_u64(0xb0c5);
    let width = 5;
    for round in 0..15 {
        let mut tm = TermManager::new();
        let pool = random_bv_pool(&mut tm, &mut rng, width);
        let mut incremental = IncrementalSolver::new();
        let mut permanent: Vec<TermId> = Vec::new();
        for _depth in 0..5 {
            let c = random_constraint(&mut tm, &mut rng, &pool, width);
            incremental.assert_term(&tm, c);
            permanent.push(c);
            let bad = random_constraint(&mut tm, &mut rng, &pool, width);

            let got = incremental.check_assuming(&tm, &[bad]);
            let mut scratch = Solver::new();
            for &p in &permanent {
                scratch.assert_term(&tm, p);
            }
            scratch.assert_term(&tm, bad);
            assert_eq!(got, scratch.check(&tm), "round {round} diverged");
        }
        let stats = incremental.stats();
        assert_eq!(stats.checks, 5);
        assert!(
            stats.terms_reused > 0,
            "round {round}: growing assertion sets must reuse cached encodings"
        );
    }
}
