//! Randomized differential test: [`IncrementalSolver`] vs the scratch
//! [`Solver`] on random term-graph query sequences.
//!
//! Each round builds a random bit-vector term graph, then drives one
//! incremental solver through a sequence of queries — permanent assertions
//! interleaved with `check_assuming` calls over random boolean terms — and
//! cross-checks every verdict against a fresh scratch solver given the same
//! conjunction.  UNSAT answers also get core sanity checks: the core is a
//! subset of the assumptions and is itself unsatisfiable together with the
//! permanent assertions.
//!
//! Everything is seeded (no time/randomness nondeterminism), so failures
//! reproduce exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sepe_smt::{IncrementalSolver, SatResult, Solver, Sort, TermId, TermManager};

/// Builds a pool of random bit-vector terms over three variables.
fn random_bv_pool(tm: &mut TermManager, rng: &mut StdRng, width: u32) -> Vec<TermId> {
    let x = tm.var("x", Sort::BitVec(width));
    let y = tm.var("y", Sort::BitVec(width));
    let z = tm.var("z", Sort::BitVec(width));
    let mut pool = vec![x, y, z];
    for _ in 0..10 {
        let a = pool[rng.gen_range(0..pool.len())];
        let b = pool[rng.gen_range(0..pool.len())];
        let t = match rng.gen_range(0..8) {
            0 => tm.bv_add(a, b),
            1 => tm.bv_sub(a, b),
            2 => tm.bv_and(a, b),
            3 => tm.bv_or(a, b),
            4 => tm.bv_xor(a, b),
            5 => tm.bv_mul(a, b),
            6 => tm.bv_not(a),
            _ => {
                let c = tm.bv_ult(a, b);
                tm.ite(c, a, b)
            }
        };
        pool.push(t);
    }
    pool
}

/// Builds a random boolean constraint over the term pool.
fn random_constraint(
    tm: &mut TermManager,
    rng: &mut StdRng,
    pool: &[TermId],
    width: u32,
) -> TermId {
    let a = pool[rng.gen_range(0..pool.len())];
    let b = pool[rng.gen_range(0..pool.len())];
    match rng.gen_range(0..5) {
        0 => tm.eq(a, b),
        1 => tm.neq(a, b),
        2 => tm.bv_ult(a, b),
        3 => tm.bv_ule(a, b),
        _ => {
            let c = tm.bv_const(rng.gen_range(0..(1u64 << width)), width);
            tm.eq(a, c)
        }
    }
}

#[test]
fn incremental_agrees_with_scratch_on_random_query_sequences() {
    let mut rng = StdRng::seed_from_u64(0x01ec_5eed);
    let width = 6;
    let mut checks = 0usize;
    for round in 0..25 {
        let mut tm = TermManager::new();
        let pool = random_bv_pool(&mut tm, &mut rng, width);
        let mut incremental = IncrementalSolver::new();
        let mut permanent: Vec<TermId> = Vec::new();
        let mut permanently_unsat = false;

        // A sequence of interleaved asserts and checks per round.
        for _step in 0..6 {
            if rng.gen_bool(0.4) && !permanently_unsat {
                let c = random_constraint(&mut tm, &mut rng, &pool, width);
                incremental.assert_term(&mut tm, c);
                permanent.push(c);
            }
            let num_assumed = rng.gen_range(0..3);
            let assumed: Vec<TermId> = (0..num_assumed)
                .map(|_| random_constraint(&mut tm, &mut rng, &pool, width))
                .collect();

            let got = incremental.check_assuming(&mut tm, &assumed);
            checks += 1;

            // Scratch reference over the identical conjunction.
            let mut scratch = Solver::new();
            for &p in &permanent {
                scratch.assert_term(&tm, p);
            }
            for &a in &assumed {
                scratch.assert_term(&tm, a);
            }
            let expected = scratch.check(&mut tm);
            assert_eq!(
                got, expected,
                "round {round}: incremental disagrees with scratch \
                 (permanent: {permanent:?}, assumed: {assumed:?})"
            );

            match got {
                SatResult::Sat => {
                    // The incremental model must satisfy every constraint.
                    let model = incremental.model(&tm);
                    for &p in permanent.iter().chain(&assumed) {
                        assert_eq!(
                            model.eval(&tm, p),
                            1,
                            "round {round}: model violates a constraint"
                        );
                    }
                }
                SatResult::Unsat => {
                    // Core sanity: subset of assumptions, itself UNSAT with
                    // the permanent assertions (checked on a scratch solver
                    // so the incremental state is not disturbed).
                    let core: Vec<TermId> = incremental.unsat_core().to_vec();
                    for t in &core {
                        assert!(
                            assumed.contains(t),
                            "round {round}: core member not among assumptions"
                        );
                    }
                    let mut core_check = Solver::new();
                    for &p in &permanent {
                        core_check.assert_term(&tm, p);
                    }
                    for &t in &core {
                        core_check.assert_term(&tm, t);
                    }
                    assert_eq!(
                        core_check.check(&mut tm),
                        SatResult::Unsat,
                        "round {round}: unsat core {core:?} is not unsatisfiable"
                    );
                    if assumed.is_empty() || core.is_empty() {
                        permanently_unsat = true;
                    }
                }
                SatResult::Unknown => unreachable!("no conflict limit is set"),
            }
        }
    }
    assert!(checks >= 100, "need ≥100 differential checks, ran {checks}");
}

/// Randomized differential check with learnt-database reduction forced on:
/// a reduction interval of a handful of conflicts makes `reduce_db` (and its
/// arena compaction) fire many times within every query sequence, and the
/// verdicts must still agree with scratch solving query for query.
#[test]
fn forced_reduction_agrees_with_scratch_on_random_query_sequences() {
    let mut rng = StdRng::seed_from_u64(0x9ed_0cee);
    let width = 6;
    let mut reduced_total = 0u64;
    for round in 0..20 {
        let mut tm = TermManager::new();
        let pool = random_bv_pool(&mut tm, &mut rng, width);
        let mut incremental = IncrementalSolver::new();
        // Reduce every 5 conflicts: even the small random instances here
        // conflict often enough to trigger many reduction passes.
        incremental.set_reduce_interval(5);
        let mut permanent: Vec<TermId> = Vec::new();
        let mut permanently_unsat = false;

        for _step in 0..6 {
            if rng.gen_bool(0.4) && !permanently_unsat {
                let c = random_constraint(&mut tm, &mut rng, &pool, width);
                incremental.assert_term(&mut tm, c);
                permanent.push(c);
            }
            let num_assumed = rng.gen_range(0..3);
            let assumed: Vec<TermId> = (0..num_assumed)
                .map(|_| random_constraint(&mut tm, &mut rng, &pool, width))
                .collect();

            let got = incremental.check_assuming(&mut tm, &assumed);
            let mut scratch = Solver::new();
            for &p in permanent.iter().chain(&assumed) {
                scratch.assert_term(&tm, p);
            }
            assert_eq!(
                got,
                scratch.check(&mut tm),
                "round {round}: reduced incremental disagrees with scratch \
                 (permanent: {permanent:?}, assumed: {assumed:?})"
            );
            match got {
                SatResult::Sat => {
                    let model = incremental.model(&tm);
                    for &p in permanent.iter().chain(&assumed) {
                        assert_eq!(
                            model.eval(&tm, p),
                            1,
                            "round {round}: model violates a constraint after reduction"
                        );
                    }
                }
                SatResult::Unsat => {
                    if assumed.is_empty() || incremental.unsat_core().is_empty() {
                        permanently_unsat = true;
                    }
                }
                SatResult::Unknown => unreachable!("no conflict limit is set"),
            }
        }
        reduced_total += incremental.stats().reduce_passes;
    }
    assert!(
        reduced_total > 0,
        "a 5-conflict interval must trigger reductions somewhere in 20 rounds"
    );
}

/// A wall-clock interrupt in the middle of a search that has already reduced
/// (and compacted) its learnt database must leave the solver reusable: after
/// clearing the deadline, the same solver finishes the query with the right
/// verdict.
#[test]
fn deadline_interrupt_during_reduced_search_leaves_the_solver_reusable() {
    use std::time::{Duration, Instant};

    let mut tm = TermManager::new();
    // A hard query: factor a prime (wrapping at 2^20 a factorization exists,
    // but finding it takes a conflict-heavy search).
    let x = tm.var("x", Sort::BitVec(20));
    let y = tm.var("y", Sort::BitVec(20));
    let p = tm.bv_mul(x, y);
    let c = tm.bv_const(1_048_573, 20);
    let goal = tm.eq(p, c);
    let one = tm.one(20);
    let gx = tm.bv_ugt(x, one);
    let gy = tm.bv_ugt(y, one);

    let mut inc = IncrementalSolver::new();
    inc.assert_term(&mut tm, goal);
    // Force frequent reductions, then interrupt the search almost instantly.
    inc.set_reduce_interval(10);
    inc.set_deadline(Some(Instant::now() + Duration::from_millis(50)));
    let first = inc.check_assuming(&mut tm, &[gx, gy]);
    assert!(
        matches!(first, SatResult::Unknown | SatResult::Sat),
        "a 50ms deadline either interrupts or gets lucky, got {first:?}"
    );
    // Clearing the deadline must let the same solver (reduced database,
    // compacted arena, retained learnt clauses) finish the job.
    inc.set_deadline(None);
    assert_eq!(inc.check_assuming(&mut tm, &[gx, gy]), SatResult::Sat);
    let m = inc.model(&tm);
    assert_eq!((m.value(x) * m.value(y)) & 0xf_ffff, 1_048_573);
    assert!(m.value(x) > 1 && m.value(y) > 1);
    // The solver keeps answering correctly: x = 0 contradicts the permanent
    // product constraint, and the core names the new assumption.
    let zero = tm.zero(20);
    let x0 = tm.eq(x, zero);
    assert_eq!(inc.check_assuming(&mut tm, &[x0]), SatResult::Unsat);
    assert_eq!(inc.unsat_core(), &[x0]);
}

#[test]
fn incremental_depth_sweep_matches_scratch_with_growing_assertions() {
    // A second shape: monotonically growing assertion sets (the BMC pattern)
    // with one retractable "bad state" per check.
    let mut rng = StdRng::seed_from_u64(0xb0c5);
    let width = 5;
    for round in 0..15 {
        let mut tm = TermManager::new();
        let pool = random_bv_pool(&mut tm, &mut rng, width);
        let mut incremental = IncrementalSolver::new();
        let mut permanent: Vec<TermId> = Vec::new();
        for _depth in 0..5 {
            let c = random_constraint(&mut tm, &mut rng, &pool, width);
            incremental.assert_term(&mut tm, c);
            permanent.push(c);
            let bad = random_constraint(&mut tm, &mut rng, &pool, width);

            let got = incremental.check_assuming(&mut tm, &[bad]);
            let mut scratch = Solver::new();
            for &p in &permanent {
                scratch.assert_term(&tm, p);
            }
            scratch.assert_term(&tm, bad);
            assert_eq!(got, scratch.check(&mut tm), "round {round} diverged");
        }
        let stats = incremental.stats();
        assert_eq!(stats.checks, 5);
        assert!(
            stats.encode.total_reuse() > 0,
            "round {round}: growing assertion sets must reuse cached encodings"
        );
    }
}
