//! Randomized differential tests of the word-level rewriting pipeline.
//!
//! Every round builds a random assertion set (random bit-vector/boolean
//! structure plus deliberate `var = term` definitions, so equality pinning
//! actually fires) and checks that with rewriting forced **on** and **off**:
//!
//! * `Solver::check` returns the same verdict, and on SAT both models
//!   satisfy every *original* (unrewritten) assertion under the concrete
//!   evaluator — i.e. eliminated variables read back correctly;
//! * `IncrementalSolver::check_assuming` returns the same verdict per
//!   round across a shared permanent prefix and changing assumption sets,
//!   with the same model-evaluation guarantee and sane unsat cores.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sepe_smt::concrete::eval;
use sepe_smt::{IncrementalSolver, SatResult, Solver, Sort, TermId, TermManager};

const WIDTH: u32 = 8;

struct Gen {
    rng: StdRng,
}

impl Gen {
    fn new(seed: u64) -> Self {
        Gen {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// A random bit-vector expression over the given leaves.
    fn bv_expr(&mut self, tm: &mut TermManager, leaves: &[TermId], depth: usize) -> TermId {
        if depth == 0 || self.rng.gen_bool(0.3) {
            if self.rng.gen_bool(0.3) {
                return tm.bv_const(self.rng.gen_range(0..1u64 << WIDTH), WIDTH);
            }
            return leaves[self.rng.gen_range(0..leaves.len())];
        }
        let a = self.bv_expr(tm, leaves, depth - 1);
        let b = self.bv_expr(tm, leaves, depth - 1);
        match self.rng.gen_range(0..12) {
            0 => tm.bv_add(a, b),
            1 => tm.bv_sub(a, b),
            2 => tm.bv_and(a, b),
            3 => tm.bv_or(a, b),
            4 => tm.bv_xor(a, b),
            5 => tm.bv_mul(a, b),
            6 => tm.bv_shl(a, b),
            7 => tm.bv_lshr(a, b),
            8 => tm.bv_not(a),
            9 => {
                let c = self.bool_expr(tm, leaves, 1);
                tm.ite(c, a, b)
            }
            10 => {
                let lo = tm.bv_extract(a, 3, 0);
                let hi = tm.bv_extract(b, 7, 4);
                tm.bv_concat(hi, lo)
            }
            _ => {
                let lo = tm.bv_extract(a, 3, 0);
                tm.bv_zero_ext(lo, 4)
            }
        }
    }

    /// A random boolean expression over the given bit-vector leaves.
    fn bool_expr(&mut self, tm: &mut TermManager, leaves: &[TermId], depth: usize) -> TermId {
        let a = self.bv_expr(tm, leaves, depth);
        let b = self.bv_expr(tm, leaves, depth);
        let base = match self.rng.gen_range(0..4) {
            0 => tm.eq(a, b),
            1 => tm.bv_ult(a, b),
            2 => tm.bv_ule(a, b),
            _ => tm.neq(a, b),
        };
        if depth > 0 && self.rng.gen_bool(0.4) {
            let other = self.bool_expr(tm, leaves, depth - 1);
            return match self.rng.gen_range(0..4) {
                0 => tm.and(base, other),
                1 => tm.or(base, other),
                2 => tm.implies(base, other),
                _ => tm.xor(base, other),
            };
        }
        base
    }

    /// A random assertion set: structural constraints plus `d_i = expr`
    /// definitions over fresh variables, so pinning has work to do.
    fn assertion_set(&mut self, tm: &mut TermManager, tag: &str) -> Vec<TermId> {
        let x = tm.var(&format!("x_{tag}"), Sort::BitVec(WIDTH));
        let y = tm.var(&format!("y_{tag}"), Sort::BitVec(WIDTH));
        let mut leaves = vec![x, y];
        let mut out = Vec::new();
        for i in 0..self.rng.gen_range(1..4) {
            let d = tm.var(&format!("d{i}_{tag}"), Sort::BitVec(WIDTH));
            let value = self.bv_expr(tm, &leaves, 2);
            let def = if self.rng.gen_bool(0.5) {
                tm.eq(d, value)
            } else {
                tm.eq(value, d)
            };
            out.push(def);
            leaves.push(d);
        }
        for _ in 0..self.rng.gen_range(1..5) {
            let c = self.bool_expr(tm, &leaves, 2);
            out.push(c);
        }
        // Shuffle so definitions are interleaved with their uses (pins must
        // stay sound whichever side is asserted first).
        for i in (1..out.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            out.swap(i, j);
        }
        out
    }
}

/// Every original assertion must evaluate to 1 under the model.
fn model_satisfies(tm: &TermManager, model: &sepe_smt::Model, asserted: &[TermId]) -> bool {
    asserted
        .iter()
        .all(|&t| eval(tm, t, model.assignment()) == 1)
}

#[test]
fn scratch_solver_rewriting_is_equisatisfiable_with_agreeing_models() {
    for round in 0..60 {
        let mut gen = Gen::new(0xd1ff + round);
        let mut tm = TermManager::new();
        let asserted = gen.assertion_set(&mut tm, "s");

        let mut on = Solver::new();
        let mut off = Solver::new();
        off.set_simplify(false);
        for &t in &asserted {
            on.assert_term(&tm, t);
            off.assert_term(&tm, t);
        }
        let r_on = on.check(&mut tm);
        let r_off = off.check(&mut tm);
        assert_eq!(r_on, r_off, "round {round}: scratch verdicts diverge");
        if r_on == SatResult::Sat {
            assert!(
                model_satisfies(&tm, on.model(&tm), &asserted),
                "round {round}: rewritten model violates an original assertion"
            );
            assert!(
                model_satisfies(&tm, off.model(&tm), &asserted),
                "round {round}: baseline model violates an assertion"
            );
        }
    }
}

#[test]
fn incremental_rewriting_matches_unrewritten_across_assumption_rounds() {
    for round in 0..40 {
        let mut gen = Gen::new(0xabc0 + round);
        let mut tm = TermManager::new();
        let asserted = gen.assertion_set(&mut tm, "i");
        // Last few terms become a pool of retractable assumptions.
        let split = 1 + asserted.len() / 2;
        let (permanent, pool) = asserted.split_at(split.min(asserted.len() - 1));

        let mut on = IncrementalSolver::new();
        let mut off = IncrementalSolver::new();
        off.set_simplify(false);
        for &t in permanent {
            on.assert_term(&mut tm, t);
            off.assert_term(&mut tm, t);
        }
        // Several checks on the same pair of solvers: subsets of the pool.
        for sub_round in 0..4 {
            let assumed: Vec<TermId> = pool
                .iter()
                .copied()
                .filter(|_| gen.rng.gen_bool(0.6))
                .collect();
            let r_on = on.check_assuming(&mut tm, &assumed);
            let r_off = off.check_assuming(&mut tm, &assumed);
            assert_eq!(
                r_on, r_off,
                "round {round}.{sub_round}: incremental verdicts diverge"
            );
            match r_on {
                SatResult::Sat => {
                    let mut all: Vec<TermId> = permanent.to_vec();
                    all.extend(&assumed);
                    assert!(
                        model_satisfies(&tm, on.model(&tm), &all),
                        "round {round}.{sub_round}: rewritten incremental model is wrong"
                    );
                    assert!(
                        model_satisfies(&tm, off.model(&tm), &all),
                        "round {round}.{sub_round}: baseline incremental model is wrong"
                    );
                }
                SatResult::Unsat => {
                    // Core sanity on the rewriting solver: a subset of the
                    // assumptions that is itself unsatisfiable.
                    let core = on.unsat_core().to_vec();
                    assert!(
                        core.iter().all(|t| assumed.contains(t)),
                        "round {round}.{sub_round}: core ⊄ assumptions"
                    );
                    assert_eq!(
                        on.check_assuming(&mut tm, &core),
                        SatResult::Unsat,
                        "round {round}.{sub_round}: core is not unsatisfiable"
                    );
                }
                SatResult::Unknown => unreachable!("no budgets set"),
            }
        }
    }
}

#[test]
fn rewriting_forced_on_pins_definitions_and_still_agrees_with_scratch() {
    // A shape guaranteed to pin: chained definitions folding to constants,
    // checked against an unrewritten scratch solver at every step.
    let mut tm = TermManager::new();
    let x = tm.var("x", Sort::BitVec(WIDTH));
    let a = tm.var("a", Sort::BitVec(WIDTH));
    let b = tm.var("b", Sort::BitVec(WIDTH));
    let five = tm.bv_const(5, WIDTH);
    let def_a = tm.eq(a, five); // a = 5
    let ax = tm.bv_add(a, x);
    let def_b = tm.eq(b, ax); // b = a + x
    let twelve = tm.bv_const(12, WIDTH);
    let goal = tm.eq(b, twelve); // b = 12  ⇒  x = 7

    let mut inc = IncrementalSolver::new();
    inc.assert_term(&mut tm, def_a);
    inc.assert_term(&mut tm, def_b);
    assert!(
        inc.stats().encode.rewrite.pins == 0,
        "stats update lazily — only at check time"
    );
    assert_eq!(inc.check_assuming(&mut tm, &[goal]), SatResult::Sat);
    let stats = inc.stats();
    assert!(stats.encode.rewrite.pins >= 2, "a and b must be pinned");
    let m = inc.model(&tm);
    assert_eq!(m.value(x), 7);
    assert_eq!(m.value(a), 5, "eliminated variable reads back");
    assert_eq!(m.value(b), 12, "chained eliminated variable reads back");

    let mut scratch = Solver::new();
    scratch.set_simplify(false);
    for t in [def_a, def_b, goal] {
        scratch.assert_term(&tm, t);
    }
    assert_eq!(scratch.check(&mut tm), SatResult::Sat);
    assert_eq!(scratch.model(&tm).value(x), 7);
}
