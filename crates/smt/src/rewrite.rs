//! Word-level simplification ahead of bit-blasting.
//!
//! The [`TermManager`] constructors only simplify *locally at construction
//! time* (constant folding, neutral/absorbing elements).  Everything they
//! miss — `ite` chains whose condition is decided by an asserted equality,
//! extracts over concatenations, multiplications by powers of two, state
//! variables pinned to constants by the previous frame — is bit-blasted and
//! then searched clause by clause, which is exactly the work the SAT core is
//! worst at.  [`Rewriter`] removes that work *before* encoding:
//!
//! * **Rule-driven bottom-up rewriting.**  Every term is rebuilt through the
//!   manager's constructors (inheriting their folding) and then run through
//!   a rule catalogue: complement annihilation (`x & !x → 0`,
//!   `p ∧ ¬p → false`), `ite` collapsing (boolean-constant branches, nested
//!   same-condition `ite`s, negated conditions), comparison collapsing
//!   against extremal constants (`x <u 0 → false`, `x ≤u ones → true`),
//!   equality normalisation (`x + c₁ = c₂ → x = c₂ - c₁`,
//!   `a - b = 0 → a = b`, concatenation/extension splitting), strength
//!   reduction (`x * 2ᵏ → x << k`, division/remainder by powers of two,
//!   shifts by constants lowered to pure wiring), and extract/concat/extend
//!   pushing.  Results are cached per term, so shared subgraphs are visited
//!   once.
//!
//! * **Equality-driven propagation across an assertion set.**  Asserted
//!   conjuncts of the shape `v = t` (with `v` a variable not occurring in
//!   `t`) become *pins*: every later occurrence of `v` rewrites to `t`, and
//!   when `v` has not reached the bit-blaster yet, the defining equality is
//!   dropped entirely — the variable is never encoded.  For a BMC unrolling
//!   this turns the relational frame encoding (`x@k+1 = f(x@k)` over fresh
//!   frame variables) into functional composition over the inputs, and
//!   constants asserted by the initial state propagate through every frame
//!   they reach.  [`Rewriter::complete_model`] restores the values of
//!   eliminated variables after a satisfiable check, so models read back
//!   exactly as if nothing had been eliminated.
//!
//! The pass is *equisatisfiability-preserving per assertion set*: pins are
//! only harvested from permanent assertions, never from retractable
//! assumptions, so the incremental term-encoding cache stays coherent across
//! BMC depths and CEGIS rounds.  [`RewriteStats`] counts the work
//! (rewrites, rule hits, pins, dropped assertions) and [`EncodeStats`] joins
//! it with the bit-blaster's cache counters into the one reuse block that
//! the benches and experiment binaries print.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::concrete::{eval_many, Assignment};
use crate::sort::mask;
use crate::subst::rebuild_with;
use crate::term::{Op, TermId, TermManager};

/// Counters of the word-level rewriting pass.
///
/// Surfaced through [`EncodeStats`] → `SolverReuseStats` →
/// `BmcStats`/`Detection`, like the SAT core's `ReduceStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RewriteStats {
    /// Rewrite requests whose result differs from the input term.
    pub terms_rewritten: u64,
    /// Catalogue-rule applications beyond constructor-level folding.
    pub rule_applications: u64,
    /// Rewrite-cache hits (shared subgraphs served without a revisit).
    pub cache_hits: u64,
    /// Asserted equalities turned into variable pins (substitutions).
    pub pins: u64,
    /// Asserted conjuncts eliminated outright (pinned definitions and
    /// conjuncts that rewrote to `true`).
    pub assertions_dropped: u64,
    /// Next-state updates dropped by the BMC cone-of-influence pass (filled
    /// in by `sepe_tsys::Bmc`; always zero at the solver level).
    pub coi_dropped_updates: u64,
}

impl RewriteStats {
    /// Merges another stats block into this one.
    pub fn absorb(&mut self, other: &RewriteStats) {
        self.terms_rewritten += other.terms_rewritten;
        self.rule_applications += other.rule_applications;
        self.cache_hits += other.cache_hits;
        self.pins += other.pins;
        self.assertions_dropped += other.assertions_dropped;
        self.coi_dropped_updates += other.coi_dropped_updates;
    }
}

/// The joint encoding-reuse picture: bit-blaster cache counters and the
/// rewrite counters in one block, so every reporting surface (bench_smoke,
/// table1, fig4) prints the same story instead of scattered counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct EncodeStats {
    /// Distinct terms with a cached CNF encoding.
    pub terms_cached: u64,
    /// Encoding lookups answered from the bit-blaster's cache.  Counts every
    /// hit — shared subgraphs revisited *within* one query as well as terms
    /// re-encountered *across* checks — so it upper-bounds (rather than
    /// exactly measures) the re-blasting avoided by persistence.
    pub terms_reused: u64,
    /// Word-level rewriting counters.
    pub rewrite: RewriteStats,
    /// Gate-level AIG counters: nodes created, strash hits, constants
    /// folded, local rewrites, CNF variables/clauses emitted by the
    /// polarity-aware Tseitin pass.
    pub aig: crate::aig::AigStats,
}

impl EncodeStats {
    /// Merges another stats block into this one.
    pub fn absorb(&mut self, other: &EncodeStats) {
        self.terms_cached += other.terms_cached;
        self.terms_reused += other.terms_reused;
        self.rewrite.absorb(&other.rewrite);
        self.aig.absorb(&other.aig);
    }

    /// Total encoding work avoided: blaster cache hits plus rewrite cache
    /// hits plus assertions the rewriter eliminated before encoding.
    pub fn total_reuse(&self) -> u64 {
        self.terms_reused + self.rewrite.cache_hits + self.rewrite.assertions_dropped
    }
}

impl fmt::Display for EncodeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cache {}/{}  rewritten {} (rules {}, pins {}, dropped {}, coi-dropped {})  \
             aig {} (strash {}, folded {}, rw {})  cnf {}/{}",
            self.terms_cached,
            self.terms_reused,
            self.rewrite.terms_rewritten,
            self.rewrite.rule_applications,
            self.rewrite.pins,
            self.rewrite.assertions_dropped,
            self.rewrite.coi_dropped_updates,
            self.aig.nodes,
            self.aig.strash_hits,
            self.aig.consts_folded,
            self.aig.rewrites,
            self.aig.cnf_vars,
            self.aig.cnf_clauses,
        )
    }
}

/// How a pinned variable relates to the CNF.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PinKind {
    /// The variable never reached the bit-blaster; its defining equality was
    /// dropped and the model value is reconstructed by
    /// [`Rewriter::complete_model`].
    Eliminated,
    /// The variable was already encoded when the equality arrived; the
    /// equality stays asserted and the pin only substitutes *future*
    /// occurrences.
    Encoded,
}

/// The word-level rewriter: rule catalogue + equality pins + rewrite cache.
#[derive(Debug, Clone, Default)]
pub struct Rewriter {
    /// Pinned variable → fully normalised value.  Invariant: no pin value
    /// contains a pinned variable (values are re-normalised whenever a pin
    /// is added), which keeps leaf substitution O(1) and model completion a
    /// single evaluation pass.
    pins: HashMap<TermId, TermId>,
    /// Pin insertion order plus whether the variable had already been
    /// encoded when it was pinned.
    pin_order: Vec<(TermId, PinKind)>,
    /// Rewrite cache, valid for the current pin set (cleared when a pin is
    /// added, because any cached result may mention the newly pinned
    /// variable).
    cache: HashMap<TermId, TermId>,
    /// Variables occurring in at least one stored pin value.  Lets pin
    /// insertion skip the invariant-restore pass in the common case where
    /// the new variable is fresher than every stored value (every BMC frame
    /// pin), avoiding a quadratic re-rewrite over long assertion sequences.
    value_vars: HashSet<TermId>,
    stats: RewriteStats,
}

impl Rewriter {
    /// Creates an empty rewriter.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counters accumulated so far.
    pub fn stats(&self) -> RewriteStats {
        self.stats
    }

    /// Number of variables currently pinned to a value.
    pub fn num_pins(&self) -> usize {
        self.pins.len()
    }

    /// Rewrites a single term under the current rule set and pins, without
    /// harvesting new pins (the entry point for retractable assumptions,
    /// which must never constrain the permanent pin set).
    pub fn rewrite(&mut self, tm: &mut TermManager, t: TermId) -> TermId {
        let r = self.rewrite_inner(tm, t);
        if r != t {
            self.stats.terms_rewritten += 1;
        }
        r
    }

    /// Simplifies a batch of permanent assertions.
    ///
    /// Splits each term into its top-level conjuncts, harvests equality pins
    /// (`v = t`, asserted boolean variables and their negations) to a fixed
    /// point, and returns the conjuncts that still need to be asserted.
    /// `already_encoded(v)` must answer whether the variable `v` has already
    /// reached the bit-blaster of the calling solver: the defining equality
    /// of an already-encoded variable is *kept* (only future occurrences are
    /// substituted), while an unencoded variable is eliminated outright —
    /// its equality is dropped and the variable never enters the CNF.
    pub fn assert_simplify(
        &mut self,
        tm: &mut TermManager,
        terms: &[TermId],
        already_encoded: &dyn Fn(TermId) -> bool,
    ) -> Vec<TermId> {
        // Phase 1: harvest pins to a fixed point.  Every pass re-rewrites the
        // remaining conjuncts under the pins collected so far; the loop ends
        // after a full pass that adds no pin, so the surviving conjuncts are
        // normalised under the final pin set.
        let mut worklist: Vec<TermId> = Vec::new();
        for &t in terms {
            let r = self.rewrite(tm, t);
            collect_conjuncts(tm, r, &mut worklist);
        }
        let mut batch_pins: Vec<TermId> = Vec::new();
        loop {
            let mut changed = false;
            let mut survivors: Vec<TermId> = Vec::new();
            for &c in &worklist {
                let c = self.rewrite_inner(tm, c);
                let mut pieces = Vec::new();
                collect_conjuncts(tm, c, &mut pieces);
                for piece in pieces {
                    if tm.const_value(piece) == Some(1) {
                        self.stats.assertions_dropped += 1;
                        continue;
                    }
                    if let Some((var, value)) = pin_candidate(tm, piece) {
                        if self.add_pin(tm, var, value, already_encoded(var)) {
                            changed = true;
                            batch_pins.push(var);
                            continue;
                        }
                    }
                    survivors.push(piece);
                }
            }
            worklist = survivors;
            if !changed {
                break;
            }
        }

        // Phase 2: emit.  Kept pins (already-encoded variables) re-assert
        // their defining equality against the fully normalised value, which
        // by the pin invariant contains no pinned variable — so blasting it
        // can never smuggle an eliminated variable into the CNF.
        let mut out = Vec::new();
        for var in batch_pins {
            let kind = self
                .pin_order
                .iter()
                .find(|(v, _)| *v == var)
                .map(|(_, k)| *k)
                .expect("batch pin was recorded");
            if kind == PinKind::Encoded {
                let value = self.pins[&var];
                out.push(tm.eq(var, value));
            } else {
                self.stats.assertions_dropped += 1;
            }
        }
        for c in worklist {
            if tm.const_value(c) == Some(1) {
                self.stats.assertions_dropped += 1;
                continue;
            }
            out.push(c);
        }
        out
    }

    /// Extends a satisfying assignment with the values of every eliminated
    /// variable, evaluated bottom-up from the values of the variables that
    /// did reach the CNF.  Values already present (pins of already-encoded
    /// variables) are left untouched.
    pub fn complete_model(&self, tm: &TermManager, values: &mut Assignment) {
        if self.pin_order.is_empty() {
            return;
        }
        // Pin values never contain pinned variables, so every pin evaluates
        // directly against the base assignment — one shared-cache pass.
        let roots: Vec<TermId> = self.pin_order.iter().map(|&(v, _)| self.pins[&v]).collect();
        let vals = eval_many(tm, &roots, values);
        for (&(var, _), val) in self.pin_order.iter().zip(vals) {
            values.entry(var).or_insert(val);
        }
    }

    /// Records `var → value` if it is admissible (the variable is not
    /// already pinned and does not occur in its own normalised value).
    /// Returns whether the pin was added.
    fn add_pin(&mut self, tm: &mut TermManager, var: TermId, value: TermId, encoded: bool) -> bool {
        debug_assert!(matches!(tm.term(var).op, Op::Var { .. }));
        if self.pins.contains_key(&var) {
            return false;
        }
        let value = self.rewrite_inner(tm, value);
        if var == value || occurs(tm, var, value) {
            return false;
        }
        self.pins.insert(var, value);
        self.pin_order.push((
            var,
            if encoded {
                PinKind::Encoded
            } else {
                PinKind::Eliminated
            },
        ));
        self.stats.pins += 1;
        self.cache.clear();
        if !self.value_vars.contains(&var) {
            // No stored pin value mentions the new variable — the invariant
            // already holds (the common case: BMC frame variables are
            // fresher than everything asserted before them), so only the
            // occurrence index needs extending.
            collect_vars_into(tm, value, &mut self.value_vars);
            return true;
        }
        // Restore the pin invariant: no stored value may mention the newly
        // pinned variable (or anything it now rewrites to).
        loop {
            let vars: Vec<TermId> = self.pin_order.iter().map(|&(v, _)| v).collect();
            let mut settled = true;
            for v in vars {
                let old = self.pins[&v];
                let new = self.rewrite_inner(tm, old);
                if new != old {
                    self.pins.insert(v, new);
                    self.cache.clear();
                    settled = false;
                }
            }
            if settled {
                break;
            }
        }
        self.value_vars.clear();
        let values: Vec<TermId> = self.pins.values().copied().collect();
        for value in values {
            collect_vars_into(tm, value, &mut self.value_vars);
        }
        true
    }

    /// Bottom-up rewrite with caching: children first, then the node is
    /// rebuilt through the term-manager constructors and run through the
    /// rule catalogue.  Iterative, so deep BMC unrollings stay off the call
    /// stack.
    fn rewrite_inner(&mut self, tm: &mut TermManager, root: TermId) -> TermId {
        let mut stack = vec![(root, false)];
        while let Some((t, expanded)) = stack.pop() {
            if self.cache.contains_key(&t) {
                if !expanded {
                    self.stats.cache_hits += 1;
                }
                continue;
            }
            let op = tm.term(t).op.clone();
            if let Op::Var { .. } = op {
                let r = self.pins.get(&t).copied().unwrap_or(t);
                self.cache.insert(t, r);
                continue;
            }
            if op.is_leaf() {
                self.cache.insert(t, t);
                continue;
            }
            if !expanded {
                stack.push((t, true));
                for c in op.children() {
                    stack.push((c, false));
                }
                continue;
            }
            let rebuilt = rebuild_with(tm, t, &op, |id| self.cache[&id]);
            let simplified = self.apply_rules(tm, rebuilt);
            self.cache.insert(t, simplified);
        }
        self.cache[&root]
    }

    /// Runs the rule catalogue on one node to a local fixed point (bounded,
    /// so a cyclic rule pair can never loop).
    fn apply_rules(&mut self, tm: &mut TermManager, mut t: TermId) -> TermId {
        for _ in 0..8 {
            let next = rewrite_node(tm, t);
            if next == t {
                break;
            }
            self.stats.rule_applications += 1;
            t = next;
        }
        t
    }
}

/// Extracts the pin a conjunct defines, if any: `v = t`, a bare asserted
/// boolean variable, or its negation.  For variable-variable equalities the
/// younger (larger-id, typically fresher) variable is pinned to the older
/// one, which keeps BMC frame variables pointing backwards.
fn pin_candidate(tm: &mut TermManager, c: TermId) -> Option<(TermId, TermId)> {
    let is_var = |tm: &TermManager, t: TermId| matches!(tm.term(t).op, Op::Var { .. });
    match tm.term(c).op {
        Op::Var { .. } => {
            let t = tm.tru();
            Some((c, t))
        }
        Op::Not(a) if is_var(tm, a) => {
            let f = tm.fls();
            Some((a, f))
        }
        Op::Eq(a, b) => match (is_var(tm, a), is_var(tm, b)) {
            (true, true) => {
                let (var, val) = if a > b { (a, b) } else { (b, a) };
                Some((var, val))
            }
            (true, false) => Some((a, b)),
            (false, true) => Some((b, a)),
            (false, false) => None,
        },
        _ => None,
    }
}

/// Splits a term into its top-level conjuncts (flattening `And` trees).
fn collect_conjuncts(tm: &TermManager, t: TermId, out: &mut Vec<TermId>) {
    let mut stack = vec![t];
    while let Some(t) = stack.pop() {
        match tm.term(t).op {
            Op::And(a, b) => {
                stack.push(b);
                stack.push(a);
            }
            _ => out.push(t),
        }
    }
}

/// Whether `var` occurs anywhere in `t`.
fn occurs(tm: &TermManager, var: TermId, t: TermId) -> bool {
    let mut stack = vec![t];
    let mut seen: HashSet<TermId> = HashSet::new();
    while let Some(t) = stack.pop() {
        if t == var {
            return true;
        }
        if !seen.insert(t) {
            continue;
        }
        stack.extend(tm.term(t).op.children());
    }
    false
}

/// Collects every variable occurring in `t` into `out` (subgraph-bounded,
/// unlike `TermManager::collect_vars`, which allocates per table size).
fn collect_vars_into(tm: &TermManager, t: TermId, out: &mut HashSet<TermId>) {
    let mut stack = vec![t];
    let mut seen: HashSet<TermId> = HashSet::new();
    while let Some(t) = stack.pop() {
        if !seen.insert(t) {
            continue;
        }
        if matches!(tm.term(t).op, Op::Var { .. }) {
            out.insert(t);
            continue;
        }
        stack.extend(tm.term(t).op.children());
    }
}

/// One pass of the rule catalogue over a single (already constructor-folded)
/// node.  Returns the input when no rule fires.
fn rewrite_node(tm: &mut TermManager, t: TermId) -> TermId {
    let op = tm.term(t).op.clone();
    match op {
        // ---- boolean complement annihilation ------------------------------
        Op::And(a, b) => {
            if complements(tm, a, b) {
                return tm.fls();
            }
            t
        }
        Op::Or(a, b) => {
            if complements(tm, a, b) {
                return tm.tru();
            }
            t
        }
        Op::Xor(a, b) => {
            if complements(tm, a, b) {
                return tm.tru();
            }
            t
        }
        // ---- bit-vector complement annihilation ---------------------------
        Op::BvAnd(a, b) => {
            if bv_complements(tm, a, b) {
                return tm.zero(tm.width(t));
            }
            t
        }
        Op::BvOr(a, b) | Op::BvXor(a, b) => {
            if bv_complements(tm, a, b) {
                return tm.ones(tm.width(t));
            }
            t
        }
        // ---- ite collapsing ----------------------------------------------
        Op::Ite(c, th, el) => rewrite_ite(tm, t, c, th, el),
        // ---- equality normalisation --------------------------------------
        Op::Eq(a, b) => rewrite_eq(tm, t, a, b),
        // ---- comparison collapsing ---------------------------------------
        Op::BvUlt(a, b) => {
            let w = tm.width(a);
            if tm.const_value(b) == Some(0) {
                return tm.fls(); // x <u 0
            }
            if tm.const_value(b) == Some(1) {
                let z = tm.zero(w);
                return tm.eq(a, z); // x <u 1  ⇔  x = 0
            }
            if tm.const_value(a) == Some(0) {
                let z = tm.zero(w);
                return tm.neq(b, z); // 0 <u x  ⇔  x ≠ 0
            }
            if tm.const_value(a) == Some(mask(u64::MAX, w)) {
                return tm.fls(); // ones <u x
            }
            if tm.const_value(b) == Some(mask(u64::MAX, w)) {
                let ones = tm.ones(w);
                return tm.neq(a, ones); // x <u ones  ⇔  x ≠ ones
            }
            t
        }
        Op::BvUle(a, b) => {
            let w = tm.width(a);
            if tm.const_value(a) == Some(0) {
                return tm.tru(); // 0 ≤u x
            }
            if tm.const_value(b) == Some(mask(u64::MAX, w)) {
                return tm.tru(); // x ≤u ones
            }
            if tm.const_value(b) == Some(0) {
                let z = tm.zero(w);
                return tm.eq(a, z); // x ≤u 0  ⇔  x = 0
            }
            if tm.const_value(a) == Some(mask(u64::MAX, w)) {
                let ones = tm.ones(w);
                return tm.eq(b, ones); // ones ≤u x  ⇔  x = ones
            }
            t
        }
        // ---- strength reduction ------------------------------------------
        Op::BvMul(a, b) => {
            let w = tm.width(t);
            let by_const = |tm: &mut TermManager, x: TermId, c: u64| -> Option<TermId> {
                if c.is_power_of_two() {
                    let k = tm.bv_const(c.trailing_zeros().into(), w);
                    return Some(tm.bv_shl(x, k));
                }
                None
            };
            if let Some(c) = tm.const_value(a) {
                if let Some(r) = by_const(tm, b, c) {
                    return r;
                }
            }
            if let Some(c) = tm.const_value(b) {
                if let Some(r) = by_const(tm, a, c) {
                    return r;
                }
            }
            t
        }
        Op::BvUdiv(a, b) => {
            if let Some(c) = tm.const_value(b) {
                if c == 1 {
                    return a;
                }
                if c.is_power_of_two() {
                    let w = tm.width(t);
                    let k = tm.bv_const(c.trailing_zeros().into(), w);
                    return tm.bv_lshr(a, k);
                }
            }
            t
        }
        Op::BvUrem(a, b) => {
            if let Some(c) = tm.const_value(b) {
                let w = tm.width(t);
                if c == 1 {
                    return tm.zero(w);
                }
                if c.is_power_of_two() {
                    let m = tm.bv_const(c - 1, w);
                    return tm.bv_and(a, m);
                }
            }
            t
        }
        // ---- constant shifts become pure wiring --------------------------
        Op::BvAdd(a, b) if a == b => {
            // x + x = x << 1, which the shift rules then lower to wiring.
            let w = tm.width(t);
            let one = tm.one(w);
            tm.bv_shl(a, one)
        }
        Op::BvShl(a, b) => {
            let w = tm.width(t);
            if let Some(s) = tm.const_value(b) {
                if s >= u64::from(w) {
                    return tm.zero(w);
                }
                if s > 0 {
                    let s = u32::try_from(s).expect("shift < width ≤ 64");
                    let kept = tm.bv_extract(a, w - s - 1, 0);
                    let zeros = tm.zero(s);
                    return tm.bv_concat(kept, zeros);
                }
            }
            t
        }
        Op::BvLshr(a, b) => {
            let w = tm.width(t);
            if let Some(s) = tm.const_value(b) {
                if s >= u64::from(w) {
                    return tm.zero(w);
                }
                if s > 0 {
                    let s = u32::try_from(s).expect("shift < width ≤ 64");
                    let kept = tm.bv_extract(a, w - 1, s);
                    return tm.bv_zero_ext(kept, s);
                }
            }
            t
        }
        Op::BvAshr(a, b) => {
            let w = tm.width(t);
            if let Some(s) = tm.const_value(b) {
                if s > 0 {
                    let s = u32::try_from(s.min(u64::from(w) - 1)).expect("clamped < width");
                    let kept = tm.bv_extract(a, w - 1, s);
                    return tm.bv_sign_ext(kept, s);
                }
            }
            t
        }
        // ---- bvsub normalisation -----------------------------------------
        Op::BvSub(a, b) => {
            if let Some(c) = tm.const_value(b) {
                let w = tm.width(t);
                let nc = tm.bv_const(c.wrapping_neg(), w);
                return tm.bv_add(a, nc); // x - c = x + (-c)
            }
            t
        }
        // ---- extract/extension pushing -----------------------------------
        Op::BvExtract { hi, lo, arg } => rewrite_extract(tm, t, hi, lo, arg),
        Op::BvZeroExt { by, arg } => {
            if let Op::BvZeroExt { by: by2, arg: a2 } = tm.term(arg).op {
                return tm.bv_zero_ext(a2, by + by2);
            }
            t
        }
        Op::BvSignExt { by, arg } => {
            if let Op::BvSignExt { by: by2, arg: a2 } = tm.term(arg).op {
                return tm.bv_sign_ext(a2, by + by2);
            }
            t
        }
        Op::BvConcat(a, b) => {
            // Zero high bits are a zero extension (normalises for the eq
            // splitter); adjacent extracts of one source re-fuse.
            if tm.const_value(a) == Some(0) {
                return tm.bv_zero_ext(b, tm.width(a));
            }
            if let (
                Op::BvExtract {
                    hi: h1,
                    lo: l1,
                    arg: x1,
                },
                Op::BvExtract {
                    hi: h2,
                    lo: l2,
                    arg: x2,
                },
            ) = (tm.term(a).op.clone(), tm.term(b).op.clone())
            {
                if x1 == x2 && l1 == h2 + 1 {
                    return tm.bv_extract(x1, h1, l2);
                }
            }
            t
        }
        _ => t,
    }
}

/// Whether `a` and `b` are boolean complements of each other.
fn complements(tm: &TermManager, a: TermId, b: TermId) -> bool {
    matches!(tm.term(a).op, Op::Not(x) if x == b) || matches!(tm.term(b).op, Op::Not(x) if x == a)
}

/// Whether `a` and `b` are bit-wise complements of each other.
fn bv_complements(tm: &TermManager, a: TermId, b: TermId) -> bool {
    matches!(tm.term(a).op, Op::BvNot(x) if x == b)
        || matches!(tm.term(b).op, Op::BvNot(x) if x == a)
}

fn rewrite_ite(tm: &mut TermManager, t: TermId, c: TermId, th: TermId, el: TermId) -> TermId {
    // Negated condition: swap the branches.
    if let Op::Not(inner) = tm.term(c).op {
        return tm.ite(inner, el, th);
    }
    // Nested ite under the same condition collapses.
    if let Op::Ite(c2, a, _) = tm.term(th).op {
        if c2 == c {
            return tm.ite(c, a, el);
        }
    }
    if let Op::Ite(c2, _, b) = tm.term(el).op {
        if c2 == c {
            return tm.ite(c, th, b);
        }
    }
    // Boolean branches lower to connectives (cheaper gates, more folding).
    if tm.sort(th).is_bool() {
        return match (tm.const_value(th), tm.const_value(el)) {
            (Some(1), Some(0)) => c,
            (Some(0), Some(1)) => tm.not(c),
            (Some(1), None) => tm.or(c, el),
            (Some(0), None) => {
                let nc = tm.not(c);
                tm.and(nc, el)
            }
            (None, Some(1)) => {
                let nc = tm.not(c);
                tm.or(nc, th)
            }
            (None, Some(0)) => tm.and(c, th),
            _ => t,
        };
    }
    t
}

fn rewrite_eq(tm: &mut TermManager, t: TermId, a: TermId, b: TermId) -> TermId {
    // Boolean equality against a constant is the operand (or its negation).
    if tm.sort(a).is_bool() {
        if let Some(v) = tm.const_value(a) {
            return if v == 1 { b } else { tm.not(b) };
        }
        if let Some(v) = tm.const_value(b) {
            return if v == 1 { a } else { tm.not(a) };
        }
        return t;
    }
    let w = tm.width(a);
    // Orient: `x` symbolic, `c` the constant side (if any).
    let (x, c) = match (tm.const_value(a), tm.const_value(b)) {
        (Some(_), Some(_)) => return t, // folded at construction
        (Some(c), None) => (b, Some(c)),
        (None, Some(c)) => (a, Some(c)),
        (None, None) => (a, None),
    };
    if let Some(c) = c {
        match tm.term(x).op.clone() {
            // Isolate the variable side of invertible operations.
            Op::BvAdd(p, q) => {
                if let Some(k) = tm.const_value(p) {
                    let r = tm.bv_const(c.wrapping_sub(k), w);
                    return tm.eq(q, r);
                }
                if let Some(k) = tm.const_value(q) {
                    let r = tm.bv_const(c.wrapping_sub(k), w);
                    return tm.eq(p, r);
                }
            }
            Op::BvXor(p, q) => {
                if let Some(k) = tm.const_value(p) {
                    let r = tm.bv_const(c ^ k, w);
                    return tm.eq(q, r);
                }
                if let Some(k) = tm.const_value(q) {
                    let r = tm.bv_const(c ^ k, w);
                    return tm.eq(p, r);
                }
            }
            Op::BvNot(p) => {
                let r = tm.bv_const(!c, w);
                return tm.eq(p, r);
            }
            Op::BvNeg(p) => {
                let r = tm.bv_const(c.wrapping_neg(), w);
                return tm.eq(p, r);
            }
            // Split words against the constant.
            Op::BvConcat(hi, lo) => {
                let wl = tm.width(lo);
                let chi = tm.bv_const(c >> wl, tm.width(hi));
                let clo = tm.bv_const(c, wl);
                let e1 = tm.eq(hi, chi);
                let e2 = tm.eq(lo, clo);
                return tm.and(e1, e2);
            }
            Op::BvZeroExt { arg, .. } => {
                let aw = tm.width(arg);
                if mask(c, aw) == c {
                    let cl = tm.bv_const(c, aw);
                    return tm.eq(arg, cl);
                }
                return tm.fls(); // high bits of a zero extension are zero
            }
            Op::BvSignExt { arg, .. } => {
                let aw = tm.width(arg);
                let low = mask(c, aw);
                if mask(crate::sort::sign_extend(low, aw), w) == c {
                    let cl = tm.bv_const(low, aw);
                    return tm.eq(arg, cl);
                }
                return tm.fls();
            }
            _ => {}
        }
        // Equality with a constant decided by an ite over shared branches.
        if let Op::Ite(cond, p, q) = tm.term(x).op {
            let pe = tm.const_value(p);
            let qe = tm.const_value(q);
            if pe.is_some() && qe.is_some() {
                let tv = tm.bool_const(pe == Some(c));
                let ev = tm.bool_const(qe == Some(c));
                return tm.ite(cond, tv, ev);
            }
        }
        return t;
    }
    // Structural: a - b = 0 ⇔ a = b, a ^ b = 0 ⇔ a = b (the constant side
    // was handled above, so reaching here means neither side is constant);
    // same-width concatenations compare component-wise.
    match (tm.term(a).op.clone(), tm.term(b).op.clone()) {
        (Op::BvConcat(h1, l1), Op::BvConcat(h2, l2))
            if tm.width(h1) == tm.width(h2) && tm.width(l1) == tm.width(l2) =>
        {
            let e1 = tm.eq(h1, h2);
            let e2 = tm.eq(l1, l2);
            tm.and(e1, e2)
        }
        (Op::Ite(cond, p, q), _) if p == b || q == b => {
            let pe = tm.eq(p, b);
            let qe = tm.eq(q, b);
            tm.ite(cond, pe, qe)
        }
        (_, Op::Ite(cond, p, q)) if p == a || q == a => {
            let pe = tm.eq(p, a);
            let qe = tm.eq(q, a);
            tm.ite(cond, pe, qe)
        }
        _ => t,
    }
}

fn rewrite_extract(tm: &mut TermManager, t: TermId, hi: u32, lo: u32, arg: TermId) -> TermId {
    match tm.term(arg).op.clone() {
        Op::BvExtract {
            lo: l2, arg: a2, ..
        } => tm.bv_extract(a2, l2 + hi, l2 + lo),
        Op::BvConcat(a, b) => {
            let wb = tm.width(b);
            if hi < wb {
                tm.bv_extract(b, hi, lo)
            } else if lo >= wb {
                tm.bv_extract(a, hi - wb, lo - wb)
            } else {
                let high = tm.bv_extract(a, hi - wb, 0);
                let low = tm.bv_extract(b, wb - 1, lo);
                tm.bv_concat(high, low)
            }
        }
        Op::BvZeroExt { arg: a2, .. } => {
            let aw = tm.width(a2);
            if hi < aw {
                tm.bv_extract(a2, hi, lo)
            } else if lo >= aw {
                tm.zero(hi - lo + 1)
            } else {
                let low = tm.bv_extract(a2, aw - 1, lo);
                tm.bv_zero_ext(low, hi - aw + 1)
            }
        }
        Op::BvSignExt { arg: a2, .. } => {
            let aw = tm.width(a2);
            if hi < aw {
                tm.bv_extract(a2, hi, lo)
            } else {
                t
            }
        }
        _ => t,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concrete::eval;
    use crate::sort::Sort;

    fn rw(tm: &mut TermManager, t: TermId) -> TermId {
        Rewriter::new().rewrite(tm, t)
    }

    #[test]
    fn complement_annihilation() {
        let mut tm = TermManager::new();
        let p = tm.var("p", Sort::Bool);
        let np = tm.not(p);
        let c = tm.and(p, np);
        assert_eq!(rw(&mut tm, c), tm.fls());
        let d = tm.or(p, np);
        assert_eq!(rw(&mut tm, d), tm.tru());
        let x = tm.var("x", Sort::BitVec(8));
        let nx = tm.bv_not(x);
        let a = tm.bv_and(x, nx);
        let ra = rw(&mut tm, a);
        assert_eq!(tm.const_value(ra), Some(0));
        let o = tm.bv_or(x, nx);
        let ro = rw(&mut tm, o);
        assert_eq!(tm.const_value(ro), Some(0xff));
    }

    #[test]
    fn ite_collapsing() {
        let mut tm = TermManager::new();
        let c = tm.var("c", Sort::Bool);
        let p = tm.var("p", Sort::Bool);
        let t = tm.tru();
        let f = tm.fls();
        let i1 = tm.ite(c, t, f);
        assert_eq!(rw(&mut tm, i1), c);
        let i2 = tm.ite(c, f, t);
        assert_eq!(rw(&mut tm, i2), tm.not(c));
        let i3 = tm.ite(c, p, f);
        assert_eq!(rw(&mut tm, i3), tm.and(c, p));
        // negated condition swaps branches
        let x = tm.var("x", Sort::BitVec(4));
        let y = tm.var("y", Sort::BitVec(4));
        let nc = tm.not(c);
        let i4 = tm.ite(nc, x, y);
        assert_eq!(rw(&mut tm, i4), tm.ite(c, y, x));
        // nested same-condition ite collapses
        let inner = tm.ite(c, x, y);
        let outer = tm.ite(c, inner, y);
        assert_eq!(rw(&mut tm, outer), tm.ite(c, x, y));
    }

    #[test]
    fn equality_normalisation() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(8));
        let c3 = tm.bv_const(3, 8);
        let c10 = tm.bv_const(10, 8);
        let sum = tm.bv_add(x, c3);
        let e = tm.eq(sum, c10);
        let c7 = tm.bv_const(7, 8);
        assert_eq!(rw(&mut tm, e), tm.eq(x, c7));
        // a - b = 0 via bvsub normalisation and xor
        let y = tm.var("y", Sort::BitVec(8));
        let z = tm.zero(8);
        let x1 = tm.bv_xor(x, y);
        let e2 = tm.eq(x1, z);
        // x ^ y = 0 is not directly rewritten (no constant operand inside),
        // but boolean eq against constants is:
        let _ = e2;
        let p = tm.var("p", Sort::Bool);
        let tr = tm.tru();
        let e3 = tm.eq(p, tr);
        assert_eq!(rw(&mut tm, e3), p);
    }

    #[test]
    fn concat_and_extension_equalities_split() {
        let mut tm = TermManager::new();
        let a = tm.var("a", Sort::BitVec(4));
        let b = tm.var("b", Sort::BitVec(4));
        let cat = tm.bv_concat(a, b);
        let c = tm.bv_const(0x5a, 8);
        let eq1 = tm.eq(cat, c);
        let e = rw(&mut tm, eq1);
        let c5 = tm.bv_const(5, 4);
        let ca = tm.bv_const(0xa, 4);
        let want = {
            let e1 = tm.eq(a, c5);
            let e2 = tm.eq(b, ca);
            tm.and(e1, e2)
        };
        assert_eq!(e, want);
        // zero extension against an unreachable constant is false
        let zx = tm.bv_zero_ext(a, 4);
        let big = tm.bv_const(0x80, 8);
        let eq2 = tm.eq(zx, big);
        assert_eq!(rw(&mut tm, eq2), tm.fls());
        let small = tm.bv_const(0x07, 8);
        let c7 = tm.bv_const(7, 4);
        let eq3 = tm.eq(zx, small);
        let want3 = tm.eq(a, c7);
        assert_eq!(rw(&mut tm, eq3), want3);
    }

    #[test]
    fn comparison_collapsing() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(8));
        let z = tm.zero(8);
        let one = tm.one(8);
        let ones = tm.ones(8);
        let t1 = tm.bv_ult(x, z);
        assert_eq!(rw(&mut tm, t1), tm.fls());
        let t2 = tm.bv_ule(z, x);
        assert_eq!(rw(&mut tm, t2), tm.tru());
        let t3 = tm.bv_ule(x, ones);
        assert_eq!(rw(&mut tm, t3), tm.tru());
        let t4 = tm.bv_ult(x, one);
        let x_is_0 = tm.eq(x, z);
        assert_eq!(rw(&mut tm, t4), x_is_0);
        let t5 = tm.bv_ule(x, z);
        assert_eq!(rw(&mut tm, t5), x_is_0);
        let t6 = tm.bv_ult(z, x);
        let nz = rw(&mut tm, t6);
        assert_eq!(nz, tm.neq(x, z));
    }

    #[test]
    fn strength_reductions_agree_with_semantics() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(8));
        let c8 = tm.bv_const(8, 8);
        let cases = [
            tm.bv_mul(x, c8),
            tm.bv_udiv(x, c8),
            tm.bv_urem(x, c8),
            tm.bv_shl(x, c8),
            tm.bv_lshr(x, c8),
            tm.bv_ashr(x, c8),
            tm.bv_add(x, x),
        ];
        for t in cases {
            let r = rw(&mut tm, t);
            for v in [0u64, 1, 7, 8, 0x80, 0xff, 0x5a] {
                let env: Assignment = [(x, v)].into_iter().collect();
                assert_eq!(
                    eval(&tm, t, &env),
                    eval(&tm, r, &env),
                    "{} vs {}",
                    tm.display(t),
                    tm.display(r)
                );
            }
        }
        // mul by 8 must not leave a multiplier behind
        let mul = tm.bv_mul(x, c8);
        let m = rw(&mut tm, mul);
        assert!(!tm.display(m).contains("bvmul"), "{}", tm.display(m));
    }

    #[test]
    fn extract_pushing() {
        let mut tm = TermManager::new();
        let a = tm.var("a", Sort::BitVec(8));
        let b = tm.var("b", Sort::BitVec(8));
        let cat = tm.bv_concat(a, b);
        // fully inside the low part
        let e1 = tm.bv_extract(cat, 7, 2);
        let w1 = tm.bv_extract(b, 7, 2);
        assert_eq!(rw(&mut tm, e1), w1);
        // fully inside the high part
        let e2 = tm.bv_extract(cat, 15, 10);
        let w2 = tm.bv_extract(a, 7, 2);
        assert_eq!(rw(&mut tm, e2), w2);
        // straddling: concat of the two pieces
        let e3 = tm.bv_extract(cat, 11, 4);
        let r = rw(&mut tm, e3);
        let want = {
            let hi = tm.bv_extract(a, 3, 0);
            let lo = tm.bv_extract(b, 7, 4);
            tm.bv_concat(hi, lo)
        };
        assert_eq!(r, want);
        // extract of extract composes
        let inner = tm.bv_extract(a, 6, 1);
        let e4 = tm.bv_extract(inner, 4, 2);
        let w4 = tm.bv_extract(a, 5, 3);
        assert_eq!(rw(&mut tm, e4), w4);
        // extract over zero extension
        let zx = tm.bv_zero_ext(a, 8);
        let e5 = tm.bv_extract(zx, 15, 8);
        let r5 = rw(&mut tm, e5);
        assert_eq!(tm.const_value(r5), Some(0));
        let e6 = tm.bv_extract(zx, 5, 2);
        let w6 = tm.bv_extract(a, 5, 2);
        assert_eq!(rw(&mut tm, e6), w6);
    }

    #[test]
    fn pins_eliminate_definitions_and_complete_models() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(8));
        let y = tm.var("y", Sort::BitVec(8));
        let c5 = tm.bv_const(5, 8);
        let def_x = tm.eq(x, c5); // x = 5
        let sum = tm.bv_add(x, y);
        let def_y = tm.eq(y, sum); // rejected: y occurs in its value
        let use_both = {
            let s = tm.bv_add(x, y);
            let c9 = tm.bv_const(9, 8);
            tm.eq(s, c9)
        };
        let mut rw = Rewriter::new();
        let out = rw.assert_simplify(&mut tm, &[def_x, def_y, use_both], &|_| false);
        // x = 5 is eliminated; y = x + y survives (self-referential);
        // x + y = 9 becomes y = 4 and pins y too, leaving only the
        // self-referential equality (rewritten under both pins).
        assert_eq!(rw.num_pins(), 2);
        assert_eq!(out.len(), 1);
        let stats = rw.stats();
        assert_eq!(stats.pins, 2);
        assert!(stats.assertions_dropped >= 2);
        // model completion restores both pinned variables
        let mut values = Assignment::new();
        rw.complete_model(&tm, &mut values);
        assert_eq!(values.get(&x), Some(&5));
        assert_eq!(values.get(&y), Some(&4));
    }

    #[test]
    fn pins_of_encoded_variables_keep_their_equality() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(8));
        let c5 = tm.bv_const(5, 8);
        let def = tm.eq(x, c5);
        let mut rw = Rewriter::new();
        let out = rw.assert_simplify(&mut tm, &[def], &|v| v == x);
        assert_eq!(out, vec![def], "encoded variables keep their definition");
        assert_eq!(rw.num_pins(), 1);
        // future occurrences still substitute
        let y = tm.var("y", Sort::BitVec(8));
        let s = tm.bv_add(x, y);
        let r = rw.rewrite(&mut tm, s);
        assert_eq!(r, tm.bv_add(y, c5));
    }

    #[test]
    fn chained_pins_normalise_transitively() {
        let mut tm = TermManager::new();
        let a = tm.var("a", Sort::BitVec(8));
        let b = tm.var("b", Sort::BitVec(8));
        let c = tm.var("c", Sort::BitVec(8));
        let one = tm.one(8);
        // c = b + 1 first (value mentions b), then b = a, then a = 1.
        let bp1 = tm.bv_add(b, one);
        let d1 = tm.eq(c, bp1);
        let d2 = tm.eq(b, a);
        let d3 = tm.eq(a, one);
        let mut rw = Rewriter::new();
        let out = rw.assert_simplify(&mut tm, &[d1, d2, d3], &|_| false);
        assert!(out.is_empty(), "all three are definitions: {out:?}");
        let mut values = Assignment::new();
        rw.complete_model(&tm, &mut values);
        assert_eq!(values.get(&a), Some(&1));
        assert_eq!(values.get(&b), Some(&1));
        assert_eq!(values.get(&c), Some(&2));
    }

    #[test]
    fn boolean_pins_from_bare_conjuncts() {
        let mut tm = TermManager::new();
        let p = tm.var("p", Sort::Bool);
        let q = tm.var("q", Sort::Bool);
        let nq = tm.not(q);
        let both = tm.and(p, nq);
        let mut rw = Rewriter::new();
        let out = rw.assert_simplify(&mut tm, &[both], &|_| false);
        assert!(out.is_empty());
        let mut values = Assignment::new();
        rw.complete_model(&tm, &mut values);
        assert_eq!(values.get(&p), Some(&1));
        assert_eq!(values.get(&q), Some(&0));
    }

    #[test]
    fn contradictory_definitions_surface_as_false() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(4));
        let c1 = tm.bv_const(1, 4);
        let c2 = tm.bv_const(2, 4);
        let d1 = tm.eq(x, c1);
        let d2 = tm.eq(x, c2);
        let mut rw = Rewriter::new();
        let out = rw.assert_simplify(&mut tm, &[d1, d2], &|_| false);
        assert_eq!(out, vec![tm.fls()]);
    }

    #[test]
    fn rewriting_preserves_semantics_on_random_terms() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x5ee);
        for round in 0..40 {
            let mut tm = TermManager::new();
            let w = 8;
            let x = tm.var("x", Sort::BitVec(w));
            let y = tm.var("y", Sort::BitVec(w));
            let mut exprs = vec![x, y, tm.bv_const(rng.gen_range(0..256), w)];
            for _ in 0..10 {
                let a = exprs[rng.gen_range(0..exprs.len())];
                let b = exprs[rng.gen_range(0..exprs.len())];
                let e = match rng.gen_range(0..14) {
                    0 => tm.bv_add(a, b),
                    1 => tm.bv_sub(a, b),
                    2 => tm.bv_and(a, b),
                    3 => tm.bv_or(a, b),
                    4 => tm.bv_xor(a, b),
                    5 => tm.bv_mul(a, b),
                    6 => tm.bv_shl(a, b),
                    7 => tm.bv_lshr(a, b),
                    8 => tm.bv_ashr(a, b),
                    9 => tm.bv_not(a),
                    10 => {
                        let c = tm.bv_ult(a, b);
                        tm.ite(c, a, b)
                    }
                    11 => {
                        let lo = tm.bv_extract(a, 3, 0);
                        let hi = tm.bv_extract(b, 7, 4);
                        tm.bv_concat(hi, lo)
                    }
                    12 => {
                        let lo = tm.bv_extract(a, 3, 0);
                        tm.bv_zero_ext(lo, 4)
                    }
                    _ => tm.bv_urem(a, b),
                };
                exprs.push(e);
            }
            let a = exprs[rng.gen_range(0..exprs.len())];
            let b = exprs[rng.gen_range(0..exprs.len())];
            let goal = match rng.gen_range(0..4) {
                0 => tm.eq(a, b),
                1 => tm.bv_ult(a, b),
                2 => tm.bv_ule(a, b),
                _ => {
                    let e = tm.eq(a, b);
                    tm.not(e)
                }
            };
            let r = Rewriter::new().rewrite(&mut tm, goal);
            for _ in 0..16 {
                let env: Assignment =
                    [(x, rng.gen_range(0..256u64)), (y, rng.gen_range(0..256u64))]
                        .into_iter()
                        .collect();
                assert_eq!(
                    eval(&tm, goal, &env),
                    eval(&tm, r, &env),
                    "round {round}: {} vs {}",
                    tm.display(goal),
                    tm.display(r)
                );
            }
        }
    }

    #[test]
    fn encode_stats_display_is_one_line() {
        let s = EncodeStats::default();
        let line = format!("{s}");
        assert!(line.contains("cache"));
        assert!(line.contains("coi-dropped"));
        assert!(!line.contains('\n'));
    }
}
