//! Bit-vector SMT substrate for the SEPE-SQED reproduction.
//!
//! The paper relies on an off-the-shelf SMT solver (through Pono / the
//! authors' synthesizer) for two kinds of quantifier-free bit-vector
//! queries: CEGIS synthesis/verification queries and bounded-model-checking
//! queries.  This crate provides the same capability from scratch:
//!
//! * [`TermManager`] — a hash-consed bit-vector/boolean term graph with a
//!   light rewriting layer (constant folding, neutral elements, …),
//! * [`Rewriter`] — word-level simplification *ahead of*
//!   bit-blasting: a rule catalogue (ite/comparison collapsing,
//!   extract/concat pushing, strength reduction) plus equality-driven
//!   constant/variable propagation across an assertion set, on by default in
//!   both solver front-ends (`set_simplify(false)` turns it off),
//! * [`eval`](concrete::eval) — a concrete evaluator used for counterexample
//!   handling and for differential testing of the bit-blaster,
//! * [`BitBlaster`](bitblast::BitBlaster) — gate-level lowering of term
//!   graphs into a structurally hashed and-inverter graph ([`Aig`]): node
//!   creation runs constant propagation and a one-/two-level rewrite
//!   catalogue, and the strash table shares identical logic across frames
//!   and datapaths before any clause exists,
//! * [`AigCnf`] — the polarity-aware Tseitin pass from the graph to CNF:
//!   one definition per shared node, only the implications each polarity
//!   needs, and an append-only node→variable mapping so incremental SAT
//!   state survives later emissions,
//! * [`sat::SatSolver`] — a CDCL SAT solver (two-watched literals,
//!   first-UIP learning, VSIDS, phase saving, Luby restarts, and MiniSat-style
//!   incremental solving under assumptions with unsat cores),
//! * [`Solver`] — the scratch SMT interface: assert, check, model, where
//!   every check re-encodes the assertion set from zero,
//! * [`IncrementalSolver`] — the incremental SMT interface: one persistent
//!   bit-blaster and SAT solver, permanent
//!   [`assert_term`](incremental::IncrementalSolver::assert_term) plus
//!   retractable
//!   [`check_assuming`](incremental::IncrementalSolver::check_assuming),
//!   with term-encoding caching and learnt-clause retention across checks.
//!
//! The workloads this crate serves are dominated by *sequences of closely
//! related queries*: BMC re-checks the same unrolling prefix at every depth,
//! and CEGIS re-solves the same synthesis constraints plus one new
//! counterexample per iteration.  The incremental pipeline exists for
//! exactly that shape — each new query only pays for what it adds, and the
//! SAT solver's learnt clauses, variable activities and saved phases carry
//! over instead of restarting cold.  So that exactly these long-lived
//! solvers do not degrade, the SAT core periodically reduces its learnt
//! database (geometric conflict schedule plus a live-count safety cap,
//! coldest clauses first by LBD/activity) and *compacts* the clause arena —
//! watcher lists and reason indices are remapped so deleted clauses return
//! their memory.  [`SolverReuseStats`] quantifies the reuse (encodings
//! served from cache, learnt clauses retained) and the reduction
//! ([`ReduceStats`] fields: passes, deletions, live high-water mark).
//!
//! # Example: scratch solving
//!
//! ```
//! use sepe_smt::{TermManager, Sort, Solver, SatResult};
//!
//! let mut tm = TermManager::new();
//! let x = tm.var("x", Sort::BitVec(8));
//! let y = tm.var("y", Sort::BitVec(8));
//! let sum = tm.bv_add(x, y);
//! let c42 = tm.bv_const(42, 8);
//! let goal = tm.eq(sum, c42);
//!
//! let mut solver = Solver::new();
//! solver.assert_term(&tm, goal);
//! match solver.check(&mut tm) {
//!     SatResult::Sat => {
//!         let m = solver.model(&tm);
//!         assert_eq!((m.value(x) + m.value(y)) & 0xff, 42);
//!     }
//!     _ => unreachable!("the constraint is satisfiable"),
//! }
//! ```
//!
//! # Example: incremental solving with assumptions
//!
//! ```
//! use sepe_smt::{IncrementalSolver, TermManager, Sort, SatResult};
//!
//! let mut tm = TermManager::new();
//! let x = tm.var("x", Sort::BitVec(8));
//! let ten = tm.bv_const(10, 8);
//! let below = tm.bv_ult(x, ten);
//!
//! let mut solver = IncrementalSolver::new();
//! solver.assert_term(&mut tm, below); // permanent: x < 10
//!
//! // Retractable assumptions — each check reuses all prior encoding work.
//! let three = tm.bv_const(3, 8);
//! let twelve = tm.bv_const(12, 8);
//! let is3 = tm.eq(x, three);
//! let is12 = tm.eq(x, twelve);
//! assert_eq!(solver.check_assuming(&mut tm, &[is3]), SatResult::Sat);
//! assert_eq!(solver.check_assuming(&mut tm, &[is12]), SatResult::Unsat);
//! assert_eq!(solver.unsat_core(), &[is12]); // and x < 10 still holds:
//! assert_eq!(solver.check_assuming(&mut tm, &[is3]), SatResult::Sat);
//! assert!(solver.stats().encode.total_reuse() > 0);
//! ```

pub mod aig;
pub mod bitblast;
pub mod cnf;
pub mod concrete;
pub mod incremental;
pub mod rewrite;
pub mod sat;
pub mod solver;
pub mod sort;
pub mod stable;
pub mod subst;
pub mod term;

pub use aig::{Aig, AigCnf, AigLit, AigNode, AigStats, GateKind};
pub use cnf::{Clause, Cnf, Lit, Var};
pub use incremental::{one_hot_assumptions, IncrementalSolver, SolverReuseStats};
pub use rewrite::{EncodeStats, RewriteStats, Rewriter};
pub use sat::{CancelFlag, FaultHooks, ReduceStats, SatSolver, SolveOutcome, StopReason};
pub use solver::{Model, SatResult, Solver};
pub use sort::Sort;
pub use stable::{stable_hash, stable_hash_seeded, StableHasher};
pub use term::{Op, Term, TermId, TermManager};
