//! Bit-vector SMT substrate for the SEPE-SQED reproduction.
//!
//! The paper relies on an off-the-shelf SMT solver (through Pono / the
//! authors' synthesizer) for two kinds of quantifier-free bit-vector
//! queries: CEGIS synthesis/verification queries and bounded-model-checking
//! queries.  This crate provides the same capability from scratch:
//!
//! * [`TermManager`] — a hash-consed bit-vector/boolean term graph with a
//!   light rewriting layer (constant folding, neutral elements, …),
//! * [`eval`](concrete::eval) — a concrete evaluator used for counterexample
//!   handling and for differential testing of the bit-blaster,
//! * [`BitBlaster`](bitblast::BitBlaster) — Tseitin conversion of term graphs
//!   to CNF,
//! * [`SatSolver`](sat::SatSolver) — a CDCL SAT solver (two-watched literals,
//!   first-UIP learning, VSIDS, phase saving, Luby restarts),
//! * [`Solver`] — the user-facing SMT interface combining the above.
//!
//! # Example
//!
//! ```
//! use sepe_smt::{TermManager, Sort, Solver, SatResult};
//!
//! let mut tm = TermManager::new();
//! let x = tm.var("x", Sort::BitVec(8));
//! let y = tm.var("y", Sort::BitVec(8));
//! let sum = tm.bv_add(x, y);
//! let c42 = tm.bv_const(42, 8);
//! let goal = tm.eq(sum, c42);
//!
//! let mut solver = Solver::new();
//! solver.assert_term(&tm, goal);
//! match solver.check(&tm) {
//!     SatResult::Sat => {
//!         let m = solver.model(&tm);
//!         assert_eq!((m.value(x) + m.value(y)) & 0xff, 42);
//!     }
//!     _ => unreachable!("the constraint is satisfiable"),
//! }
//! ```

pub mod bitblast;
pub mod cnf;
pub mod concrete;
pub mod sat;
pub mod solver;
pub mod sort;
pub mod subst;
pub mod term;

pub use cnf::{Clause, Cnf, Lit, Var};
pub use sat::{SatSolver, SolveOutcome};
pub use solver::{Model, SatResult, Solver};
pub use sort::Sort;
pub use term::{Op, Term, TermId, TermManager};
