//! Concrete evaluation of term graphs.
//!
//! The evaluator is the reference semantics for the bit-blaster: property
//! tests assert that for random terms and random variable assignments, the
//! SAT model of the bit-blasted formula agrees with [`eval`].  It is also the
//! workhorse of the CEGIS loop, which repeatedly evaluates candidate programs
//! on accumulated counterexample inputs.

use std::collections::HashMap;

use crate::sort::{mask, sign_extend};
use crate::term::{Op, TermId, TermManager};

/// A variable assignment: values for (a subset of) the variables of a term.
///
/// Boolean variables use 0/1.  Missing variables default to 0, which keeps
/// witness handling total.
pub type Assignment = HashMap<TermId, u64>;

/// Evaluates `root` under `env`.
///
/// Boolean results are 0/1; bit-vector results are masked to their width.
///
/// # Panics
///
/// Panics if the term graph is malformed (impossible for terms produced by
/// [`TermManager`]).
pub fn eval(tm: &TermManager, root: TermId, env: &Assignment) -> u64 {
    let mut cache: HashMap<TermId, u64> = HashMap::new();
    eval_cached(tm, root, env, &mut cache)
}

/// Evaluates several roots sharing one cache.
pub fn eval_many(tm: &TermManager, roots: &[TermId], env: &Assignment) -> Vec<u64> {
    let mut cache: HashMap<TermId, u64> = HashMap::new();
    roots
        .iter()
        .map(|&r| eval_cached(tm, r, env, &mut cache))
        .collect()
}

fn eval_cached(
    tm: &TermManager,
    root: TermId,
    env: &Assignment,
    cache: &mut HashMap<TermId, u64>,
) -> u64 {
    // Explicit work-list to avoid recursion depth limits on deep terms
    // (BMC unrollings can nest thousands of ites).
    let mut stack = vec![(root, false)];
    while let Some((t, expanded)) = stack.pop() {
        if cache.contains_key(&t) {
            continue;
        }
        if !expanded {
            stack.push((t, true));
            for c in tm.term(t).op.children() {
                if !cache.contains_key(&c) {
                    stack.push((c, false));
                }
            }
            continue;
        }
        let v = eval_node(tm, t, env, cache);
        cache.insert(t, v);
    }
    cache[&root]
}

fn eval_node(tm: &TermManager, t: TermId, env: &Assignment, cache: &HashMap<TermId, u64>) -> u64 {
    let term = tm.term(t);
    let width = term.sort.width();
    let get = |id: TermId| -> u64 { cache[&id] };
    let out = match &term.op {
        Op::BoolConst(b) => u64::from(*b),
        Op::BvConst { value, .. } => *value,
        Op::Var { .. } => env.get(&t).copied().unwrap_or(0),
        Op::Not(a) => u64::from(get(*a) == 0),
        Op::And(a, b) => get(*a) & get(*b),
        Op::Or(a, b) => get(*a) | get(*b),
        Op::Xor(a, b) => get(*a) ^ get(*b),
        Op::Implies(a, b) => u64::from(get(*a) == 0 || get(*b) != 0),
        Op::Ite(c, a, b) => {
            if get(*c) != 0 {
                get(*a)
            } else {
                get(*b)
            }
        }
        Op::Eq(a, b) => u64::from(get(*a) == get(*b)),
        Op::BvNot(a) => !get(*a),
        Op::BvNeg(a) => get(*a).wrapping_neg(),
        Op::BvAnd(a, b) => get(*a) & get(*b),
        Op::BvOr(a, b) => get(*a) | get(*b),
        Op::BvXor(a, b) => get(*a) ^ get(*b),
        Op::BvAdd(a, b) => get(*a).wrapping_add(get(*b)),
        Op::BvSub(a, b) => get(*a).wrapping_sub(get(*b)),
        Op::BvMul(a, b) => get(*a).wrapping_mul(get(*b)),
        Op::BvUdiv(a, b) => get(*a).checked_div(get(*b)).unwrap_or(u64::MAX),
        Op::BvUrem(a, b) => {
            let d = get(*b);
            if d == 0 {
                get(*a)
            } else {
                get(*a) % d
            }
        }
        Op::BvShl(a, b) => {
            let w = tm.width(*a);
            let s = get(*b);
            if s >= u64::from(w) {
                0
            } else {
                get(*a) << s
            }
        }
        Op::BvLshr(a, b) => {
            let w = tm.width(*a);
            let s = get(*b);
            if s >= u64::from(w) {
                0
            } else {
                mask(get(*a), w) >> s
            }
        }
        Op::BvAshr(a, b) => {
            let w = tm.width(*a);
            let s = get(*b).min(63);
            let sx = sign_extend(get(*a), w) as i64;
            (sx >> s) as u64
        }
        Op::BvUlt(a, b) => {
            let w = tm.width(*a);
            u64::from(mask(get(*a), w) < mask(get(*b), w))
        }
        Op::BvUle(a, b) => {
            let w = tm.width(*a);
            u64::from(mask(get(*a), w) <= mask(get(*b), w))
        }
        Op::BvSlt(a, b) => {
            let w = tm.width(*a);
            u64::from((sign_extend(get(*a), w) as i64) < (sign_extend(get(*b), w) as i64))
        }
        Op::BvSle(a, b) => {
            let w = tm.width(*a);
            u64::from((sign_extend(get(*a), w) as i64) <= (sign_extend(get(*b), w) as i64))
        }
        Op::BvConcat(a, b) => {
            let wl = tm.width(*b);
            (mask(get(*a), tm.width(*a)) << wl) | mask(get(*b), wl)
        }
        Op::BvExtract { hi: _, lo, arg } => {
            let w = tm.width(*arg);
            mask(get(*arg), w) >> lo
        }
        Op::BvZeroExt { arg, .. } => mask(get(*arg), tm.width(*arg)),
        Op::BvSignExt { arg, .. } => sign_extend(get(*arg), tm.width(*arg)),
    };
    match width {
        Some(w) => mask(out, w),
        None => u64::from(out != 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort::Sort;

    fn env(pairs: &[(TermId, u64)]) -> Assignment {
        pairs.iter().copied().collect()
    }

    #[test]
    fn evaluates_arithmetic() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(8));
        let y = tm.var("y", Sort::BitVec(8));
        let e = tm.bv_add(x, y);
        let e = tm.bv_mul(e, x);
        assert_eq!(eval(&tm, e, &env(&[(x, 3), (y, 4)])), 21);
        // wrap-around
        assert_eq!(eval(&tm, e, &env(&[(x, 200), (y, 100)])), (44 * 200) % 256);
    }

    #[test]
    fn evaluates_comparisons_signed_and_unsigned() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(8));
        let y = tm.var("y", Sort::BitVec(8));
        let sl = tm.bv_slt(x, y);
        let ul = tm.bv_ult(x, y);
        let a = env(&[(x, 0x80), (y, 0x01)]); // -128 < 1 signed, 128 > 1 unsigned
        assert_eq!(eval(&tm, sl, &a), 1);
        assert_eq!(eval(&tm, ul, &a), 0);
    }

    #[test]
    fn evaluates_shifts_and_extensions() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(8));
        let s = tm.var("s", Sort::BitVec(8));
        let ashr = tm.bv_ashr(x, s);
        assert_eq!(eval(&tm, ashr, &env(&[(x, 0x80), (s, 4)])), 0xf8);
        let sext = tm.bv_sign_ext(x, 8);
        assert_eq!(eval(&tm, sext, &env(&[(x, 0x80)])), 0xff80);
        let zext = tm.bv_zero_ext(x, 8);
        assert_eq!(eval(&tm, zext, &env(&[(x, 0x80)])), 0x0080);
    }

    #[test]
    fn missing_variables_default_to_zero() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(8));
        let one = tm.one(8);
        let e = tm.bv_add(x, one);
        assert_eq!(eval(&tm, e, &Assignment::new()), 1);
    }

    #[test]
    fn ite_and_eq() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(8));
        let y = tm.var("y", Sort::BitVec(8));
        let c = tm.eq(x, y);
        let e = tm.ite(c, x, y);
        assert_eq!(eval(&tm, e, &env(&[(x, 7), (y, 7)])), 7);
        assert_eq!(eval(&tm, e, &env(&[(x, 7), (y, 9)])), 9);
    }

    #[test]
    fn deep_terms_do_not_overflow_the_stack() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(32));
        let one = tm.one(32);
        let mut e = x;
        for _ in 0..50_000 {
            e = tm.bv_add(e, one);
        }
        assert_eq!(eval(&tm, e, &env(&[(x, 1)])), 50_001);
    }
}
