//! Hash-consed term graph for quantifier-free bit-vector formulas.
//!
//! [`TermManager`] owns every term.  Terms are referenced by the cheap,
//! copyable handle [`TermId`].  Construction goes through the `mk_*` /
//! operator methods on the manager, which apply local simplifications
//! (constant folding, neutral and absorbing elements, double negation, …)
//! before interning, so structurally equal and trivially equivalent terms
//! share a single node.

use std::collections::HashMap;
use std::fmt;

use crate::sort::{mask, sign_extend, Sort};

/// Handle to a term inside a [`TermManager`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub(crate) u32);

impl TermId {
    /// Raw index of the term inside its manager (useful for dense maps).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A term node: its operator and its sort.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Term {
    /// The operator and operands of this node.
    pub op: Op,
    /// The sort of the node.
    pub sort: Sort,
}

/// Term operators.
///
/// Bit-vector constants store their value zero-extended to 64 bits.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Op {
    /// Boolean constant.
    BoolConst(bool),
    /// Bit-vector constant (`value` is already masked to the sort width).
    BvConst { value: u64, width: u32 },
    /// Free variable.
    Var { name: String },
    /// Boolean negation.
    Not(TermId),
    /// Boolean conjunction.
    And(TermId, TermId),
    /// Boolean disjunction.
    Or(TermId, TermId),
    /// Boolean exclusive or.
    Xor(TermId, TermId),
    /// Boolean implication.
    Implies(TermId, TermId),
    /// If-then-else; the branches may be boolean or bit-vector.
    Ite(TermId, TermId, TermId),
    /// Equality over booleans or bit-vectors (result is boolean).
    Eq(TermId, TermId),
    /// Bit-wise complement.
    BvNot(TermId),
    /// Two's complement negation.
    BvNeg(TermId),
    /// Bit-wise and.
    BvAnd(TermId, TermId),
    /// Bit-wise or.
    BvOr(TermId, TermId),
    /// Bit-wise xor.
    BvXor(TermId, TermId),
    /// Addition modulo 2^w.
    BvAdd(TermId, TermId),
    /// Subtraction modulo 2^w.
    BvSub(TermId, TermId),
    /// Multiplication modulo 2^w.
    BvMul(TermId, TermId),
    /// Unsigned division (division by zero yields all-ones, as in SMT-LIB).
    BvUdiv(TermId, TermId),
    /// Unsigned remainder (remainder by zero yields the dividend).
    BvUrem(TermId, TermId),
    /// Logical shift left (shift amount is the full second operand).
    BvShl(TermId, TermId),
    /// Logical shift right.
    BvLshr(TermId, TermId),
    /// Arithmetic shift right.
    BvAshr(TermId, TermId),
    /// Unsigned less-than (boolean result).
    BvUlt(TermId, TermId),
    /// Unsigned less-or-equal.
    BvUle(TermId, TermId),
    /// Signed less-than.
    BvSlt(TermId, TermId),
    /// Signed less-or-equal.
    BvSle(TermId, TermId),
    /// Concatenation; the first operand occupies the high bits.
    BvConcat(TermId, TermId),
    /// Bit extraction, inclusive bounds, `hi >= lo`.
    BvExtract { hi: u32, lo: u32, arg: TermId },
    /// Zero extension by `by` bits.
    BvZeroExt { by: u32, arg: TermId },
    /// Sign extension by `by` bits.
    BvSignExt { by: u32, arg: TermId },
}

impl Op {
    /// The operand term ids of this operator, in order.
    pub fn children(&self) -> Vec<TermId> {
        match self {
            Op::BoolConst(_) | Op::BvConst { .. } | Op::Var { .. } => vec![],
            Op::Not(a) | Op::BvNot(a) | Op::BvNeg(a) => vec![*a],
            Op::BvExtract { arg, .. } | Op::BvZeroExt { arg, .. } | Op::BvSignExt { arg, .. } => {
                vec![*arg]
            }
            Op::And(a, b)
            | Op::Or(a, b)
            | Op::Xor(a, b)
            | Op::Implies(a, b)
            | Op::Eq(a, b)
            | Op::BvAnd(a, b)
            | Op::BvOr(a, b)
            | Op::BvXor(a, b)
            | Op::BvAdd(a, b)
            | Op::BvSub(a, b)
            | Op::BvMul(a, b)
            | Op::BvUdiv(a, b)
            | Op::BvUrem(a, b)
            | Op::BvShl(a, b)
            | Op::BvLshr(a, b)
            | Op::BvAshr(a, b)
            | Op::BvUlt(a, b)
            | Op::BvUle(a, b)
            | Op::BvSlt(a, b)
            | Op::BvSle(a, b)
            | Op::BvConcat(a, b) => vec![*a, *b],
            Op::Ite(c, t, e) => vec![*c, *t, *e],
        }
    }

    /// Whether this node is a leaf (constant or variable).
    pub fn is_leaf(&self) -> bool {
        matches!(self, Op::BoolConst(_) | Op::BvConst { .. } | Op::Var { .. })
    }
}

/// Owner and factory of all terms.
///
/// See the crate-level documentation for an end-to-end example.
#[derive(Debug, Default, Clone)]
pub struct TermManager {
    terms: Vec<Term>,
    interned: HashMap<Term, TermId>,
    vars_by_name: HashMap<String, TermId>,
    fresh_counter: u64,
}

impl TermManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct term nodes created so far.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether no terms have been created.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Returns the term node behind an id.
    pub fn term(&self, id: TermId) -> &Term {
        &self.terms[id.index()]
    }

    /// Returns the sort of a term.
    pub fn sort(&self, id: TermId) -> Sort {
        self.terms[id.index()].sort
    }

    /// Returns the bit-width of a bit-vector term.
    ///
    /// # Panics
    ///
    /// Panics if the term is boolean.
    pub fn width(&self, id: TermId) -> u32 {
        self.sort(id).expect_width()
    }

    fn intern(&mut self, term: Term) -> TermId {
        if let Some(&id) = self.interned.get(&term) {
            return id;
        }
        let id = TermId(u32::try_from(self.terms.len()).expect("term table overflow"));
        self.terms.push(term.clone());
        self.interned.insert(term, id);
        id
    }

    /// Returns the constant value of a term if it is a boolean or bit-vector
    /// constant (booleans map to 0/1).
    pub fn const_value(&self, id: TermId) -> Option<u64> {
        match &self.term(id).op {
            Op::BoolConst(b) => Some(u64::from(*b)),
            Op::BvConst { value, .. } => Some(*value),
            _ => None,
        }
    }

    // ------------------------------------------------------------------
    // Leaves
    // ------------------------------------------------------------------

    /// The boolean constant `true`.
    pub fn tru(&mut self) -> TermId {
        self.intern(Term {
            op: Op::BoolConst(true),
            sort: Sort::Bool,
        })
    }

    /// The boolean constant `false`.
    pub fn fls(&mut self) -> TermId {
        self.intern(Term {
            op: Op::BoolConst(false),
            sort: Sort::Bool,
        })
    }

    /// A boolean constant.
    pub fn bool_const(&mut self, b: bool) -> TermId {
        if b {
            self.tru()
        } else {
            self.fls()
        }
    }

    /// A bit-vector constant of the given width.  The value is masked.
    pub fn bv_const(&mut self, value: u64, width: u32) -> TermId {
        assert!(
            (1..=64).contains(&width),
            "unsupported bit-vector width {width}"
        );
        let value = mask(value, width);
        self.intern(Term {
            op: Op::BvConst { value, width },
            sort: Sort::BitVec(width),
        })
    }

    /// The all-zero bit-vector of the given width.
    pub fn zero(&mut self, width: u32) -> TermId {
        self.bv_const(0, width)
    }

    /// The bit-vector constant 1 of the given width.
    pub fn one(&mut self, width: u32) -> TermId {
        self.bv_const(1, width)
    }

    /// The all-ones bit-vector of the given width.
    pub fn ones(&mut self, width: u32) -> TermId {
        self.bv_const(u64::MAX, width)
    }

    /// A named free variable.  Re-using a name returns the same term; the
    /// sort must match.
    ///
    /// # Panics
    ///
    /// Panics if the name was previously used with a different sort.
    pub fn var(&mut self, name: &str, sort: Sort) -> TermId {
        if let Some(&id) = self.vars_by_name.get(name) {
            assert_eq!(
                self.sort(id),
                sort,
                "variable {name} redeclared with a different sort"
            );
            return id;
        }
        let id = self.intern(Term {
            op: Op::Var {
                name: name.to_string(),
            },
            sort,
        });
        self.vars_by_name.insert(name.to_string(), id);
        id
    }

    /// A fresh variable whose name starts with `prefix` and is guaranteed not
    /// to collide with previously created variables.
    pub fn fresh_var(&mut self, prefix: &str, sort: Sort) -> TermId {
        loop {
            let name = format!("{prefix}!{}", self.fresh_counter);
            self.fresh_counter += 1;
            if !self.vars_by_name.contains_key(&name) {
                return self.var(&name, sort);
            }
        }
    }

    /// Looks up a variable by name.
    pub fn find_var(&self, name: &str) -> Option<TermId> {
        self.vars_by_name.get(name).copied()
    }

    /// Name of a variable term.
    pub fn var_name(&self, id: TermId) -> Option<&str> {
        match &self.term(id).op {
            Op::Var { name } => Some(name.as_str()),
            _ => None,
        }
    }

    // ------------------------------------------------------------------
    // Boolean connectives
    // ------------------------------------------------------------------

    /// Boolean negation.
    pub fn not(&mut self, a: TermId) -> TermId {
        debug_assert!(self.sort(a).is_bool());
        match self.term(a).op.clone() {
            Op::BoolConst(b) => self.bool_const(!b),
            Op::Not(inner) => inner,
            _ => self.intern(Term {
                op: Op::Not(a),
                sort: Sort::Bool,
            }),
        }
    }

    /// Boolean conjunction.
    pub fn and(&mut self, a: TermId, b: TermId) -> TermId {
        debug_assert!(self.sort(a).is_bool() && self.sort(b).is_bool());
        if a == b {
            return a;
        }
        match (self.const_value(a), self.const_value(b)) {
            (Some(0), _) | (_, Some(0)) => self.fls(),
            (Some(1), _) => b,
            (_, Some(1)) => a,
            _ => {
                let (a, b) = if a <= b { (a, b) } else { (b, a) };
                self.intern(Term {
                    op: Op::And(a, b),
                    sort: Sort::Bool,
                })
            }
        }
    }

    /// Boolean disjunction.
    pub fn or(&mut self, a: TermId, b: TermId) -> TermId {
        debug_assert!(self.sort(a).is_bool() && self.sort(b).is_bool());
        if a == b {
            return a;
        }
        match (self.const_value(a), self.const_value(b)) {
            (Some(1), _) | (_, Some(1)) => self.tru(),
            (Some(0), _) => b,
            (_, Some(0)) => a,
            _ => {
                let (a, b) = if a <= b { (a, b) } else { (b, a) };
                self.intern(Term {
                    op: Op::Or(a, b),
                    sort: Sort::Bool,
                })
            }
        }
    }

    /// Boolean exclusive or.
    pub fn xor(&mut self, a: TermId, b: TermId) -> TermId {
        debug_assert!(self.sort(a).is_bool() && self.sort(b).is_bool());
        if a == b {
            return self.fls();
        }
        match (self.const_value(a), self.const_value(b)) {
            (Some(x), Some(y)) => self.bool_const((x ^ y) != 0),
            (Some(0), _) => b,
            (_, Some(0)) => a,
            (Some(1), _) => self.not(b),
            (_, Some(1)) => self.not(a),
            _ => {
                let (a, b) = if a <= b { (a, b) } else { (b, a) };
                self.intern(Term {
                    op: Op::Xor(a, b),
                    sort: Sort::Bool,
                })
            }
        }
    }

    /// Boolean implication `a ⇒ b`.
    pub fn implies(&mut self, a: TermId, b: TermId) -> TermId {
        debug_assert!(self.sort(a).is_bool() && self.sort(b).is_bool());
        if a == b {
            return self.tru();
        }
        match (self.const_value(a), self.const_value(b)) {
            (Some(0), _) | (_, Some(1)) => self.tru(),
            (Some(1), _) => b,
            (_, Some(0)) => self.not(a),
            _ => self.intern(Term {
                op: Op::Implies(a, b),
                sort: Sort::Bool,
            }),
        }
    }

    /// Conjunction of an arbitrary number of booleans (empty ⇒ `true`).
    pub fn and_many<I: IntoIterator<Item = TermId>>(&mut self, items: I) -> TermId {
        let mut acc = self.tru();
        for t in items {
            acc = self.and(acc, t);
        }
        acc
    }

    /// Disjunction of an arbitrary number of booleans (empty ⇒ `false`).
    pub fn or_many<I: IntoIterator<Item = TermId>>(&mut self, items: I) -> TermId {
        let mut acc = self.fls();
        for t in items {
            acc = self.or(acc, t);
        }
        acc
    }

    /// Equality (boolean or bit-vector operands of equal sort).
    pub fn eq(&mut self, a: TermId, b: TermId) -> TermId {
        assert_eq!(self.sort(a), self.sort(b), "eq of differently sorted terms");
        if a == b {
            return self.tru();
        }
        if let (Some(x), Some(y)) = (self.const_value(a), self.const_value(b)) {
            return self.bool_const(x == y);
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.intern(Term {
            op: Op::Eq(a, b),
            sort: Sort::Bool,
        })
    }

    /// Disequality.
    pub fn neq(&mut self, a: TermId, b: TermId) -> TermId {
        let e = self.eq(a, b);
        self.not(e)
    }

    /// If-then-else over booleans or bit-vectors.
    pub fn ite(&mut self, cond: TermId, then: TermId, els: TermId) -> TermId {
        debug_assert!(self.sort(cond).is_bool());
        assert_eq!(
            self.sort(then),
            self.sort(els),
            "ite branches must share a sort"
        );
        if then == els {
            return then;
        }
        match self.const_value(cond) {
            Some(1) => then,
            Some(0) => els,
            _ => {
                let sort = self.sort(then);
                self.intern(Term {
                    op: Op::Ite(cond, then, els),
                    sort,
                })
            }
        }
    }

    // ------------------------------------------------------------------
    // Bit-vector operations
    // ------------------------------------------------------------------

    fn bv_binop_widths(&self, a: TermId, b: TermId) -> u32 {
        let wa = self.width(a);
        let wb = self.width(b);
        assert_eq!(wa, wb, "bit-vector operands must have equal width");
        wa
    }

    /// Bit-wise complement.
    pub fn bv_not(&mut self, a: TermId) -> TermId {
        let w = self.width(a);
        if let Some(v) = self.const_value(a) {
            return self.bv_const(!v, w);
        }
        if let Op::BvNot(inner) = self.term(a).op {
            return inner;
        }
        self.intern(Term {
            op: Op::BvNot(a),
            sort: Sort::BitVec(w),
        })
    }

    /// Two's complement negation.
    pub fn bv_neg(&mut self, a: TermId) -> TermId {
        let w = self.width(a);
        if let Some(v) = self.const_value(a) {
            return self.bv_const(v.wrapping_neg(), w);
        }
        self.intern(Term {
            op: Op::BvNeg(a),
            sort: Sort::BitVec(w),
        })
    }

    /// Bit-wise and.
    pub fn bv_and(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.bv_binop_widths(a, b);
        if a == b {
            return a;
        }
        match (self.const_value(a), self.const_value(b)) {
            (Some(x), Some(y)) => self.bv_const(x & y, w),
            (Some(0), _) | (_, Some(0)) => self.zero(w),
            (Some(x), _) if x == mask(u64::MAX, w) => b,
            (_, Some(y)) if y == mask(u64::MAX, w) => a,
            _ => {
                let (a, b) = if a <= b { (a, b) } else { (b, a) };
                self.intern(Term {
                    op: Op::BvAnd(a, b),
                    sort: Sort::BitVec(w),
                })
            }
        }
    }

    /// Bit-wise or.
    pub fn bv_or(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.bv_binop_widths(a, b);
        if a == b {
            return a;
        }
        match (self.const_value(a), self.const_value(b)) {
            (Some(x), Some(y)) => self.bv_const(x | y, w),
            (Some(0), _) => b,
            (_, Some(0)) => a,
            (Some(x), _) if x == mask(u64::MAX, w) => self.ones(w),
            (_, Some(y)) if y == mask(u64::MAX, w) => self.ones(w),
            _ => {
                let (a, b) = if a <= b { (a, b) } else { (b, a) };
                self.intern(Term {
                    op: Op::BvOr(a, b),
                    sort: Sort::BitVec(w),
                })
            }
        }
    }

    /// Bit-wise xor.
    pub fn bv_xor(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.bv_binop_widths(a, b);
        if a == b {
            return self.zero(w);
        }
        match (self.const_value(a), self.const_value(b)) {
            (Some(x), Some(y)) => self.bv_const(x ^ y, w),
            (Some(0), _) => b,
            (_, Some(0)) => a,
            _ => {
                let (a, b) = if a <= b { (a, b) } else { (b, a) };
                self.intern(Term {
                    op: Op::BvXor(a, b),
                    sort: Sort::BitVec(w),
                })
            }
        }
    }

    /// Addition modulo 2^w.
    pub fn bv_add(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.bv_binop_widths(a, b);
        match (self.const_value(a), self.const_value(b)) {
            (Some(x), Some(y)) => self.bv_const(x.wrapping_add(y), w),
            (Some(0), _) => b,
            (_, Some(0)) => a,
            _ => {
                let (a, b) = if a <= b { (a, b) } else { (b, a) };
                self.intern(Term {
                    op: Op::BvAdd(a, b),
                    sort: Sort::BitVec(w),
                })
            }
        }
    }

    /// Subtraction modulo 2^w.
    pub fn bv_sub(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.bv_binop_widths(a, b);
        if a == b {
            return self.zero(w);
        }
        match (self.const_value(a), self.const_value(b)) {
            (Some(x), Some(y)) => self.bv_const(x.wrapping_sub(y), w),
            (_, Some(0)) => a,
            _ => self.intern(Term {
                op: Op::BvSub(a, b),
                sort: Sort::BitVec(w),
            }),
        }
    }

    /// Multiplication modulo 2^w.
    pub fn bv_mul(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.bv_binop_widths(a, b);
        match (self.const_value(a), self.const_value(b)) {
            (Some(x), Some(y)) => self.bv_const(x.wrapping_mul(y), w),
            (Some(0), _) | (_, Some(0)) => self.zero(w),
            (Some(1), _) => b,
            (_, Some(1)) => a,
            _ => {
                let (a, b) = if a <= b { (a, b) } else { (b, a) };
                self.intern(Term {
                    op: Op::BvMul(a, b),
                    sort: Sort::BitVec(w),
                })
            }
        }
    }

    /// Unsigned division (x / 0 = all ones, as in SMT-LIB).
    pub fn bv_udiv(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.bv_binop_widths(a, b);
        if let (Some(x), Some(y)) = (self.const_value(a), self.const_value(b)) {
            let r = x.checked_div(y).unwrap_or(mask(u64::MAX, w));
            return self.bv_const(r, w);
        }
        self.intern(Term {
            op: Op::BvUdiv(a, b),
            sort: Sort::BitVec(w),
        })
    }

    /// Unsigned remainder (x % 0 = x, as in SMT-LIB).
    pub fn bv_urem(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.bv_binop_widths(a, b);
        if let (Some(x), Some(y)) = (self.const_value(a), self.const_value(b)) {
            let r = if y == 0 { x } else { x % y };
            return self.bv_const(r, w);
        }
        self.intern(Term {
            op: Op::BvUrem(a, b),
            sort: Sort::BitVec(w),
        })
    }

    fn shift_amount(&self, b: TermId, w: u32) -> Option<u64> {
        self.const_value(b).map(|v| v.min(u64::from(w)))
    }

    /// Logical shift left.  Shifts by `>= w` yield zero.
    pub fn bv_shl(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.bv_binop_widths(a, b);
        if let (Some(x), Some(s)) = (self.const_value(a), self.shift_amount(b, w)) {
            let r = if s >= u64::from(w) { 0 } else { x << s };
            return self.bv_const(r, w);
        }
        if self.const_value(b) == Some(0) {
            return a;
        }
        self.intern(Term {
            op: Op::BvShl(a, b),
            sort: Sort::BitVec(w),
        })
    }

    /// Logical shift right.
    pub fn bv_lshr(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.bv_binop_widths(a, b);
        if let (Some(x), Some(s)) = (self.const_value(a), self.shift_amount(b, w)) {
            let r = if s >= u64::from(w) {
                0
            } else {
                mask(x, w) >> s
            };
            return self.bv_const(r, w);
        }
        if self.const_value(b) == Some(0) {
            return a;
        }
        self.intern(Term {
            op: Op::BvLshr(a, b),
            sort: Sort::BitVec(w),
        })
    }

    /// Arithmetic shift right.
    pub fn bv_ashr(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.bv_binop_widths(a, b);
        if let (Some(x), Some(s)) = (self.const_value(a), self.shift_amount(b, w)) {
            let sx = sign_extend(x, w) as i64;
            let s = s.min(63);
            return self.bv_const((sx >> s) as u64, w);
        }
        if self.const_value(b) == Some(0) {
            return a;
        }
        self.intern(Term {
            op: Op::BvAshr(a, b),
            sort: Sort::BitVec(w),
        })
    }

    /// Unsigned less-than.
    pub fn bv_ult(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_binop_widths(a, b);
        if a == b {
            return self.fls();
        }
        if let (Some(x), Some(y)) = (self.const_value(a), self.const_value(b)) {
            return self.bool_const(x < y);
        }
        self.intern(Term {
            op: Op::BvUlt(a, b),
            sort: Sort::Bool,
        })
    }

    /// Unsigned less-or-equal.
    pub fn bv_ule(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_binop_widths(a, b);
        if a == b {
            return self.tru();
        }
        if let (Some(x), Some(y)) = (self.const_value(a), self.const_value(b)) {
            return self.bool_const(x <= y);
        }
        self.intern(Term {
            op: Op::BvUle(a, b),
            sort: Sort::Bool,
        })
    }

    /// Signed less-than.
    pub fn bv_slt(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.bv_binop_widths(a, b);
        if a == b {
            return self.fls();
        }
        if let (Some(x), Some(y)) = (self.const_value(a), self.const_value(b)) {
            return self.bool_const((sign_extend(x, w) as i64) < (sign_extend(y, w) as i64));
        }
        self.intern(Term {
            op: Op::BvSlt(a, b),
            sort: Sort::Bool,
        })
    }

    /// Signed less-or-equal.
    pub fn bv_sle(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.bv_binop_widths(a, b);
        if a == b {
            return self.tru();
        }
        if let (Some(x), Some(y)) = (self.const_value(a), self.const_value(b)) {
            return self.bool_const((sign_extend(x, w) as i64) <= (sign_extend(y, w) as i64));
        }
        self.intern(Term {
            op: Op::BvSlt(b, a),
            sort: Sort::Bool,
        })
        .pipe_not(self)
    }

    /// Unsigned greater-than.
    pub fn bv_ugt(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_ult(b, a)
    }

    /// Signed greater-than.
    pub fn bv_sgt(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_slt(b, a)
    }

    /// Concatenation; `hi` supplies the high bits.
    pub fn bv_concat(&mut self, hi: TermId, lo: TermId) -> TermId {
        let wh = self.width(hi);
        let wl = self.width(lo);
        let w = wh + wl;
        assert!(w <= 64, "concatenation exceeds 64 bits");
        if let (Some(x), Some(y)) = (self.const_value(hi), self.const_value(lo)) {
            return self.bv_const((x << wl) | y, w);
        }
        self.intern(Term {
            op: Op::BvConcat(hi, lo),
            sort: Sort::BitVec(w),
        })
    }

    /// Bit extraction `arg[hi:lo]` (inclusive).
    pub fn bv_extract(&mut self, arg: TermId, hi: u32, lo: u32) -> TermId {
        let w = self.width(arg);
        assert!(
            hi >= lo && hi < w,
            "invalid extract bounds [{hi}:{lo}] on width {w}"
        );
        let ow = hi - lo + 1;
        if ow == w {
            return arg;
        }
        if let Some(x) = self.const_value(arg) {
            return self.bv_const(x >> lo, ow);
        }
        self.intern(Term {
            op: Op::BvExtract { hi, lo, arg },
            sort: Sort::BitVec(ow),
        })
    }

    /// Zero extension by `by` bits.
    pub fn bv_zero_ext(&mut self, arg: TermId, by: u32) -> TermId {
        if by == 0 {
            return arg;
        }
        let w = self.width(arg) + by;
        assert!(w <= 64, "zero extension exceeds 64 bits");
        if let Some(x) = self.const_value(arg) {
            return self.bv_const(x, w);
        }
        self.intern(Term {
            op: Op::BvZeroExt { by, arg },
            sort: Sort::BitVec(w),
        })
    }

    /// Sign extension by `by` bits.
    pub fn bv_sign_ext(&mut self, arg: TermId, by: u32) -> TermId {
        if by == 0 {
            return arg;
        }
        let aw = self.width(arg);
        let w = aw + by;
        assert!(w <= 64, "sign extension exceeds 64 bits");
        if let Some(x) = self.const_value(arg) {
            return self.bv_const(sign_extend(x, aw), w);
        }
        self.intern(Term {
            op: Op::BvSignExt { by, arg },
            sort: Sort::BitVec(w),
        })
    }

    /// Extracts a single bit as a boolean.
    pub fn bv_bit(&mut self, arg: TermId, bit: u32) -> TermId {
        let one = self.one(1);
        let b = self.bv_extract(arg, bit, bit);
        self.eq(b, one)
    }

    /// Converts a boolean to a 1-bit vector (`true` ⇒ 1).
    pub fn bool_to_bv(&mut self, b: TermId, width: u32) -> TermId {
        let one = self.one(width);
        let zero = self.zero(width);
        self.ite(b, one, zero)
    }

    /// Resizes a bit-vector to `width` by zero extension or truncation.
    pub fn bv_resize_zero(&mut self, arg: TermId, width: u32) -> TermId {
        let w = self.width(arg);
        if width == w {
            arg
        } else if width > w {
            self.bv_zero_ext(arg, width - w)
        } else {
            self.bv_extract(arg, width - 1, 0)
        }
    }

    /// All variables reachable from `roots`, in deterministic order.
    pub fn collect_vars(&self, roots: &[TermId]) -> Vec<TermId> {
        let mut seen = vec![false; self.terms.len()];
        let mut stack: Vec<TermId> = roots.to_vec();
        let mut vars = Vec::new();
        while let Some(t) = stack.pop() {
            if seen[t.index()] {
                continue;
            }
            seen[t.index()] = true;
            if matches!(self.term(t).op, Op::Var { .. }) {
                vars.push(t);
            }
            stack.extend(self.term(t).op.children());
        }
        vars.sort();
        vars
    }

    /// Renders a term as an s-expression-like string (for debugging).
    pub fn display(&self, id: TermId) -> String {
        let mut out = String::new();
        self.display_into(id, &mut out, 0);
        out
    }

    fn display_into(&self, id: TermId, out: &mut String, depth: usize) {
        use fmt::Write as _;
        if depth > 64 {
            out.push_str("...");
            return;
        }
        let t = self.term(id);
        match &t.op {
            Op::BoolConst(b) => {
                let _ = write!(out, "{b}");
            }
            Op::BvConst { value, width } => {
                let _ = write!(out, "#{value}:{width}");
            }
            Op::Var { name } => {
                let _ = write!(out, "{name}");
            }
            op => {
                let name = op_name(op);
                let _ = write!(out, "({name}");
                if let Op::BvExtract { hi, lo, .. } = op {
                    let _ = write!(out, "[{hi}:{lo}]");
                }
                for c in op.children() {
                    out.push(' ');
                    self.display_into(c, out, depth + 1);
                }
                out.push(')');
            }
        }
    }
}

/// A small helper so `bv_sle` can negate an interned node fluently.
trait PipeNot {
    fn pipe_not(self, tm: &mut TermManager) -> TermId;
}

impl PipeNot for TermId {
    fn pipe_not(self, tm: &mut TermManager) -> TermId {
        tm.not(self)
    }
}

fn op_name(op: &Op) -> &'static str {
    match op {
        Op::BoolConst(_) => "bool",
        Op::BvConst { .. } => "const",
        Op::Var { .. } => "var",
        Op::Not(_) => "not",
        Op::And(..) => "and",
        Op::Or(..) => "or",
        Op::Xor(..) => "xor",
        Op::Implies(..) => "=>",
        Op::Ite(..) => "ite",
        Op::Eq(..) => "=",
        Op::BvNot(_) => "bvnot",
        Op::BvNeg(_) => "bvneg",
        Op::BvAnd(..) => "bvand",
        Op::BvOr(..) => "bvor",
        Op::BvXor(..) => "bvxor",
        Op::BvAdd(..) => "bvadd",
        Op::BvSub(..) => "bvsub",
        Op::BvMul(..) => "bvmul",
        Op::BvUdiv(..) => "bvudiv",
        Op::BvUrem(..) => "bvurem",
        Op::BvShl(..) => "bvshl",
        Op::BvLshr(..) => "bvlshr",
        Op::BvAshr(..) => "bvashr",
        Op::BvUlt(..) => "bvult",
        Op::BvUle(..) => "bvule",
        Op::BvSlt(..) => "bvslt",
        Op::BvSle(..) => "bvsle",
        Op::BvConcat(..) => "concat",
        Op::BvExtract { .. } => "extract",
        Op::BvZeroExt { .. } => "zext",
        Op::BvSignExt { .. } => "sext",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_shares_nodes() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(8));
        let y = tm.var("y", Sort::BitVec(8));
        let a = tm.bv_add(x, y);
        let b = tm.bv_add(x, y);
        assert_eq!(a, b);
        // commutativity normalisation
        let c = tm.bv_add(y, x);
        assert_eq!(a, c);
    }

    #[test]
    fn constant_folding() {
        let mut tm = TermManager::new();
        let a = tm.bv_const(200, 8);
        let b = tm.bv_const(100, 8);
        let s = tm.bv_add(a, b);
        assert_eq!(tm.const_value(s), Some(44)); // 300 mod 256
        let m = tm.bv_mul(a, b);
        assert_eq!(tm.const_value(m), Some((200u64 * 100) & 0xff));
        let sl = tm.bv_slt(a, b); // 200 is -56 signed
        assert_eq!(tm.const_value(sl), Some(1));
        let ul = tm.bv_ult(a, b);
        assert_eq!(tm.const_value(ul), Some(0));
    }

    #[test]
    fn neutral_elements() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(16));
        let z = tm.zero(16);
        let ones = tm.ones(16);
        assert_eq!(tm.bv_add(x, z), x);
        assert_eq!(tm.bv_or(x, z), x);
        assert_eq!(tm.bv_and(x, ones), x);
        assert_eq!(tm.bv_xor(x, z), x);
        let a = tm.bv_and(x, z);
        assert_eq!(tm.const_value(a), Some(0));
    }

    #[test]
    fn boolean_simplifications() {
        let mut tm = TermManager::new();
        let p = tm.var("p", Sort::Bool);
        let t = tm.tru();
        let f = tm.fls();
        assert_eq!(tm.and(p, t), p);
        assert_eq!(tm.or(p, f), p);
        assert_eq!(tm.and(p, f), f);
        assert_eq!(tm.or(p, t), t);
        let np = tm.not(p);
        assert_eq!(tm.not(np), p);
        assert_eq!(tm.implies(f, p), t);
        assert_eq!(tm.implies(t, p), p);
    }

    #[test]
    fn extract_concat_and_extensions() {
        let mut tm = TermManager::new();
        let c = tm.bv_const(0xabcd, 16);
        let hi = tm.bv_extract(c, 15, 8);
        let lo = tm.bv_extract(c, 7, 0);
        assert_eq!(tm.const_value(hi), Some(0xab));
        assert_eq!(tm.const_value(lo), Some(0xcd));
        let back = tm.bv_concat(hi, lo);
        assert_eq!(tm.const_value(back), Some(0xabcd));
        let se = tm.bv_sign_ext(lo, 8);
        assert_eq!(tm.const_value(se), Some(0xffcd));
        let ze = tm.bv_zero_ext(lo, 8);
        assert_eq!(tm.const_value(ze), Some(0x00cd));
    }

    #[test]
    fn shifts_fold() {
        let mut tm = TermManager::new();
        let c = tm.bv_const(0x80, 8);
        let s1 = tm.bv_const(1, 8);
        let shl = tm.bv_shl(c, s1);
        assert_eq!(tm.const_value(shl), Some(0));
        let lshr = tm.bv_lshr(c, s1);
        assert_eq!(tm.const_value(lshr), Some(0x40));
        let ashr = tm.bv_ashr(c, s1);
        assert_eq!(tm.const_value(ashr), Some(0xc0));
        let big = tm.bv_const(9, 8);
        let over = tm.bv_lshr(c, big);
        assert_eq!(tm.const_value(over), Some(0));
    }

    #[test]
    fn ite_simplifies() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(4));
        let y = tm.var("y", Sort::BitVec(4));
        let t = tm.tru();
        let f = tm.fls();
        assert_eq!(tm.ite(t, x, y), x);
        assert_eq!(tm.ite(f, x, y), y);
        assert_eq!(tm.ite(tm.clone().find_var("p").unwrap_or(t), x, x), x);
    }

    #[test]
    fn collect_vars_is_deterministic() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(8));
        let y = tm.var("y", Sort::BitVec(8));
        let z = tm.var("z", Sort::BitVec(8));
        let e1 = tm.bv_add(x, y);
        let e2 = tm.bv_mul(e1, z);
        let vars = tm.collect_vars(&[e2]);
        assert_eq!(vars, vec![x, y, z]);
    }

    #[test]
    fn fresh_vars_are_distinct() {
        let mut tm = TermManager::new();
        let a = tm.fresh_var("t", Sort::Bool);
        let b = tm.fresh_var("t", Sort::Bool);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "redeclared")]
    fn var_sort_mismatch_panics() {
        let mut tm = TermManager::new();
        tm.var("x", Sort::BitVec(8));
        tm.var("x", Sort::BitVec(16));
    }

    #[test]
    fn display_renders_something_sensible() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(8));
        let one = tm.one(8);
        let e = tm.bv_add(x, one);
        let s = tm.display(e);
        assert!(s.contains("bvadd"));
        assert!(s.contains('x'));
    }

    #[test]
    fn udiv_urem_by_zero_follow_smtlib() {
        let mut tm = TermManager::new();
        let a = tm.bv_const(13, 8);
        let z = tm.zero(8);
        let d = tm.bv_udiv(a, z);
        let r = tm.bv_urem(a, z);
        assert_eq!(tm.const_value(d), Some(0xff));
        assert_eq!(tm.const_value(r), Some(13));
    }
}
