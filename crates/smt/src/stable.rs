//! A stable, seedable FNV-1a hasher.
//!
//! `std::collections::hash_map::DefaultHasher` makes no guarantee about its
//! output across Rust releases or even across processes (SipHash keys may be
//! randomized), which disqualifies it for anything persisted to disk or
//! shared between processes.  The service layer's content-addressed result
//! cache needs the opposite guarantee: the same canonical job descriptor must
//! hash to the same 64-bit key on every machine, forever, because the key
//! *is* the cache file name and the shard assignment.
//!
//! FNV-1a is a tiny, well-specified, non-cryptographic hash with good
//! dispersion on short ASCII keys (exactly the descriptor workload).  The
//! seeded variant folds a caller-supplied seed into the offset basis so that
//! independent tables (cache keys vs. jitter streams vs. soak-test attack
//! schedules) draw from decorrelated hash families.
//!
//! This is **not** a cryptographic hash: collisions can be constructed by an
//! adversary.  The cache tolerates that by storing the full descriptor next
//! to each entry and comparing it on lookup — a collision costs a cache miss,
//! never a wrong verdict.

/// The FNV-1a 64-bit offset basis.
pub const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// The FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64-bit hasher with a stable, documented algorithm.
///
/// Implements [`std::hash::Hasher`], so it can be dropped into any
/// `Hash`-based code path, but unlike `DefaultHasher` the output is a pure
/// function of the input bytes (and the optional seed).
#[derive(Debug, Clone, Copy)]
pub struct StableHasher {
    state: u64,
}

impl StableHasher {
    /// A hasher starting from the standard FNV-1a offset basis.
    pub fn new() -> Self {
        StableHasher {
            state: FNV_OFFSET_BASIS,
        }
    }

    /// A hasher whose initial state folds in `seed`.
    ///
    /// The seed is mixed through one FNV round (xor + multiply) per byte so
    /// that seeds differing in any byte produce decorrelated streams; a
    /// seed of 0 is *not* the same as the unseeded hasher (the mixing rounds
    /// still run), which keeps `with_seed(s)` a single uniform family.
    pub fn with_seed(seed: u64) -> Self {
        let mut h = StableHasher::new();
        h.write_bytes(&seed.to_le_bytes());
        h
    }

    /// Absorbs `bytes` into the state.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// The current 64-bit digest.
    pub fn digest(&self) -> u64 {
        self.state
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl std::hash::Hasher for StableHasher {
    fn finish(&self) -> u64 {
        self.digest()
    }

    fn write(&mut self, bytes: &[u8]) {
        self.write_bytes(bytes);
    }
}

/// One-shot FNV-1a of `bytes` (unseeded).
pub fn stable_hash(bytes: &[u8]) -> u64 {
    let mut h = StableHasher::new();
    h.write_bytes(bytes);
    h.digest()
}

/// One-shot seeded FNV-1a of `bytes`.
pub fn stable_hash_seeded(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = StableHasher::with_seed(seed);
    h.write_bytes(bytes);
    h.digest()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Published FNV-1a 64-bit test vectors — if these ever fail, persisted
    /// cache keys would silently change, so they are pinned here.
    #[test]
    fn matches_published_vectors() {
        assert_eq!(stable_hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(stable_hash(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(stable_hash(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let mut h = StableHasher::new();
        h.write_bytes(b"foo");
        h.write_bytes(b"bar");
        assert_eq!(h.digest(), stable_hash(b"foobar"));
    }

    #[test]
    fn seeds_decorrelate() {
        let a = stable_hash_seeded(1, b"job");
        let b = stable_hash_seeded(2, b"job");
        let c = stable_hash(b"job");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
        // Seeded hashing is deterministic.
        assert_eq!(a, stable_hash_seeded(1, b"job"));
    }

    #[test]
    fn hasher_trait_wires_through() {
        use std::hash::{Hash, Hasher};
        let mut h = StableHasher::new();
        42u64.hash(&mut h);
        let mut h2 = StableHasher::new();
        h2.write_bytes(&42u64.to_ne_bytes());
        assert_eq!(h.finish(), h2.finish());
    }
}
