//! Propositional literals, clauses and CNF formulas.

use std::fmt;
use std::ops::Not;

/// A propositional variable (1-based internally, dense `index()` for arrays).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl Var {
    /// Dense 0-based index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A literal: a variable with a polarity.
///
/// Encoded as `var * 2 + negated`, giving cheap array indexing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// Creates a literal for `var`, positive when `positive` is true.
    pub fn new(var: Var, positive: bool) -> Self {
        Lit(var.0 * 2 + u32::from(!positive))
    }

    /// Creates the positive literal of a variable.
    pub fn pos(var: Var) -> Self {
        Lit::new(var, true)
    }

    /// Creates the negative literal of a variable.
    pub fn neg(var: Var) -> Self {
        Lit::new(var, false)
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 / 2)
    }

    /// Whether the literal is positive.
    pub fn is_positive(self) -> bool {
        self.0.is_multiple_of(2)
    }

    /// Dense 0-based index usable for watch lists (2 entries per variable).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a literal from its dense index.
    pub fn from_index(idx: usize) -> Self {
        Lit(u32::try_from(idx).expect("literal index overflow"))
    }
}

impl Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "{}", self.var().0 + 1)
        } else {
            write!(f, "-{}", self.var().0 + 1)
        }
    }
}

/// A disjunction of literals.
pub type Clause = Vec<Lit>;

/// A CNF formula under construction.
///
/// The bit-blaster appends clauses here; the SAT solver consumes them.
#[derive(Debug, Default, Clone)]
pub struct Cnf {
    num_vars: u32,
    clauses: Vec<Clause>,
}

impl Cnf {
    /// Creates an empty formula.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh variable.
    pub fn fresh_var(&mut self) -> Var {
        let v = Var(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Adds a clause.
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) {
        self.clauses.push(lits.into_iter().collect());
    }

    /// Iterates over the clauses.
    pub fn clauses(&self) -> impl Iterator<Item = &Clause> {
        self.clauses.iter()
    }

    /// Consumes the formula, returning its clauses.
    pub fn into_clauses(self) -> Vec<Clause> {
        self.clauses
    }

    /// Drains the accumulated clauses, keeping the variable counter.
    ///
    /// This is the hand-off primitive of the incremental pipeline: the
    /// bit-blaster keeps appending to the same `Cnf` while the SAT solver
    /// periodically takes ownership of everything new.
    pub fn take_clauses(&mut self) -> Vec<Clause> {
        std::mem::take(&mut self.clauses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding_roundtrips() {
        let v = Var(7);
        let p = Lit::pos(v);
        let n = Lit::neg(v);
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(p.is_positive());
        assert!(!n.is_positive());
        assert_eq!(!p, n);
        assert_eq!(!!p, p);
        assert_eq!(Lit::from_index(p.index()), p);
    }

    #[test]
    fn display_uses_dimacs_convention() {
        let v = Var(0);
        assert_eq!(Lit::pos(v).to_string(), "1");
        assert_eq!(Lit::neg(v).to_string(), "-1");
    }

    #[test]
    fn cnf_accumulates_clauses_and_vars() {
        let mut cnf = Cnf::new();
        let a = cnf.fresh_var();
        let b = cnf.fresh_var();
        cnf.add_clause([Lit::pos(a), Lit::neg(b)]);
        cnf.add_clause([Lit::neg(a)]);
        assert_eq!(cnf.num_vars(), 2);
        assert_eq!(cnf.num_clauses(), 2);
        assert_eq!(cnf.clauses().next().unwrap().len(), 2);
    }
}
