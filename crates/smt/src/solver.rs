//! The user-facing SMT solver: assertions in, SAT/UNSAT + model out.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use crate::bitblast::BitBlaster;
use crate::cnf::Lit;
use crate::concrete::{eval, Assignment};
use crate::rewrite::{RewriteStats, Rewriter};
use crate::sat::{CancelFlag, FaultHooks, SatSolver, SolveOutcome, StopReason};
use crate::term::{TermId, TermManager};

/// Result of an SMT check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SatResult {
    /// The conjunction of assertions is satisfiable.
    Sat,
    /// The conjunction of assertions is unsatisfiable.
    Unsat,
    /// The resource budget was exhausted.
    Unknown,
}

/// A model: values for the variables of the asserted formulas.
#[derive(Debug, Clone, Default)]
pub struct Model {
    values: Assignment,
}

impl Model {
    /// Creates a model from raw variable values.
    pub fn from_values(values: Assignment) -> Self {
        Model { values }
    }

    /// Value of a variable term (0 for variables absent from the model).
    pub fn value(&self, var: TermId) -> u64 {
        self.values.get(&var).copied().unwrap_or(0)
    }

    /// The raw variable assignment.
    pub fn assignment(&self) -> &Assignment {
        &self.values
    }

    /// Mutable access to the assignment, for the rewriter's model
    /// completion (restoring the values of variables it eliminated).
    pub(crate) fn assignment_mut(&mut self) -> &mut Assignment {
        &mut self.values
    }

    /// Evaluates an arbitrary term under this model.
    pub fn eval(&self, tm: &TermManager, t: TermId) -> u64 {
        eval(tm, t, &self.values)
    }

    /// Reassembles variable values from a satisfying SAT assignment using
    /// the bit-blaster's per-variable literal encodings (LSB first).
    ///
    /// Shared by the scratch and incremental solving paths.
    pub fn read_back(encodings: &HashMap<TermId, Vec<Lit>>, sat: &SatSolver) -> Model {
        let mut values = Assignment::new();
        for (&term, bits) in encodings {
            let mut v = 0u64;
            for (i, &l) in bits.iter().enumerate() {
                if sat.value_of(l.var()) == l.is_positive() {
                    v |= 1u64 << i;
                }
            }
            values.insert(term, v);
        }
        Model { values }
    }
}

/// Statistics of the last [`Solver::check`] call.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolverStats {
    /// CNF variables created by bit-blasting.
    pub cnf_vars: u64,
    /// CNF clauses created by bit-blasting.
    pub cnf_clauses: u64,
    /// SAT conflicts.
    pub conflicts: u64,
    /// SAT decisions.
    pub decisions: u64,
    /// SAT propagations.
    pub propagations: u64,
    /// Word-level rewriting work of this check (all zero with
    /// [`Solver::set_simplify`] off).
    pub rewrite: RewriteStats,
    /// Gate-level AIG work of this check: nodes created, strash hits,
    /// constants folded, local rewrites, CNF vars/clauses emitted.
    pub aig: crate::aig::AigStats,
    /// Wall-clock time of the check.
    pub duration: Duration,
}

/// A quantifier-free bit-vector solver.
///
/// Assert terms with [`assert_term`](Solver::assert_term), then call
/// [`check`](Solver::check).  Each `check` bit-blasts the current assertion
/// set from scratch (the CEGIS and BMC drivers in the other crates construct
/// a fresh solver per query, mirroring how the paper's tooling invokes its
/// backend solver).
#[derive(Debug, Clone)]
pub struct Solver {
    assertions: Vec<TermId>,
    conflict_limit: Option<u64>,
    deadline: Option<Instant>,
    cancel: Vec<CancelFlag>,
    memory_limit: Option<usize>,
    fault: FaultHooks,
    stop_reason: Option<StopReason>,
    last_model: Option<Model>,
    stats: SolverStats,
    simplify: bool,
    aig: bool,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates a solver with no assertions.
    pub fn new() -> Self {
        Solver {
            assertions: Vec::new(),
            conflict_limit: None,
            deadline: None,
            cancel: Vec::new(),
            memory_limit: None,
            fault: FaultHooks::default(),
            stop_reason: None,
            last_model: None,
            stats: SolverStats::default(),
            simplify: true,
            aig: true,
        }
    }

    /// Turns the gate-level AIG reductions of the per-check bit-blaster on
    /// or off (on by default): structural hashing, local rewriting and
    /// polarity-aware Tseitin.  Off is the direct-blasting baseline of the
    /// `aig_off` differential/bench arms.
    pub fn set_aig(&mut self, on: bool) {
        self.aig = on;
    }

    /// Turns the word-level simplification pass of [`check`](Self::check) on
    /// or off (on by default).  With simplification on, the assertion set is
    /// run through the [`Rewriter`] — rule-driven rewriting plus
    /// equality-driven variable elimination — before bit-blasting; models
    /// read back identically either way (eliminated variables are
    /// reconstructed from their defining equalities).
    pub fn set_simplify(&mut self, on: bool) {
        self.simplify = on;
    }

    /// Adds an assertion (must be a boolean term).
    ///
    /// # Panics
    ///
    /// Panics if `t` is not a boolean term — asserting a bit-vector has no
    /// meaning, so the misuse is rejected at the call site rather than
    /// surfacing as an encoding error later.
    pub fn assert_term(&mut self, tm: &TermManager, t: TermId) {
        assert!(tm.sort(t).is_bool(), "assertions must be boolean terms");
        self.assertions.push(t);
    }

    /// The asserted terms, in insertion order.
    pub fn assertions(&self) -> &[TermId] {
        &self.assertions
    }

    /// Removes all assertions (the model of a previous check is kept).
    pub fn reset(&mut self) {
        self.assertions.clear();
    }

    /// Limits the SAT conflict budget of subsequent checks; `None` means
    /// unlimited.  Exceeding the budget makes [`check`](Solver::check) return
    /// [`SatResult::Unknown`].
    pub fn set_conflict_limit(&mut self, limit: Option<u64>) {
        self.conflict_limit = limit;
    }

    /// Sets a wall-clock deadline for subsequent checks; a check that passes
    /// the deadline returns [`SatResult::Unknown`].
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
    }

    /// Attaches a *set* of cancellation flags: any raised flag cancels the
    /// check.  Independent cancellation sources (a caller's own flag, a
    /// batch's global flag) chain this way instead of replacing each other.
    /// Replaces previously attached flags; an empty set detaches.
    pub fn set_cancel_flags(&mut self, cancel: Vec<CancelFlag>) {
        self.cancel = cancel;
    }

    /// Caps the estimated SAT clause-arena + watcher bytes of subsequent
    /// checks; a check that exceeds the cap returns [`SatResult::Unknown`]
    /// with [`StopReason::MemoryBudget`] instead of growing without bound.
    /// `None` (default) means unlimited.
    pub fn set_memory_limit(&mut self, limit: Option<usize>) {
        self.memory_limit = limit;
    }

    /// Arms the deterministic fault-injection hooks (see
    /// [`FaultHooks`]) on the SAT solver of each subsequent check.
    pub fn set_fault_hooks(&mut self, fault: FaultHooks) {
        self.fault = fault;
    }

    /// Why the last check returned [`SatResult::Unknown`]; `None` after a
    /// conclusive verdict (or before any check).
    pub fn stop_reason(&self) -> Option<StopReason> {
        self.stop_reason
    }

    /// Statistics of the most recent check.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Decides satisfiability of the conjunction of all assertions.
    ///
    /// The `&mut TermManager` is needed because the simplification pass may
    /// create rewritten terms; with [`set_simplify`](Self::set_simplify) off
    /// the manager is not modified.
    pub fn check(&mut self, tm: &mut TermManager) -> SatResult {
        let start = Instant::now();
        // Word-level simplification: rewrite the assertion set modulo its
        // own equalities before anything is encoded.  Nothing is pre-encoded
        // in a scratch check, so every pinned variable can be eliminated.
        let mut rewriter = self.simplify.then(Rewriter::new);
        let to_assert: Vec<TermId> = match &mut rewriter {
            Some(rw) => rw.assert_simplify(tm, &self.assertions, &|_| false),
            None => self.assertions.clone(),
        };
        let mut blaster = BitBlaster::new();
        blaster.set_aig(self.aig);
        for &a in &to_assert {
            blaster.assert_true(tm, a);
        }
        let aig_stats = blaster.aig_stats();
        let (cnf, var_encodings) = blaster.into_parts();
        let cnf_vars = u64::from(cnf.num_vars());
        let cnf_clauses = cnf.num_clauses() as u64;
        let mut sat = SatSolver::from_cnf(cnf);
        sat.set_conflict_limit(self.conflict_limit);
        sat.set_deadline(self.deadline);
        sat.set_cancel_flags(self.cancel.clone());
        sat.set_memory_limit(self.memory_limit);
        sat.set_fault_hooks(self.fault);
        let outcome = sat.solve();
        self.stop_reason = sat.stop_reason();
        self.stats = SolverStats {
            cnf_vars,
            cnf_clauses,
            conflicts: sat.num_conflicts(),
            decisions: sat.num_decisions(),
            propagations: sat.num_propagations(),
            rewrite: rewriter.as_ref().map(Rewriter::stats).unwrap_or_default(),
            aig: aig_stats,
            duration: start.elapsed(),
        };
        match outcome {
            SolveOutcome::Sat => {
                let mut model = Model::read_back(&var_encodings, &sat);
                if let Some(rw) = &rewriter {
                    rw.complete_model(tm, model.assignment_mut());
                }
                self.last_model = Some(model);
                SatResult::Sat
            }
            SolveOutcome::Unsat => {
                self.last_model = None;
                SatResult::Unsat
            }
            SolveOutcome::Unknown => {
                self.last_model = None;
                SatResult::Unknown
            }
        }
    }

    /// The model of the last satisfiable check.
    ///
    /// The `TermManager` argument is accepted so call sites read naturally
    /// next to [`check`](Solver::check); it is not currently needed to
    /// reconstruct the model.
    ///
    /// # Panics
    ///
    /// Panics if the last check was not satisfiable.
    pub fn model(&self, _tm: &TermManager) -> &Model {
        self.last_model
            .as_ref()
            .expect("model requested but last check was not SAT")
    }

    /// The model of the last satisfiable check, if any.
    pub fn try_model(&self) -> Option<&Model> {
        self.last_model.as_ref()
    }
}

/// Convenience helper: checks whether `formula` is valid (true for all
/// assignments) by asserting its negation.
pub fn is_valid(tm: &mut TermManager, formula: TermId, conflict_limit: Option<u64>) -> SatResult {
    let negated = tm.not(formula);
    let mut solver = Solver::new();
    solver.set_conflict_limit(conflict_limit);
    solver.assert_term(tm, negated);
    match solver.check(tm) {
        SatResult::Sat => SatResult::Unsat, // counterexample exists => not valid
        SatResult::Unsat => SatResult::Sat, // negation unsatisfiable => valid
        SatResult::Unknown => SatResult::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort::Sort;

    #[test]
    fn finds_a_model_for_linear_equation() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(16));
        let y = tm.var("y", Sort::BitVec(16));
        let three = tm.bv_const(3, 16);
        let lhs = tm.bv_mul(x, three);
        let sum = tm.bv_add(lhs, y);
        let target = tm.bv_const(1000, 16);
        let goal = tm.eq(sum, target);
        let hundred = tm.bv_const(100, 16);
        let constraint = tm.bv_ult(y, hundred);

        let mut solver = Solver::new();
        solver.assert_term(&tm, goal);
        solver.assert_term(&tm, constraint);
        assert_eq!(solver.check(&mut tm), SatResult::Sat);
        let m = solver.model(&tm);
        let xv = m.value(x);
        let yv = m.value(y);
        assert_eq!((3 * xv + yv) & 0xffff, 1000);
        assert!(yv < 100);
        assert_eq!(m.eval(&tm, goal), 1);
    }

    #[test]
    fn detects_unsatisfiable_constraints() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(8));
        let five = tm.bv_const(5, 8);
        let six = tm.bv_const(6, 8);
        let a = tm.eq(x, five);
        let b = tm.eq(x, six);
        let mut solver = Solver::new();
        solver.assert_term(&tm, a);
        solver.assert_term(&tm, b);
        assert_eq!(solver.check(&mut tm), SatResult::Unsat);
        assert!(solver.try_model().is_none());
    }

    #[test]
    fn validity_helper_proves_commutativity() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(10));
        let y = tm.var("y", Sort::BitVec(10));
        let l = tm.bv_add(x, y);
        let r = tm.bv_add(y, x);
        let f = tm.eq(l, r);
        assert_eq!(is_valid(&mut tm, f, None), SatResult::Sat);
        // x + y == x is not valid
        let g = tm.eq(l, x);
        assert_eq!(is_valid(&mut tm, g, None), SatResult::Unsat);
    }

    #[test]
    fn stats_are_populated() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(24));
        let y = tm.var("y", Sort::BitVec(24));
        let p = tm.bv_mul(x, y);
        let c = tm.bv_const(0xbeef, 24);
        let goal = tm.eq(p, c);
        let mut solver = Solver::new();
        solver.assert_term(&tm, goal);
        let _ = solver.check(&mut tm);
        assert!(solver.stats().cnf_vars > 0);
        assert!(solver.stats().cnf_clauses > 0);
    }

    #[test]
    fn conflict_limit_yields_unknown_on_hard_instance() {
        let mut tm = TermManager::new();
        // A factoring-flavoured query that needs some search: x*y == large odd
        // constant with x,y > 1.
        let x = tm.var("x", Sort::BitVec(20));
        let y = tm.var("y", Sort::BitVec(20));
        let p = tm.bv_mul(x, y);
        let c = tm.bv_const(1048573, 20); // prime
        let goal = tm.eq(p, c);
        let one = tm.one(20);
        let gx = tm.bv_ugt(x, one);
        let gy = tm.bv_ugt(y, one);
        let mut solver = Solver::new();
        solver.assert_term(&tm, goal);
        solver.assert_term(&tm, gx);
        solver.assert_term(&tm, gy);
        solver.set_conflict_limit(Some(3));
        let r = solver.check(&mut tm);
        assert!(matches!(r, SatResult::Unknown | SatResult::Unsat));
    }

    #[test]
    #[should_panic(expected = "model requested")]
    fn model_panics_without_sat() {
        let tm = TermManager::new();
        let solver = Solver::new();
        let _ = solver.model(&tm);
    }

    #[test]
    #[should_panic(expected = "assertions must be boolean")]
    fn asserting_bitvector_panics() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(8));
        let mut solver = Solver::new();
        solver.assert_term(&tm, x);
    }
}
