//! A structurally hashed and-inverter graph (AIG) between bit-blasting and
//! CNF.
//!
//! The PR-3 pipeline lowered every word-level operator straight to Tseitin
//! clauses, so structurally identical logic — the same adder slice in the
//! original and the duplicated SQED datapath, the same comparator across two
//! BMC frames that the word-level caches happen to miss — was re-encoded and
//! re-learned from scratch.  This module inserts the classic gate-level IR in
//! between:
//!
//! * [`Aig`] — two-input AND nodes with complemented edges.  Node creation
//!   runs constant propagation, one-level rules (neutrality, idempotence,
//!   complement annihilation) and a two-level local-rewriting catalogue
//!   (contradiction, subsumption, substitution, idempotence and resolution —
//!   the Brummayer–Biere rules), then consults a structural-hashing table so
//!   an AND over operands already built returns the existing node.
//! * [`AigCnf`] — a polarity-aware Tseitin pass over the graph: each node
//!   gets at most one CNF variable (append-only, so SAT-level state built on
//!   earlier emissions stays valid), and only the implication clauses the
//!   requested polarity needs are emitted (Plaisted–Greenbaum).  Asking for
//!   the other polarity later adds the missing clauses — the encoding
//!   monotonically approaches the biconditional one, which keeps incremental
//!   assumption solving sound.
//! * [`AigStats`] — nodes created, strash hits, constants folded, rewrite
//!   hits and CNF variables/clauses emitted, surfaced through
//!   `EncodeStats` next to the word-level rewriting counters.
//!
//! Derived gates (`or`, `xor`, `mux`, …) are AND/complement compositions, so
//! the strash table shares their internal products too: `xor(a, b)` and
//! `eq(a, b)` differ by one complement edge and cost one node set.

use std::collections::HashMap;
use std::fmt;
use std::ops::Not;

use crate::cnf::{Cnf, Lit, Var};

/// An edge into the graph: a node index plus a complement flag, encoded as
/// `node * 2 + complemented` (mirroring [`Lit`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AigLit(u32);

impl AigLit {
    /// The constant-true literal (the un-complemented constant node).
    pub const TRUE: AigLit = AigLit(0);
    /// The constant-false literal (the complemented constant node).
    pub const FALSE: AigLit = AigLit(1);

    fn new(node: u32, complemented: bool) -> Self {
        AigLit(node * 2 + u32::from(complemented))
    }

    /// The node this edge points at.
    pub fn node(self) -> u32 {
        self.0 / 2
    }

    /// Whether the edge is complemented.
    pub fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    /// The constant value of the literal, if it is one of the two constants.
    pub fn const_value(self) -> Option<bool> {
        match self {
            AigLit::TRUE => Some(true),
            AigLit::FALSE => Some(false),
            _ => None,
        }
    }
}

impl Not for AigLit {
    type Output = AigLit;
    fn not(self) -> AigLit {
        AigLit(self.0 ^ 1)
    }
}

impl fmt::Display for AigLit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_complemented() {
            write!(f, "!n{}", self.node())
        } else {
            write!(f, "n{}", self.node())
        }
    }
}

/// The gate an AND node computes, as recognised by
/// [`Aig::gate_kind`] for native CNF emission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateKind {
    /// A plain two-input AND.
    And(AigLit, AigLit),
    /// The node equals `a ⊕ b` (an XOR built from three ANDs).
    Xor(AigLit, AigLit),
    /// The node equals `!(if c then t else e)` (a MUX built from three
    /// ANDs; the constructors return it complemented).
    NotMux(AigLit, AigLit, AigLit),
}

/// One graph node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AigNode {
    /// The constant-true node (always node 0).
    Const,
    /// A primary input (a bit of a term-level variable).
    Input,
    /// A two-input AND over two (possibly complemented) edges.
    And(AigLit, AigLit),
}

/// Counters of the gate-level layer, reported through `EncodeStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AigStats {
    /// AND nodes actually created (strash misses).
    pub nodes: u64,
    /// AND requests answered by the structural-hashing table.
    pub strash_hits: u64,
    /// AND requests folded away by constant propagation or the one-level
    /// rules (constant operand, idempotence, complement annihilation).
    pub consts_folded: u64,
    /// Two-level local-rewriting rule applications at node creation.
    pub rewrites: u64,
    /// CNF variables allocated by the Tseitin pass.
    pub cnf_vars: u64,
    /// CNF clauses emitted by the Tseitin pass (node definitions only —
    /// unit assertions are counted by the solver front-ends).
    pub cnf_clauses: u64,
}

impl AigStats {
    /// Merges another stats block into this one.
    pub fn absorb(&mut self, other: &AigStats) {
        self.nodes += other.nodes;
        self.strash_hits += other.strash_hits;
        self.consts_folded += other.consts_folded;
        self.rewrites += other.rewrites;
        self.cnf_vars += other.cnf_vars;
        self.cnf_clauses += other.cnf_clauses;
    }
}

/// The and-inverter graph under construction.
///
/// With structural hashing on (the default), node construction is
/// canonicalising: operands are ordered, constants and complements fold, the
/// two-level rule catalogue runs, and the strash table returns existing
/// nodes for repeated structure.  [`set_reduce`](Aig::set_reduce) turns
/// hashing *and* the rewrite catalogue off — every request creates a fresh
/// node, which is the faithful stand-in for the pre-AIG direct blasting used
/// by the `aig_off` differential/bench arms.
#[derive(Debug, Clone)]
pub struct Aig {
    nodes: Vec<AigNode>,
    /// `(smaller edge, larger edge) -> node index` for existing AND nodes.
    strash: HashMap<(u32, u32), u32>,
    reduce: bool,
    stats: AigStats,
}

impl Default for Aig {
    fn default() -> Self {
        Self::new()
    }
}

impl Aig {
    /// Creates a graph holding only the constant node.
    pub fn new() -> Self {
        Aig {
            nodes: vec![AigNode::Const],
            strash: HashMap::new(),
            reduce: true,
            stats: AigStats::default(),
        }
    }

    /// Turns structural hashing and the local rewrite catalogue on or off
    /// (constant propagation and the one-level rules always run — the
    /// pre-AIG gates folded those too, so the off position stays a faithful
    /// direct-blasting baseline).
    pub fn set_reduce(&mut self, on: bool) {
        self.reduce = on;
    }

    /// Number of nodes, including the constant node.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The node behind an index.
    pub fn node(&self, idx: u32) -> AigNode {
        self.nodes[idx as usize]
    }

    /// The counters accumulated so far (graph side only; the CNF fields are
    /// filled by [`AigCnf::stats`]).
    pub fn stats(&self) -> AigStats {
        self.stats
    }

    /// A fresh primary input.
    pub fn input(&mut self) -> AigLit {
        let idx = self.nodes.len() as u32;
        self.nodes.push(AigNode::Input);
        AigLit::new(idx, false)
    }

    /// The constant literal for `b`.
    pub fn const_lit(&self, b: bool) -> AigLit {
        if b {
            AigLit::TRUE
        } else {
            AigLit::FALSE
        }
    }

    /// The AND of two edges, canonicalised and structurally hashed.
    pub fn and(&mut self, a: AigLit, b: AigLit) -> AigLit {
        self.and_depth(a, b, 4)
    }

    /// The fanins of `l` when it is an un-complemented AND edge.
    fn and_fanins(&self, l: AigLit) -> Option<(AigLit, AigLit)> {
        if l.is_complemented() {
            return None;
        }
        match self.nodes[l.node() as usize] {
            AigNode::And(x, y) => Some((x, y)),
            _ => None,
        }
    }

    /// The fanins of `l` when it is a complemented AND edge.
    fn nand_fanins(&self, l: AigLit) -> Option<(AigLit, AigLit)> {
        if l.is_complemented() {
            self.and_fanins(!l)
        } else {
            None
        }
    }

    /// `and` with a recursion budget for the substitution rules (each
    /// application shrinks the term, but the budget keeps the worst case
    /// O(1) per created node).
    fn and_depth(&mut self, a: AigLit, b: AigLit, depth: u32) -> AigLit {
        // One-level rules: constants, idempotence, annihilation.
        match (a.const_value(), b.const_value()) {
            (Some(false), _) | (_, Some(false)) => {
                self.stats.consts_folded += 1;
                return AigLit::FALSE;
            }
            (Some(true), _) => {
                self.stats.consts_folded += 1;
                return b;
            }
            (_, Some(true)) => {
                self.stats.consts_folded += 1;
                return a;
            }
            _ => {}
        }
        if a == b {
            self.stats.consts_folded += 1;
            return a;
        }
        if a == !b {
            self.stats.consts_folded += 1;
            return AigLit::FALSE;
        }
        if self.reduce && depth > 0 {
            if let Some(r) = self.rewrite_two_level(a, b, depth) {
                return r;
            }
        }
        // Canonical operand order, then the strash table.
        let (a, b) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        if self.reduce {
            if let Some(&idx) = self.strash.get(&(a.0, b.0)) {
                self.stats.strash_hits += 1;
                return AigLit::new(idx, false);
            }
        }
        let idx = self.nodes.len() as u32;
        self.nodes.push(AigNode::And(a, b));
        if self.reduce {
            self.strash.insert((a.0, b.0), idx);
        }
        self.stats.nodes += 1;
        AigLit::new(idx, false)
    }

    /// The two-level rule catalogue (Brummayer–Biere local AIG rewriting):
    /// looks one level into AND/NAND operands for contradiction,
    /// subsumption, idempotence, substitution and resolution.  Returns
    /// `None` when no rule applies.
    fn rewrite_two_level(&mut self, a: AigLit, b: AigLit, depth: u32) -> Option<AigLit> {
        // Asymmetric rules, tried in both orientations.
        for (p, q) in [(a, b), (b, a)] {
            if let Some((x, y)) = self.and_fanins(p) {
                // contradiction: (x & y) & !x  ->  false
                if q == !x || q == !y {
                    self.stats.rewrites += 1;
                    return Some(AigLit::FALSE);
                }
                // idempotence: (x & y) & x  ->  x & y
                if q == x || q == y {
                    self.stats.rewrites += 1;
                    return Some(p);
                }
            }
            if let Some((x, y)) = self.nand_fanins(p) {
                // subsumption: !(x & y) & !x  ->  !x
                if q == !x || q == !y {
                    self.stats.rewrites += 1;
                    return Some(q);
                }
                // substitution: !(x & y) & x  ->  !y & x
                if q == x {
                    self.stats.rewrites += 1;
                    return Some(self.and_depth(!y, q, depth - 1));
                }
                if q == y {
                    self.stats.rewrites += 1;
                    return Some(self.and_depth(!x, q, depth - 1));
                }
            }
        }
        // Symmetric rules over two AND / two NAND operands.
        if let (Some((x, y)), Some((u, v))) = (self.and_fanins(a), self.and_fanins(b)) {
            // contradiction: (x & y) & (u & v) with complementary factors
            if x == !u || x == !v || y == !u || y == !v {
                self.stats.rewrites += 1;
                return Some(AigLit::FALSE);
            }
        }
        if let (Some((x, y)), Some((u, v))) = (self.nand_fanins(a), self.nand_fanins(b)) {
            // resolution: !(x & y) & !(x & !y)  ->  !x
            let resolved = if (x == u && y == !v) || (x == v && y == !u) {
                Some(!x)
            } else if (y == u && x == !v) || (y == v && x == !u) {
                Some(!y)
            } else {
                None
            };
            if let Some(r) = resolved {
                self.stats.rewrites += 1;
                return Some(r);
            }
        }
        None
    }

    /// Recognises the gate a node computes, looking through the AND/NAND
    /// structure for the XOR and MUX shapes the derived-gate constructors
    /// build (`and(!and(p, q), !and(!p, !q))` is `p ⊕ q`;
    /// `and(!and(c, t), !and(!c, e))` is `!mux(c, t, e)`).  The CNF emitter
    /// uses this to encode those gates natively — the multi-literal XOR/MUX
    /// clauses propagate much better than the decomposed AND trees, and the
    /// internal nodes need no variables at all — while the graph itself
    /// stays a pure AIG that the strash table shares structurally.
    pub fn gate_kind(&self, node: u32) -> Option<GateKind> {
        let AigNode::And(a, b) = self.nodes[node as usize] else {
            return None;
        };
        if let (Some((p, q)), Some((r, s))) = (self.nand_fanins(a), self.nand_fanins(b)) {
            // XOR: the two product terms cover complementary input pairs.
            if (r == !p && s == !q) || (r == !q && s == !p) {
                return Some(GateKind::Xor(p, q));
            }
            // !MUX: exactly one complementary pair — its literal is the
            // select, the leftover fanins are the branches.
            for (c, t, e) in [(p, q, s), (p, q, r), (q, p, s), (q, p, r)] {
                let other = if e == s { r } else { s };
                if other == !c {
                    return Some(GateKind::NotMux(c, t, e));
                }
            }
        }
        Some(GateKind::And(a, b))
    }

    /// The OR of two edges.
    pub fn or(&mut self, a: AigLit, b: AigLit) -> AigLit {
        let n = self.and(!a, !b);
        !n
    }

    /// The XOR of two edges: `!(!(a & !b) & !(!a & b))`.
    pub fn xor(&mut self, a: AigLit, b: AigLit) -> AigLit {
        let p = self.and(a, !b);
        let q = self.and(!a, b);
        let n = self.and(!p, !q);
        !n
    }

    /// The boolean equivalence of two edges (one complement away from
    /// [`xor`](Self::xor), so the internal products are shared).
    pub fn iff(&mut self, a: AigLit, b: AigLit) -> AigLit {
        !self.xor(a, b)
    }

    /// The implication `a -> b`.
    pub fn implies(&mut self, a: AigLit, b: AigLit) -> AigLit {
        self.or(!a, b)
    }

    /// The multiplexer `if c then t else e`.
    pub fn mux(&mut self, c: AigLit, t: AigLit, e: AigLit) -> AigLit {
        if t == e {
            return t;
        }
        let p = self.and(c, t);
        let q = self.and(!c, e);
        let n = self.and(!p, !q);
        !n
    }

    /// Evaluates a literal under an assignment of the inputs (used by the
    /// unit tests; missing inputs default to false).
    #[cfg(test)]
    fn eval(&self, l: AigLit, inputs: &HashMap<u32, bool>) -> bool {
        let v = match self.nodes[l.node() as usize] {
            AigNode::Const => true,
            AigNode::Input => *inputs.get(&l.node()).unwrap_or(&false),
            AigNode::And(a, b) => self.eval(a, inputs) && self.eval(b, inputs),
        };
        v != l.is_complemented()
    }
}

/// Polarity needed of a node definition: bit 0 = the node literal may be
/// forced true (clauses `v -> fanins`), bit 1 = it may be forced false
/// (clause `fanins -> v`).
const POL_POS: u8 = 1;
const POL_NEG: u8 = 2;

/// The polarity-aware Tseitin pass: AIG literals to CNF literals.
///
/// The node→variable mapping is **append-only**: once a node has a CNF
/// variable it keeps it forever, and clauses are only ever added, never
/// retracted.  A long-lived SAT solver built on top (learnt clauses, VSIDS,
/// saved phases, the clause-database reduction machinery) therefore stays
/// valid across any number of emission calls — the incremental contract the
/// BMC and CEGIS drivers rely on.
///
/// With polarity awareness on (the default), [`require`](AigCnf::require)
/// emits, per node, only the implication clauses needed for the requested
/// polarity of its cone (Plaisted–Greenbaum); nodes shared between
/// assertions get their definition once, and a later request for the other
/// polarity adds just the missing clauses.  With it off, every touched node
/// is defined biconditionally — the direct-blasting baseline.
#[derive(Debug, Clone)]
pub struct AigCnf {
    /// Node index → CNF variable, allocated on first need.
    node_var: Vec<Option<Var>>,
    /// Per-node emitted-polarity mask ([`POL_POS`] / [`POL_NEG`]).
    emitted: Vec<u8>,
    polarity_aware: bool,
    vars_emitted: u64,
    clauses_emitted: u64,
}

impl AigCnf {
    /// Creates an emitter whose constant node maps to `true_var` (the caller
    /// owns the unit clause asserting it).
    pub fn new(true_var: Var) -> Self {
        AigCnf {
            node_var: vec![Some(true_var)],
            emitted: vec![POL_POS | POL_NEG],
            polarity_aware: true,
            vars_emitted: 0,
            clauses_emitted: 0,
        }
    }

    /// Turns polarity awareness off: subsequent emissions define every
    /// touched node biconditionally (both implication directions).
    pub fn set_polarity_aware(&mut self, on: bool) {
        self.polarity_aware = on;
    }

    /// CNF variables/clauses emitted so far (the graph-side fields are
    /// zero; the blaster joins both halves).
    pub fn stats(&self) -> AigStats {
        AigStats {
            cnf_vars: self.vars_emitted,
            cnf_clauses: self.clauses_emitted,
            ..AigStats::default()
        }
    }

    /// Pre-assigns a CNF variable to an input node (the bit-blaster
    /// allocates variable bits eagerly so model read-back literals exist
    /// even when no clause mentions them).
    pub fn register_input(&mut self, l: AigLit, var: Var) {
        debug_assert!(!l.is_complemented(), "inputs are registered positively");
        self.reserve(l.node());
        let slot = &mut self.node_var[l.node() as usize];
        debug_assert!(slot.is_none(), "input already registered");
        *slot = Some(var);
    }

    fn reserve(&mut self, node: u32) {
        let needed = node as usize + 1;
        if self.node_var.len() < needed {
            self.node_var.resize(needed, None);
            self.emitted.resize(needed, 0);
        }
    }

    fn var_of(&mut self, cnf: &mut Cnf, node: u32) -> Var {
        self.reserve(node);
        if let Some(v) = self.node_var[node as usize] {
            return v;
        }
        let v = cnf.fresh_var();
        self.node_var[node as usize] = Some(v);
        self.vars_emitted += 1;
        v
    }

    /// The CNF literal of an edge, allocating the node variable if needed
    /// (no clauses are emitted — pair with [`require`](Self::require) before
    /// asserting or assuming the literal).
    pub fn lit_of(&mut self, cnf: &mut Cnf, l: AigLit) -> Lit {
        let v = self.var_of(cnf, l.node());
        Lit::new(v, !l.is_complemented())
    }

    /// Emits the definition clauses the cone of `root` needs so that
    /// asserting (or assuming) the returned literal means exactly "`root`
    /// holds", and returns that literal.
    ///
    /// Per Plaisted–Greenbaum, a literal occurring positively needs only the
    /// `node -> fanins` half of each definition on un-complemented paths and
    /// the `fanins -> node` half on complemented ones; everything already
    /// emitted (by any earlier call, for any earlier polarity) is skipped.
    pub fn require(&mut self, aig: &Aig, cnf: &mut Cnf, root: AigLit) -> Lit {
        let out = self.lit_of(cnf, root);
        let root_pol = if root.is_complemented() {
            POL_NEG
        } else {
            POL_POS
        };
        let mut stack: Vec<(u32, u8)> = vec![(root.node(), root_pol)];
        while let Some((node, pol)) = stack.pop() {
            let pol = if self.polarity_aware {
                pol
            } else {
                POL_POS | POL_NEG
            };
            self.reserve(node);
            let missing = pol & !self.emitted[node as usize];
            if missing == 0 {
                continue;
            }
            self.emitted[node as usize] |= missing;
            let Some(kind) = aig.gate_kind(node) else {
                continue; // constants and inputs have no definition
            };
            let v = Lit::pos(self.var_of(cnf, node));
            match kind {
                GateKind::And(a, b) => {
                    let la = self.lit_of(cnf, a);
                    let lb = self.lit_of(cnf, b);
                    if missing & POL_POS != 0 {
                        cnf.add_clause([!v, la]);
                        cnf.add_clause([!v, lb]);
                        self.clauses_emitted += 2;
                    }
                    if missing & POL_NEG != 0 {
                        cnf.add_clause([v, !la, !lb]);
                        self.clauses_emitted += 1;
                    }
                    for edge in [a, b] {
                        let mut child = 0u8;
                        if missing & POL_POS != 0 {
                            child |= if edge.is_complemented() {
                                POL_NEG
                            } else {
                                POL_POS
                            };
                        }
                        if missing & POL_NEG != 0 {
                            child |= if edge.is_complemented() {
                                POL_POS
                            } else {
                                POL_NEG
                            };
                        }
                        stack.push((edge.node(), child));
                    }
                }
                GateKind::Xor(a, b) => {
                    // Native XOR clauses over the grandchildren — the
                    // internal product nodes get neither variables nor
                    // definitions for this occurrence.
                    let la = self.lit_of(cnf, a);
                    let lb = self.lit_of(cnf, b);
                    if missing & POL_POS != 0 {
                        cnf.add_clause([!v, la, lb]);
                        cnf.add_clause([!v, !la, !lb]);
                        self.clauses_emitted += 2;
                    }
                    if missing & POL_NEG != 0 {
                        cnf.add_clause([v, la, !lb]);
                        cnf.add_clause([v, !la, lb]);
                        self.clauses_emitted += 2;
                    }
                    // Every clause mentions both phases of both operands.
                    stack.push((a.node(), POL_POS | POL_NEG));
                    stack.push((b.node(), POL_POS | POL_NEG));
                }
                GateKind::NotMux(c, t, e) => {
                    // Native (complemented) MUX clauses, including the
                    // redundant but propagation-friendly branch pair.
                    let lc = self.lit_of(cnf, c);
                    let lt = self.lit_of(cnf, t);
                    let le = self.lit_of(cnf, e);
                    if missing & POL_POS != 0 {
                        cnf.add_clause([!v, !lc, !lt]);
                        cnf.add_clause([!v, lc, !le]);
                        cnf.add_clause([!v, !lt, !le]);
                        self.clauses_emitted += 3;
                    }
                    if missing & POL_NEG != 0 {
                        cnf.add_clause([v, !lc, lt]);
                        cnf.add_clause([v, lc, le]);
                        cnf.add_clause([v, lt, le]);
                        self.clauses_emitted += 3;
                    }
                    for edge in [c, t, e] {
                        stack.push((edge.node(), POL_POS | POL_NEG));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::{SatSolver, SolveOutcome};

    #[test]
    fn literal_encoding_roundtrips() {
        let mut g = Aig::new();
        let a = g.input();
        assert!(!a.is_complemented());
        assert!((!a).is_complemented());
        assert_eq!(!!a, a);
        assert_eq!(AigLit::TRUE.const_value(), Some(true));
        assert_eq!(AigLit::FALSE.const_value(), Some(false));
        assert_eq!(!AigLit::TRUE, AigLit::FALSE);
        assert_eq!(a.const_value(), None);
    }

    #[test]
    fn constant_propagation_folds_ands() {
        let mut g = Aig::new();
        let a = g.input();
        let t = g.const_lit(true);
        let f = g.const_lit(false);
        assert_eq!(g.and(a, t), a);
        assert_eq!(g.and(t, a), a);
        assert_eq!(g.and(a, f), AigLit::FALSE);
        assert_eq!(g.and(a, a), a);
        assert_eq!(g.and(a, !a), AigLit::FALSE);
        assert_eq!(g.num_nodes(), 2, "no AND node was created");
        assert_eq!(g.stats().consts_folded, 5);
    }

    #[test]
    fn structural_hashing_shares_nodes() {
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let n1 = g.and(a, b);
        let n2 = g.and(b, a); // operand order is canonicalised
        assert_eq!(n1, n2);
        let x1 = g.xor(a, b);
        let x2 = g.xor(b, a);
        assert_eq!(x1, x2);
        let e = g.iff(a, b);
        assert_eq!(e, !x1, "iff is one complement away from xor");
        let stats = g.stats();
        assert!(stats.strash_hits >= 4, "strash hits: {}", stats.strash_hits);
    }

    #[test]
    fn two_level_rules_fire() {
        let mut g = Aig::new();
        let x = g.input();
        let y = g.input();
        let xy = g.and(x, y);
        // contradiction: (x & y) & !x
        assert_eq!(g.and(xy, !x), AigLit::FALSE);
        // idempotence: (x & y) & y
        assert_eq!(g.and(xy, y), xy);
        // subsumption: !(x & y) & !y
        assert_eq!(g.and(!xy, !y), !y);
        // substitution: !(x & y) & x == !y & x
        let sub = g.and(!xy, x);
        let want = g.and(!y, x);
        assert_eq!(sub, want);
        // resolution: !(x & y) & !(x & !y) == !x
        let xny = g.and(x, !y);
        assert_eq!(g.and(!xy, !xny), !x);
        // symmetric contradiction: (x & y) & (!x & y)... folds via (!x & y)
        let nxy = g.and(!x, y);
        assert_eq!(g.and(xy, nxy), AigLit::FALSE);
        assert!(g.stats().rewrites >= 6);
    }

    #[test]
    fn reduce_off_creates_fresh_nodes_but_still_folds_constants() {
        let mut g = Aig::new();
        g.set_reduce(false);
        let a = g.input();
        let b = g.input();
        let n1 = g.and(a, b);
        let n2 = g.and(a, b);
        assert_ne!(n1, n2, "strash off: no sharing");
        let t = g.const_lit(true);
        assert_eq!(g.and(a, t), a, "one-level folding stays on");
        assert_eq!(g.stats().strash_hits, 0);
    }

    #[test]
    fn derived_gates_match_truth_tables() {
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let c = g.input();
        let gates = [
            g.and(a, b),
            g.or(a, b),
            g.xor(a, b),
            g.iff(a, b),
            g.implies(a, b),
            g.mux(c, a, b),
        ];
        for bits in 0..8u32 {
            let (av, bv, cv) = (bits & 1 != 0, bits & 2 != 0, bits & 4 != 0);
            let env: HashMap<u32, bool> = [(a.node(), av), (b.node(), bv), (c.node(), cv)].into();
            let want = [
                av && bv,
                av || bv,
                av ^ bv,
                av == bv,
                !av || bv,
                if cv { av } else { bv },
            ];
            for (gate, expect) in gates.iter().zip(want) {
                assert_eq!(g.eval(*gate, &env), expect, "{gate} on {bits:03b}");
            }
        }
    }

    /// Emits `root` into a fresh CNF (with the true-var unit clause) and
    /// returns the solver plus the literal.
    fn emit(g: &Aig, root: AigLit, polarity_aware: bool) -> (Cnf, AigCnf, Lit) {
        let mut cnf = Cnf::new();
        let t = cnf.fresh_var();
        cnf.add_clause([Lit::pos(t)]);
        let mut e = AigCnf::new(t);
        e.set_polarity_aware(polarity_aware);
        let l = e.require(g, &mut cnf, root);
        (cnf, e, l)
    }

    #[test]
    fn polarity_aware_emission_is_equisatisfiable() {
        // (a ^ b) & (a | c): satisfiable; conjoined with a=b and c=false it
        // is not.
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let c = g.input();
        let x = g.xor(a, b);
        let o = g.or(a, c);
        let root = g.and(x, o);
        for pa in [true, false] {
            let (mut cnf, mut e, l) = emit(&g, root, pa);
            cnf.add_clause([l]);
            let mut sat = SatSolver::from_cnf(cnf.clone());
            assert_eq!(sat.solve(), SolveOutcome::Sat);
            // force a=b (both false) and c=false: the root is false
            let la = e.lit_of(&mut cnf, a);
            let lb = e.lit_of(&mut cnf, b);
            let lc = e.lit_of(&mut cnf, c);
            cnf.add_clause([!la]);
            cnf.add_clause([!lb]);
            cnf.add_clause([!lc]);
            let mut sat = SatSolver::from_cnf(cnf);
            assert_eq!(sat.solve(), SolveOutcome::Unsat);
        }
    }

    #[test]
    fn polarity_aware_models_evaluate_the_circuit() {
        // Assert !(a & b): polarity-aware emission uses only the negative
        // half of the AND definition, and any model's inputs must satisfy
        // the circuit.
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let n = g.and(a, b);
        let (mut cnf, mut e, l) = emit(&g, !n, true);
        cnf.add_clause([l]);
        let la = e.lit_of(&mut cnf, a);
        let lb = e.lit_of(&mut cnf, b);
        let mut sat = SatSolver::from_cnf(cnf);
        assert_eq!(sat.solve(), SolveOutcome::Sat);
        let av = sat.value_of(la.var());
        let bv = sat.value_of(lb.var());
        assert!(!(av && bv), "model must falsify a & b");
    }

    #[test]
    fn polarity_aware_emits_fewer_clauses_and_tops_up_on_demand() {
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let c = g.input();
        let ab = g.and(a, b);
        let root = g.and(ab, c);
        let (mut cnf, mut e, _) = emit(&g, root, true);
        let pos_only = e.stats().cnf_clauses;
        assert_eq!(pos_only, 4, "two nodes, two positive clauses each");
        // Requiring the complement adds exactly the missing negative halves.
        let _ = e.require(&g, &mut cnf, !root);
        assert_eq!(e.stats().cnf_clauses, 6);
        // Re-requiring either polarity is free.
        let _ = e.require(&g, &mut cnf, root);
        let _ = e.require(&g, &mut cnf, !root);
        assert_eq!(e.stats().cnf_clauses, 6);
        // The biconditional baseline pays all three clauses per node upfront.
        let (_, e2, _) = emit(&g, root, false);
        assert_eq!(e2.stats().cnf_clauses, 6);
    }

    #[test]
    fn gate_kind_recognises_derived_gates() {
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let c = g.input();
        let x = g.xor(a, b);
        // `xor` returns the complemented node, whose gate is the xnor —
        // i.e. an XOR over one complemented operand, in either orientation.
        assert!(matches!(
            g.gate_kind(x.node()),
            Some(GateKind::Xor(p, q)) if (p == a && q == !b) || (p == !b && q == a)
                || (p == !a && q == b) || (p == b && q == !a)
        ));
        let m = g.mux(c, a, b);
        assert!(matches!(g.gate_kind(m.node()), Some(GateKind::NotMux(..))));
        let n = g.and(a, b);
        assert!(matches!(g.gate_kind(n.node()), Some(GateKind::And(..))));
        assert!(g.gate_kind(a.node()).is_none(), "inputs are not gates");
    }

    #[test]
    fn native_xor_and_mux_emission_matches_the_circuit() {
        // Biconditional emission forces the root variable to the circuit
        // value under every input assignment.
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let c = g.input();
        let roots = [g.xor(a, b), g.mux(c, a, b), g.iff(a, b)];
        let mut cnf = Cnf::new();
        let t = cnf.fresh_var();
        cnf.add_clause([Lit::pos(t)]);
        let mut e = AigCnf::new(t);
        e.set_polarity_aware(false);
        let root_lits: Vec<Lit> = roots.iter().map(|&r| e.require(&g, &mut cnf, r)).collect();
        let la = e.lit_of(&mut cnf, a);
        let lb = e.lit_of(&mut cnf, b);
        let lc = e.lit_of(&mut cnf, c);
        let mut sat = SatSolver::from_cnf(cnf);
        for bits in 0..8u32 {
            let (av, bv, cv) = (bits & 1 != 0, bits & 2 != 0, bits & 4 != 0);
            let assumps = [
                if av { la } else { !la },
                if bv { lb } else { !lb },
                if cv { lc } else { !lc },
            ];
            assert_eq!(sat.solve_under_assumptions(&assumps), SolveOutcome::Sat);
            let env: HashMap<u32, bool> = [(a.node(), av), (b.node(), bv), (c.node(), cv)].into();
            for (&root, &l) in roots.iter().zip(&root_lits) {
                let got = sat.value_of(l.var()) == l.is_positive();
                assert_eq!(got, g.eval(root, &env), "{root} on {bits:03b}");
            }
        }
    }

    #[test]
    fn node_variable_mapping_is_append_only() {
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let n = g.and(a, b);
        let mut cnf = Cnf::new();
        let t = cnf.fresh_var();
        cnf.add_clause([Lit::pos(t)]);
        let mut e = AigCnf::new(t);
        let first = e.require(&g, &mut cnf, n);
        let again = e.require(&g, &mut cnf, n);
        assert_eq!(first, again);
        let neg = e.require(&g, &mut cnf, !n);
        assert_eq!(neg, !first, "same variable, complemented literal");
    }
}
