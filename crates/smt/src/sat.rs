//! A CDCL SAT solver.
//!
//! The solver implements the standard conflict-driven clause-learning loop:
//! two-watched-literal propagation, first-UIP conflict analysis, VSIDS-style
//! branching with phase saving, Luby restarts and activity/LBD-based learnt
//! clause database reduction.  It is deliberately self-contained (no
//! dependencies) and deterministic, so every experiment in the reproduction
//! is repeatable.
//!
//! The solver is *incremental* in the MiniSat sense: clauses may be added
//! between calls, and [`SatSolver::solve_under_assumptions`] decides
//! satisfiability under a set of assumption literals that are retracted when
//! the call returns.  Learnt clauses, variable activities and saved phases
//! all persist across calls, so sequences of closely related queries (BMC
//! depth sweeps, CEGIS refinements) reuse the work of earlier calls.  When a
//! call returns [`SolveOutcome::Unsat`] because of the assumptions,
//! [`SatSolver::unsat_assumptions`] yields the subset of assumptions that
//! participated in the final conflict (an unsat core over assumptions).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::cnf::{Clause, Cnf, Lit, Var};

/// A shared cancellation flag: set it from any thread and every solver
/// holding a clone abandons its in-flight search with
/// [`SolveOutcome::Unknown`] at the next check point (the same sampled spot
/// where the wall-clock deadline is polled).  This is what lets a parallel
/// detection batch cut every worker loose when a global time budget expires,
/// and what lets a portfolio run cancel the losing arms the moment the first
/// one finishes.
pub type CancelFlag = Arc<AtomicBool>;

/// Why a call gave up with [`SolveOutcome::Unknown`] (or why a detection
/// run ended without a verdict) — the error taxonomy of the whole stack.
///
/// Every layer that can abandon work (`SatSolver`, the SMT front-ends, the
/// BMC driver, the parallel detection engine) reports one of these instead
/// of an undifferentiated "unknown", so a server loop can tell a job that
/// needs a bigger budget from one that was cancelled or crashed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StopReason {
    /// The wall-clock deadline passed.
    Deadline,
    /// The conflict budget was exhausted.
    ConflictBudget,
    /// The memory budget (clause arena + watcher estimate) was exceeded.
    MemoryBudget,
    /// A shared cancellation flag was raised from outside.
    Cancelled,
    /// The job panicked and was caught by the isolation layer.  Never
    /// produced by the solver itself; the parallel engine maps caught
    /// panics to this variant so they share the taxonomy.
    Panicked,
    /// The solver produced a counterexample, but replaying it on the
    /// concrete processor twin did not reproduce the inconsistency.  Never
    /// produced by the solver itself; the detection layer's witness
    /// self-check demotes the would-be `Bug` verdict to this structured
    /// failure instead of reporting a silently wrong result.
    WitnessMismatch,
    /// An unbounded prover produced an inductive-invariant certificate, but
    /// re-checking its proof obligations on a fresh independent solver did
    /// not confirm them.  Never produced by the solver itself; the
    /// detection layer's proof self-check demotes the would-be `Proved`
    /// verdict to this structured failure — the proof-side twin of
    /// [`StopReason::WitnessMismatch`].
    ProofMismatch,
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            StopReason::Deadline => "deadline",
            StopReason::ConflictBudget => "conflict-budget",
            StopReason::MemoryBudget => "memory-budget",
            StopReason::Cancelled => "cancelled",
            StopReason::Panicked => "panicked",
            StopReason::WitnessMismatch => "witness-mismatch",
            StopReason::ProofMismatch => "proof-mismatch",
        };
        write!(f, "{s}")
    }
}

/// Deterministic fault-injection hooks for the SAT core (test-only in
/// spirit, but compiled in: the checks are two `Option` compares per
/// conflict, noise next to conflict analysis).
///
/// Both hooks key on the solver's *cumulative* conflict counter, which is
/// deterministic for a fixed formula and configuration — so a forced fault
/// lands at exactly the same point on every run, which is what lets the
/// recovery paths be tested by counters instead of wall clock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultHooks {
    /// Panic (deliberately) once the cumulative conflict count reaches this
    /// value — exercises the panic-isolation layer above.
    pub panic_at_conflict: Option<u64>,
    /// Report a fake memory-budget breach once the cumulative conflict
    /// count reaches this value — exercises the [`StopReason::MemoryBudget`]
    /// path without allocating anything.
    pub memory_breach_at_conflict: Option<u64>,
}

impl FaultHooks {
    /// Whether no hook is armed.
    pub fn is_empty(&self) -> bool {
        self.panic_at_conflict.is_none() && self.memory_breach_at_conflict.is_none()
    }
}

/// Result of a SAT call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveOutcome {
    /// A satisfying assignment was found; read it back with
    /// [`SatSolver::value_of`].
    Sat,
    /// The formula is unsatisfiable.
    Unsat,
    /// The conflict budget was exhausted before a verdict.
    Unknown,
}

/// Conflicts before the first learnt-database reduction (the interval then
/// grows geometrically by [`REDUCE_GROWTH`] per pass).
const DEFAULT_REDUCE_INTERVAL: u64 = 2000;

/// Numerator/denominator of the geometric growth of the reduction interval.
const REDUCE_GROWTH: (u64, u64) = (13, 10);

/// Live learnt clauses that force a reduction even before the conflict
/// schedule fires (grows geometrically like the interval).
const DEFAULT_REDUCE_CAP: u64 = 4000;

const UNASSIGNED: i8 = 0;
const VALUE_TRUE: i8 = 1;
const VALUE_FALSE: i8 = -1;

/// Outcome of one decision step of the search loop.
enum Decision {
    /// A (pseudo-)decision was enqueued; keep propagating.
    Continue,
    /// Every variable is assigned: the formula is satisfiable.
    Sat,
    /// This assumption is falsified by the current trail.
    FailedAssumption(Lit),
}

#[derive(Debug, Clone)]
struct ClauseData {
    lits: Vec<Lit>,
    learnt: bool,
    lbd: u32,
    activity: f64,
}

/// Counters of the learnt-clause database reduction.
///
/// Long-lived incremental solvers accumulate learnt clauses across calls;
/// the periodic [`reduce_db`](SatSolver) passes delete the cold half of them
/// and compact the clause arena so the memory is actually returned.  These
/// counters quantify that: how often reduction ran, how much it deleted, and
/// the high-water mark of live learnt clauses (the bound on what an
/// unreduced solver would have retained is `clauses_deleted +` the current
/// live count).
#[derive(Debug, Clone, Copy, Default)]
pub struct ReduceStats {
    /// Reduction passes run so far.
    pub reductions: u64,
    /// Learnt clauses deleted over all passes.
    pub clauses_deleted: u64,
    /// Literal slots returned to memory by arena compaction.
    pub literals_freed: u64,
    /// Most live learnt clauses ever resident at once.
    pub learnt_high_water: u64,
}

/// Indexed max-heap over variable activities (MiniSat-style order heap).
#[derive(Debug, Default, Clone)]
struct VarOrder {
    heap: Vec<Var>,
    positions: Vec<Option<usize>>,
}

impl VarOrder {
    fn grow(&mut self, n: usize) {
        if self.positions.len() < n {
            self.positions.resize(n, None);
        }
    }

    fn contains(&self, v: Var) -> bool {
        self.positions.get(v.index()).copied().flatten().is_some()
    }

    fn insert(&mut self, v: Var, activity: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.grow(v.index() + 1);
        let i = self.heap.len();
        self.heap.push(v);
        self.positions[v.index()] = Some(i);
        self.sift_up(i, activity);
    }

    fn pop_max(&mut self, activity: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().expect("heap not empty");
        self.positions[top.index()] = None;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.positions[last.index()] = Some(0);
            self.sift_down(0, activity);
        }
        Some(top)
    }

    fn update(&mut self, v: Var, activity: &[f64]) {
        if let Some(i) = self.positions.get(v.index()).copied().flatten() {
            self.sift_up(i, activity);
        }
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if activity[self.heap[i].index()] > activity[self.heap[parent].index()] {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len()
                && activity[self.heap[l].index()] > activity[self.heap[best].index()]
            {
                best = l;
            }
            if r < self.heap.len()
                && activity[self.heap[r].index()] > activity[self.heap[best].index()]
            {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.positions[self.heap[i].index()] = Some(i);
        self.positions[self.heap[j].index()] = Some(j);
    }

    /// Restores the heap property after an out-of-band activity change
    /// (bottom-up heapify, O(n)).
    fn rebuild(&mut self, activity: &[f64]) {
        for i in (0..self.heap.len() / 2).rev() {
            self.sift_down(i, activity);
        }
    }
}

/// The CDCL solver.
///
/// Typical use: construct with [`SatSolver::from_cnf`] (or add clauses with
/// [`SatSolver::add_clause`]), call [`SatSolver::solve`], and on
/// [`SolveOutcome::Sat`] read variable values with [`SatSolver::value_of`].
#[derive(Debug, Clone)]
pub struct SatSolver {
    clauses: Vec<ClauseData>,
    watches: Vec<Vec<u32>>,
    assign: Vec<i8>,
    level: Vec<u32>,
    reason: Vec<Option<u32>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    order: VarOrder,
    phase: Vec<bool>,
    seen: Vec<bool>,
    ok: bool,
    num_vars: u32,
    conflicts: u64,
    decisions: u64,
    propagations: u64,
    conflict_limit: Option<u64>,
    /// Conflicts between learnt-database reductions; grows geometrically
    /// after each pass so reduction stays cheap relative to search.
    reduce_interval: u64,
    /// Conflict count at which the next reduction fires.
    reduce_next: u64,
    /// Live-learnt-count safety cap that also fires a reduction.
    reduce_cap: u64,
    reduce_stats: ReduceStats,
    /// Assumption literals of the solve call in progress (enqueued as
    /// pseudo-decisions on their own levels, retracted on return).
    assumptions: Vec<Lit>,
    /// Subset of the assumptions responsible for the last assumption-caused
    /// UNSAT answer.
    conflict_core: Vec<Lit>,
    /// Assignment snapshot of the last SAT answer (the trail itself is
    /// unwound to level 0 between calls so clauses can keep being added).
    model: Vec<i8>,
    /// Live (non-deleted) learnt clauses, kept as a counter so the search
    /// loop's database-reduction trigger is O(1) instead of O(|arena|).
    num_learnt_live: usize,
    /// Wall-clock deadline for the current solve call; exceeding it yields
    /// [`SolveOutcome::Unknown`] (checked every few conflicts, so a call
    /// overruns the deadline by at most a short burst of conflicts).
    deadline: Option<Instant>,
    /// Externally shared cancellation flags, polled at the same sampled
    /// check point as the deadline; any raised flag yields
    /// [`SolveOutcome::Unknown`] and leaves the solver reusable.  A `Vec`
    /// so independent cancellation sources chain instead of replacing each
    /// other (a caller's private flag plus a batch's global flag).
    cancel: Vec<CancelFlag>,
    /// Byte budget for the clause arena + watcher estimate; exceeding it at
    /// the sampled check point yields [`SolveOutcome::Unknown`] with
    /// [`StopReason::MemoryBudget`].
    memory_limit: Option<usize>,
    /// Live literal slots in the clause arena, maintained incrementally so
    /// [`memory_estimate`](Self::memory_estimate) never scans the arena.
    lit_slots: usize,
    /// High-water mark of the memory estimate (sampled alongside the
    /// deadline poll).
    mem_high_water: usize,
    /// Why the last call returned [`SolveOutcome::Unknown`]; `None` after a
    /// verdict.
    stop_reason: Option<StopReason>,
    /// Deterministic fault-injection hooks (empty by default).
    fault: FaultHooks,
}

impl Default for SatSolver {
    fn default() -> Self {
        Self::new()
    }
}

impl SatSolver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        SatSolver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            order: VarOrder::default(),
            phase: Vec::new(),
            seen: Vec::new(),
            ok: true,
            num_vars: 0,
            conflicts: 0,
            decisions: 0,
            propagations: 0,
            conflict_limit: None,
            reduce_interval: DEFAULT_REDUCE_INTERVAL,
            reduce_next: DEFAULT_REDUCE_INTERVAL,
            reduce_cap: DEFAULT_REDUCE_CAP,
            reduce_stats: ReduceStats::default(),
            assumptions: Vec::new(),
            conflict_core: Vec::new(),
            model: Vec::new(),
            num_learnt_live: 0,
            deadline: None,
            cancel: Vec::new(),
            memory_limit: None,
            lit_slots: 0,
            mem_high_water: 0,
            stop_reason: None,
            fault: FaultHooks::default(),
        }
    }

    /// Builds a solver pre-loaded with the clauses of `cnf`.
    ///
    /// Takes the formula by value so the clause storage moves straight into
    /// the solver; callers that need to keep their `Cnf` clone explicitly.
    pub fn from_cnf(cnf: Cnf) -> Self {
        let mut s = Self::new();
        s.reserve_vars(cnf.num_vars());
        for clause in cnf.into_clauses() {
            s.add_clause(clause);
        }
        s
    }

    /// Ensures variables `0..n` exist.
    pub fn reserve_vars(&mut self, n: u32) {
        while self.num_vars < n {
            self.new_var();
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.num_vars);
        self.num_vars += 1;
        self.assign.push(UNASSIGNED);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.insert(v, &self.activity);
        v
    }

    /// Number of conflicts encountered so far (useful as a cost metric).
    pub fn num_conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Number of decisions made so far.
    pub fn num_decisions(&self) -> u64 {
        self.decisions
    }

    /// Number of propagated literals so far.
    pub fn num_propagations(&self) -> u64 {
        self.propagations
    }

    /// Limits the number of conflicts of the next [`solve`](Self::solve) call;
    /// exceeding the limit yields [`SolveOutcome::Unknown`].
    pub fn set_conflict_limit(&mut self, limit: Option<u64>) {
        self.conflict_limit = limit;
    }

    /// Sets a wall-clock deadline for subsequent solve calls; a search that
    /// passes the deadline returns [`SolveOutcome::Unknown`].  Unlike the
    /// conflict limit this bounds real time, which makes solver calls
    /// interruptible from drivers with wall-clock budgets.
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
    }

    /// Attaches a set of shared cancellation flags to subsequent solve
    /// calls; when another thread raises *any* of them, an in-flight search
    /// returns [`SolveOutcome::Unknown`] at its next check point (the same
    /// 1-in-64 conflict sampling as the deadline, so cancellation lands
    /// within a short burst of conflicts).  Independent cancellation sources
    /// chain by each contributing a flag — e.g. a caller's private flag plus
    /// the parallel engine's batch flag — instead of one silently replacing
    /// the other.  The solver state stays valid: lower the flags and solve
    /// again to continue.  Replaces any previously attached flags; an empty
    /// set detaches.
    pub fn set_cancel_flags(&mut self, cancel: Vec<CancelFlag>) {
        self.cancel = cancel;
    }

    /// Whether any attached cancellation flag has been raised.
    fn cancelled(&self) -> bool {
        self.cancel.iter().any(|c| c.load(Ordering::Relaxed))
    }

    /// Caps the estimated bytes held by the clause arena and watcher lists
    /// (see [`memory_estimate`](Self::memory_estimate)); a search that
    /// exceeds the cap at the sampled check point returns
    /// [`SolveOutcome::Unknown`] with [`StopReason::MemoryBudget`] instead
    /// of growing without bound.  The solver stays reusable — raise the cap
    /// (or let reduction shrink the arena) and solve again.  `None` (the
    /// default) means unlimited.
    pub fn set_memory_limit(&mut self, limit: Option<usize>) {
        self.memory_limit = limit;
    }

    /// Estimated bytes held by the clause arena and watcher lists,
    /// maintained from O(1) counters (literal slots, clause count) so the
    /// search loop can poll it: literal storage, per-clause metadata, and
    /// the two watcher entries every live clause registers.
    pub fn memory_estimate(&self) -> usize {
        self.lit_slots * std::mem::size_of::<Lit>()
            + self.clauses.len()
                * (std::mem::size_of::<ClauseData>() + 2 * std::mem::size_of::<u32>())
    }

    /// High-water mark of [`memory_estimate`](Self::memory_estimate),
    /// sampled at the same check point as the deadline poll.
    pub fn memory_high_water(&self) -> usize {
        self.mem_high_water
    }

    /// Why the last solve call returned [`SolveOutcome::Unknown`]; `None`
    /// after a conclusive verdict (or before any call).
    pub fn stop_reason(&self) -> Option<StopReason> {
        self.stop_reason
    }

    /// Arms the deterministic fault-injection hooks for subsequent solve
    /// calls (see [`FaultHooks`]).  The default hooks are empty.
    pub fn set_fault_hooks(&mut self, fault: FaultHooks) {
        self.fault = fault;
    }

    /// Overrides the learnt-database reduction schedule: the next reduction
    /// pass fires `interval` conflicts from now, and the
    /// interval keeps growing geometrically from that value.  Small values
    /// force frequent reductions (the differential tests use this to
    /// exercise reduction on small formulas).
    pub fn set_reduce_interval(&mut self, interval: u64) {
        self.reduce_interval = interval.max(1);
        self.reduce_next = self.conflicts + self.reduce_interval;
    }

    /// Counters of the learnt-clause database reduction.
    pub fn reduce_stats(&self) -> ReduceStats {
        self.reduce_stats
    }

    /// Multiplies the VSIDS activity of every variable allocated before
    /// `watermark` by `factor` (0 < `factor` ≤ 1) and re-heapifies the
    /// branching order.
    ///
    /// Between calls, a long-lived incremental solver keeps the activity it
    /// accumulated on *earlier* queries; on a BMC bound extension that state
    /// makes branching dwell on stale depths.  Decaying every pre-extension
    /// variable uniformly re-centres branching toward the newest frame's
    /// variables (which start cold but now catch up after a handful of
    /// bumps) without forgetting the old ordering entirely.  A no-op when
    /// `factor` is 1 or no variables precede the watermark.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1]`.
    pub fn rescale_activities_before(&mut self, watermark: Var, factor: f64) {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "activity rescale factor must be in (0, 1], got {factor}"
        );
        if factor == 1.0 {
            return;
        }
        let end = watermark.index().min(self.activity.len());
        for a in &mut self.activity[..end] {
            *a *= factor;
        }
        self.order.rebuild(&self.activity);
    }

    fn lit_value(&self, l: Lit) -> i8 {
        let v = self.assign[l.var().index()];
        if v == UNASSIGNED {
            UNASSIGNED
        } else if l.is_positive() {
            v
        } else {
            -v
        }
    }

    /// Value of a variable in the model of the last satisfiable call.
    pub fn value_of(&self, v: Var) -> bool {
        self.model.get(v.index()).copied().unwrap_or(UNASSIGNED) == VALUE_TRUE
    }

    /// The subset of the last call's assumptions that participated in the
    /// final conflict, when
    /// [`solve_under_assumptions`](Self::solve_under_assumptions)
    /// returned [`SolveOutcome::Unsat`]
    /// because of its assumptions.  Empty when the formula is unsatisfiable
    /// on its own.
    pub fn unsat_assumptions(&self) -> &[Lit] {
        &self.conflict_core
    }

    /// Number of stored clauses (original + learnt).  Deleted learnt clauses
    /// are physically removed from the arena by reduction, so every stored
    /// clause is live.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Number of live learnt clauses retained for future calls.
    ///
    /// Maintained as a counter (updated by learning and database reduction)
    /// so the search loop never scans the clause arena, which grows with the
    /// lifetime of an incremental solver.
    pub fn num_learnt(&self) -> usize {
        self.num_learnt_live
    }

    /// Adds a clause.  Returns `false` if the solver became trivially
    /// unsatisfiable (empty clause or conflicting units).
    pub fn add_clause(&mut self, mut lits: Clause) -> bool {
        if !self.ok {
            return false;
        }
        debug_assert_eq!(self.decision_level(), 0, "clauses must be added at level 0");
        for l in &lits {
            self.reserve_vars(l.var().0 + 1);
        }
        lits.sort();
        lits.dedup();
        // Tautology / falsified-literal simplification at level 0.
        let mut simplified = Vec::with_capacity(lits.len());
        let mut i = 0;
        while i < lits.len() {
            let l = lits[i];
            if i + 1 < lits.len() && lits[i + 1] == !l {
                return true; // tautology: x ∨ ¬x
            }
            match self.lit_value(l) {
                VALUE_TRUE => return true, // already satisfied at level 0
                VALUE_FALSE => {}          // drop the falsified literal
                _ => simplified.push(l),
            }
            i += 1;
        }
        match simplified.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(simplified[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                let idx = u32::try_from(self.clauses.len()).expect("clause index overflow");
                self.watches[simplified[0].index()].push(idx);
                self.watches[simplified[1].index()].push(idx);
                self.lit_slots += simplified.len();
                self.clauses.push(ClauseData {
                    lits: simplified,
                    learnt: false,
                    lbd: 0,
                    activity: 0.0,
                });
                true
            }
        }
    }

    fn decision_level(&self) -> u32 {
        u32::try_from(self.trail_lim.len()).expect("level overflow")
    }

    fn enqueue(&mut self, l: Lit, reason: Option<u32>) {
        debug_assert_eq!(self.lit_value(l), UNASSIGNED);
        let v = l.var();
        self.assign[v.index()] = if l.is_positive() {
            VALUE_TRUE
        } else {
            VALUE_FALSE
        };
        self.level[v.index()] = self.decision_level();
        self.reason[v.index()] = reason;
        self.phase[v.index()] = l.is_positive();
        self.trail.push(l);
    }

    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.propagations += 1;
            let watch_idx = (!p).index();
            let mut ws = std::mem::take(&mut self.watches[watch_idx]);
            let mut keep = Vec::with_capacity(ws.len());
            let mut conflict = None;
            let mut i = 0;
            while i < ws.len() {
                let ci = ws[i];
                i += 1;
                // Make sure the false literal is at position 1.
                let false_lit = !p;
                {
                    let lits = &mut self.clauses[ci as usize].lits;
                    if lits[0] == false_lit {
                        lits.swap(0, 1);
                    }
                }
                let first = self.clauses[ci as usize].lits[0];
                if self.lit_value(first) == VALUE_TRUE {
                    keep.push(ci);
                    continue;
                }
                // Look for a new literal to watch.
                let mut found = false;
                let len = self.clauses[ci as usize].lits.len();
                for k in 2..len {
                    let lk = self.clauses[ci as usize].lits[k];
                    if self.lit_value(lk) != VALUE_FALSE {
                        self.clauses[ci as usize].lits.swap(1, k);
                        self.watches[lk.index()].push(ci);
                        found = true;
                        break;
                    }
                }
                if found {
                    continue;
                }
                // Clause is unit or conflicting.
                keep.push(ci);
                if self.lit_value(first) == VALUE_FALSE {
                    // Conflict: keep the remaining watchers and bail out.
                    while i < ws.len() {
                        keep.push(ws[i]);
                        i += 1;
                    }
                    conflict = Some(ci);
                } else {
                    self.enqueue(first, Some(ci));
                }
            }
            ws.clear();
            // Put back the kept watchers (new watchers registered above are in
            // other lists, appended after the take, so extend rather than
            // overwrite).
            let slot = &mut self.watches[watch_idx];
            let appended = std::mem::take(slot);
            *slot = keep;
            slot.extend(appended);
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    fn var_bump(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.update(v, &self.activity);
    }

    fn var_decay(&mut self) {
        self.var_inc /= 0.95;
    }

    /// Decays clause activities (by inflating the bump increment, MiniSat
    /// style): clauses that stop participating in conflicts grow relatively
    /// cold and become reduction candidates.  The factor is deliberately
    /// gentle — a strong recency bias would delete the cross-depth lemmas
    /// that make a long-lived incremental solver worth keeping (measured:
    /// 0.999 costs ~45% more conflicts than 0.9999 on the Table-1 sweep).
    fn cla_decay(&mut self) {
        self.cla_inc *= 1.0 / 0.9999;
    }

    fn clause_bump(&mut self, ci: u32) {
        let c = &mut self.clauses[ci as usize];
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            for c in self.clauses.iter_mut().filter(|c| c.learnt) {
                c.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    fn analyze(&mut self, mut conflict: u32) -> (Clause, u32) {
        let mut learnt: Clause = vec![Lit::pos(Var(0))]; // placeholder for the asserting literal
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut trail_index = self.trail.len();

        loop {
            self.clause_bump(conflict);
            let lits = self.clauses[conflict as usize].lits.clone();
            let start = usize::from(p.is_some());
            for &q in &lits[start..] {
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.var_bump(v);
                    if self.level[v.index()] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next literal of the current level on the trail.
            loop {
                trail_index -= 1;
                let l = self.trail[trail_index];
                if self.seen[l.var().index()] {
                    p = Some(l);
                    break;
                }
            }
            let pv = p.expect("found a seen literal").var();
            self.seen[pv.index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !p.expect("asserting literal");
                break;
            }
            conflict = self.reason[pv.index()].expect("non-decision literal has a reason");
        }

        // Conflict-clause minimisation (self-subsumption with direct reasons).
        let keep: Vec<bool> = learnt
            .iter()
            .enumerate()
            .map(|(i, &l)| i == 0 || !self.literal_is_redundant(l, &learnt))
            .collect();
        let mut minimized: Clause = learnt
            .iter()
            .zip(keep.iter())
            .filter_map(|(&l, &k)| if k { Some(l) } else { None })
            .collect();

        // Compute the backtrack level: second highest level in the clause.
        let mut backtrack = 0;
        if minimized.len() > 1 {
            let mut max_i = 1;
            for i in 2..minimized.len() {
                if self.level[minimized[i].var().index()]
                    > self.level[minimized[max_i].var().index()]
                {
                    max_i = i;
                }
            }
            minimized.swap(1, max_i);
            backtrack = self.level[minimized[1].var().index()];
        }

        for l in &minimized {
            self.seen[l.var().index()] = false;
        }
        // Also clear flags possibly left set for removed (redundant) literals.
        for l in &learnt {
            self.seen[l.var().index()] = false;
        }
        (minimized, backtrack)
    }

    /// A literal is redundant in the learnt clause if every literal of its
    /// reason clause is already in the learnt clause (one-step self-subsumption).
    fn literal_is_redundant(&self, l: Lit, learnt: &Clause) -> bool {
        let Some(r) = self.reason[l.var().index()] else {
            return false;
        };
        self.clauses[r as usize]
            .lits
            .iter()
            .skip(1)
            .all(|&q| learnt.contains(&q) || self.level[q.var().index()] == 0)
    }

    fn backtrack(&mut self, target: u32) {
        while self.decision_level() > target {
            let limit = self.trail_lim.pop().expect("decision level exists");
            while self.trail.len() > limit {
                let l = self.trail.pop().expect("trail not empty");
                let v = l.var();
                self.phase[v.index()] = l.is_positive();
                self.assign[v.index()] = UNASSIGNED;
                self.reason[v.index()] = None;
                if !self.order.contains(v) {
                    self.order.insert(v, &self.activity);
                }
            }
        }
        self.qhead = self.trail.len();
    }

    fn learn(&mut self, clause: Clause) -> Option<u32> {
        match clause.len() {
            0 => {
                self.ok = false;
                None
            }
            1 => {
                self.enqueue(clause[0], None);
                None
            }
            _ => {
                let idx = u32::try_from(self.clauses.len()).expect("clause index overflow");
                let lbd = self.compute_lbd(&clause);
                self.watches[clause[0].index()].push(idx);
                self.watches[clause[1].index()].push(idx);
                self.lit_slots += clause.len();
                self.clauses.push(ClauseData {
                    lits: clause,
                    learnt: true,
                    lbd,
                    activity: self.cla_inc,
                });
                self.num_learnt_live += 1;
                self.reduce_stats.learnt_high_water = self
                    .reduce_stats
                    .learnt_high_water
                    .max(self.num_learnt_live as u64);
                Some(idx)
            }
        }
    }

    fn compute_lbd(&self, clause: &Clause) -> u32 {
        let mut levels: Vec<u32> = clause.iter().map(|l| self.level[l.var().index()]).collect();
        levels.sort_unstable();
        levels.dedup();
        u32::try_from(levels.len()).expect("lbd overflow")
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        while let Some(v) = self.order.pop_max(&self.activity) {
            if self.assign[v.index()] == UNASSIGNED {
                return Some(Lit::new(v, self.phase[v.index()]));
            }
        }
        None
    }

    /// Makes the next pseudo-decision (an assumption not yet at its level) or
    /// real decision (VSIDS branch).
    fn next_decision(&mut self) -> Decision {
        while (self.decision_level() as usize) < self.assumptions.len() {
            let p = self.assumptions[self.decision_level() as usize];
            match self.lit_value(p) {
                VALUE_TRUE => {
                    // Already satisfied: open a dummy level so assumption
                    // indices and decision levels stay aligned.
                    self.trail_lim.push(self.trail.len());
                }
                VALUE_FALSE => return Decision::FailedAssumption(p),
                _ => {
                    self.trail_lim.push(self.trail.len());
                    self.enqueue(p, None);
                    return Decision::Continue;
                }
            }
        }
        match self.pick_branch() {
            None => Decision::Sat,
            Some(l) => {
                self.decisions += 1;
                self.trail_lim.push(self.trail.len());
                self.enqueue(l, None);
                Decision::Continue
            }
        }
    }

    /// Final-conflict analysis: `failed` is an assumption currently falsified
    /// by the trail.  Walks the implication graph backwards from `¬failed`
    /// and collects the pseudo-decisions (assumptions) it rests on, yielding
    /// an unsat core over the assumptions in `conflict_core`.
    fn analyze_final(&mut self, failed: Lit) {
        self.conflict_core.clear();
        self.conflict_core.push(failed);
        if self.decision_level() == 0 {
            return;
        }
        self.seen[failed.var().index()] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var();
            if !self.seen[v.index()] {
                continue;
            }
            match self.reason[v.index()] {
                None => {
                    // A decision above level 0 is always an assumption here:
                    // analyze_final runs before any real branching happens on
                    // top of a falsified assumption, and assumptions are
                    // enqueued verbatim — so the trail literal is the
                    // assumption itself (including `!failed` when the
                    // assumption set contains both polarities of a variable).
                    if self.level[v.index()] > 0 {
                        self.conflict_core.push(l);
                    }
                }
                Some(ci) => {
                    let lits = self.clauses[ci as usize].lits.clone();
                    for &q in &lits {
                        if q.var() != v && self.level[q.var().index()] > 0 {
                            self.seen[q.var().index()] = true;
                        }
                    }
                }
            }
            self.seen[v.index()] = false;
        }
        self.seen[failed.var().index()] = false;
    }

    /// Deletes the cold half of the learnt clauses and compacts the arena.
    ///
    /// Deletion candidates are ordered coldest-first: highest LBD, then
    /// lowest activity, so low-LBD (glue) clauses sort to the survivor end
    /// and are deleted only when the cold half reaches them.  Locked clauses
    /// (the reason of a trail literal) and binary learnts are never deleted.
    /// Deliberately *not* protected absolutely: glue clauses — under BMC
    /// assumption levels the glue pool grows without bound, and an immune
    /// pool concentrates deletion on the useful mid-LBD clauses (measured:
    /// ~40% more conflicts on the Table-1 sweep).  The surviving clauses are
    /// then moved into a fresh arena and every watcher list and reason index
    /// is remapped, so the deleted clauses' memory is actually returned
    /// instead of lingering as tombstones — the property that keeps
    /// long-lived incremental solvers (BMC sweeps, CEGIS loops) at bounded
    /// memory.
    fn reduce_db(&mut self) {
        let n = self.clauses.len();
        let mut locked = vec![false; n];
        for &r in self.reason.iter().flatten() {
            locked[r as usize] = true;
        }
        let mut candidates: Vec<u32> = (0..u32::try_from(n).expect("clause index overflow"))
            .filter(|&i| {
                let c = &self.clauses[i as usize];
                c.learnt && c.lits.len() > 2 && !locked[i as usize]
            })
            .collect();
        candidates.sort_by(|&a, &b| {
            let ca = &self.clauses[a as usize];
            let cb = &self.clauses[b as usize];
            cb.lbd.cmp(&ca.lbd).then(
                ca.activity
                    .partial_cmp(&cb.activity)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        let to_remove = candidates.len() / 2;
        let mut delete = vec![false; n];
        for &ci in candidates.iter().take(to_remove) {
            delete[ci as usize] = true;
        }

        // Compact: move survivors into a fresh arena, remap watchers and
        // reasons.  Locked clauses are never deleted, so every reason index
        // has a remap target.
        let mut remap: Vec<u32> = vec![u32::MAX; n];
        let mut kept: Vec<ClauseData> = Vec::with_capacity(n - to_remove);
        for (i, c) in std::mem::take(&mut self.clauses).into_iter().enumerate() {
            if delete[i] {
                self.reduce_stats.literals_freed += c.lits.len() as u64;
                self.lit_slots -= c.lits.len();
                continue;
            }
            remap[i] = u32::try_from(kept.len()).expect("clause index overflow");
            kept.push(c);
        }
        self.clauses = kept;
        for ws in &mut self.watches {
            ws.retain_mut(|ci| {
                let m = remap[*ci as usize];
                *ci = m;
                m != u32::MAX
            });
        }
        for r in self.reason.iter_mut().flatten() {
            *r = remap[*r as usize];
        }

        self.num_learnt_live -= to_remove;
        self.reduce_stats.reductions += 1;
        self.reduce_stats.clauses_deleted += to_remove as u64;
        self.reduce_interval = self
            .reduce_interval
            .saturating_mul(REDUCE_GROWTH.0)
            .div_ceil(REDUCE_GROWTH.1);
        self.reduce_next = self.conflicts + self.reduce_interval;
        self.reduce_cap = self
            .reduce_cap
            .saturating_mul(REDUCE_GROWTH.0)
            .div_ceil(REDUCE_GROWTH.1);
    }

    fn luby(i: u64) -> u64 {
        // Luby sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
        let mut k = 1u32;
        loop {
            if i + 1 == (1u64 << k) - 1 {
                return 1u64 << (k - 1);
            }
            if i + 1 < (1u64 << k) - 1 {
                return Self::luby(i + 1 - (1u64 << (k - 1)));
            }
            k += 1;
        }
    }

    /// Runs the CDCL search with no assumptions.
    pub fn solve(&mut self) -> SolveOutcome {
        self.solve_under_assumptions(&[])
    }

    /// Runs the CDCL search under assumption literals.
    ///
    /// The assumptions are enqueued as pseudo-decisions below every real
    /// decision, so the answer is the satisfiability of the clause database
    /// *conjoined with* the assumptions.  The assumptions are retracted when
    /// the call returns: the solver unwinds to decision level 0, keeping all
    /// learnt clauses, activities and phases, so further clauses can be
    /// added and further calls made.  On an assumption-caused
    /// [`SolveOutcome::Unsat`],
    /// [`unsat_assumptions`](Self::unsat_assumptions) holds a core over the
    /// assumptions.
    pub fn solve_under_assumptions(&mut self, assumps: &[Lit]) -> SolveOutcome {
        self.conflict_core.clear();
        self.model.clear();
        self.stop_reason = None;
        if !self.ok {
            return SolveOutcome::Unsat;
        }
        if self.cancelled() {
            // A pre-raised flag (e.g. a batch whose budget expired before
            // this job started) skips the search entirely.
            self.stop_reason = Some(StopReason::Cancelled);
            return SolveOutcome::Unknown;
        }
        debug_assert_eq!(
            self.decision_level(),
            0,
            "solver must be at level 0 between calls"
        );
        for l in assumps {
            self.reserve_vars(l.var().0 + 1);
        }
        self.assumptions = assumps.to_vec();
        if self.propagate().is_some() {
            self.ok = false;
            self.assumptions.clear();
            return SolveOutcome::Unsat;
        }
        let mut restart_count = 0u64;
        let start_conflicts = self.conflicts;
        let outcome = loop {
            let budget = 100 * Self::luby(restart_count);
            match self.search(budget, start_conflicts) {
                Some(outcome) => break outcome,
                None => {
                    restart_count += 1;
                    self.backtrack(0);
                }
            }
        };
        if outcome == SolveOutcome::Sat {
            self.model = self.assign.clone();
        }
        self.backtrack(0);
        self.assumptions.clear();
        outcome
    }

    /// Searches until a verdict, a restart budget expiry (`None`) or the
    /// global conflict limit.
    fn search(&mut self, budget: u64, start_conflicts: u64) -> Option<SolveOutcome> {
        let mut local_conflicts = 0u64;
        loop {
            if let Some(conflict) = self.propagate() {
                self.conflicts += 1;
                local_conflicts += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return Some(SolveOutcome::Unsat);
                }
                let (learnt, backtrack_level) = self.analyze(conflict);
                self.backtrack(backtrack_level);
                let asserting = learnt[0];
                let ci = self.learn(learnt);
                if let Some(ci) = ci {
                    // `learn` watches but does not enqueue; do it with the reason.
                    if self.lit_value(asserting) == UNASSIGNED {
                        self.enqueue(asserting, Some(ci));
                    }
                }
                self.var_decay();
                self.cla_decay();
                if self
                    .fault
                    .panic_at_conflict
                    .is_some_and(|k| self.conflicts >= k)
                {
                    // Deterministic injected fault: the panic-isolation
                    // layer above (sepe_sqed::parallel) must catch this.
                    panic!(
                        "fault injection: forced panic at conflict {}",
                        self.conflicts
                    );
                }
                if self
                    .fault
                    .memory_breach_at_conflict
                    .is_some_and(|k| self.conflicts >= k)
                {
                    // Injected fake cap breach: exercises the memory-budget
                    // give-up path exactly, without allocating anything.
                    // Checked per conflict (not sampled) so tiny test
                    // formulas trip it deterministically too.
                    self.stop_reason = Some(StopReason::MemoryBudget);
                    self.backtrack(0);
                    return Some(SolveOutcome::Unknown);
                }
                if let Some(limit) = self.conflict_limit {
                    if self.conflicts - start_conflicts >= limit {
                        self.stop_reason = Some(StopReason::ConflictBudget);
                        self.backtrack(0);
                        return Some(SolveOutcome::Unknown);
                    }
                }
                if self.conflicts.is_multiple_of(64) {
                    // An Instant read (or even an atomic load) per conflict
                    // would already be noise next to conflict analysis;
                    // sampling 1-in-64 makes every interruption source free
                    // while bounding the overrun to a short burst.  The
                    // memory estimate rides along: O(1) counter reads.
                    let estimate = self.memory_estimate();
                    self.mem_high_water = self.mem_high_water.max(estimate);
                    let reason = if self
                        .deadline
                        .is_some_and(|deadline| Instant::now() >= deadline)
                    {
                        Some(StopReason::Deadline)
                    } else if self.memory_limit.is_some_and(|cap| estimate > cap) {
                        Some(StopReason::MemoryBudget)
                    } else if self.cancelled() {
                        Some(StopReason::Cancelled)
                    } else {
                        None
                    };
                    if let Some(reason) = reason {
                        self.stop_reason = Some(reason);
                        self.backtrack(0);
                        return Some(SolveOutcome::Unknown);
                    }
                }
            } else {
                if self.conflicts >= self.reduce_next
                    || self.num_learnt_live as u64 >= self.reduce_cap
                {
                    self.reduce_db();
                }
                if local_conflicts >= budget {
                    return None;
                }
                // Re-establish assumptions first (each on its own level so
                // conflict analysis can distinguish them), then branch.
                match self.next_decision() {
                    Decision::Sat => return Some(SolveOutcome::Sat),
                    Decision::FailedAssumption(failed) => {
                        self.analyze_final(failed);
                        self.backtrack(0);
                        return Some(SolveOutcome::Unsat);
                    }
                    Decision::Continue => {}
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: i32) -> Lit {
        let var = Var(v.unsigned_abs() - 1);
        Lit::new(var, v > 0)
    }

    fn solver_with(clauses: &[Vec<i32>]) -> SatSolver {
        let mut s = SatSolver::new();
        for c in clauses {
            s.add_clause(c.iter().map(|&v| lit(v)).collect());
        }
        s
    }

    #[test]
    fn trivially_sat() {
        let mut s = solver_with(&[vec![1, 2], vec![-1, 2], vec![1, -2]]);
        assert_eq!(s.solve(), SolveOutcome::Sat);
        // (x1∨x2)(¬x1∨x2)(x1∨¬x2) forces x1=x2=true
        assert!(s.value_of(Var(0)));
        assert!(s.value_of(Var(1)));
    }

    #[test]
    fn trivially_unsat() {
        let mut s = solver_with(&[vec![1], vec![-1]]);
        assert_eq!(s.solve(), SolveOutcome::Unsat);
    }

    #[test]
    fn unsat_via_resolution_chain() {
        // (x1∨x2)(x1∨¬x2)(¬x1∨x3)(¬x1∨¬x3) is unsat
        let mut s = solver_with(&[vec![1, 2], vec![1, -2], vec![-1, 3], vec![-1, -3]]);
        assert_eq!(s.solve(), SolveOutcome::Unsat);
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = SatSolver::new();
        assert_eq!(s.solve(), SolveOutcome::Sat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = SatSolver::new();
        assert!(!s.add_clause(vec![]));
        assert_eq!(s.solve(), SolveOutcome::Unsat);
    }

    /// Pigeonhole principle PHP(n+1, n): unsatisfiable, requires real search.
    fn pigeonhole(pigeons: u32, holes: u32) -> Vec<Vec<i32>> {
        let var = |p: u32, h: u32| i32::try_from(p * holes + h + 1).expect("var index");
        let mut clauses = Vec::new();
        for p in 0..pigeons {
            clauses.push((0..holes).map(|h| var(p, h)).collect());
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    clauses.push(vec![-var(p1, h), -var(p2, h)]);
                }
            }
        }
        clauses
    }

    #[test]
    fn pigeonhole_4_into_3_is_unsat() {
        let mut s = solver_with(&pigeonhole(4, 3));
        assert_eq!(s.solve(), SolveOutcome::Unsat);
    }

    #[test]
    fn pigeonhole_4_into_4_is_sat() {
        let clauses = {
            let mut c = pigeonhole(4, 4);
            c.retain(|_| true);
            c
        };
        let mut s = solver_with(&clauses);
        assert_eq!(s.solve(), SolveOutcome::Sat);
    }

    #[test]
    fn conflict_limit_reports_unknown() {
        let mut s = solver_with(&pigeonhole(7, 6));
        s.set_conflict_limit(Some(5));
        assert_eq!(s.solve(), SolveOutcome::Unknown);
        assert_eq!(s.stop_reason(), Some(StopReason::ConflictBudget));
        // Lifting the budget clears the reason along with the verdict.
        s.set_conflict_limit(None);
        assert_eq!(s.solve(), SolveOutcome::Unsat);
        assert_eq!(s.stop_reason(), None);
    }

    #[test]
    fn memory_budget_stops_the_search_deterministically() {
        let mut tight = solver_with(&pigeonhole(7, 6));
        tight.set_memory_limit(Some(1)); // any learnt clause breaches 1 byte
        assert_eq!(tight.solve(), SolveOutcome::Unknown);
        assert_eq!(tight.stop_reason(), Some(StopReason::MemoryBudget));
        assert!(tight.memory_high_water() > 1);
        // Deterministic: an identical twin gives up at the same conflict.
        let mut twin = solver_with(&pigeonhole(7, 6));
        twin.set_memory_limit(Some(1));
        assert_eq!(twin.solve(), SolveOutcome::Unknown);
        assert_eq!(twin.num_conflicts(), tight.num_conflicts());
        // Raising the cap lets the same solver finish the job.
        tight.set_memory_limit(None);
        assert_eq!(tight.solve(), SolveOutcome::Unsat);
        assert_eq!(tight.stop_reason(), None);
    }

    #[test]
    fn raised_cancel_flag_reports_cancelled() {
        let mut s = solver_with(&pigeonhole(7, 6));
        let flag: CancelFlag = Arc::new(AtomicBool::new(true));
        s.set_cancel_flags(vec![flag]);
        assert_eq!(s.solve(), SolveOutcome::Unknown);
        assert_eq!(s.stop_reason(), Some(StopReason::Cancelled));
    }

    #[test]
    fn any_flag_of_a_chained_set_cancels() {
        let mut s = solver_with(&pigeonhole(7, 6));
        let a: CancelFlag = Arc::new(AtomicBool::new(false));
        let b: CancelFlag = Arc::new(AtomicBool::new(false));
        s.set_cancel_flags(vec![a.clone(), b.clone()]);
        b.store(true, Ordering::Relaxed);
        assert_eq!(s.solve(), SolveOutcome::Unknown);
        assert_eq!(s.stop_reason(), Some(StopReason::Cancelled));
        // Lowering the flag makes the same solver usable again.
        b.store(false, Ordering::Relaxed);
        assert_eq!(s.solve(), SolveOutcome::Unsat);
        assert_eq!(s.stop_reason(), None);
    }

    #[test]
    fn forced_panic_fires_at_the_exact_conflict() {
        let mut s = solver_with(&pigeonhole(7, 6));
        s.set_fault_hooks(FaultHooks {
            panic_at_conflict: Some(10),
            ..FaultHooks::default()
        });
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| s.solve()));
        let message = *caught
            .expect_err("the armed hook must panic")
            .downcast::<String>()
            .expect("panic payload is a formatted string");
        assert!(message.contains("forced panic at conflict 10"), "{message}");
    }

    #[test]
    fn fake_memory_breach_stops_at_the_exact_conflict() {
        let mut s = solver_with(&pigeonhole(7, 6));
        s.set_fault_hooks(FaultHooks {
            memory_breach_at_conflict: Some(10),
            ..FaultHooks::default()
        });
        assert_eq!(s.solve(), SolveOutcome::Unknown);
        assert_eq!(s.stop_reason(), Some(StopReason::MemoryBudget));
        assert_eq!(s.num_conflicts(), 10);
        // Disarming the hook lets the solver finish.
        s.set_fault_hooks(FaultHooks::default());
        assert_eq!(s.solve(), SolveOutcome::Unsat);
    }

    #[test]
    fn assumptions_flip_the_verdict_without_mutating_the_formula() {
        // (x1 ∨ x2) is SAT; assuming ¬x1 and ¬x2 makes it UNSAT; the formula
        // itself stays SAT afterwards.
        let mut s = solver_with(&[vec![1, 2]]);
        assert_eq!(
            s.solve_under_assumptions(&[lit(-1), lit(-2)]),
            SolveOutcome::Unsat
        );
        assert_eq!(s.solve(), SolveOutcome::Sat);
        assert_eq!(s.solve_under_assumptions(&[lit(-1)]), SolveOutcome::Sat);
        assert!(s.value_of(Var(1)), "x2 must hold when x1 is assumed false");
    }

    #[test]
    fn unsat_core_is_a_subset_of_the_assumptions() {
        // x1 → x2, x2 → x3; assuming {x1, ¬x3, x5} is UNSAT and the core
        // must not mention the irrelevant x5.
        let mut s = solver_with(&[vec![-1, 2], vec![-2, 3]]);
        let assumps = [lit(1), lit(-3), lit(5)];
        assert_eq!(s.solve_under_assumptions(&assumps), SolveOutcome::Unsat);
        let core = s.unsat_assumptions().to_vec();
        assert!(!core.is_empty());
        assert!(
            core.iter().all(|l| assumps.contains(l)),
            "core {core:?} ⊄ assumptions"
        );
        assert!(
            !core.contains(&lit(5)),
            "irrelevant assumption in core: {core:?}"
        );
        // The core itself must be unsatisfiable together with the clauses.
        assert_eq!(s.solve_under_assumptions(&core), SolveOutcome::Unsat);
    }

    #[test]
    fn opposite_polarity_assumptions_yield_both_in_the_core() {
        let mut s = solver_with(&[vec![1, 2]]);
        assert_eq!(
            s.solve_under_assumptions(&[lit(3), lit(-3)]),
            SolveOutcome::Unsat
        );
        let core = s.unsat_assumptions();
        assert!(
            core.contains(&lit(3)) && core.contains(&lit(-3)),
            "core {core:?}"
        );
    }

    #[test]
    fn clauses_can_be_added_between_solves() {
        let mut s = solver_with(&[vec![1, 2]]);
        assert_eq!(s.solve(), SolveOutcome::Sat);
        assert!(s.add_clause(vec![lit(-1)]));
        assert_eq!(s.solve(), SolveOutcome::Sat);
        assert!(s.value_of(Var(1)));
        // ¬x2 contradicts the level-0 consequence x2: add_clause reports the
        // trivial inconsistency immediately.
        assert!(!s.add_clause(vec![lit(-2)]));
        assert_eq!(s.solve(), SolveOutcome::Unsat);
        assert!(
            s.unsat_assumptions().is_empty(),
            "global unsat has an empty core"
        );
    }

    #[test]
    fn learnt_clauses_persist_across_calls() {
        // Solve a pigeonhole instance twice: the second run reuses the learnt
        // clauses of the first and needs (strictly) fewer new conflicts.
        let mut s = solver_with(&pigeonhole(5, 4));
        assert_eq!(s.solve(), SolveOutcome::Unsat);
        // A global UNSAT answer is final: ok=false short-circuits.
        assert_eq!(s.solve(), SolveOutcome::Unsat);

        // Under assumptions UNSAT is not final; re-solving a SAT instance
        // under changing assumptions must keep working.
        let mut s = solver_with(&pigeonhole(4, 4));
        assert_eq!(s.solve_under_assumptions(&[lit(1)]), SolveOutcome::Sat);
        let first = s.num_conflicts();
        assert_eq!(s.solve_under_assumptions(&[lit(-1)]), SolveOutcome::Sat);
        assert_eq!(s.solve_under_assumptions(&[lit(1)]), SolveOutcome::Sat);
        let after = s.num_conflicts() - first;
        assert!(
            after <= first + 50,
            "later calls should not restart cold: {first} -> {after}"
        );
    }

    #[test]
    fn assumption_core_respects_already_false_units() {
        // Unit clause ¬x1; assuming x1 fails with core {x1} at level 0.
        let mut s = solver_with(&[vec![-1]]);
        assert_eq!(s.solve_under_assumptions(&[lit(1)]), SolveOutcome::Unsat);
        assert_eq!(s.unsat_assumptions(), &[lit(1)]);
        // ... and the solver is still usable.
        assert_eq!(s.solve(), SolveOutcome::Sat);
    }

    #[test]
    fn forced_reduction_agrees_with_the_default_schedule() {
        // PHP(7, 6) takes thousands of conflicts; an aggressive reduction
        // schedule must not change the verdict.
        let mut reduced = solver_with(&pigeonhole(7, 6));
        reduced.set_reduce_interval(25);
        assert_eq!(reduced.solve(), SolveOutcome::Unsat);
        let stats = reduced.reduce_stats();
        assert!(stats.reductions > 0, "interval 25 must trigger reductions");
        assert!(stats.clauses_deleted > 0);
        assert!(stats.literals_freed > 0);
        assert!(stats.learnt_high_water >= reduced.num_learnt() as u64);
    }

    #[test]
    fn reduction_under_assumptions_keeps_the_solver_reusable() {
        // PHP(7, 6) guarded by an activation literal: assuming the activation
        // is hard-UNSAT (thousands of conflicts, forcing many reduction
        // passes), retracting it leaves a trivially satisfiable formula.
        let act = 43; // first variable beyond the pigeonhole block
        let clauses: Vec<Vec<i32>> = pigeonhole(7, 6)
            .into_iter()
            .map(|mut c| {
                c.push(-act);
                c
            })
            .collect();
        let mut s = solver_with(&clauses);
        s.set_reduce_interval(25);
        assert_eq!(s.solve_under_assumptions(&[lit(act)]), SolveOutcome::Unsat);
        let stats = s.reduce_stats();
        assert!(stats.reductions > 0, "activated PHP must force reductions");
        assert!(stats.clauses_deleted > 0);
        // The solver must stay healthy after reduction + retraction: the
        // formula without the assumption is SAT, and re-assuming on the
        // compacted database reproduces the UNSAT verdict.
        assert_eq!(s.solve(), SolveOutcome::Sat);
        assert_eq!(s.solve_under_assumptions(&[lit(act)]), SolveOutcome::Unsat);
        assert_eq!(s.unsat_assumptions(), &[lit(act)]);
    }

    #[test]
    fn activity_rescaling_preserves_verdicts_and_reusability() {
        // SAT instance solved repeatedly with rescaling between calls: the
        // verdicts must be stable and models must stay valid.
        let mut s = solver_with(&pigeonhole(4, 4));
        assert_eq!(s.solve_under_assumptions(&[lit(1)]), SolveOutcome::Sat);
        s.rescale_activities_before(Var(8), 0.25);
        assert_eq!(s.solve_under_assumptions(&[lit(-1)]), SolveOutcome::Sat);
        assert!(!s.value_of(Var(0)));
        s.rescale_activities_before(Var(16), 0.5);
        assert_eq!(s.solve(), SolveOutcome::Sat);

        // UNSAT instance: rescaling mid-way (between assumption calls) must
        // not change the verdict of the differential twin without it.
        let act = 43;
        let clauses: Vec<Vec<i32>> = pigeonhole(7, 6)
            .into_iter()
            .map(|mut c| {
                c.push(-act);
                c
            })
            .collect();
        let mut rescored = solver_with(&clauses);
        let mut plain = solver_with(&clauses);
        for _ in 0..3 {
            rescored.rescale_activities_before(Var(20), 0.1);
            assert_eq!(
                rescored.solve_under_assumptions(&[lit(act)]),
                plain.solve_under_assumptions(&[lit(act)]),
            );
            assert_eq!(rescored.solve(), plain.solve());
        }
        // a watermark beyond the allocated variables is clamped, not a panic
        rescored.rescale_activities_before(Var(10_000), 0.5);
        assert_eq!(
            rescored.solve_under_assumptions(&[lit(act)]),
            SolveOutcome::Unsat
        );
    }

    #[test]
    #[should_panic(expected = "rescale factor")]
    fn activity_rescaling_rejects_bad_factors() {
        let mut s = solver_with(&[vec![1, 2]]);
        s.rescale_activities_before(Var(1), 1.5);
    }

    /// Randomized differential check of assumption solving against adding the
    /// assumptions as unit clauses to a fresh solver.
    #[test]
    fn assumptions_agree_with_unit_clauses_on_random_formulas() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xa55);
        for round in 0..80 {
            let num_vars = 7;
            let clauses: Vec<Vec<i32>> = (0..(4 + round % 16))
                .map(|_| {
                    (0..3)
                        .map(|_| {
                            let v = rng.gen_range(1..=num_vars);
                            if rng.gen_bool(0.5) {
                                v
                            } else {
                                -v
                            }
                        })
                        .collect()
                })
                .collect();
            let mut assumps: Vec<i32> = Vec::new();
            for v in 1..=num_vars {
                if rng.gen_bool(0.3) {
                    assumps.push(if rng.gen_bool(0.5) { v } else { -v });
                }
            }
            let mut incremental = solver_with(&clauses);
            let a_lits: Vec<Lit> = assumps.iter().map(|&v| lit(v)).collect();
            let with_assumps = incremental.solve_under_assumptions(&a_lits);
            let mut scratch = solver_with(&clauses);
            for &v in &assumps {
                scratch.add_clause(vec![lit(v)]);
            }
            let with_units = scratch.solve();
            assert_eq!(
                with_assumps, with_units,
                "clauses {clauses:?} assumps {assumps:?}"
            );
            // The incremental solver must remain intact: re-solve without
            // assumptions and compare against a fresh run.
            let clean = incremental.solve();
            let fresh = solver_with(&clauses).solve();
            assert_eq!(
                clean, fresh,
                "post-assumption state corrupted on {clauses:?}"
            );
        }
    }

    /// Brute-force model counting cross-check on random small formulas.
    #[test]
    fn agrees_with_brute_force_on_random_formulas() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xdecaf);
        for round in 0..60 {
            let num_vars = 6;
            let num_clauses = 3 + (round % 18);
            let clauses: Vec<Vec<i32>> = (0..num_clauses)
                .map(|_| {
                    (0..3)
                        .map(|_| {
                            let v = rng.gen_range(1..=num_vars);
                            if rng.gen_bool(0.5) {
                                v
                            } else {
                                -v
                            }
                        })
                        .collect()
                })
                .collect();
            let brute_sat = (0u32..(1 << num_vars)).any(|m| {
                clauses.iter().all(|c| {
                    c.iter().any(|&l| {
                        let bit = (m >> (l.unsigned_abs() - 1)) & 1 == 1;
                        if l > 0 {
                            bit
                        } else {
                            !bit
                        }
                    })
                })
            });
            let mut s = solver_with(&clauses);
            let outcome = s.solve();
            assert_eq!(
                outcome,
                if brute_sat {
                    SolveOutcome::Sat
                } else {
                    SolveOutcome::Unsat
                },
                "mismatch on {clauses:?}"
            );
            if outcome == SolveOutcome::Sat {
                // The returned model must satisfy every clause.
                for c in &clauses {
                    assert!(c.iter().any(|&l| {
                        let val = s.value_of(Var(l.unsigned_abs() - 1));
                        if l > 0 {
                            val
                        } else {
                            !val
                        }
                    }));
                }
            }
        }
    }
}
