//! Bit-blasting of bit-vector term graphs through a structurally hashed
//! and-inverter graph into CNF.
//!
//! Every boolean term maps to one AIG literal; every bit-vector term maps to
//! a vector of AIG literals (LSB first).  Word-level operators are lowered to
//! the usual gate-level circuits — ripple-carry adders, shift-and-add
//! multipliers, restoring dividers, logarithmic barrel shifters and
//! borrow-based comparators — but the gates are [`Aig`] node builders, not
//! clauses: construction-time constant propagation, the one- and two-level
//! rewrite catalogue and the structural-hashing table run first, so
//! structurally identical logic across BMC frames and mutated datapaths is
//! built once.  CNF only materialises when a literal is asserted or assumed,
//! through the polarity-aware Tseitin pass ([`AigCnf`]): shared nodes get
//! one definition, and each polarity pays only the implications it needs.

use std::collections::HashMap;

use crate::aig::{Aig, AigCnf, AigLit, AigStats};
use crate::cnf::{Cnf, Lit};
use crate::term::{Op, TermId, TermManager};

/// Bit-blaster: converts terms to AIG literals and emits CNF on demand over
/// a shared [`Cnf`] instance.
///
/// Encodings are cached per term, so a blaster that lives across several
/// queries (the incremental pipeline) only lowers the not-yet-seen subgraph
/// of each new term; [`cache_hits`](Self::cache_hits) /
/// [`cached_terms`](Self::cached_terms) quantify the term-level reuse and
/// [`aig_stats`](Self::aig_stats) the gate-level reuse below it.  The
/// AIG-node→CNF-variable mapping is append-only across emissions, so SAT
/// solver state built on earlier clauses stays valid (the incremental
/// contract).
#[derive(Debug, Clone)]
pub struct BitBlaster {
    aig: Aig,
    emit: AigCnf,
    cnf: Cnf,
    true_lit: Lit,
    bool_cache: HashMap<TermId, AigLit>,
    bits_cache: HashMap<TermId, Vec<AigLit>>,
    var_bits: HashMap<TermId, Vec<Lit>>,
    cache_hits: u64,
}

impl Default for BitBlaster {
    fn default() -> Self {
        Self::new()
    }
}

impl BitBlaster {
    /// Creates a blaster with a fresh CNF containing only the constant-true
    /// variable.
    pub fn new() -> Self {
        let mut cnf = Cnf::new();
        let tv = cnf.fresh_var();
        let t = Lit::pos(tv);
        cnf.add_clause([t]);
        BitBlaster {
            aig: Aig::new(),
            emit: AigCnf::new(tv),
            cnf,
            true_lit: t,
            bool_cache: HashMap::new(),
            bits_cache: HashMap::new(),
            var_bits: HashMap::new(),
            cache_hits: 0,
        }
    }

    /// Turns the gate-level reductions on or off (on by default).  Off means
    /// no structural hashing, no local rewriting and biconditional instead
    /// of polarity-aware Tseitin — the faithful stand-in for the pre-AIG
    /// direct blasting, kept for the `aig_off` differential and bench arms.
    ///
    /// # Panics
    ///
    /// Panics if anything was already encoded: the two modes must not be
    /// mixed within one blaster lifetime.
    pub fn set_aig(&mut self, on: bool) {
        assert!(
            self.aig.num_nodes() == 1 && self.var_bits.is_empty(),
            "set_aig must be called before anything is encoded"
        );
        self.aig.set_reduce(on);
        self.emit.set_polarity_aware(on);
    }

    /// Mutable access to the CNF under construction (for draining clauses).
    pub fn cnf_mut(&mut self) -> &mut Cnf {
        &mut self.cnf
    }

    /// Number of distinct terms with a cached encoding.
    pub fn cached_terms(&self) -> u64 {
        (self.bool_cache.len() + self.bits_cache.len()) as u64
    }

    /// Number of term-encoding lookups answered from the cache.  Every hit
    /// counts — shared subgraphs within one query as well as terms
    /// re-encountered by later queries of a persistent blaster.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// The gate-level counters: AIG nodes created, strash hits, constants
    /// folded, local rewrites, and the CNF variables/clauses the Tseitin
    /// pass has emitted so far.
    pub fn aig_stats(&self) -> AigStats {
        let mut stats = self.aig.stats();
        stats.absorb(&self.emit.stats());
        stats
    }

    /// The literal that is always true.
    pub fn true_lit(&self) -> Lit {
        self.true_lit
    }

    /// The literal that is always false.
    pub fn false_lit(&self) -> Lit {
        !self.true_lit
    }

    /// The CNF built so far.
    pub fn cnf(&self) -> &Cnf {
        &self.cnf
    }

    /// Consumes the blaster, returning the CNF.
    pub fn into_cnf(self) -> Cnf {
        self.cnf
    }

    /// Consumes the blaster, returning the CNF and the variable encodings
    /// (for model read-back) without copying either.
    pub fn into_parts(self) -> (Cnf, HashMap<TermId, Vec<Lit>>) {
        (self.cnf, self.var_bits)
    }

    /// CNF literals of every *variable* term encountered, for model read-back.
    pub fn var_encodings(&self) -> &HashMap<TermId, Vec<Lit>> {
        &self.var_bits
    }

    /// Asserts that a boolean term holds: lowers it to an AIG literal, emits
    /// the clauses its positive occurrence needs, and adds the unit clause.
    pub fn assert_true(&mut self, tm: &TermManager, t: TermId) {
        let root = self.blast_bool(tm, t);
        let l = self.emit.require(&self.aig, &mut self.cnf, root);
        self.cnf.add_clause([l]);
    }

    /// The CNF literal of a boolean term, with the clauses emitted that make
    /// assuming (or asserting) it mean exactly "the term holds" — the entry
    /// point for retractable assumptions in the incremental pipeline.
    pub fn assume_lit(&mut self, tm: &TermManager, t: TermId) -> Lit {
        let root = self.blast_bool(tm, t);
        self.emit.require(&self.aig, &mut self.cnf, root)
    }

    // ------------------------------------------------------------------
    // Gates (thin wrappers over the AIG node builders)
    // ------------------------------------------------------------------

    fn const_lit(&self, b: bool) -> AigLit {
        self.aig.const_lit(b)
    }

    fn and_gate(&mut self, a: AigLit, b: AigLit) -> AigLit {
        self.aig.and(a, b)
    }

    fn or_gate(&mut self, a: AigLit, b: AigLit) -> AigLit {
        self.aig.or(a, b)
    }

    fn xor_gate(&mut self, a: AigLit, b: AigLit) -> AigLit {
        self.aig.xor(a, b)
    }

    fn mux_gate(&mut self, c: AigLit, t: AigLit, e: AigLit) -> AigLit {
        self.aig.mux(c, t, e)
    }

    fn full_adder(&mut self, a: AigLit, b: AigLit, cin: AigLit) -> (AigLit, AigLit) {
        let axb = self.xor_gate(a, b);
        let sum = self.xor_gate(axb, cin);
        let c1 = self.and_gate(a, b);
        let c2 = self.and_gate(axb, cin);
        let cout = self.or_gate(c1, c2);
        (sum, cout)
    }

    fn adder(&mut self, a: &[AigLit], b: &[AigLit], mut carry: AigLit) -> (Vec<AigLit>, AigLit) {
        debug_assert_eq!(a.len(), b.len());
        let mut out = Vec::with_capacity(a.len());
        for i in 0..a.len() {
            let (s, c) = self.full_adder(a[i], b[i], carry);
            out.push(s);
            carry = c;
        }
        (out, carry)
    }

    fn negate_bits(&mut self, a: &[AigLit]) -> Vec<AigLit> {
        let inverted: Vec<AigLit> = a.iter().map(|&l| !l).collect();
        let zeros = vec![self.const_lit(false); a.len()];
        let (out, _) = self.adder(&inverted, &zeros, self.const_lit(true));
        out
    }

    /// Carry out of `a + ~b + 1`; equals 1 iff `a >= b` (unsigned).
    fn uge_carry(&mut self, a: &[AigLit], b: &[AigLit]) -> AigLit {
        let inverted: Vec<AigLit> = b.iter().map(|&l| !l).collect();
        let (_, carry) = self.adder(a, &inverted, self.const_lit(true));
        carry
    }

    fn ult_gate(&mut self, a: &[AigLit], b: &[AigLit]) -> AigLit {
        !self.uge_carry(a, b)
    }

    fn eq_gate(&mut self, a: &[AigLit], b: &[AigLit]) -> AigLit {
        let mut acc = self.const_lit(true);
        for i in 0..a.len() {
            let x = self.xor_gate(a[i], b[i]);
            acc = self.and_gate(acc, !x);
        }
        acc
    }

    fn mux_bits(&mut self, c: AigLit, t: &[AigLit], e: &[AigLit]) -> Vec<AigLit> {
        debug_assert_eq!(t.len(), e.len());
        (0..t.len()).map(|i| self.mux_gate(c, t[i], e[i])).collect()
    }

    fn shifter(
        &mut self,
        a: &[AigLit],
        amount: &[AigLit],
        arithmetic: bool,
        left: bool,
    ) -> Vec<AigLit> {
        let w = a.len();
        let fill = if arithmetic {
            a[w - 1]
        } else {
            self.const_lit(false)
        };
        let stages = usize::BITS - (w - 1).leading_zeros(); // ceil(log2(w)) for w>1
        let stages = stages.max(1) as usize;
        let mut cur = a.to_vec();
        for (stage, &amount_bit) in amount.iter().enumerate().take(stages) {
            let sh = 1usize << stage;
            let mut shifted = vec![fill; w];
            for i in 0..w {
                if left {
                    if i >= sh {
                        shifted[i] = cur[i - sh];
                    } else {
                        shifted[i] = self.const_lit(false);
                    }
                } else if i + sh < w {
                    shifted[i] = cur[i + sh];
                }
            }
            cur = self.mux_bits(amount_bit, &shifted, &cur);
        }
        // If any shift-amount bit at or above `stages` is set, or the encoded
        // amount is >= w, the result saturates to the fill value (zero for
        // logical shifts, sign for arithmetic right shifts).
        let mut overflow = self.const_lit(false);
        for &l in amount.iter().skip(stages) {
            overflow = self.or_gate(overflow, l);
        }
        if !w.is_power_of_two() {
            // amount within [w, 2^stages) also overflows
            let wconst = self.constant_bits(w as u64, amount.len() as u32);
            let ge_w = self.uge_carry(amount, &wconst);
            overflow = self.or_gate(overflow, ge_w);
        }
        let fill_vec = vec![if left { self.const_lit(false) } else { fill }; w];
        self.mux_bits(overflow, &fill_vec, &cur)
    }

    fn constant_bits(&mut self, value: u64, width: u32) -> Vec<AigLit> {
        (0..width)
            .map(|i| self.const_lit((value >> i) & 1 == 1))
            .collect()
    }

    fn multiplier(&mut self, a: &[AigLit], b: &[AigLit]) -> Vec<AigLit> {
        let w = a.len();
        let mut acc = vec![self.const_lit(false); w];
        for i in 0..w {
            // partial product: (a << i) & replicate(b[i])
            let mut partial = vec![self.const_lit(false); w];
            for j in 0..(w - i) {
                partial[i + j] = self.and_gate(a[j], b[i]);
            }
            let (sum, _) = self.adder(&acc, &partial, self.const_lit(false));
            acc = sum;
        }
        acc
    }

    /// Restoring division; returns (quotient, remainder).
    fn divider(&mut self, a: &[AigLit], b: &[AigLit]) -> (Vec<AigLit>, Vec<AigLit>) {
        let w = a.len();
        let f = self.const_lit(false);
        let mut remainder = vec![f; w];
        let mut quotient = vec![f; w];
        for i in (0..w).rev() {
            // remainder = (remainder << 1) | a[i]
            let mut shifted = vec![f; w];
            shifted[0] = a[i];
            shifted[1..w].copy_from_slice(&remainder[..(w - 1)]);
            remainder = shifted;
            let ge = self.uge_carry(&remainder, b);
            let negated_b = self.negate_bits(b);
            let (diff, _) = self.adder(&remainder, &negated_b, self.const_lit(false));
            remainder = self.mux_bits(ge, &diff, &remainder);
            quotient[i] = ge;
        }
        // SMT-LIB: division by zero yields all ones, remainder yields the dividend.
        let zero = vec![f; w];
        let b_is_zero = self.eq_gate(b, &zero);
        let all_ones = vec![self.const_lit(true); w];
        let quotient = self.mux_bits(b_is_zero, &all_ones, &quotient);
        let remainder = self.mux_bits(b_is_zero, a, &remainder);
        (quotient, remainder)
    }

    /// Allocates the AIG inputs and CNF variables of a fresh variable term's
    /// bits.  CNF variables are materialised eagerly so model read-back
    /// literals exist even for variables no emitted clause mentions.
    fn fresh_var_bits(&mut self, t: TermId, width: u32) -> Vec<AigLit> {
        let mut aig_bits = Vec::with_capacity(width as usize);
        let mut cnf_bits = Vec::with_capacity(width as usize);
        for _ in 0..width {
            let input = self.aig.input();
            let v = self.cnf.fresh_var();
            self.emit.register_input(input, v);
            aig_bits.push(input);
            cnf_bits.push(Lit::pos(v));
        }
        self.var_bits.insert(t, cnf_bits);
        aig_bits
    }

    // ------------------------------------------------------------------
    // Term translation
    // ------------------------------------------------------------------

    /// Translates a boolean term into a single AIG literal (no clauses are
    /// emitted — see [`assert_true`](Self::assert_true) /
    /// [`assume_lit`](Self::assume_lit)).
    pub fn blast_bool(&mut self, tm: &TermManager, t: TermId) -> AigLit {
        if let Some(&l) = self.bool_cache.get(&t) {
            self.cache_hits += 1;
            return l;
        }
        debug_assert!(tm.sort(t).is_bool(), "blast_bool on a bit-vector term");
        let l = match tm.term(t).op.clone() {
            Op::BoolConst(b) => self.const_lit(b),
            Op::Var { .. } => self.fresh_var_bits(t, 1)[0],
            Op::Not(a) => {
                let a = self.blast_bool(tm, a);
                !a
            }
            Op::And(a, b) => {
                let (a, b) = (self.blast_bool(tm, a), self.blast_bool(tm, b));
                self.and_gate(a, b)
            }
            Op::Or(a, b) => {
                let (a, b) = (self.blast_bool(tm, a), self.blast_bool(tm, b));
                self.or_gate(a, b)
            }
            Op::Xor(a, b) => {
                let (a, b) = (self.blast_bool(tm, a), self.blast_bool(tm, b));
                self.xor_gate(a, b)
            }
            Op::Implies(a, b) => {
                let (a, b) = (self.blast_bool(tm, a), self.blast_bool(tm, b));
                self.or_gate(!a, b)
            }
            Op::Ite(c, a, b) => {
                let c = self.blast_bool(tm, c);
                let (a, b) = (self.blast_bool(tm, a), self.blast_bool(tm, b));
                self.mux_gate(c, a, b)
            }
            Op::Eq(a, b) => {
                if tm.sort(a).is_bool() {
                    let (a, b) = (self.blast_bool(tm, a), self.blast_bool(tm, b));
                    !self.xor_gate(a, b)
                } else {
                    let a = self.blast_bits(tm, a);
                    let b = self.blast_bits(tm, b);
                    self.eq_gate(&a, &b)
                }
            }
            Op::BvUlt(a, b) => {
                let a = self.blast_bits(tm, a);
                let b = self.blast_bits(tm, b);
                self.ult_gate(&a, &b)
            }
            Op::BvUle(a, b) => {
                let a = self.blast_bits(tm, a);
                let b = self.blast_bits(tm, b);
                !self.ult_gate(&b, &a)
            }
            Op::BvSlt(a, b) => {
                let a = self.blast_bits(tm, a);
                let b = self.blast_bits(tm, b);
                self.slt_gate(&a, &b)
            }
            Op::BvSle(a, b) => {
                let a = self.blast_bits(tm, a);
                let b = self.blast_bits(tm, b);
                !self.slt_gate(&b, &a)
            }
            other => unreachable!("boolean blast of non-boolean operator {other:?}"),
        };
        self.bool_cache.insert(t, l);
        l
    }

    fn slt_gate(&mut self, a: &[AigLit], b: &[AigLit]) -> AigLit {
        let w = a.len();
        let sa = a[w - 1];
        let sb = b[w - 1];
        let signs_differ = self.xor_gate(sa, sb);
        let ult = self.ult_gate(a, b);
        self.mux_gate(signs_differ, sa, ult)
    }

    /// Translates a bit-vector term into its AIG literal vector (LSB first).
    pub fn blast_bits(&mut self, tm: &TermManager, t: TermId) -> Vec<AigLit> {
        if let Some(bits) = self.bits_cache.get(&t) {
            self.cache_hits += 1;
            return bits.clone();
        }
        let width = tm.width(t);
        let bits: Vec<AigLit> = match tm.term(t).op.clone() {
            Op::BvConst { value, .. } => self.constant_bits(value, width),
            Op::Var { .. } => self.fresh_var_bits(t, width),
            Op::BvNot(a) => {
                let a = self.blast_bits(tm, a);
                a.iter().map(|&l| !l).collect()
            }
            Op::BvNeg(a) => {
                let a = self.blast_bits(tm, a);
                self.negate_bits(&a)
            }
            Op::BvAnd(a, b) => {
                let (a, b) = (self.blast_bits(tm, a), self.blast_bits(tm, b));
                (0..width as usize)
                    .map(|i| self.and_gate(a[i], b[i]))
                    .collect()
            }
            Op::BvOr(a, b) => {
                let (a, b) = (self.blast_bits(tm, a), self.blast_bits(tm, b));
                (0..width as usize)
                    .map(|i| self.or_gate(a[i], b[i]))
                    .collect()
            }
            Op::BvXor(a, b) => {
                let (a, b) = (self.blast_bits(tm, a), self.blast_bits(tm, b));
                (0..width as usize)
                    .map(|i| self.xor_gate(a[i], b[i]))
                    .collect()
            }
            Op::BvAdd(a, b) => {
                let (a, b) = (self.blast_bits(tm, a), self.blast_bits(tm, b));
                let (out, _) = self.adder(&a, &b, self.const_lit(false));
                out
            }
            Op::BvSub(a, b) => {
                let (a, b) = (self.blast_bits(tm, a), self.blast_bits(tm, b));
                let inverted: Vec<AigLit> = b.iter().map(|&l| !l).collect();
                let (out, _) = self.adder(&a, &inverted, self.const_lit(true));
                out
            }
            Op::BvMul(a, b) => {
                let (a, b) = (self.blast_bits(tm, a), self.blast_bits(tm, b));
                self.multiplier(&a, &b)
            }
            Op::BvUdiv(a, b) => {
                let (a, b) = (self.blast_bits(tm, a), self.blast_bits(tm, b));
                self.divider(&a, &b).0
            }
            Op::BvUrem(a, b) => {
                let (a, b) = (self.blast_bits(tm, a), self.blast_bits(tm, b));
                self.divider(&a, &b).1
            }
            Op::BvShl(a, b) => {
                let (a, b) = (self.blast_bits(tm, a), self.blast_bits(tm, b));
                self.shifter(&a, &b, false, true)
            }
            Op::BvLshr(a, b) => {
                let (a, b) = (self.blast_bits(tm, a), self.blast_bits(tm, b));
                self.shifter(&a, &b, false, false)
            }
            Op::BvAshr(a, b) => {
                let (a, b) = (self.blast_bits(tm, a), self.blast_bits(tm, b));
                self.shifter(&a, &b, true, false)
            }
            Op::BvConcat(hi, lo) => {
                let hi_bits = self.blast_bits(tm, hi);
                let lo_bits = self.blast_bits(tm, lo);
                let mut out = lo_bits;
                out.extend(hi_bits);
                out
            }
            Op::BvExtract { hi, lo, arg } => {
                let a = self.blast_bits(tm, arg);
                a[lo as usize..=(hi as usize)].to_vec()
            }
            Op::BvZeroExt { by, arg } => {
                let mut a = self.blast_bits(tm, arg);
                a.extend(vec![self.const_lit(false); by as usize]);
                a
            }
            Op::BvSignExt { by, arg } => {
                let mut a = self.blast_bits(tm, arg);
                let sign = *a.last().expect("non-empty bit-vector");
                a.extend(vec![sign; by as usize]);
                a
            }
            Op::Ite(c, a, b) => {
                let c = self.blast_bool(tm, c);
                let (a, b) = (self.blast_bits(tm, a), self.blast_bits(tm, b));
                self.mux_bits(c, &a, &b)
            }
            other => unreachable!("bit-vector blast of boolean operator {other:?}"),
        };
        debug_assert_eq!(bits.len(), width as usize);
        self.bits_cache.insert(t, bits.clone());
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concrete::{eval, Assignment};
    use crate::sat::{SatSolver, SolveOutcome};
    use crate::sort::Sort;

    /// Checks validity of `lhs == rhs` for all inputs by asserting the
    /// disequality and expecting UNSAT.
    fn prove_equal(tm: &mut TermManager, lhs: TermId, rhs: TermId) {
        let goal = tm.neq(lhs, rhs);
        for aig in [true, false] {
            let mut bb = BitBlaster::new();
            bb.set_aig(aig);
            bb.assert_true(tm, goal);
            let mut sat = SatSolver::from_cnf(bb.into_cnf());
            assert_eq!(
                sat.solve(),
                SolveOutcome::Unsat,
                "terms are not equivalent (aig={aig})"
            );
        }
    }

    fn find_model(tm: &TermManager, goal: TermId) -> Option<Assignment> {
        let mut bb = BitBlaster::new();
        bb.assert_true(tm, goal);
        let mut sat = SatSolver::from_cnf(bb.cnf().clone());
        match sat.solve() {
            SolveOutcome::Sat => {
                let mut env = Assignment::new();
                for (&term, bits) in bb.var_encodings() {
                    let mut v = 0u64;
                    for (i, &l) in bits.iter().enumerate() {
                        if sat.value_of(l.var()) == l.is_positive() {
                            v |= 1 << i;
                        }
                    }
                    env.insert(term, v);
                }
                Some(env)
            }
            _ => None,
        }
    }

    #[test]
    fn de_morgan_is_valid() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(8));
        let y = tm.var("y", Sort::BitVec(8));
        let lhs = {
            let a = tm.bv_and(x, y);
            tm.bv_not(a)
        };
        let rhs = {
            let nx = tm.bv_not(x);
            let ny = tm.bv_not(y);
            tm.bv_or(nx, ny)
        };
        prove_equal(&mut tm, lhs, rhs);
    }

    #[test]
    fn sub_equals_add_of_negation() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(12));
        let y = tm.var("y", Sort::BitVec(12));
        let lhs = tm.bv_sub(x, y);
        let rhs = {
            let ny = tm.bv_neg(y);
            tm.bv_add(x, ny)
        };
        prove_equal(&mut tm, lhs, rhs);
    }

    #[test]
    fn xori_identity_from_the_paper() {
        // The Listing-1 identity: SUB rd rs1 rs2 == XORI(ADD(XORI(rs1,-1), rs2), -1)
        // i.e. rs1 - rs2 == ~( ~rs1 + rs2 ).
        let mut tm = TermManager::new();
        let rs1 = tm.var("rs1", Sort::BitVec(16));
        let rs2 = tm.var("rs2", Sort::BitVec(16));
        let lhs = tm.bv_sub(rs1, rs2);
        let rhs = {
            let n1 = tm.bv_not(rs1);
            let s = tm.bv_add(n1, rs2);
            tm.bv_not(s)
        };
        prove_equal(&mut tm, lhs, rhs);
    }

    #[test]
    fn mul_is_commutative() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(8));
        let y = tm.var("y", Sort::BitVec(8));
        let lhs = tm.bv_mul(x, y);
        let rhs = tm.bv_mul(y, x);
        // hash-consing already normalises the operand order, so compare
        // against a multiplication computed through shift-and-add identity:
        // x*y == (x*(y-1)) + x is too slow to prove here; instead check
        // structural equality which the manager guarantees.
        assert_eq!(lhs, rhs);
        // and prove x*2 == x+x through the solver
        let two = tm.bv_const(2, 8);
        let x2 = tm.bv_mul(x, two);
        let xx = tm.bv_add(x, x);
        prove_equal(&mut tm, x2, xx);
    }

    #[test]
    fn shifts_match_evaluator_on_models() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(8));
        let s = tm.var("s", Sort::BitVec(8));
        let shl = tm.bv_shl(x, s);
        let c16 = tm.bv_const(16, 8);
        let goal = {
            let e = tm.eq(shl, c16);
            let lim = tm.bv_const(8, 8);
            let in_range = tm.bv_ult(s, lim);
            let nz = {
                let z = tm.zero(8);
                tm.neq(s, z)
            };
            let a = tm.and(e, in_range);
            tm.and(a, nz)
        };
        let env = find_model(&tm, goal).expect("x << s == 16 with 0<s<8 is satisfiable");
        assert_eq!(eval(&tm, goal, &env), 1, "model must satisfy the goal");
        assert_eq!(eval(&tm, shl, &env), 16);
    }

    #[test]
    fn division_circuit_matches_semantics() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(6));
        let y = tm.var("y", Sort::BitVec(6));
        // x == (x/y)*y + x%y  whenever y != 0
        let q = tm.bv_udiv(x, y);
        let r = tm.bv_urem(x, y);
        let prod = tm.bv_mul(q, y);
        let sum = tm.bv_add(prod, r);
        let zero = tm.zero(6);
        let nz = tm.neq(y, zero);
        let eq = tm.eq(sum, x);
        let prop = tm.implies(nz, eq);
        let goal = tm.not(prop);
        let mut bb = BitBlaster::new();
        bb.assert_true(&tm, goal);
        let mut sat = SatSolver::from_cnf(bb.into_cnf());
        assert_eq!(sat.solve(), SolveOutcome::Unsat);
    }

    #[test]
    fn signed_comparison_counterexample_has_expected_sign() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(8));
        let zero = tm.zero(8);
        // find x with x <s 0 and x >=u 128
        let neg = tm.bv_slt(x, zero);
        let c128 = tm.bv_const(128, 8);
        let big = tm.bv_ule(c128, x);
        let goal = tm.and(neg, big);
        let env = find_model(&tm, goal).expect("negative bytes exist");
        assert!(env[&x] >= 128);
    }

    #[test]
    fn strash_shares_identical_logic_and_shrinks_the_cnf() {
        // `x == y` and `(x ^ y) == 0` are distinct terms (the term cache
        // cannot merge them) with identical gate structure: the equality
        // comparator is a conjunction over per-bit xnors, and so is the
        // zero-test of the xor.  Structural hashing makes the second
        // assertion reach the nodes of the first, so it adds no nodes and
        // no clauses; direct blasting rebuilds and re-encodes everything.
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(8));
        let y = tm.var("y", Sort::BitVec(8));
        let e1 = tm.eq(x, y);
        let xo = tm.bv_xor(x, y);
        let z = tm.zero(8);
        let e2 = tm.eq(xo, z);
        assert_ne!(e1, e2, "distinct at the term level");
        let mut on = BitBlaster::new();
        on.assert_true(&tm, e1);
        let nodes_before = on.aig_stats().nodes;
        let clauses_before = on.cnf().num_clauses();
        on.assert_true(&tm, e2);
        assert_eq!(
            on.aig_stats().nodes,
            nodes_before,
            "strash must share the whole comparator"
        );
        assert_eq!(on.cnf().num_clauses(), clauses_before + 1, "one unit only");
        assert!(on.aig_stats().strash_hits > 0);
        let mut off = BitBlaster::new();
        off.set_aig(false);
        off.assert_true(&tm, e1);
        let nodes_before_off = off.aig_stats().nodes;
        off.assert_true(&tm, e2);
        assert!(
            off.aig_stats().nodes > nodes_before_off,
            "direct blasting rebuilds the comparator"
        );
        assert!(
            on.cnf().num_clauses() < off.cnf().num_clauses(),
            "shared definitions must shrink the CNF: {} vs {}",
            on.cnf().num_clauses(),
            off.cnf().num_clauses()
        );
    }

    #[test]
    fn assume_lit_polarities_compose_across_calls() {
        // The same term assumed positively and (via a not-term) negatively:
        // the second call only tops up the missing polarity clauses, and
        // both behave like the term / its negation.
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(4));
        let c3 = tm.bv_const(3, 4);
        let is3 = tm.eq(x, c3);
        let not3 = tm.not(is3);
        let mut bb = BitBlaster::new();
        let l_pos = bb.assume_lit(&tm, is3);
        let l_neg = bb.assume_lit(&tm, not3);
        assert_eq!(l_neg, !l_pos);
        let bits = bb.var_encodings()[&x].clone();
        let mut sat = SatSolver::from_cnf(bb.into_cnf());
        assert_eq!(sat.solve_under_assumptions(&[l_pos]), SolveOutcome::Sat);
        let val = |sat: &SatSolver| -> u64 {
            bits.iter()
                .enumerate()
                .map(|(i, &l)| u64::from(sat.value_of(l.var()) == l.is_positive()) << i)
                .sum()
        };
        assert_eq!(val(&sat), 3);
        assert_eq!(sat.solve_under_assumptions(&[l_neg]), SolveOutcome::Sat);
        assert_ne!(val(&sat), 3);
        assert_eq!(
            sat.solve_under_assumptions(&[l_pos, l_neg]),
            SolveOutcome::Unsat
        );
    }

    #[test]
    fn blasting_agrees_with_evaluator_on_random_terms() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..25 {
            let mut tm = TermManager::new();
            let w = 7;
            let x = tm.var("x", Sort::BitVec(w));
            let y = tm.var("y", Sort::BitVec(w));
            let z = tm.var("z", Sort::BitVec(w));
            // build a random expression tree of depth 3
            let mut exprs = vec![x, y, z];
            for _ in 0..6 {
                let a = exprs[rng.gen_range(0..exprs.len())];
                let b = exprs[rng.gen_range(0..exprs.len())];
                let e = match rng.gen_range(0..10) {
                    0 => tm.bv_add(a, b),
                    1 => tm.bv_sub(a, b),
                    2 => tm.bv_and(a, b),
                    3 => tm.bv_or(a, b),
                    4 => tm.bv_xor(a, b),
                    5 => tm.bv_mul(a, b),
                    6 => tm.bv_shl(a, b),
                    7 => tm.bv_lshr(a, b),
                    8 => tm.bv_ashr(a, b),
                    _ => {
                        let c = tm.bv_ult(a, b);
                        tm.ite(c, a, b)
                    }
                };
                exprs.push(e);
            }
            let top = *exprs.last().expect("expressions exist");
            let xv = rng.gen_range(0..(1 << w)) as u64;
            let yv = rng.gen_range(0..(1 << w)) as u64;
            let zv = rng.gen_range(0..(1 << w)) as u64;
            let env: Assignment = [(x, xv), (y, yv), (z, zv)].into_iter().collect();
            let expected = eval(&tm, top, &env);
            // assert top == expected together with the variable values; must be SAT
            let cexp = tm.bv_const(expected, w);
            let cx = tm.bv_const(xv, w);
            let cy = tm.bv_const(yv, w);
            let cz = tm.bv_const(zv, w);
            let goal = {
                let e1 = tm.eq(top, cexp);
                let e2 = tm.eq(x, cx);
                let e3 = tm.eq(y, cy);
                let e4 = tm.eq(z, cz);
                let a = tm.and(e1, e2);
                let b = tm.and(e3, e4);
                tm.and(a, b)
            };
            assert!(
                find_model(&tm, goal).is_some(),
                "bit-blaster disagrees with evaluator"
            );
        }
    }
}
