//! Term substitution (used by the transition-system unroller).

use std::collections::HashMap;

use crate::term::{Op, TermId, TermManager};

/// Rebuilds `root` with every occurrence of a key of `map` replaced by the
/// corresponding value.  Substitution is simultaneous (values are not
/// re-substituted) and results are shared through `cache`, so repeated calls
/// over the same unrolling frame stay linear.
pub fn substitute(
    tm: &mut TermManager,
    root: TermId,
    map: &HashMap<TermId, TermId>,
    cache: &mut HashMap<TermId, TermId>,
) -> TermId {
    // Iterative post-order rewrite to keep deep BMC unrollings off the call
    // stack.
    let mut stack = vec![(root, false)];
    while let Some((t, expanded)) = stack.pop() {
        if cache.contains_key(&t) {
            continue;
        }
        if let Some(&r) = map.get(&t) {
            cache.insert(t, r);
            continue;
        }
        let children = tm.term(t).op.children();
        if children.is_empty() {
            cache.insert(t, t);
            continue;
        }
        if !expanded {
            stack.push((t, true));
            for c in children {
                if !cache.contains_key(&c) && !map.contains_key(&c) {
                    stack.push((c, false));
                }
            }
            continue;
        }
        let rebuilt = rebuild(tm, t, map, cache);
        cache.insert(t, rebuilt);
    }
    cache[&root]
}

/// Convenience wrapper that allocates a fresh cache.
pub fn substitute_once(
    tm: &mut TermManager,
    root: TermId,
    map: &HashMap<TermId, TermId>,
) -> TermId {
    let mut cache = HashMap::new();
    substitute(tm, root, map, &mut cache)
}

fn lookup(t: TermId, map: &HashMap<TermId, TermId>, cache: &HashMap<TermId, TermId>) -> TermId {
    if let Some(&r) = map.get(&t) {
        r
    } else {
        cache[&t]
    }
}

fn rebuild(
    tm: &mut TermManager,
    t: TermId,
    map: &HashMap<TermId, TermId>,
    cache: &HashMap<TermId, TermId>,
) -> TermId {
    let op = tm.term(t).op.clone();
    rebuild_with(tm, t, &op, |id| lookup(id, map, cache))
}

/// Rebuilds one node through the [`TermManager`] constructors with every
/// child replaced by `l(child)`.  Leaves rebuild to themselves.  Shared by
/// the substitution pass above and the rewriter in [`crate::rewrite`], so
/// both go through the same constructor-level simplifications.
pub(crate) fn rebuild_with(
    tm: &mut TermManager,
    t: TermId,
    op: &Op,
    l: impl Fn(TermId) -> TermId,
) -> TermId {
    match *op {
        Op::BoolConst(_) | Op::BvConst { .. } | Op::Var { .. } => t,
        Op::Not(a) => {
            let a = l(a);
            tm.not(a)
        }
        Op::And(a, b) => {
            let (a, b) = (l(a), l(b));
            tm.and(a, b)
        }
        Op::Or(a, b) => {
            let (a, b) = (l(a), l(b));
            tm.or(a, b)
        }
        Op::Xor(a, b) => {
            let (a, b) = (l(a), l(b));
            tm.xor(a, b)
        }
        Op::Implies(a, b) => {
            let (a, b) = (l(a), l(b));
            tm.implies(a, b)
        }
        Op::Ite(c, a, b) => {
            let (c, a, b) = (l(c), l(a), l(b));
            tm.ite(c, a, b)
        }
        Op::Eq(a, b) => {
            let (a, b) = (l(a), l(b));
            tm.eq(a, b)
        }
        Op::BvNot(a) => {
            let a = l(a);
            tm.bv_not(a)
        }
        Op::BvNeg(a) => {
            let a = l(a);
            tm.bv_neg(a)
        }
        Op::BvAnd(a, b) => {
            let (a, b) = (l(a), l(b));
            tm.bv_and(a, b)
        }
        Op::BvOr(a, b) => {
            let (a, b) = (l(a), l(b));
            tm.bv_or(a, b)
        }
        Op::BvXor(a, b) => {
            let (a, b) = (l(a), l(b));
            tm.bv_xor(a, b)
        }
        Op::BvAdd(a, b) => {
            let (a, b) = (l(a), l(b));
            tm.bv_add(a, b)
        }
        Op::BvSub(a, b) => {
            let (a, b) = (l(a), l(b));
            tm.bv_sub(a, b)
        }
        Op::BvMul(a, b) => {
            let (a, b) = (l(a), l(b));
            tm.bv_mul(a, b)
        }
        Op::BvUdiv(a, b) => {
            let (a, b) = (l(a), l(b));
            tm.bv_udiv(a, b)
        }
        Op::BvUrem(a, b) => {
            let (a, b) = (l(a), l(b));
            tm.bv_urem(a, b)
        }
        Op::BvShl(a, b) => {
            let (a, b) = (l(a), l(b));
            tm.bv_shl(a, b)
        }
        Op::BvLshr(a, b) => {
            let (a, b) = (l(a), l(b));
            tm.bv_lshr(a, b)
        }
        Op::BvAshr(a, b) => {
            let (a, b) = (l(a), l(b));
            tm.bv_ashr(a, b)
        }
        Op::BvUlt(a, b) => {
            let (a, b) = (l(a), l(b));
            tm.bv_ult(a, b)
        }
        Op::BvUle(a, b) => {
            let (a, b) = (l(a), l(b));
            tm.bv_ule(a, b)
        }
        Op::BvSlt(a, b) => {
            let (a, b) = (l(a), l(b));
            tm.bv_slt(a, b)
        }
        Op::BvSle(a, b) => {
            let (a, b) = (l(a), l(b));
            tm.bv_sle(a, b)
        }
        Op::BvConcat(a, b) => {
            let (a, b) = (l(a), l(b));
            tm.bv_concat(a, b)
        }
        Op::BvExtract { hi, lo, arg } => {
            let arg = l(arg);
            tm.bv_extract(arg, hi, lo)
        }
        Op::BvZeroExt { by, arg } => {
            let arg = l(arg);
            tm.bv_zero_ext(arg, by)
        }
        Op::BvSignExt { by, arg } => {
            let arg = l(arg);
            tm.bv_sign_ext(arg, by)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concrete::eval;
    use crate::sort::Sort;

    #[test]
    fn substitutes_variables() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(8));
        let y = tm.var("y", Sort::BitVec(8));
        let z = tm.var("z", Sort::BitVec(8));
        let e = tm.bv_add(x, y);
        let map = HashMap::from([(x, z)]);
        let r = substitute_once(&mut tm, e, &map);
        let expected = tm.bv_add(z, y);
        assert_eq!(r, expected);
    }

    #[test]
    fn substitution_is_simultaneous() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(8));
        let y = tm.var("y", Sort::BitVec(8));
        let e = tm.bv_sub(x, y);
        // swap x and y
        let map = HashMap::from([(x, y), (y, x)]);
        let r = substitute_once(&mut tm, e, &map);
        let expected = tm.bv_sub(y, x);
        assert_eq!(r, expected);
    }

    #[test]
    fn substituting_constants_folds() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(8));
        let y = tm.var("y", Sort::BitVec(8));
        let e = tm.bv_add(x, y);
        let c3 = tm.bv_const(3, 8);
        let c4 = tm.bv_const(4, 8);
        let map = HashMap::from([(x, c3), (y, c4)]);
        let r = substitute_once(&mut tm, e, &map);
        assert_eq!(tm.const_value(r), Some(7));
    }

    #[test]
    fn semantics_preserved_on_random_expression() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(16));
        let y = tm.var("y", Sort::BitVec(16));
        let a = tm.var("a", Sort::BitVec(16));
        let b = tm.var("b", Sort::BitVec(16));
        let e0 = tm.bv_mul(x, y);
        let e1 = tm.bv_xor(e0, x);
        let lt = tm.bv_slt(e1, y);
        let e = tm.ite(lt, e0, e1);
        let map = HashMap::from([(x, a), (y, b)]);
        let r = substitute_once(&mut tm, e, &map);
        let env_orig = HashMap::from([(x, 123u64), (y, 45u64)]);
        let env_new = HashMap::from([(a, 123u64), (b, 45u64)]);
        assert_eq!(eval(&tm, e, &env_orig), eval(&tm, r, &env_new));
    }
}
