//! Term sorts.

use std::fmt;

/// The sort (type) of a term: boolean or a fixed-width bit-vector.
///
/// Bit-vector widths are limited to 64 bits, which is sufficient for the
/// RV32IM semantics used throughout the reproduction (the widest values are
/// 64-bit products used by `MULH*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sort {
    /// A boolean proposition.
    Bool,
    /// A bit-vector of the given width (1..=64).
    BitVec(u32),
}

impl Sort {
    /// Returns the bit-vector width, or `None` for booleans.
    pub fn width(self) -> Option<u32> {
        match self {
            Sort::Bool => None,
            Sort::BitVec(w) => Some(w),
        }
    }

    /// Returns the bit-vector width.
    ///
    /// # Panics
    ///
    /// Panics if the sort is [`Sort::Bool`].
    pub fn expect_width(self) -> u32 {
        self.width().expect("expected a bit-vector sort")
    }

    /// Whether this is a bit-vector sort.
    pub fn is_bitvec(self) -> bool {
        matches!(self, Sort::BitVec(_))
    }

    /// Whether this is the boolean sort.
    pub fn is_bool(self) -> bool {
        matches!(self, Sort::Bool)
    }
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sort::Bool => write!(f, "Bool"),
            Sort::BitVec(w) => write!(f, "BitVec({w})"),
        }
    }
}

/// Masks a value to `width` bits.
///
/// Widths of 64 are handled without overflow.
pub fn mask(value: u64, width: u32) -> u64 {
    debug_assert!(
        (1..=64).contains(&width),
        "invalid bit-vector width {width}"
    );
    if width >= 64 {
        value
    } else {
        value & ((1u64 << width) - 1)
    }
}

/// Sign-extends a `width`-bit value to 64 bits (as `i64` reinterpreted in `u64`).
pub fn sign_extend(value: u64, width: u32) -> u64 {
    debug_assert!((1..=64).contains(&width));
    if width >= 64 {
        return value;
    }
    let sign_bit = 1u64 << (width - 1);
    if value & sign_bit != 0 {
        value | !((1u64 << width) - 1)
    } else {
        value & ((1u64 << width) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_accessors() {
        assert_eq!(Sort::Bool.width(), None);
        assert_eq!(Sort::BitVec(32).width(), Some(32));
        assert_eq!(Sort::BitVec(7).expect_width(), 7);
        assert!(Sort::BitVec(1).is_bitvec());
        assert!(Sort::Bool.is_bool());
    }

    #[test]
    #[should_panic(expected = "expected a bit-vector sort")]
    fn expect_width_panics_on_bool() {
        Sort::Bool.expect_width();
    }

    #[test]
    fn masking() {
        assert_eq!(mask(0x1ff, 8), 0xff);
        assert_eq!(mask(u64::MAX, 64), u64::MAX);
        assert_eq!(mask(0b1010, 3), 0b010);
    }

    #[test]
    fn sign_extension() {
        assert_eq!(sign_extend(0x80, 8), 0xffff_ffff_ffff_ff80);
        assert_eq!(sign_extend(0x7f, 8), 0x7f);
        assert_eq!(sign_extend(0xfff, 12), !0xfff | 0xfff);
        assert_eq!(sign_extend(1, 1), u64::MAX);
        assert_eq!(sign_extend(0, 1), 0);
    }

    #[test]
    fn display() {
        assert_eq!(Sort::Bool.to_string(), "Bool");
        assert_eq!(Sort::BitVec(12).to_string(), "BitVec(12)");
    }
}
