//! Incremental SMT solving: one bit-blaster, one SAT solver, many queries.
//!
//! The scratch [`Solver`](crate::Solver) re-encodes its whole assertion set
//! and builds a fresh CDCL instance on every `check`, which makes a depth-`k`
//! BMC sweep pay O(k²) total encoding work and restarts every search cold.
//! [`IncrementalSolver`] instead keeps a single [`BitBlaster`] and a single
//! [`SatSolver`] alive for its lifetime:
//!
//! * [`assert_term`](IncrementalSolver::assert_term) adds a *permanent*
//!   assertion — only the not-yet-encoded subgraph of the term is
//!   bit-blasted, everything already seen is a cache hit;
//! * [`check_assuming`](IncrementalSolver::check_assuming) decides the
//!   permanent assertions conjoined with a set of *retractable* boolean
//!   terms, lowered to assumption literals (the MiniSat `solve(assumps)`
//!   model) — learnt clauses, VSIDS activity and saved phases carry over
//!   from call to call;
//! * on an assumption-caused UNSAT,
//!   [`unsat_core`](IncrementalSolver::unsat_core) names the subset of
//!   assumed terms that participated in the final conflict.
//!
//! The blaster lowers terms to a structurally hashed and-inverter graph and
//! emits CNF through a polarity-aware Tseitin pass whose node→variable
//! mapping is append-only: clauses are only ever added, so learnt clauses,
//! VSIDS state and the clause-database reduction machinery stay valid across
//! checks.  Assuming the literal [`check_assuming`] obtains for a term is
//! exactly "this term holds" (the emission call tops up whatever polarity
//! implications that occurrence needs) — no auxiliary activation variables,
//! and re-assuming the same term in a later call is free.
//!
//! [`check_assuming`]: IncrementalSolver::check_assuming

use std::time::{Duration, Instant};

use crate::bitblast::BitBlaster;
use crate::cnf::Lit;
use crate::rewrite::{EncodeStats, Rewriter};
use crate::sat::{CancelFlag, FaultHooks, SatSolver, SolveOutcome, StopReason};
use crate::solver::{Model, SatResult};
use crate::term::{TermId, TermManager};

/// Solver-reuse counters shared by everything that runs on top of the
/// incremental pipeline (BMC, CEGIS, the bench harness).
///
/// `*_last_check` fields describe the most recent
/// [`check_assuming`](IncrementalSolver::check_assuming) call; the rest are
/// cumulative over the solver's lifetime.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolverReuseStats {
    /// Checks issued so far.
    pub checks: u64,
    /// The joint encoding picture: bit-blaster cache counters and the
    /// word-level rewriting counters in one block.
    pub encode: EncodeStats,
    /// CNF variables allocated so far.
    pub cnf_vars: u64,
    /// CNF clauses fed to the SAT solver so far (excluding learnt).
    pub cnf_clauses: u64,
    /// Clauses that were new in the last check.
    pub clauses_last_check: u64,
    /// Learnt clauses retained at the end of the last check (available to
    /// the next one).
    pub learnt_retained: u64,
    /// Learnt-database reduction passes run over the solver's lifetime.
    pub reduce_passes: u64,
    /// Learnt clauses deleted (and their arena slots compacted away) by
    /// reduction over the solver's lifetime.
    pub learnt_deleted: u64,
    /// Most live learnt clauses ever resident at once — with reduction on,
    /// this stays below `learnt_deleted + learnt_retained` (what an
    /// unreduced solver would be holding).
    pub learnt_high_water: u64,
    /// SAT conflicts over the solver's lifetime.
    pub conflicts: u64,
    /// SAT conflicts of the last check.
    pub conflicts_last_check: u64,
    /// SAT propagations over the solver's lifetime.
    pub propagations: u64,
    /// Wall-clock time spent inside checks.
    pub duration: Duration,
    /// Wall-clock time of the last check.
    pub duration_last_check: Duration,
}

impl SolverReuseStats {
    /// Merges another stats block into this one (for drivers aggregating
    /// over several solver lifetimes).
    pub fn absorb(&mut self, other: &SolverReuseStats) {
        self.checks += other.checks;
        self.encode.absorb(&other.encode);
        self.cnf_vars += other.cnf_vars;
        self.cnf_clauses += other.cnf_clauses;
        self.clauses_last_check = other.clauses_last_check;
        self.learnt_retained += other.learnt_retained;
        self.reduce_passes += other.reduce_passes;
        self.learnt_deleted += other.learnt_deleted;
        self.learnt_high_water = self.learnt_high_water.max(other.learnt_high_water);
        self.conflicts += other.conflicts;
        self.conflicts_last_check = other.conflicts_last_check;
        self.propagations += other.propagations;
        self.duration += other.duration;
        self.duration_last_check = other.duration_last_check;
    }
}

/// An SMT solver that persists its encoding and search state across checks.
#[derive(Debug, Clone)]
pub struct IncrementalSolver {
    blaster: BitBlaster,
    sat: SatSolver,
    rewriter: Rewriter,
    simplify: bool,
    conflict_limit: Option<u64>,
    last_model: Option<Model>,
    last_core: Vec<TermId>,
    stats: SolverReuseStats,
}

impl Default for IncrementalSolver {
    fn default() -> Self {
        Self::new()
    }
}

impl IncrementalSolver {
    /// Creates an empty incremental solver.
    pub fn new() -> Self {
        IncrementalSolver {
            blaster: BitBlaster::new(),
            sat: SatSolver::new(),
            rewriter: Rewriter::new(),
            simplify: true,
            conflict_limit: None,
            last_model: None,
            last_core: Vec::new(),
            stats: SolverReuseStats::default(),
        }
    }

    /// Turns the gate-level AIG reductions of the underlying bit-blaster on
    /// or off (on by default): structural hashing, local rewriting and
    /// polarity-aware Tseitin.  Off is the direct-blasting baseline of the
    /// `aig_off` differential/bench arms.  Must be called before anything is
    /// asserted or checked (the blaster panics otherwise).
    pub fn set_aig(&mut self, on: bool) {
        self.blaster.set_aig(on);
    }

    /// Turns the word-level simplification pass on or off (on by default).
    ///
    /// With simplification on, every permanent assertion is rewritten modulo
    /// the equalities asserted before it (rule catalogue + variable pinning)
    /// and assumptions are rewritten under the same — permanent only — pin
    /// set, so the encoding cache stays coherent across checks.  Models read
    /// back identically either way: variables whose defining equality was
    /// eliminated are reconstructed after each satisfiable check.  Toggling
    /// mid-life is safe in both directions: turning the pass off stops
    /// *harvesting* new pins and applying rules to fresh assertions, but
    /// variables already eliminated keep being substituted (their defining
    /// equality no longer exists in the CNF, so dropping the substitution
    /// would silently unconstrain them); turning it on after unsimplified
    /// assertions is also safe — pins only ever eliminate variables the
    /// bit-blaster has not seen.
    pub fn set_simplify(&mut self, on: bool) {
        self.simplify = on;
    }

    /// CNF variables allocated by the underlying bit-blaster so far (a
    /// watermark for
    /// [`rescale_activities_before`](Self::rescale_activities_before)).
    pub fn num_cnf_vars(&self) -> u32 {
        self.blaster.cnf().num_vars()
    }

    /// Decays the SAT branching (VSIDS) activity of every CNF variable
    /// allocated before `watermark` by `factor` — the BMC drivers call this
    /// when a new unrolling frame is asserted, so branching re-centres on
    /// the newest frame's variables instead of letting stale depths dominate
    /// (see `SatSolver::rescale_activities_before`).
    pub fn rescale_activities_before(&mut self, watermark: u32, factor: f64) {
        self.sat
            .rescale_activities_before(crate::cnf::Var(watermark), factor);
    }

    /// Limits the SAT conflict budget of each subsequent check; `None` means
    /// unlimited.  Exceeding the budget makes the check return
    /// [`SatResult::Unknown`].
    pub fn set_conflict_limit(&mut self, limit: Option<u64>) {
        self.conflict_limit = limit;
    }

    /// Sets a wall-clock deadline for subsequent checks; a check that passes
    /// the deadline returns [`SatResult::Unknown`].  The solver state stays
    /// valid — raise or clear the deadline and check again to continue.
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.sat.set_deadline(deadline);
    }

    /// Attaches a *set* of cancellation flags: any raised flag cancels the
    /// check.  Independent cancellation sources (a caller's own flag, a
    /// batch's global flag) chain this way instead of replacing each other.
    /// Replaces previously attached flags; an empty set detaches.
    pub fn set_cancel_flags(&mut self, cancel: Vec<CancelFlag>) {
        self.sat.set_cancel_flags(cancel);
    }

    /// Caps the estimated clause-arena + watcher bytes of the underlying SAT
    /// solver; a check whose estimate exceeds the cap returns
    /// [`SatResult::Unknown`] with [`StopReason::MemoryBudget`].  The solver
    /// state stays valid — learnt-database reduction or a raised cap lets a
    /// later check continue.  `None` (default) means unlimited.
    pub fn set_memory_limit(&mut self, limit: Option<usize>) {
        self.sat.set_memory_limit(limit);
    }

    /// Arms the deterministic fault-injection hooks (see [`FaultHooks`]) on
    /// the underlying SAT solver for subsequent checks.
    pub fn set_fault_hooks(&mut self, fault: FaultHooks) {
        self.sat.set_fault_hooks(fault);
    }

    /// Why the last check returned [`SatResult::Unknown`]; `None` after a
    /// conclusive verdict (or before any check).
    pub fn stop_reason(&self) -> Option<StopReason> {
        self.sat.stop_reason()
    }

    /// High-water mark of the SAT solver's memory estimate (bytes), sampled
    /// at the same 1-in-64-conflict point as the budget check.
    pub fn memory_high_water(&self) -> usize {
        self.sat.memory_high_water()
    }

    /// Overrides the learnt-database reduction schedule of the underlying
    /// SAT solver: the next reduction fires `interval` conflicts from now
    /// and the interval grows geometrically from there.  Small values force
    /// frequent reductions (used by the differential tests); the default
    /// schedule is tuned for long-lived solvers and needs no adjustment.
    pub fn set_reduce_interval(&mut self, interval: u64) {
        self.sat.set_reduce_interval(interval);
    }

    /// Permanently asserts a boolean term.  With simplification on (the
    /// default) the term is first rewritten modulo the already-asserted
    /// equalities — definitions of not-yet-encoded variables are eliminated
    /// entirely — and only then is the surviving subgraph bit-blasted (and
    /// of that, only the part not already encoded by earlier work).
    ///
    /// # Panics
    ///
    /// Panics if `t` is not a boolean term — asserting a bit-vector has no
    /// meaning, so the misuse is rejected at the call site rather than
    /// surfacing as an encoding error later.
    pub fn assert_term(&mut self, tm: &mut TermManager, t: TermId) {
        assert!(tm.sort(t).is_bool(), "assertions must be boolean terms");
        if !self.simplify {
            // Simplification may have been on earlier: variables it
            // eliminated have no defining equality in the CNF, so their
            // occurrences must keep substituting even with the pass off —
            // blasting such a variable raw would leave it unconstrained.
            let t = if self.rewriter.num_pins() > 0 {
                self.rewriter.rewrite(tm, t)
            } else {
                t
            };
            self.blaster.assert_true(tm, t);
            return;
        }
        let to_assert = {
            let blaster = &self.blaster;
            self.rewriter
                .assert_simplify(tm, &[t], &|v| blaster.var_encodings().contains_key(&v))
        };
        for c in to_assert {
            self.blaster.assert_true(tm, c);
        }
    }

    /// Decides satisfiability of the permanent assertions.
    pub fn check(&mut self, tm: &mut TermManager) -> SatResult {
        self.check_assuming(tm, &[])
    }

    /// Decides satisfiability of the permanent assertions conjoined with the
    /// given boolean terms, which are *retracted* when the call returns.
    ///
    /// On [`SatResult::Unsat`], [`unsat_core`](Self::unsat_core) holds the
    /// subset of `assumptions` involved in the final conflict (empty when the
    /// permanent assertions are unsatisfiable on their own).
    ///
    /// # Panics
    ///
    /// Panics if an assumption is not a boolean term (the same invariant as
    /// [`assert_term`](Self::assert_term)).
    pub fn check_assuming(&mut self, tm: &mut TermManager, assumptions: &[TermId]) -> SatResult {
        let start = Instant::now();
        let mut assumption_lits: Vec<(Lit, TermId)> = Vec::with_capacity(assumptions.len());
        for &t in assumptions {
            assert!(tm.sort(t).is_bool(), "assumptions must be boolean terms");
            // Assumptions are retractable, so they are rewritten under the
            // permanent pin set but never contribute pins of their own.
            // Pins stay applied even with simplification off: an eliminated
            // variable has no defining equality in the CNF to fall back on.
            let r = if self.simplify || self.rewriter.num_pins() > 0 {
                self.rewriter.rewrite(tm, t)
            } else {
                t
            };
            let l = self.blaster.assume_lit(tm, r);
            assumption_lits.push((l, t));
        }
        let new_clauses = self.sync_clauses();
        self.sat.set_conflict_limit(self.conflict_limit);
        let conflicts_before = self.sat.num_conflicts();
        let lits: Vec<Lit> = assumption_lits.iter().map(|&(l, _)| l).collect();
        let outcome = self.sat.solve_under_assumptions(&lits);

        self.stats.checks += 1;
        self.stats.encode.terms_cached = self.blaster.cached_terms();
        self.stats.encode.terms_reused = self.blaster.cache_hits();
        self.stats.encode.rewrite = self.rewriter.stats();
        self.stats.encode.aig = self.blaster.aig_stats();
        self.stats.clauses_last_check = new_clauses;
        self.stats.learnt_retained = self.sat.num_learnt() as u64;
        let reduce = self.sat.reduce_stats();
        self.stats.reduce_passes = reduce.reductions;
        self.stats.learnt_deleted = reduce.clauses_deleted;
        self.stats.learnt_high_water = reduce.learnt_high_water;
        self.stats.conflicts_last_check = self.sat.num_conflicts() - conflicts_before;
        self.stats.conflicts = self.sat.num_conflicts();
        self.stats.propagations = self.sat.num_propagations();
        self.stats.duration_last_check = start.elapsed();
        self.stats.duration += self.stats.duration_last_check;

        self.last_core.clear();
        match outcome {
            SolveOutcome::Sat => {
                let mut model = Model::read_back(self.blaster.var_encodings(), &self.sat);
                self.rewriter.complete_model(tm, model.assignment_mut());
                self.last_model = Some(model);
                SatResult::Sat
            }
            SolveOutcome::Unsat => {
                self.last_model = None;
                for &failed in self.sat.unsat_assumptions() {
                    for &(l, t) in &assumption_lits {
                        if l == failed && !self.last_core.contains(&t) {
                            self.last_core.push(t);
                        }
                    }
                }
                SatResult::Unsat
            }
            SolveOutcome::Unknown => {
                self.last_model = None;
                SatResult::Unknown
            }
        }
    }

    /// Feeds every clause produced since the last check to the SAT solver.
    fn sync_clauses(&mut self) -> u64 {
        let num_vars = self.blaster.cnf().num_vars();
        self.sat.reserve_vars(num_vars);
        self.stats.cnf_vars = u64::from(num_vars);
        let new = self.blaster.cnf_mut().take_clauses();
        let count = new.len() as u64;
        for clause in new {
            // A `false` return marks permanent unsatisfiability; the solver
            // itself remembers, so no separate flag is needed here.
            let _ = self.sat.add_clause(clause);
        }
        self.stats.cnf_clauses += count;
        count
    }

    /// The model of the last satisfiable check.
    ///
    /// # Panics
    ///
    /// Panics if the last check was not satisfiable.
    pub fn model(&self, _tm: &TermManager) -> &Model {
        self.last_model
            .as_ref()
            .expect("model requested but last check was not SAT")
    }

    /// The model of the last satisfiable check, if any.
    pub fn try_model(&self) -> Option<&Model> {
        self.last_model.as_ref()
    }

    /// The subset of the last check's assumptions involved in its final
    /// conflict, when the check returned [`SatResult::Unsat`].
    pub fn unsat_core(&self) -> &[TermId] {
        &self.last_core
    }

    /// The subset of `among` that appears in the final-conflict unsat core
    /// of the last `check_assuming`, in `among`'s order.
    ///
    /// This is the cube-generalisation primitive of IC3/PDR: a blocked
    /// cube's next-state literals are passed as individual assumptions, and
    /// every literal the core does *not* mention can be dropped from the
    /// learned clause without re-proving anything.
    pub fn core_subset(&self, among: &[TermId]) -> Vec<TermId> {
        among
            .iter()
            .copied()
            .filter(|t| self.last_core.contains(t))
            .collect()
    }

    /// Cumulative and per-check reuse statistics.
    pub fn stats(&self) -> SolverReuseStats {
        self.stats
    }
}

/// Builds the one-hot assumption set of the activation-literal multiplexing
/// idiom (Eén–Sörensson): assume `literals[selected]` true and every other
/// literal false, followed by any `extra` retractable assumptions (typically
/// the query's goal, e.g. a BMC depth's bad state).
///
/// Passing the whole set — negations included — on *every* check is what
/// keeps a shared encoding sound: a guard `aᵢ ∧ triggerᵢ` is pinned false
/// for each unselected entry, so the one active mutation sees exactly the
/// clauses a dedicated single-mutation encoding would, while learnt clauses
/// that do not depend on any activation literal transfer across the whole
/// catalogue.
///
/// # Panics
///
/// Panics if `selected` is out of range.
pub fn one_hot_assumptions(
    tm: &mut TermManager,
    literals: &[TermId],
    selected: usize,
    extra: &[TermId],
) -> Vec<TermId> {
    assert!(
        selected < literals.len(),
        "selected activation literal {selected} out of range ({} literals)",
        literals.len()
    );
    let mut assumptions = Vec::with_capacity(literals.len() + extra.len());
    for (i, &lit) in literals.iter().enumerate() {
        if i == selected {
            assumptions.push(lit);
        } else {
            assumptions.push(tm.not(lit));
        }
    }
    assumptions.extend_from_slice(extra);
    assumptions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::Solver;
    use crate::sort::Sort;

    #[test]
    fn incremental_matches_scratch_on_a_depth_sweep() {
        // x0 = 0, x_{k+1} = x_k + 1; "bad at depth k" ⇔ x_k == 3.
        let mut tm = TermManager::new();
        let width = 8;
        let mut inc = IncrementalSolver::new();
        let mut frames = vec![tm.var("x@0", Sort::BitVec(width))];
        let zero = tm.zero(width);
        let init = tm.eq(frames[0], zero);
        inc.assert_term(&mut tm, init);
        let three = tm.bv_const(3, width);
        for k in 0..6 {
            let next = tm.var(&format!("x@{}", k + 1), Sort::BitVec(width));
            let one = tm.one(width);
            let step = tm.bv_add(frames[k], one);
            let tr = tm.eq(next, step);
            inc.assert_term(&mut tm, tr);
            frames.push(next);
            let bad = tm.eq(next, three);
            let got = inc.check_assuming(&mut tm, &[bad]);
            // Scratch reference: assert everything from zero.
            let mut scratch = Solver::new();
            scratch.assert_term(&tm, init);
            for j in 0..=k {
                let one = tm.one(width);
                let step = tm.bv_add(frames[j], one);
                let eq = tm.eq(frames[j + 1], step);
                scratch.assert_term(&tm, eq);
            }
            scratch.assert_term(&tm, bad);
            assert_eq!(got, scratch.check(&mut tm), "divergence at depth {k}");
            if got == SatResult::Sat {
                assert_eq!(inc.model(&tm).eval(&tm, bad), 1);
                assert_eq!(k, 2, "counter reaches 3 exactly at depth 3");
            }
        }
        let stats = inc.stats();
        assert_eq!(stats.checks, 6);
        assert!(
            stats.encode.total_reuse() > 0,
            "depth k+1 must reuse depth k encodings"
        );
    }

    #[test]
    fn retracted_assumptions_do_not_pollute_later_checks() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(8));
        let five = tm.bv_const(5, 8);
        let six = tm.bv_const(6, 8);
        let is5 = tm.eq(x, five);
        let is6 = tm.eq(x, six);
        let mut inc = IncrementalSolver::new();
        assert_eq!(inc.check_assuming(&mut tm, &[is5, is6]), SatResult::Unsat);
        assert_eq!(inc.check_assuming(&mut tm, &[is5]), SatResult::Sat);
        assert_eq!(inc.model(&tm).value(x), 5);
        assert_eq!(inc.check_assuming(&mut tm, &[is6]), SatResult::Sat);
        assert_eq!(inc.model(&tm).value(x), 6);
    }

    #[test]
    fn unsat_core_names_the_conflicting_terms() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(8));
        let y = tm.var("y", Sort::BitVec(8));
        let c1 = tm.bv_const(1, 8);
        let c2 = tm.bv_const(2, 8);
        let x_is_1 = tm.eq(x, c1);
        let x_is_2 = tm.eq(x, c2);
        let y_is_1 = tm.eq(y, c1);
        let mut inc = IncrementalSolver::new();
        assert_eq!(
            inc.check_assuming(&mut tm, &[x_is_1, y_is_1, x_is_2]),
            SatResult::Unsat
        );
        let core = inc.unsat_core().to_vec();
        assert!(
            core.contains(&x_is_1) || core.contains(&x_is_2),
            "core {core:?}"
        );
        assert!(!core.contains(&y_is_1), "y is irrelevant to the conflict");
        // Core is itself unsatisfiable.
        assert_eq!(inc.check_assuming(&mut tm, &core), SatResult::Unsat);
    }

    #[test]
    fn permanent_unsat_yields_empty_core() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(4));
        let c1 = tm.bv_const(1, 4);
        let c2 = tm.bv_const(2, 4);
        let a = tm.eq(x, c1);
        let b = tm.eq(x, c2);
        let mut inc = IncrementalSolver::new();
        inc.assert_term(&mut tm, a);
        inc.assert_term(&mut tm, b);
        let t = tm.tru();
        assert_eq!(inc.check_assuming(&mut tm, &[t]), SatResult::Unsat);
        assert!(inc.unsat_core().is_empty());
        // Permanent assertions stay contradictory forever.
        assert_eq!(inc.check(&mut tm), SatResult::Unsat);
    }

    #[test]
    fn toggling_simplify_off_keeps_eliminated_variables_constrained() {
        // v = 5 is pin-eliminated (never bit-blasted); turning the pass off
        // afterwards must not let later assertions/assumptions see v as a
        // fresh unconstrained variable.
        let mut tm = TermManager::new();
        let v = tm.var("v", Sort::BitVec(8));
        let five = tm.bv_const(5, 8);
        let six = tm.bv_const(6, 8);
        let is5 = tm.eq(v, five);
        let is6 = tm.eq(v, six);
        let mut inc = IncrementalSolver::new();
        inc.assert_term(&mut tm, is5);
        inc.set_simplify(false);
        assert_eq!(
            inc.check_assuming(&mut tm, &[is6]),
            SatResult::Unsat,
            "assumption on an eliminated variable must still see its pin"
        );
        assert_eq!(inc.check(&mut tm), SatResult::Sat);
        assert_eq!(inc.model(&tm).value(v), 5);
        // ... and a permanent assertion after the toggle, too.
        inc.assert_term(&mut tm, is6);
        assert_eq!(inc.check(&mut tm), SatResult::Unsat);
    }

    #[test]
    fn conflict_limit_yields_unknown_and_recovers() {
        let mut tm = TermManager::new();
        let x = tm.var("x", Sort::BitVec(20));
        let y = tm.var("y", Sort::BitVec(20));
        let p = tm.bv_mul(x, y);
        let c = tm.bv_const(1048573, 20); // prime
        let goal = tm.eq(p, c);
        let one = tm.one(20);
        let gx = tm.bv_ugt(x, one);
        let gy = tm.bv_ugt(y, one);
        let mut inc = IncrementalSolver::new();
        inc.assert_term(&mut tm, goal);
        inc.set_conflict_limit(Some(3));
        let r = inc.check_assuming(&mut tm, &[gx, gy]);
        assert!(matches!(r, SatResult::Unknown | SatResult::Sat));
        // Raising the budget on the same solver finishes the job, reusing
        // everything learnt so far (x*y wraps mod 2^20, so a factorization
        // of the prime exists via the modular inverse).
        inc.set_conflict_limit(None);
        assert_eq!(inc.check_assuming(&mut tm, &[gx, gy]), SatResult::Sat);
        let m = inc.model(&tm);
        assert_eq!((m.value(x) * m.value(y)) & 0xf_ffff, 1048573);
        assert!(m.value(x) > 1 && m.value(y) > 1);
    }
}
