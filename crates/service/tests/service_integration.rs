//! Integration tests of the detection service: end-to-end request/reply,
//! cache cold/hot behaviour, admission-control shedding under overload,
//! graceful drain, and — through the `sepe_serve` binary — crash-safety
//! across `abort()` and literal `kill -9`.
#![cfg(unix)]

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::{Duration, Instant};

use sepe_isa::Opcode;
use sepe_processor::ProcessorConfig;
use sepe_service::{
    Client, ClientConfig, ClientError, Endpoint, ResultCache, Server, ServerConfig, ServerReport,
    SubmitRequest,
};
use sepe_sqed::Method;

fn scratch_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "sepe-svc-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// An in-process server on a Unix socket in its own scratch directory.
struct TestServer {
    endpoint: Endpoint,
    cache_dir: PathBuf,
    thread: thread::JoinHandle<std::io::Result<ServerReport>>,
}

fn start_server(tag: &str, tweak: impl FnOnce(&mut ServerConfig)) -> TestServer {
    let dir = scratch_dir(tag);
    let sock = dir.join("s.sock");
    let cache_dir = dir.join("cache");
    let mut config = ServerConfig::new(Endpoint::Unix(sock.clone()), &cache_dir);
    config.drain_grace = Duration::from_secs(2);
    tweak(&mut config);
    let server = Server::bind(config).unwrap();
    let thread = thread::spawn(move || server.run());
    wait_ready(&sock);
    TestServer {
        endpoint: Endpoint::Unix(sock),
        cache_dir,
        thread,
    }
}

fn wait_ready(sock: &std::path::Path) {
    let start = Instant::now();
    while start.elapsed() < Duration::from_secs(10) {
        if std::os::unix::net::UnixStream::connect(sock).is_ok() {
            return;
        }
        thread::sleep(Duration::from_millis(10));
    }
    panic!("server never became connectable");
}

impl TestServer {
    fn client(&self) -> Client {
        Client::new(self.endpoint.clone())
    }

    fn stop(self) -> ServerReport {
        self.client().shutdown().unwrap();
        self.thread.join().unwrap().unwrap()
    }
}

/// Mutations whose trigger opcode is outside the {ADD, ADDI} universe:
/// provably clean at a small bound, i.e. fast conclusive verdicts.
const CLEAN_FAST: [&str; 4] = ["single-sub", "single-xor", "single-or", "single-and"];

fn tiny_universe() -> ProcessorConfig {
    ProcessorConfig::tiny().with_opcodes(&[Opcode::Add, Opcode::Addi])
}

fn clean_request(names: &[&str]) -> SubmitRequest {
    SubmitRequest {
        mutations: names.iter().map(|n| n.to_string()).collect(),
        ..SubmitRequest::new(Method::Sqed, 2, tiny_universe())
    }
}

#[test]
fn ping_stats_and_structural_rejection() {
    let server = start_server("ping", |_| {});
    let client = server.client();
    client.ping().unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(Client::counter(&stats, "busy_rejections"), 0);
    assert_eq!(Client::counter(&stats, "clean_shutdown"), 0);
    // A structurally bad request must be rejected, not retried.
    let bad = SubmitRequest {
        bound: 10_000,
        ..clean_request(&["single-sub"])
    };
    match client.submit(&bad) {
        Err(ClientError::Rejected(msg)) => assert!(msg.contains("bound"), "{msg}"),
        other => panic!("expected rejection, got {other:?}"),
    }
    server.stop();
}

#[test]
fn cold_then_hot_cache_round_trip() {
    let server = start_server("cache", |_| {});
    let client = server.client();
    let request = clean_request(&CLEAN_FAST);

    let cold = client.submit(&request).unwrap();
    assert_eq!(cold.done.jobs, 4);
    assert_eq!(cold.done.computed, 4);
    assert_eq!(cold.done.from_cache, 0);
    assert!(cold.done.encodes >= 4);
    for v in &cold.verdicts {
        assert!(
            !v.detected && !v.inconclusive,
            "{}: provably clean",
            v.label
        );
        assert!(!v.cached);
    }

    let hot = client.submit(&request).unwrap();
    assert_eq!(hot.done.jobs, 4);
    assert_eq!(hot.done.computed, 0, "hot pass computes nothing");
    assert_eq!(hot.done.from_cache, 4, "hot pass is 100% cache hits");
    assert_eq!(hot.done.encodes, 0, "hot pass pays zero encodes");
    // Identical verdicts modulo the `cached` transport flag.
    for (c, h) in cold.verdicts.iter().zip(&hot.verdicts) {
        assert!(h.cached);
        let mut h = h.clone();
        h.cached = false;
        assert_eq!(&h, c);
    }
    // A second hot pass is bit-identical to the first: determinism on the
    // wire, not just structural equality.
    let hot2 = client.submit(&request).unwrap();
    assert_eq!(hot.raw_verdict_frames, hot2.raw_verdict_frames);
    server.stop();
}

#[test]
fn detection_streams_a_validated_witness_and_caches_it() {
    let server = start_server("witness", |_| {});
    let client = server.client();
    let request = SubmitRequest {
        mutations: vec!["single-add".to_string()],
        ..SubmitRequest::new(Method::SepeSqed, 4, tiny_universe())
    };
    let cold = client.submit(&request).unwrap();
    assert_eq!(cold.verdicts.len(), 1);
    let verdict = &cold.verdicts[0];
    assert!(verdict.detected, "SEPE-SQED finds the ADD bug");
    assert!(
        verdict.witness.is_some(),
        "witness travels with the verdict"
    );
    assert_eq!(
        verdict.witness_validated,
        Some(true),
        "the concrete replay confirms the counterexample"
    );
    assert!(cold.done.witness_validations >= 1);
    assert_eq!(cold.done.witness_mismatches, 0);

    let hot = client.submit(&request).unwrap();
    assert_eq!(hot.done.from_cache, 1);
    let mut cached = hot.verdicts[0].clone();
    assert!(cached.cached);
    cached.cached = false;
    assert_eq!(&cached, verdict, "cached witness is served verbatim");
    server.stop();
}

#[test]
fn batched_catalogue_runs_and_caches_per_entry() {
    let server = start_server("batched", |_| {});
    let client = server.client();
    let request = SubmitRequest {
        batched: true,
        ..clean_request(&CLEAN_FAST)
    };
    let cold = client.submit(&request).unwrap();
    assert_eq!(cold.done.computed, 4);
    assert!(cold.verdicts.iter().all(|v| !v.inconclusive));
    let hot = client.submit(&request).unwrap();
    assert_eq!(hot.done.from_cache, 4);
    assert_eq!(hot.done.encodes, 0);
    server.stop();
}

#[test]
fn overload_is_shed_with_busy_and_a_retrying_client_gets_through() {
    let server = start_server("overload", |c| {
        c.job_workers = 1;
        c.queue_capacity = 1;
        c.job_delay = Some(Duration::from_millis(250));
        c.busy_retry_after = Duration::from_millis(40);
    });
    // Five one-shot clients with distinct (uncacheable-against-each-other)
    // jobs: 1 runs, ~2 queue, the rest must be shed immediately.
    let mut handles = Vec::new();
    for (i, name) in [
        "single-sub",
        "single-xor",
        "single-or",
        "single-and",
        "single-slt",
    ]
    .iter()
    .enumerate()
    {
        let endpoint = server.endpoint.clone();
        let name = name.to_string();
        handles.push(thread::spawn(move || {
            let client = Client::with_config(ClientConfig {
                max_attempts: 1,
                seed: i as u64 + 1,
                ..ClientConfig::new(endpoint)
            });
            client.submit(&clean_request(&[&name]))
        }));
    }
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let succeeded = results.iter().filter(|r| r.is_ok()).count();
    let shed = results
        .iter()
        .filter(|r| matches!(r, Err(ClientError::Exhausted { last, .. }) if last.contains("busy")))
        .count();
    assert!(succeeded >= 1, "admitted jobs complete");
    assert!(
        shed >= 1,
        "overflow is shed with Busy, not queued unboundedly"
    );
    assert_eq!(succeeded + shed, results.len(), "no third failure mode");

    let stats = server.client().stats().unwrap();
    assert!(Client::counter(&stats, "busy_rejections") >= shed as u64);

    // With retry+backoff the same pressure resolves: every job eventually
    // lands (the earlier ones are cached by now, the shed ones recompute).
    let client = Client::with_config(ClientConfig {
        max_attempts: 10,
        ..ClientConfig::new(server.endpoint.clone())
    });
    let all = [
        "single-sub",
        "single-xor",
        "single-or",
        "single-and",
        "single-slt",
    ];
    let result = client.submit(&clean_request(&all)).unwrap();
    assert_eq!(result.done.jobs, 5);
    server.stop();
}

#[test]
fn graceful_shutdown_drains_and_marks_the_cache_clean() {
    let server = start_server("drain", |c| {
        c.job_delay = Some(Duration::from_millis(50));
    });
    let client = server.client();
    client.submit(&clean_request(&["single-sub"])).unwrap();
    let cache_dir = server.cache_dir.clone();
    let report = server.stop();
    assert_eq!(report.cache_entries, 1);
    // A fresh open observes the clean-shutdown marker and the entry.
    let (_, recovery) = ResultCache::open(&cache_dir).unwrap();
    assert!(recovery.clean_shutdown);
    assert_eq!(recovery.recovered, 1);
    assert_eq!(recovery.corrupted, 0);
    // Submitting after shutdown fails: the socket is gone.
    let one_shot = Client::with_config(ClientConfig {
        max_attempts: 1,
        ..ClientConfig::new(client_endpoint(&client))
    });
    assert!(one_shot.ping().is_err());
}

// Client doesn't expose its endpoint; reconstruct it for the post-shutdown
// probe.  (Ugly but contained to this test.)
fn client_endpoint(_client: &Client) -> Endpoint {
    // The socket path is gone either way; any dead endpoint demonstrates
    // the point.
    Endpoint::Unix(std::env::temp_dir().join("sepe-svc-gone.sock"))
}

// ---------------------------------------------------------------------------
// Crash-safety through the binary: abort mid-batch, kill -9, restart.
// ---------------------------------------------------------------------------

struct ServeProc {
    child: Child,
    ready: String,
    // Keeps the stdout pipe open: dropping it would EPIPE the server's
    // final status line.
    _stdout: BufReader<std::process::ChildStdout>,
}

fn spawn_serve(sock: &std::path::Path, cache_dir: &std::path::Path, extra: &[&str]) -> ServeProc {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_sepe_serve"));
    cmd.arg("--unix")
        .arg(sock)
        .arg("--cache-dir")
        .arg(cache_dir)
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    let mut child = cmd.spawn().unwrap();
    let stdout = child.stdout.take().unwrap();
    let mut reader = BufReader::new(stdout);
    let mut ready = String::new();
    reader.read_line(&mut ready).unwrap();
    assert!(
        ready.starts_with("ready "),
        "handshake line, got: {ready:?}"
    );
    wait_ready(sock);
    ServeProc {
        child,
        ready,
        _stdout: reader,
    }
}

fn ready_field(ready: &str, key: &str) -> u64 {
    ready
        .split_whitespace()
        .find_map(|kv| kv.strip_prefix(&format!("{key}=")))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no {key} in {ready:?}"))
}

#[test]
fn crash_mid_batch_loses_only_in_flight_jobs_and_recovery_serves_the_rest() {
    let dir = scratch_dir("crash");
    let sock = dir.join("s.sock");
    let cache_dir = dir.join("cache");
    let request = clean_request(&CLEAN_FAST);

    // Phase 1: a server armed to die (abort(), i.e. SIGABRT — no flush, no
    // unwinding, indistinguishable from a power cut) after 2 cache commits.
    let mut proc1 = spawn_serve(&sock, &cache_dir, &["--crash-after-jobs", "2"]);
    assert_eq!(ready_field(&proc1.ready, "recovered"), 0);
    let client = Client::with_config(ClientConfig {
        max_attempts: 1,
        ..ClientConfig::new(Endpoint::Unix(sock.clone()))
    });
    let torn = client.submit(&request);
    assert!(torn.is_err(), "the crash tears the reply stream");
    let status = proc1.child.wait().unwrap();
    assert!(!status.success(), "the server died abnormally");

    // Phase 2: restart over the same cache. Exactly the 2 committed jobs
    // survive; zero corrupted entries — atomic rename means no torn state.
    let proc2 = spawn_serve(&sock, &cache_dir, &[]);
    assert_eq!(ready_field(&proc2.ready, "recovered"), 2);
    assert_eq!(ready_field(&proc2.ready, "corrupted"), 0);
    assert_eq!(ready_field(&proc2.ready, "clean"), 0, "crash was not clean");
    let client = Client::new(Endpoint::Unix(sock.clone()));
    let resumed = client.submit(&request).unwrap();
    assert_eq!(
        resumed.done.from_cache, 2,
        "committed jobs are not recomputed"
    );
    assert_eq!(
        resumed.done.computed, 2,
        "only the lost in-flight jobs rerun"
    );

    // Phase 3: literal kill -9 on an idle server, then restart: everything
    // previously committed is served from cache with zero solver work.
    let mut proc2 = proc2;
    proc2.child.kill().unwrap(); // SIGKILL on unix
    proc2.child.wait().unwrap();
    let proc3 = spawn_serve(&sock, &cache_dir, &[]);
    assert_eq!(ready_field(&proc3.ready, "recovered"), 4);
    assert_eq!(ready_field(&proc3.ready, "corrupted"), 0);
    let client = Client::new(Endpoint::Unix(sock.clone()));
    let hot = client.submit(&request).unwrap();
    assert_eq!(hot.done.from_cache, 4);
    assert_eq!(hot.done.computed, 0);
    assert_eq!(hot.done.encodes, 0);

    // Phase 4: graceful shutdown exits 0 and marks the cache clean.
    client.shutdown().unwrap();
    let mut proc3 = proc3;
    let status = proc3.child.wait().unwrap();
    assert!(status.success(), "graceful drain exits cleanly");
    let (_, recovery) = ResultCache::open(&cache_dir).unwrap();
    assert!(recovery.clean_shutdown);
    assert_eq!(recovery.recovered, 4);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deadline_budget_rides_the_stop_reason_machinery() {
    let server = start_server("deadline", |_| {});
    let client = server.client();
    // An already-expired budget on a job big enough that every path to a
    // verdict passes a deadline check: the engine must stop with a
    // StopReason verdict, and the inconclusive result must NOT be cached.
    let request = SubmitRequest {
        mutations: vec!["single-add".to_string()],
        deadline_ms: Some(0),
        ..SubmitRequest::new(
            Method::SepeSqed,
            12,
            ProcessorConfig {
                xlen: 8,
                mem_words: 8,
                ..ProcessorConfig::default()
            }
            .with_opcodes(&[Opcode::Add, Opcode::Addi, Opcode::Sub, Opcode::Xor]),
        )
    };
    let out = client.submit(&request).unwrap();
    assert_eq!(out.verdicts.len(), 1);
    let v = &out.verdicts[0];
    assert!(
        v.inconclusive,
        "an expired deadline cannot conclude; got detected={} stop={:?} bound_reached={}",
        v.detected, v.stop_reason, v.bound_reached
    );
    assert!(
        matches!(
            v.stop_reason.as_deref(),
            Some("deadline") | Some("cancelled")
        ),
        "budget expiry surfaces through StopReason, got {:?}",
        v.stop_reason
    );
    let stats = client.stats().unwrap();
    assert_eq!(
        Client::counter(&stats, "cache_entries"),
        0,
        "inconclusive verdicts are never cached"
    );
    // Sanity: a conclusive job does move the counter.
    client.submit(&clean_request(&["single-sub"])).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(Client::counter(&stats, "cache_entries"), 1);
    server.stop();
}

/// The unbounded-proof round trip: a clean configuration submitted with
/// `prove=pdr` streams a **Proved** verdict (deterministically — repeat
/// passes are bit-identical on the wire), the conclusive proof is
/// committed to the cache, and after a literal `kill -9` plus restart it
/// is served hot with zero solver work.
#[test]
fn proved_verdicts_stream_cache_and_survive_kill_dash_nine() {
    let dir = scratch_dir("prove");
    let sock = dir.join("s.sock");
    let cache_dir = dir.join("cache");
    // The single-ADD universe is the cheapest configuration PDR closes;
    // the generous deadline keeps slow debug builds clear of the budget.
    let request = SubmitRequest {
        prove: Some(sepe_tsys::ProofMethod::Pdr),
        deadline_ms: Some(300_000),
        ..SubmitRequest::new(
            Method::Sqed,
            4,
            ProcessorConfig::tiny().with_opcodes(&[Opcode::Add]),
        )
    };
    let mut proc1 = spawn_serve(&sock, &cache_dir, &["--max-deadline-ms", "300000"]);
    let client = Client::with_config(ClientConfig {
        read_timeout: Duration::from_secs(300),
        ..ClientConfig::new(Endpoint::Unix(sock.clone()))
    });

    let cold = client.submit(&request).unwrap();
    assert_eq!(cold.verdicts.len(), 1);
    let v = &cold.verdicts[0];
    assert!(v.proved, "PDR must prove the clean config: {v:?}");
    assert!(!v.detected && !v.inconclusive);
    assert_eq!(v.proof_method.as_deref(), Some("pdr"));
    assert!(v.proof_depth.is_some());
    assert_eq!(v.proof_checked, Some(true), "self-check rides the wire");
    assert!(!v.cached);
    assert_eq!(cold.done.proved, 1);
    assert_eq!(cold.done.proof_mismatches, 0);

    // Hot pass: the proof is conclusive, hence cached — and the stream is
    // bit-identical across repeats.
    let hot = client.submit(&request).unwrap();
    assert_eq!(hot.done.from_cache, 1, "a proof is a cacheable verdict");
    assert_eq!(hot.done.computed, 0);
    assert_eq!(hot.done.encodes, 0);
    assert!(hot.verdicts[0].cached);
    assert!(hot.verdicts[0].proved);
    let hot2 = client.submit(&request).unwrap();
    assert_eq!(hot.raw_verdict_frames, hot2.raw_verdict_frames);

    // kill -9, restart: the committed proof survives the crash.
    proc1.child.kill().unwrap();
    proc1.child.wait().unwrap();
    let proc2 = spawn_serve(&sock, &cache_dir, &["--max-deadline-ms", "300000"]);
    assert_eq!(ready_field(&proc2.ready, "recovered"), 1);
    assert_eq!(ready_field(&proc2.ready, "corrupted"), 0);
    let revived = client.submit(&request).unwrap();
    assert_eq!(revived.done.from_cache, 1);
    assert_eq!(revived.done.computed, 0);
    assert_eq!(
        revived.done.encodes, 0,
        "a recovered proof costs no solver work"
    );
    let v = &revived.verdicts[0];
    assert!(v.proved && v.cached);
    assert_eq!(v.proof_checked, Some(true));

    client.shutdown().unwrap();
    let mut proc2 = proc2;
    assert!(proc2.child.wait().unwrap().success());
    let _ = std::fs::remove_dir_all(&dir);
}
