//! Seeded hostile-input soak test.
//!
//! A deterministic attacker (seed from `SEPE_FAULT_SEED`, default 42 — the
//! CI matrix sweeps several) throws malformed traffic at a live server:
//! garbage bytes, oversized length prefixes, truncated frames, torn
//! headers, non-JSON payloads, unknown commands, mid-stream disconnects,
//! and the `FaultPlan::seeded_protocol` write-side faults.  After every
//! attack a well-behaved bystander submits the same reference request and
//! must receive **bit-identical** reply frames — proving both that the
//! server survives and that hostile connections cannot perturb the
//! answers served to anyone else.
#![cfg(unix)]

use std::io::Write;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::Duration;

use sepe_isa::Opcode;
use sepe_processor::ProcessorConfig;
use sepe_service::protocol::{encode_request, write_frame, Request, FRAME_MAGIC};
use sepe_service::{Client, Endpoint, Server, ServerConfig, SubmitRequest};
use sepe_sqed::{FaultPlan, Method};

fn seed_from_env() -> u64 {
    std::env::var("SEPE_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

fn scratch_dir() -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "sepe-soak-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn reference_request() -> SubmitRequest {
    SubmitRequest {
        mutations: vec![
            "single-sub".to_string(),
            "single-xor".to_string(),
            "single-or".to_string(),
        ],
        ..SubmitRequest::new(
            Method::Sqed,
            2,
            ProcessorConfig::tiny().with_opcodes(&[Opcode::Add, Opcode::Addi]),
        )
    }
}

/// One hostile connection.  Every arm either writes garbage or tears the
/// connection at a protocol-inconvenient moment; none is allowed to take
/// the server down or block it past its read deadline.
fn attack(sock: &std::path::Path, rng: &mut Rng) -> &'static str {
    let Ok(mut conn) = UnixStream::connect(sock) else {
        panic!("server must stay connectable");
    };
    match rng.next() % 7 {
        0 => {
            // Pure garbage, wrong magic.
            let junk: Vec<u8> = (0..64).map(|_| (rng.next() & 0xff) as u8).collect();
            let _ = conn.write_all(&junk);
            "garbage"
        }
        1 => {
            // Valid magic promising a 4 GiB payload.
            let mut frame = FRAME_MAGIC.to_vec();
            frame.extend_from_slice(&u32::MAX.to_be_bytes());
            let _ = conn.write_all(&frame);
            "oversized-prefix"
        }
        2 => {
            // Well-formed header, half the payload, then close: the
            // server's read deadline must reap the handler.
            let payload = encode_request(&Request::Ping);
            let mut frame = FRAME_MAGIC.to_vec();
            frame.extend_from_slice(&(payload.len() as u32 * 2).to_be_bytes());
            frame.extend_from_slice(&payload);
            let _ = conn.write_all(&frame);
            "truncated-frame"
        }
        3 => {
            // Half a header.
            let _ = conn.write_all(&FRAME_MAGIC[..2]);
            "torn-header"
        }
        4 => {
            // Valid frame, payload is not JSON.
            let mut wc = 0;
            let _ = write_frame(&mut conn, b"\x00\x01\x02 not json", None, &mut wc);
            "binary-payload"
        }
        5 => {
            // Valid JSON, unknown command.
            let mut wc = 0;
            let _ = write_frame(&mut conn, br#"{"cmd":"explode"}"#, None, &mut wc);
            "unknown-cmd"
        }
        _ => {
            // A legitimate submit whose connection dies mid-reply — the
            // seeded protocol fault plan tears our own write, or we just
            // drop without reading a single reply frame.
            let plan = FaultPlan::seeded_protocol(rng.next());
            let mut wc = 0;
            let _ = write_frame(
                &mut conn,
                &encode_request(&Request::Submit(reference_request())),
                Some(&plan),
                &mut wc,
            );
            drop(conn); // vanish before reading anything
            "submit-and-vanish"
        }
    }
}

#[test]
fn hostile_traffic_never_perturbs_bystanders() {
    let seed = seed_from_env();
    let dir = scratch_dir();
    let sock = dir.join("s.sock");
    let mut config = ServerConfig::new(Endpoint::Unix(sock.clone()), dir.join("cache"));
    // Short read deadline so stalled hostile connections are reaped fast.
    config.read_timeout = Duration::from_millis(300);
    config.drain_grace = Duration::from_secs(2);
    let server = Server::bind(config).unwrap();
    let handle = thread::spawn(move || server.run());

    let client = Client::new(Endpoint::Unix(sock.clone()));
    for _ in 0..200 {
        if UnixStream::connect(&sock).is_ok() {
            break;
        }
        thread::sleep(Duration::from_millis(10));
    }

    // Establish the reference: first submit computes and caches, second is
    // all cache hits — and from then on every well-behaved reply must be
    // byte-identical to it.
    let request = reference_request();
    let cold = client.submit(&request).unwrap();
    assert_eq!(cold.done.computed, 3);
    let reference = client.submit(&request).unwrap();
    assert_eq!(reference.done.from_cache, 3);

    let mut rng = Rng(seed);
    let mut kinds = Vec::new();
    for round in 0..24 {
        kinds.push(attack(&sock, &mut rng));
        let bystander = client
            .submit(&request)
            .unwrap_or_else(|e| panic!("round {round} (after {kinds:?}): bystander failed: {e}"));
        assert_eq!(
            bystander.raw_verdict_frames, reference.raw_verdict_frames,
            "round {round} (after {kinds:?}): bystander replies must be bit-identical"
        );
        assert_eq!(bystander.done.from_cache, 3);
        assert_eq!(bystander.done.encodes, 0);
    }

    // The server survived, is still responsive, and counted the abuse.
    client.ping().unwrap();
    let stats = client.stats().unwrap();
    assert!(
        Client::counter(&stats, "protocol_errors") >= 1,
        "hostile traffic must be counted, got stats {stats:?}"
    );
    client.shutdown().unwrap();
    let report = handle.join().unwrap().unwrap();
    assert_eq!(report.recovery.corrupted, 0);
    let _ = std::fs::remove_dir_all(&dir);
}
