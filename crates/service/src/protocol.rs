//! The detection service's wire protocol.
//!
//! # Frame format
//!
//! Every message travels in one *frame*:
//!
//! ```text
//! +------+------------+----------------------+
//! | "SEPB" | u32 (BE) | payload (JSON bytes) |
//! +------+------------+----------------------+
//!   magic    length            length bytes
//! ```
//!
//! The 4-byte magic lets the server reject garbage streams after 4 bytes
//! instead of waiting for a length's worth of noise; the big-endian length
//! is capped ([`ServerConfig::max_frame_len`](crate::server::ServerConfig))
//! so an adversarial `0xffffffff` prefix cannot make the peer allocate 4 GiB.
//! Payloads are JSON documents (the offline serde shims) with a `cmd` field
//! on requests and a `reply` field on replies.
//!
//! # Fault injection
//!
//! [`read_frame`]/[`write_frame`] accept an optional
//! [`FaultPlan`] whose protocol-layer fault points fire on a caller-held
//! frame counter: drop the connection after half a frame *header*, truncate
//! a frame's payload after a full header, or delay a read.  Everything is
//! counter-indexed (never wall-clock), so the hostile-input soak test
//! reproduces bit-identically from a seed.

use std::collections::HashMap;
use std::fmt;
use std::io::{self, Read, Write};
use std::time::Duration;

use sepe_isa::Opcode;
use sepe_processor::{Mutation, ProcessorConfig};
use sepe_sqed::detect::{Detection, Method};
use sepe_sqed::fault::FaultPlan;
use sepe_tsys::{ProofMethod, Witness};
use serde::Value;

/// The frame magic.
pub const FRAME_MAGIC: [u8; 4] = *b"SEPB";

/// Default cap on a frame's payload length (4 MiB — a full witness of a
/// deep trace fits in kilobytes, so this is generous by orders of
/// magnitude).
pub const DEFAULT_MAX_FRAME_LEN: usize = 4 * 1024 * 1024;

/// Hard cap on the BMC bound a request may ask for (a hostile `bound:
/// 10^9` must be rejected at admission, not after a week of solving).
pub const MAX_REQUEST_BOUND: usize = 64;

/// Hard cap on the catalogue size of one request.
pub const MAX_REQUEST_MUTATIONS: usize = 256;

/// How long an injected [`FaultPlan::delay_read_at_frame`] stalls.  Fixed
/// and short: the *deadline under test* is the knob, never this constant.
pub const INJECTED_READ_DELAY: Duration = Duration::from_millis(30);

/// Protocol-level failure.
#[derive(Debug)]
pub enum ProtocolError {
    /// The underlying transport failed (includes read/write deadline
    /// expiry, surfaced by the socket as `WouldBlock`/`TimedOut`).
    Io(io::Error),
    /// The peer closed the connection at a frame boundary (clean EOF).
    Closed,
    /// The first four bytes of a frame were not the magic.
    BadMagic([u8; 4]),
    /// The frame's declared length exceeds the cap.
    Oversized {
        /// Declared payload length.
        len: usize,
        /// The enforced cap.
        cap: usize,
    },
    /// The payload was not a well-formed message.
    Malformed(String),
    /// A deterministic protocol fault fired (test machinery; the connection
    /// is torn by design).
    Injected(&'static str),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "transport error: {e}"),
            ProtocolError::Closed => write!(f, "connection closed"),
            ProtocolError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            ProtocolError::Oversized { len, cap } => {
                write!(f, "frame length {len} exceeds cap {cap}")
            }
            ProtocolError::Malformed(m) => write!(f, "malformed message: {m}"),
            ProtocolError::Injected(kind) => write!(f, "injected protocol fault: {kind}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

/// Writes one frame, honouring the plan's write-side fault points.
///
/// `counter` is the caller's per-connection frame counter; it is
/// incremented by this call (the first frame written is frame 1).
pub fn write_frame(
    w: &mut impl Write,
    payload: &[u8],
    fault: Option<&FaultPlan>,
    counter: &mut u64,
) -> Result<(), ProtocolError> {
    *counter += 1;
    let mut header = [0u8; 8];
    header[..4].copy_from_slice(&FRAME_MAGIC);
    header[4..].copy_from_slice(&(payload.len() as u32).to_be_bytes());
    if let Some(plan) = fault {
        if plan.drop_connection_at_frame == Some(*counter) {
            // Sever mid-header: the peer sees a torn frame prefix.
            w.write_all(&header[..4])?;
            w.flush()?;
            return Err(ProtocolError::Injected("drop mid-frame"));
        }
        if plan.truncate_frame_at == Some(*counter) {
            // Full header promising `len` bytes, only half delivered.
            w.write_all(&header)?;
            w.write_all(&payload[..payload.len() / 2])?;
            w.flush()?;
            return Err(ProtocolError::Injected("truncated frame"));
        }
    }
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame, honouring the plan's read-side fault points and the
/// payload-length cap.  A clean EOF at the frame boundary reports
/// [`ProtocolError::Closed`]; EOF mid-frame reports an I/O error.
pub fn read_frame(
    r: &mut impl Read,
    max_len: usize,
    fault: Option<&FaultPlan>,
    counter: &mut u64,
) -> Result<Vec<u8>, ProtocolError> {
    *counter += 1;
    if let Some(plan) = fault {
        if plan.delay_read_at_frame == Some(*counter) {
            std::thread::sleep(INJECTED_READ_DELAY);
        }
    }
    let mut header = [0u8; 8];
    // First byte separately, to tell a clean close from a torn frame.
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Err(ProtocolError::Closed),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    header[0] = first[0];
    r.read_exact(&mut header[1..])?;
    if header[..4] != FRAME_MAGIC {
        return Err(ProtocolError::BadMagic([
            header[0], header[1], header[2], header[3],
        ]));
    }
    let len = u32::from_be_bytes([header[4], header[5], header[6], header[7]]) as usize;
    if len > max_len {
        return Err(ProtocolError::Oversized { len, cap: max_len });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// One detection request: which method/bound to run over which processor
/// universe, against which catalogue of named mutations.
#[derive(Debug, Clone)]
pub struct SubmitRequest {
    /// The verification method.
    pub method: Method,
    /// Maximum BMC bound.
    pub bound: usize,
    /// The processor model (its `allowed_opcodes` are the original
    /// universe).
    pub processor: ProcessorConfig,
    /// Catalogue of mutation names (resolved against
    /// [`mutation_by_name`]); empty checks the clean design.
    pub mutations: Vec<String>,
    /// Run cache misses as one shared-unrolling catalogue instead of
    /// independent per-entry jobs.
    pub batched: bool,
    /// Per-request wall-clock budget in milliseconds (the server clamps it
    /// to its own default deadline).
    pub deadline_ms: Option<u64>,
    /// Per-request SAT memory cap in bytes (clamped likewise).
    pub memory_limit: Option<usize>,
    /// Per-request SAT conflict budget per query.
    pub conflict_limit: Option<u64>,
    /// Word-level preprocessing.
    pub simplify: bool,
    /// Gate-level AIG reductions.
    pub aig: bool,
    /// Run an unbounded prover instead of bounded BMC (`None`: bounded).
    /// The bound becomes the prover's depth/frontier cap, and a verdict may
    /// come back `proved` — conclusive at every depth, hence cacheable.
    pub prove: Option<ProofMethod>,
}

impl SubmitRequest {
    /// A request over defaults: everything on, no budgets, per-entry jobs.
    pub fn new(method: Method, bound: usize, processor: ProcessorConfig) -> Self {
        SubmitRequest {
            method,
            bound,
            processor,
            mutations: Vec::new(),
            batched: false,
            deadline_ms: None,
            memory_limit: None,
            conflict_limit: None,
            simplify: true,
            aig: true,
            prove: None,
        }
    }
}

/// A client request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Server counters snapshot.
    Stats,
    /// Graceful drain: stop accepting, finish or cancel in-flight work,
    /// flush the cache.
    Shutdown,
    /// A detection job.
    Submit(SubmitRequest),
}

/// One per-entry verdict as it travels the wire.  All fields are
/// deterministic for a fixed request (no wall-clock), which is what lets
/// the soak test assert bit-identical replies and the cache re-serve
/// stored verdicts verbatim.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// The entry's label (mutation name, or `"clean"`).
    pub label: String,
    /// Whether this verdict was served from the result cache.
    pub cached: bool,
    /// Whether a counterexample was found.
    pub detected: bool,
    /// Whether the run ended without a verdict.
    pub inconclusive: bool,
    /// The classified stop reason of an inconclusive run.
    pub stop_reason: Option<String>,
    /// Deepest bound explored.
    pub bound_reached: u64,
    /// Counterexample length, when detected.
    pub trace_len: Option<u64>,
    /// SAT conflicts spent.
    pub conflicts: u64,
    /// Witness self-check result (`None`: no counterexample or validation
    /// off).
    pub witness_validated: Option<bool>,
    /// The counterexample, serialized with sorted keys (`None` when not
    /// detected).
    pub witness: Option<Value>,
    /// Whether the property was proved for all depths (an unbounded prover
    /// converged and its certificate survived the self-check).
    pub proved: bool,
    /// The prover behind a `proved` verdict (wire name, see
    /// [`proof_method_name`]).
    pub proof_method: Option<String>,
    /// Induction depth / PDR frontier at which the proof closed.
    pub proof_depth: Option<u64>,
    /// Independent-solver certificate self-check result (`None`: nothing
    /// proved or validation off).
    pub proof_checked: Option<bool>,
}

/// End-of-stream statistics of one submit request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DoneStats {
    /// Entries answered (cache hits + computed).
    pub jobs: u64,
    /// Entries served from the result cache.
    pub from_cache: u64,
    /// Entries computed by the engine.
    pub computed: u64,
    /// Transition-system encodings paid for the computed entries.
    pub encodes: u64,
    /// Witness replays performed.
    pub witness_validations: u64,
    /// Witness replays that mismatched (verdicts demoted).
    pub witness_mismatches: u64,
    /// Retry attempts beyond each entry's first.
    pub retries: u64,
    /// Entries whose final attempt ran degraded.
    pub degraded_runs: u64,
    /// Attempts that panicked and were caught.
    pub panics: u64,
    /// Entries cancelled through a flag.
    pub cancelled: u64,
    /// Entries whose verdict was `proved` (unbounded prover converged).
    pub proved: u64,
    /// Certificates that failed the independent self-check (verdicts
    /// demoted to proof-mismatch).
    pub proof_mismatches: u64,
}

/// A server reply.
#[derive(Debug, Clone)]
pub enum Reply {
    /// Liveness answer.
    Pong,
    /// Counters snapshot (flat object of `u64`s).
    Stats(Value),
    /// The server is draining; no new work is admitted.
    ShuttingDown,
    /// Admission control shed this request; retry after the given delay.
    Busy {
        /// Suggested client backoff in milliseconds.
        retry_after_ms: u64,
    },
    /// The request was rejected or the job failed structurally.
    Error {
        /// Human-readable reason (also machine-stable for tests).
        message: String,
    },
    /// One entry's verdict (a submit streams one per entry).
    Verdict(Verdict),
    /// End of a submit stream.
    Done(DoneStats),
}

// ---------------------------------------------------------------------------
// JSON encode/decode
// ---------------------------------------------------------------------------

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn string(s: &str) -> Value {
    Value::Str(s.to_string())
}

fn opt_u64(v: Option<u64>) -> Value {
    v.map_or(Value::Null, Value::UInt)
}

fn render(v: &Value) -> Vec<u8> {
    serde_json::to_string(v)
        .expect("the shim's rendering is total")
        .into_bytes()
}

fn need<'a>(v: &'a Value, key: &str) -> Result<&'a Value, ProtocolError> {
    v.get(key)
        .ok_or_else(|| ProtocolError::Malformed(format!("missing field '{key}'")))
}

fn need_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, ProtocolError> {
    need(v, key)?
        .as_str()
        .ok_or_else(|| ProtocolError::Malformed(format!("field '{key}' must be a string")))
}

fn need_u64(v: &Value, key: &str) -> Result<u64, ProtocolError> {
    need(v, key)?
        .as_u64()
        .ok_or_else(|| ProtocolError::Malformed(format!("field '{key}' must be an integer")))
}

fn need_bool(v: &Value, key: &str) -> Result<bool, ProtocolError> {
    need(v, key)?
        .as_bool()
        .ok_or_else(|| ProtocolError::Malformed(format!("field '{key}' must be a boolean")))
}

fn maybe_u64(v: &Value, key: &str) -> Result<Option<u64>, ProtocolError> {
    match v.get(key) {
        None => Ok(None),
        Some(Value::Null) => Ok(None),
        Some(x) => x
            .as_u64()
            .map(Some)
            .ok_or_else(|| ProtocolError::Malformed(format!("field '{key}' must be an integer"))),
    }
}

fn maybe_bool(v: &Value, key: &str) -> Result<Option<bool>, ProtocolError> {
    match v.get(key) {
        None => Ok(None),
        Some(Value::Null) => Ok(None),
        Some(x) => x
            .as_bool()
            .map(Some)
            .ok_or_else(|| ProtocolError::Malformed(format!("field '{key}' must be a boolean"))),
    }
}

/// The method's wire name.
pub fn method_name(method: Method) -> &'static str {
    match method {
        Method::Sqed => "sqed",
        Method::SepeSqed => "sepe",
    }
}

/// The proof method's wire name.
pub fn proof_method_name(method: ProofMethod) -> &'static str {
    match method {
        ProofMethod::KInduction => "k-induction",
        ProofMethod::Pdr => "pdr",
    }
}

/// Parses a proof-method wire name.
pub fn proof_method_from_name(name: &str) -> Option<ProofMethod> {
    match name {
        "k-induction" | "induction" => Some(ProofMethod::KInduction),
        "pdr" | "ic3" => Some(ProofMethod::Pdr),
        _ => None,
    }
}

/// Parses a method wire name.
pub fn method_from_name(name: &str) -> Option<Method> {
    match name {
        "sqed" => Some(Method::Sqed),
        "sepe" | "sepe-sqed" => Some(Method::SepeSqed),
        _ => None,
    }
}

/// Looks up an opcode by its assembly mnemonic.
pub fn opcode_by_mnemonic(name: &str) -> Option<Opcode> {
    Opcode::ALL.into_iter().find(|op| op.mnemonic() == name)
}

/// Resolves a mutation by name from the paper's two catalogues (Table 1,
/// Figure 4).
pub fn mutation_by_name(name: &str) -> Option<Mutation> {
    Mutation::table1()
        .into_iter()
        .chain(Mutation::figure4())
        .find(|m| m.name == name)
}

/// Non-panicking version of `ProcessorConfig::validate` for untrusted
/// requests (the library version asserts, which would poison a handler).
pub fn check_processor(p: &ProcessorConfig) -> Result<(), String> {
    if !(p.xlen.is_power_of_two() && (4..=32).contains(&p.xlen)) {
        return Err(format!("xlen must be 4, 8, 16 or 32 (got {})", p.xlen));
    }
    if !(p.mem_words.is_power_of_two() && p.mem_words >= 4) {
        return Err(format!(
            "mem_words must be a power of two >= 4 (got {})",
            p.mem_words
        ));
    }
    if !(1..=4).contains(&p.history_depth) {
        return Err(format!(
            "history_depth must be between 1 and 4 (got {})",
            p.history_depth
        ));
    }
    if p.allowed_opcodes.is_empty() {
        return Err("at least one opcode must be allowed".to_string());
    }
    Ok(())
}

/// Encodes a request into a frame payload.
pub fn encode_request(request: &Request) -> Vec<u8> {
    let v = match request {
        Request::Ping => obj(vec![("cmd", string("ping"))]),
        Request::Stats => obj(vec![("cmd", string("stats"))]),
        Request::Shutdown => obj(vec![("cmd", string("shutdown"))]),
        Request::Submit(s) => obj(vec![
            ("cmd", string("submit")),
            ("method", string(method_name(s.method))),
            ("bound", Value::UInt(s.bound as u64)),
            ("xlen", Value::UInt(u64::from(s.processor.xlen))),
            ("mem_words", Value::UInt(s.processor.mem_words as u64)),
            (
                "history_depth",
                Value::UInt(s.processor.history_depth as u64),
            ),
            (
                "opcodes",
                Value::Array(
                    s.processor
                        .allowed_opcodes
                        .iter()
                        .map(|op| string(op.mnemonic()))
                        .collect(),
                ),
            ),
            (
                "mutations",
                Value::Array(s.mutations.iter().map(|m| string(m)).collect()),
            ),
            ("batched", Value::Bool(s.batched)),
            ("deadline_ms", opt_u64(s.deadline_ms)),
            (
                "memory_limit",
                s.memory_limit
                    .map_or(Value::Null, |m| Value::UInt(m as u64)),
            ),
            ("conflict_limit", opt_u64(s.conflict_limit)),
            ("simplify", Value::Bool(s.simplify)),
            ("aig", Value::Bool(s.aig)),
            (
                "prove",
                s.prove
                    .map_or(Value::Null, |m| string(proof_method_name(m))),
            ),
        ]),
    };
    render(&v)
}

/// Decodes a request frame payload, enforcing the admission-level sanity
/// caps ([`MAX_REQUEST_BOUND`], [`MAX_REQUEST_MUTATIONS`], known opcode and
/// mutation names, a valid processor shape).
pub fn decode_request(payload: &[u8]) -> Result<Request, ProtocolError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| ProtocolError::Malformed("payload is not UTF-8".to_string()))?;
    let v = serde_json::from_str(text).map_err(|e| ProtocolError::Malformed(e.to_string()))?;
    match need_str(&v, "cmd")? {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "submit" => {
            let method = method_from_name(need_str(&v, "method")?).ok_or_else(|| {
                ProtocolError::Malformed("method must be 'sqed' or 'sepe'".to_string())
            })?;
            let bound = need_u64(&v, "bound")? as usize;
            if bound == 0 || bound > MAX_REQUEST_BOUND {
                return Err(ProtocolError::Malformed(format!(
                    "bound must be in 1..={MAX_REQUEST_BOUND}"
                )));
            }
            let mut opcodes = Vec::new();
            for op in need(&v, "opcodes")?
                .as_array()
                .ok_or_else(|| ProtocolError::Malformed("opcodes must be an array".to_string()))?
            {
                let name = op.as_str().ok_or_else(|| {
                    ProtocolError::Malformed("opcode entries must be strings".to_string())
                })?;
                opcodes.push(
                    opcode_by_mnemonic(name).ok_or_else(|| {
                        ProtocolError::Malformed(format!("unknown opcode '{name}'"))
                    })?,
                );
            }
            let processor = ProcessorConfig {
                xlen: need_u64(&v, "xlen")? as u32,
                mem_words: need_u64(&v, "mem_words")? as usize,
                history_depth: need_u64(&v, "history_depth")? as usize,
                allowed_opcodes: opcodes,
            };
            check_processor(&processor).map_err(ProtocolError::Malformed)?;
            let mut mutations = Vec::new();
            for m in need(&v, "mutations")?
                .as_array()
                .ok_or_else(|| ProtocolError::Malformed("mutations must be an array".to_string()))?
            {
                let name = m.as_str().ok_or_else(|| {
                    ProtocolError::Malformed("mutation entries must be strings".to_string())
                })?;
                if mutation_by_name(name).is_none() {
                    return Err(ProtocolError::Malformed(format!(
                        "unknown mutation '{name}'"
                    )));
                }
                mutations.push(name.to_string());
            }
            if mutations.len() > MAX_REQUEST_MUTATIONS {
                return Err(ProtocolError::Malformed(format!(
                    "at most {MAX_REQUEST_MUTATIONS} mutations per request"
                )));
            }
            // Optional and tolerant of null, so pre-proof clients keep
            // working against this server unchanged.
            let prove = match v.get("prove") {
                None | Some(Value::Null) => None,
                Some(Value::Str(s)) => Some(proof_method_from_name(s).ok_or_else(|| {
                    ProtocolError::Malformed(format!("unknown proof method '{s}'"))
                })?),
                Some(_) => {
                    return Err(ProtocolError::Malformed(
                        "field 'prove' must be a string".to_string(),
                    ))
                }
            };
            Ok(Request::Submit(SubmitRequest {
                method,
                bound,
                processor,
                mutations,
                batched: need_bool(&v, "batched")?,
                deadline_ms: maybe_u64(&v, "deadline_ms")?,
                memory_limit: maybe_u64(&v, "memory_limit")?.map(|m| m as usize),
                conflict_limit: maybe_u64(&v, "conflict_limit")?,
                simplify: need_bool(&v, "simplify")?,
                aig: need_bool(&v, "aig")?,
                prove,
            }))
        }
        other => Err(ProtocolError::Malformed(format!("unknown cmd '{other}'"))),
    }
}

/// Serializes a witness with sorted keys — deterministic bytes for a
/// deterministic trace, so cached and fresh replies compare equal.
pub fn witness_to_value(witness: &Witness) -> Value {
    fn sorted(map: &HashMap<String, u64>) -> Value {
        let mut pairs: Vec<(&String, &u64)> = map.iter().collect();
        pairs.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(
            pairs
                .into_iter()
                .map(|(k, v)| (k.clone(), Value::UInt(*v)))
                .collect(),
        )
    }
    Value::Array(
        witness
            .frames()
            .iter()
            .map(|f| {
                obj(vec![
                    ("inputs", sorted(&f.inputs)),
                    ("states", sorted(&f.states)),
                ])
            })
            .collect(),
    )
}

/// Builds a wire verdict from an engine detection.  Runtime is deliberately
/// omitted: verdicts stay deterministic for a fixed request (timings live
/// in the `stats` command instead).
pub fn verdict_from_detection(label: &str, detection: &Detection, cached: bool) -> Verdict {
    Verdict {
        label: label.to_string(),
        cached,
        detected: detection.detected,
        inconclusive: detection.inconclusive,
        stop_reason: detection.stop_reason.map(|r| r.to_string()),
        bound_reached: detection.bound_reached as u64,
        trace_len: detection.trace_len.map(|t| t as u64),
        conflicts: detection.conflicts,
        witness_validated: detection.witness_validated,
        witness: detection
            .witness
            .as_ref()
            .filter(|_| detection.detected)
            .map(witness_to_value),
        proved: detection.proved,
        proof_method: detection
            .proof_method
            .map(|m| proof_method_name(m).to_string()),
        proof_depth: detection.proof_depth.map(|d| d as u64),
        proof_checked: detection.proof_checked,
    }
}

/// The verdict's cacheable core: every field except the transport-level
/// `cached` flag, as an ordered JSON object.  The cache persists exactly
/// these bytes and the server re-wraps them on a hit, so hit and miss
/// replies differ only in `cached`.
pub fn verdict_core(verdict: &Verdict) -> Value {
    obj(vec![
        ("label", string(&verdict.label)),
        ("detected", Value::Bool(verdict.detected)),
        ("inconclusive", Value::Bool(verdict.inconclusive)),
        (
            "stop_reason",
            verdict.stop_reason.as_deref().map_or(Value::Null, string),
        ),
        ("bound_reached", Value::UInt(verdict.bound_reached)),
        ("trace_len", opt_u64(verdict.trace_len)),
        ("conflicts", Value::UInt(verdict.conflicts)),
        (
            "witness_validated",
            verdict.witness_validated.map_or(Value::Null, Value::Bool),
        ),
        ("witness", verdict.witness.clone().unwrap_or(Value::Null)),
        ("proved", Value::Bool(verdict.proved)),
        (
            "proof_method",
            verdict.proof_method.as_deref().map_or(Value::Null, string),
        ),
        ("proof_depth", opt_u64(verdict.proof_depth)),
        (
            "proof_checked",
            verdict.proof_checked.map_or(Value::Null, Value::Bool),
        ),
    ])
}

/// Rebuilds a verdict from its cacheable core.
pub fn verdict_from_core(core: &Value, cached: bool) -> Result<Verdict, ProtocolError> {
    Ok(Verdict {
        label: need_str(core, "label")?.to_string(),
        cached,
        detected: need_bool(core, "detected")?,
        inconclusive: need_bool(core, "inconclusive")?,
        stop_reason: match core.get("stop_reason") {
            Some(Value::Str(s)) => Some(s.clone()),
            _ => None,
        },
        bound_reached: need_u64(core, "bound_reached")?,
        trace_len: maybe_u64(core, "trace_len")?,
        conflicts: need_u64(core, "conflicts")?,
        witness_validated: maybe_bool(core, "witness_validated")?,
        witness: match core.get("witness") {
            Some(Value::Null) | None => None,
            Some(w) => Some(w.clone()),
        },
        // Proof fields are tolerant of absence: entries cached before the
        // prover existed decode as unproved bounded verdicts.
        proved: maybe_bool(core, "proved")?.unwrap_or(false),
        proof_method: match core.get("proof_method") {
            Some(Value::Str(s)) => Some(s.clone()),
            _ => None,
        },
        proof_depth: maybe_u64(core, "proof_depth")?,
        proof_checked: maybe_bool(core, "proof_checked")?,
    })
}

/// Encodes a reply into a frame payload.
pub fn encode_reply(reply: &Reply) -> Vec<u8> {
    let v = match reply {
        Reply::Pong => obj(vec![("reply", string("pong"))]),
        Reply::Stats(counters) => obj(vec![
            ("reply", string("stats")),
            ("counters", counters.clone()),
        ]),
        Reply::ShuttingDown => obj(vec![("reply", string("shutting_down"))]),
        Reply::Busy { retry_after_ms } => obj(vec![
            ("reply", string("busy")),
            ("retry_after_ms", Value::UInt(*retry_after_ms)),
        ]),
        Reply::Error { message } => obj(vec![
            ("reply", string("error")),
            ("message", string(message)),
        ]),
        Reply::Verdict(verdict) => {
            let mut fields = vec![
                ("reply".to_string(), string("verdict")),
                ("cached".to_string(), Value::Bool(verdict.cached)),
            ];
            if let Value::Object(core) = verdict_core(verdict) {
                fields.extend(core);
            }
            Value::Object(fields)
        }
        Reply::Done(d) => obj(vec![
            ("reply", string("done")),
            ("jobs", Value::UInt(d.jobs)),
            ("from_cache", Value::UInt(d.from_cache)),
            ("computed", Value::UInt(d.computed)),
            ("encodes", Value::UInt(d.encodes)),
            ("witness_validations", Value::UInt(d.witness_validations)),
            ("witness_mismatches", Value::UInt(d.witness_mismatches)),
            ("retries", Value::UInt(d.retries)),
            ("degraded_runs", Value::UInt(d.degraded_runs)),
            ("panics", Value::UInt(d.panics)),
            ("cancelled", Value::UInt(d.cancelled)),
            ("proved", Value::UInt(d.proved)),
            ("proof_mismatches", Value::UInt(d.proof_mismatches)),
        ]),
    };
    render(&v)
}

/// Decodes a reply frame payload.
pub fn decode_reply(payload: &[u8]) -> Result<Reply, ProtocolError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| ProtocolError::Malformed("payload is not UTF-8".to_string()))?;
    let v = serde_json::from_str(text).map_err(|e| ProtocolError::Malformed(e.to_string()))?;
    match need_str(&v, "reply")? {
        "pong" => Ok(Reply::Pong),
        "stats" => Ok(Reply::Stats(need(&v, "counters")?.clone())),
        "shutting_down" => Ok(Reply::ShuttingDown),
        "busy" => Ok(Reply::Busy {
            retry_after_ms: need_u64(&v, "retry_after_ms")?,
        }),
        "error" => Ok(Reply::Error {
            message: need_str(&v, "message")?.to_string(),
        }),
        "verdict" => {
            let cached = need_bool(&v, "cached")?;
            Ok(Reply::Verdict(verdict_from_core(&v, cached)?))
        }
        "done" => Ok(Reply::Done(DoneStats {
            jobs: need_u64(&v, "jobs")?,
            from_cache: need_u64(&v, "from_cache")?,
            computed: need_u64(&v, "computed")?,
            encodes: need_u64(&v, "encodes")?,
            witness_validations: need_u64(&v, "witness_validations")?,
            witness_mismatches: need_u64(&v, "witness_mismatches")?,
            retries: need_u64(&v, "retries")?,
            degraded_runs: need_u64(&v, "degraded_runs")?,
            panics: need_u64(&v, "panics")?,
            cancelled: need_u64(&v, "cancelled")?,
            proved: maybe_u64(&v, "proved")?.unwrap_or(0),
            proof_mismatches: maybe_u64(&v, "proof_mismatches")?.unwrap_or(0),
        })),
        other => Err(ProtocolError::Malformed(format!("unknown reply '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut wire = Vec::new();
        let mut wc = 0;
        write_frame(&mut wire, b"{\"cmd\":\"ping\"}", None, &mut wc).unwrap();
        write_frame(&mut wire, b"", None, &mut wc).unwrap();
        let mut cursor = io::Cursor::new(wire);
        let mut rc = 0;
        assert_eq!(
            read_frame(&mut cursor, 1024, None, &mut rc).unwrap(),
            b"{\"cmd\":\"ping\"}"
        );
        assert!(read_frame(&mut cursor, 1024, None, &mut rc)
            .unwrap()
            .is_empty());
        assert!(matches!(
            read_frame(&mut cursor, 1024, None, &mut rc),
            Err(ProtocolError::Closed)
        ));
    }

    #[test]
    fn oversized_and_garbage_frames_are_rejected() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&FRAME_MAGIC);
        wire.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut rc = 0;
        assert!(matches!(
            read_frame(&mut io::Cursor::new(&wire), 1024, None, &mut rc),
            Err(ProtocolError::Oversized { .. })
        ));
        let mut rc = 0;
        assert!(matches!(
            read_frame(
                &mut io::Cursor::new(b"JUNKJUNK".as_slice()),
                1024,
                None,
                &mut rc
            ),
            Err(ProtocolError::BadMagic(_))
        ));
    }

    #[test]
    fn injected_wire_faults_tear_the_promised_frame() {
        let payload = vec![0xabu8; 64];
        let mut wire = Vec::new();
        let mut wc = 0;
        let plan = FaultPlan::drop_mid_frame(1);
        assert!(matches!(
            write_frame(&mut wire, &payload, Some(&plan), &mut wc),
            Err(ProtocolError::Injected(_))
        ));
        assert_eq!(wire.len(), 4, "drop leaves half a header");

        let mut wire = Vec::new();
        let mut wc = 0;
        let plan = FaultPlan::truncate_frame(1);
        assert!(matches!(
            write_frame(&mut wire, &payload, Some(&plan), &mut wc),
            Err(ProtocolError::Injected(_))
        ));
        assert_eq!(wire.len(), 8 + 32, "truncation delivers half the payload");
        // The reader sees a torn frame, not a clean close.
        let mut rc = 0;
        assert!(matches!(
            read_frame(&mut io::Cursor::new(&wire), 1024, None, &mut rc),
            Err(ProtocolError::Io(_))
        ));
    }

    #[test]
    fn requests_round_trip() {
        for request in [
            Request::Ping,
            Request::Stats,
            Request::Shutdown,
            Request::Submit(SubmitRequest {
                mutations: vec!["single-add".to_string()],
                batched: true,
                deadline_ms: Some(2000),
                conflict_limit: Some(50_000),
                ..SubmitRequest::new(Method::SepeSqed, 4, ProcessorConfig::tiny())
            }),
        ] {
            let bytes = encode_request(&request);
            let decoded = decode_request(&bytes).unwrap();
            assert_eq!(encode_request(&decoded), bytes, "{request:?}");
        }
    }

    #[test]
    fn hostile_requests_are_rejected_with_reasons() {
        let cases: Vec<(Vec<u8>, &str)> = vec![
            (b"not json".to_vec(), "parse"),
            (b"{}".to_vec(), "missing cmd"),
            (br#"{"cmd":"launch-missiles"}"#.to_vec(), "unknown cmd"),
            (
                encode_request(&Request::Submit(SubmitRequest::new(
                    Method::Sqed,
                    MAX_REQUEST_BOUND + 1,
                    ProcessorConfig::tiny(),
                ))),
                "bound cap",
            ),
            (
                encode_request(&Request::Submit(SubmitRequest {
                    mutations: vec!["no-such-bug".to_string()],
                    ..SubmitRequest::new(Method::Sqed, 2, ProcessorConfig::tiny())
                })),
                "unknown mutation",
            ),
            (
                encode_request(&Request::Submit(SubmitRequest::new(
                    Method::Sqed,
                    2,
                    ProcessorConfig {
                        xlen: 12,
                        ..ProcessorConfig::tiny()
                    },
                ))),
                "bad xlen",
            ),
        ];
        for (bytes, what) in cases {
            assert!(
                matches!(decode_request(&bytes), Err(ProtocolError::Malformed(_))),
                "{what} must be rejected"
            );
        }
    }

    #[test]
    fn replies_round_trip() {
        let verdict = Verdict {
            label: "single-add".to_string(),
            cached: false,
            detected: true,
            inconclusive: false,
            stop_reason: None,
            bound_reached: 3,
            trace_len: Some(3),
            conflicts: 412,
            witness_validated: Some(true),
            witness: Some(Value::Array(vec![])),
            proved: false,
            proof_method: None,
            proof_depth: None,
            proof_checked: None,
        };
        for reply in [
            Reply::Pong,
            Reply::ShuttingDown,
            Reply::Busy { retry_after_ms: 75 },
            Reply::Error {
                message: "nope".to_string(),
            },
            Reply::Verdict(verdict),
            Reply::Done(DoneStats {
                jobs: 4,
                from_cache: 2,
                computed: 2,
                encodes: 2,
                ..DoneStats::default()
            }),
        ] {
            let bytes = encode_reply(&reply);
            let decoded = decode_reply(&bytes).unwrap();
            assert_eq!(encode_reply(&decoded), bytes, "{reply:?}");
        }
    }

    #[test]
    fn verdict_core_round_trips_and_drops_only_the_cached_flag() {
        let verdict = Verdict {
            label: "clean".to_string(),
            cached: true,
            detected: false,
            inconclusive: true,
            stop_reason: Some("deadline".to_string()),
            bound_reached: 2,
            trace_len: None,
            conflicts: 9,
            witness_validated: None,
            witness: None,
            proved: false,
            proof_method: None,
            proof_depth: None,
            proof_checked: None,
        };
        let core = verdict_core(&verdict);
        let as_miss = verdict_from_core(&core, false).unwrap();
        let as_hit = verdict_from_core(&core, true).unwrap();
        assert!(!as_miss.cached);
        assert!(as_hit.cached);
        assert_eq!(
            Verdict {
                cached: true,
                ..as_miss
            },
            as_hit
        );
    }

    #[test]
    fn prove_requests_and_proved_verdicts_round_trip() {
        let request = Request::Submit(SubmitRequest {
            prove: Some(ProofMethod::Pdr),
            ..SubmitRequest::new(Method::Sqed, 8, ProcessorConfig::tiny())
        });
        let bytes = encode_request(&request);
        let decoded = decode_request(&bytes).unwrap();
        assert_eq!(encode_request(&decoded), bytes);
        let Request::Submit(s) = decoded else {
            panic!("submit expected");
        };
        assert_eq!(s.prove, Some(ProofMethod::Pdr));

        let verdict = Verdict {
            label: "clean".to_string(),
            cached: false,
            detected: false,
            inconclusive: false,
            stop_reason: None,
            bound_reached: 2,
            trace_len: None,
            conflicts: 622,
            witness_validated: None,
            witness: None,
            proved: true,
            proof_method: Some("pdr".to_string()),
            proof_depth: Some(2),
            proof_checked: Some(true),
        };
        let reply = Reply::Verdict(verdict.clone());
        let bytes = encode_reply(&reply);
        let Reply::Verdict(decoded) = decode_reply(&bytes).unwrap() else {
            panic!("verdict expected");
        };
        assert_eq!(decoded, verdict);
    }

    #[test]
    fn legacy_cores_without_proof_fields_decode_as_unproved() {
        // A cache entry persisted before the prover existed must keep
        // decoding — as a plain bounded verdict.
        let legacy = r#"{"label":"clean","detected":false,"inconclusive":false,
            "stop_reason":null,"bound_reached":4,"trace_len":null,
            "conflicts":7,"witness_validated":null,"witness":null}"#;
        let core = serde_json::from_str(legacy).unwrap();
        let verdict = verdict_from_core(&core, true).unwrap();
        assert!(!verdict.proved);
        assert_eq!(verdict.proof_method, None);
        assert_eq!(verdict.proof_depth, None);
        assert_eq!(verdict.proof_checked, None);
    }

    #[test]
    fn registries_resolve_names() {
        assert_eq!(opcode_by_mnemonic("add"), Some(Opcode::Add));
        assert_eq!(opcode_by_mnemonic("bogus"), None);
        assert!(mutation_by_name("single-add").is_some());
        assert!(mutation_by_name("multi-05-waw-collision").is_some());
        assert!(mutation_by_name("nope").is_none());
        assert_eq!(method_from_name("sqed"), Some(Method::Sqed));
        assert_eq!(method_from_name("sepe"), Some(Method::SepeSqed));
        assert_eq!(method_from_name("x"), None);
    }
}
