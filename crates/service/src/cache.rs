//! Content-addressed, crash-safe result cache.
//!
//! Conclusive verdicts are keyed by a stable FNV-1a hash of a canonical
//! job descriptor (processor shape + method + bound + mutation + encoding
//! knobs — budgets excluded, since only conclusive verdicts are cached and
//! those are budget-independent).  Each entry is one small file:
//!
//! ```text
//! sepe-cache-v1 <16-hex checksum>
//! <canonical descriptor>
//! <verdict core JSON>
//! ```
//!
//! written to a temp name, fsynced, then atomically renamed into place —
//! so a `kill -9` at any instant leaves every entry either fully present
//! or fully absent, never torn.  The startup recovery scan re-verifies
//! every entry's checksum and its name-vs-descriptor binding, deleting
//! anything that fails (a torn rename cannot happen, but a corrupted disk
//! block or a hostile edit can), and discards leftover temp files.
//!
//! Entries are sharded across 16 subdirectories by the low nibble of the
//! key so no single directory grows unboundedly.

use std::collections::HashMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use sepe_processor::ProcessorConfig;
use sepe_smt::stable_hash;
use sepe_sqed::detect::Method;

use sepe_tsys::ProofMethod;

use crate::protocol::{method_name, proof_method_name};

/// Format tag of entry files; bump when the descriptor or verdict schema
/// changes so stale caches self-invalidate.
pub const CACHE_FORMAT: &str = "sepe-cache-v1";

/// Marker file whose presence on startup means the previous run flushed
/// and exited cleanly.
const CLEAN_MARKER: &str = "CLEAN";

/// What the startup recovery scan found.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Entries that verified and were loaded.
    pub recovered: u64,
    /// Entries that failed checksum or binding checks and were deleted.
    pub corrupted: u64,
    /// Leftover temp files from interrupted writes, discarded.
    pub temps_discarded: u64,
    /// Whether the previous run shut down cleanly (flushed marker found).
    pub clean_shutdown: bool,
}

/// Builds the canonical descriptor string a job is cached under.  Opcodes
/// are sorted and deduplicated so permuted-but-equal universes share an
/// entry.
pub fn job_descriptor(
    processor: &ProcessorConfig,
    method: Method,
    bound: usize,
    mutation: Option<&str>,
    simplify: bool,
    aig: bool,
    prove: Option<ProofMethod>,
) -> String {
    let mut ops: Vec<&str> = processor
        .allowed_opcodes
        .iter()
        .map(|op| op.mnemonic())
        .collect();
    ops.sort_unstable();
    ops.dedup();
    format!(
        "sepe-job-v2|xlen={}|mem={}|hist={}|ops={}|method={}|mut={}|bound={}|simplify={}|aig={}|prove={}",
        processor.xlen,
        processor.mem_words,
        processor.history_depth,
        ops.join(","),
        method_name(method),
        mutation.unwrap_or("clean"),
        bound,
        u8::from(simplify),
        u8::from(aig),
        prove.map_or("none", proof_method_name),
    )
}

/// The content-addressed key of a descriptor.
pub fn cache_key(descriptor: &str) -> u64 {
    stable_hash(descriptor.as_bytes())
}

struct Entry {
    descriptor: String,
    verdict_json: String,
}

/// A persistent verdict cache rooted at one directory.
pub struct ResultCache {
    root: PathBuf,
    entries: Mutex<HashMap<u64, Entry>>,
}

impl ResultCache {
    /// Opens (creating if needed) the cache at `root`, running the
    /// recovery scan.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<(ResultCache, RecoveryStats)> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        let mut stats = RecoveryStats::default();
        let marker = root.join(CLEAN_MARKER);
        if marker.exists() {
            stats.clean_shutdown = true;
            // Remove it: only a future `flush` earns it back, so a crash
            // after this point is visible on the next open.
            fs::remove_file(&marker)?;
        }
        let mut entries = HashMap::new();
        for shard in 0u64..16 {
            let dir = root.join(format!("{shard:02x}"));
            if !dir.is_dir() {
                continue;
            }
            for item in fs::read_dir(&dir)? {
                let path = item?.path();
                let name = match path.file_name().and_then(|n| n.to_str()) {
                    Some(n) => n.to_string(),
                    None => continue,
                };
                if name.starts_with(".tmp-") {
                    let _ = fs::remove_file(&path);
                    stats.temps_discarded += 1;
                    continue;
                }
                let Some(stem) = name.strip_suffix(".entry") else {
                    continue;
                };
                match Self::load_entry(&path, stem, shard) {
                    Some((key, entry)) => {
                        entries.insert(key, entry);
                        stats.recovered += 1;
                    }
                    None => {
                        let _ = fs::remove_file(&path);
                        stats.corrupted += 1;
                    }
                }
            }
        }
        Ok((
            ResultCache {
                root,
                entries: Mutex::new(entries),
            },
            stats,
        ))
    }

    /// Verifies one entry file end to end; `None` means torn/corrupt.
    fn load_entry(path: &Path, stem: &str, shard: u64) -> Option<(u64, Entry)> {
        let key = u64::from_str_radix(stem, 16).ok()?;
        if key % 16 != shard {
            return None;
        }
        let text = fs::read_to_string(path).ok()?;
        let mut lines = text.splitn(3, '\n');
        let header = lines.next()?;
        let descriptor = lines.next()?;
        let verdict_json = lines.next()?.strip_suffix('\n')?;
        let claimed = header.strip_prefix(CACHE_FORMAT)?.trim();
        let actual = Self::checksum(descriptor, verdict_json);
        if claimed != actual {
            return None;
        }
        if cache_key(descriptor) != key {
            return None;
        }
        Some((
            key,
            Entry {
                descriptor: descriptor.to_string(),
                verdict_json: verdict_json.to_string(),
            },
        ))
    }

    fn checksum(descriptor: &str, verdict_json: &str) -> String {
        let mut bytes = Vec::with_capacity(descriptor.len() + verdict_json.len() + 1);
        bytes.extend_from_slice(descriptor.as_bytes());
        bytes.push(b'\n');
        bytes.extend_from_slice(verdict_json.as_bytes());
        format!("{:016x}", stable_hash(&bytes))
    }

    /// The cache's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up the stored verdict JSON for a descriptor.  The stored
    /// descriptor is compared byte-for-byte as a guard against (however
    /// unlikely) 64-bit hash collisions.
    pub fn lookup(&self, descriptor: &str) -> Option<String> {
        let entries = self.entries.lock().unwrap();
        let entry = entries.get(&cache_key(descriptor))?;
        (entry.descriptor == descriptor).then(|| entry.verdict_json.clone())
    }

    /// Persists a verdict: temp file, fsync, atomic rename.  Returns once
    /// the entry is durable, so a crash immediately after a job's reply
    /// frame loses nothing.
    pub fn insert(&self, descriptor: &str, verdict_json: &str) -> io::Result<()> {
        let key = cache_key(descriptor);
        let shard = self.root.join(format!("{:02x}", key % 16));
        fs::create_dir_all(&shard)?;
        let tmp = shard.join(format!(".tmp-{key:016x}"));
        let final_path = shard.join(format!("{key:016x}.entry"));
        {
            let mut file = fs::File::create(&tmp)?;
            writeln!(
                file,
                "{CACHE_FORMAT} {}",
                Self::checksum(descriptor, verdict_json)
            )?;
            writeln!(file, "{descriptor}")?;
            writeln!(file, "{verdict_json}")?;
            file.sync_all()?;
        }
        fs::rename(&tmp, &final_path)?;
        self.entries.lock().unwrap().insert(
            key,
            Entry {
                descriptor: descriptor.to_string(),
                verdict_json: verdict_json.to_string(),
            },
        );
        Ok(())
    }

    /// Marks a clean shutdown.  Entries are already durable individually;
    /// this only records that the process exited in an orderly way.
    pub fn flush(&self) -> io::Result<()> {
        let mut file = fs::File::create(self.root.join(CLEAN_MARKER))?;
        writeln!(file, "clean")?;
        file.sync_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "sepe-cache-test-{}-{}-{}",
            tag,
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn descriptor(bound: usize) -> String {
        job_descriptor(
            &ProcessorConfig::tiny(),
            Method::SepeSqed,
            bound,
            Some("single-add"),
            true,
            true,
            None,
        )
    }

    #[test]
    fn insert_then_reopen_recovers_entries() {
        let dir = scratch_dir("roundtrip");
        {
            let (cache, stats) = ResultCache::open(&dir).unwrap();
            assert_eq!(stats, RecoveryStats::default());
            cache
                .insert(&descriptor(2), r#"{"detected":true}"#)
                .unwrap();
            cache
                .insert(&descriptor(3), r#"{"detected":false}"#)
                .unwrap();
            assert_eq!(
                cache.lookup(&descriptor(2)).as_deref(),
                Some(r#"{"detected":true}"#)
            );
            // No flush: simulates a crash-stop.
        }
        let (cache, stats) = ResultCache::open(&dir).unwrap();
        assert_eq!(stats.recovered, 2);
        assert_eq!(stats.corrupted, 0);
        assert!(!stats.clean_shutdown);
        assert_eq!(
            cache.lookup(&descriptor(3)).as_deref(),
            Some(r#"{"detected":false}"#)
        );
        assert_eq!(cache.lookup(&descriptor(9)), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flush_marks_clean_shutdown_exactly_once() {
        let dir = scratch_dir("clean");
        {
            let (cache, _) = ResultCache::open(&dir).unwrap();
            cache.insert(&descriptor(2), "{}").unwrap();
            cache.flush().unwrap();
        }
        let (_, stats) = ResultCache::open(&dir).unwrap();
        assert!(stats.clean_shutdown, "marker written by flush");
        let (_, stats) = ResultCache::open(&dir).unwrap();
        assert!(!stats.clean_shutdown, "marker consumed by the open");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_and_tampered_entries_are_discarded() {
        let dir = scratch_dir("torn");
        let (cache, _) = ResultCache::open(&dir).unwrap();
        cache
            .insert(&descriptor(2), r#"{"detected":true}"#)
            .unwrap();
        cache
            .insert(&descriptor(3), r#"{"detected":true}"#)
            .unwrap();
        drop(cache);

        // Tamper with one entry's payload (checksum now fails), truncate
        // the other mid-file, and plant a stale temp file.
        let key2 = cache_key(&descriptor(2));
        let key3 = cache_key(&descriptor(3));
        let path2 = dir
            .join(format!("{:02x}", key2 % 16))
            .join(format!("{key2:016x}.entry"));
        let path3 = dir
            .join(format!("{:02x}", key3 % 16))
            .join(format!("{key3:016x}.entry"));
        let text = fs::read_to_string(&path2).unwrap();
        fs::write(&path2, text.replace("true", "false")).unwrap();
        let text = fs::read_to_string(&path3).unwrap();
        fs::write(&path3, &text.as_bytes()[..text.len() / 2]).unwrap();
        fs::write(path2.parent().unwrap().join(".tmp-dead"), b"partial").unwrap();

        let (cache, stats) = ResultCache::open(&dir).unwrap();
        assert_eq!(stats.recovered, 0);
        assert_eq!(stats.corrupted, 2);
        assert_eq!(stats.temps_discarded, 1);
        assert!(cache.is_empty());
        assert!(!path2.exists() && !path3.exists(), "bad entries deleted");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn descriptor_canonicalises_opcode_order() {
        use sepe_isa::Opcode;
        let a = ProcessorConfig {
            allowed_opcodes: vec![Opcode::Add, Opcode::Sub],
            ..ProcessorConfig::tiny()
        };
        let b = ProcessorConfig {
            allowed_opcodes: vec![Opcode::Sub, Opcode::Add, Opcode::Sub],
            ..ProcessorConfig::tiny()
        };
        assert_eq!(
            job_descriptor(&a, Method::Sqed, 2, None, true, false, None),
            job_descriptor(&b, Method::Sqed, 2, None, true, false, None),
        );
        assert_ne!(
            job_descriptor(&a, Method::Sqed, 2, None, true, false, None),
            job_descriptor(&a, Method::Sqed, 3, None, true, false, None),
        );
    }
}
