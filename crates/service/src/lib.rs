//! Fault-tolerant detection service.
//!
//! This crate turns the batch engine of `sepe_sqed` into a long-running
//! *service*: a persistent server ([`server::Server`]) accepting detection
//! jobs over a length-prefixed binary protocol ([`protocol`]) on Unix or
//! TCP sockets, an admission-controlled bounded job queue that sheds load
//! with `Busy{retry_after}` instead of queueing without bound, a
//! content-addressed crash-safe result cache ([`cache::ResultCache`]) that
//! survives `kill -9` losing at most the in-flight jobs, and a bundled
//! retrying client ([`client::Client`]).
//!
//! Everything is std-only and deterministic where it matters: verdict
//! frames carry no wall-clock fields, witness keys are serialized sorted,
//! and cache keys come from the seeded stable hash in `sepe_smt` — so a
//! cached reply is byte-identical to the fresh reply it replaced, which is
//! what the hostile-input soak test asserts for bystander connections.

pub mod cache;
pub mod client;
pub mod protocol;
pub mod server;

pub use cache::{cache_key, job_descriptor, RecoveryStats, ResultCache};
pub use client::{Client, ClientConfig, ClientError, SubmitResult};
pub use protocol::{
    proof_method_from_name, proof_method_name, DoneStats, ProtocolError, Reply, Request,
    SubmitRequest, Verdict, DEFAULT_MAX_FRAME_LEN,
};
pub use server::{Endpoint, Server, ServerConfig, ServerReport};
