//! Bundled client: one connection per request, automatic retry with
//! exponential backoff and seeded jitter.
//!
//! The retry loop treats three failures as transient — connect refusal
//! (server restarting), transport errors (torn connection), and explicit
//! `Busy` shedding (the server's admission control, whose
//! `retry_after_ms` hint floors the backoff).  A structural `Error` reply
//! is permanent and surfaces immediately.  Retrying a whole request after
//! a mid-stream tear is safe because verdicts are deterministic and the
//! server commits each conclusive verdict before streaming it: the retry
//! is served from the cache up to the point of the tear.

use std::io;
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::sync::Mutex;
use std::time::Duration;

use serde::Value;

use crate::protocol::{
    decode_reply, encode_request, read_frame, write_frame, DoneStats, ProtocolError, Reply,
    Request, SubmitRequest, Verdict, DEFAULT_MAX_FRAME_LEN,
};
use crate::server::{Conn, Endpoint};

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Wire-level failure on the final attempt.
    Protocol(ProtocolError),
    /// The server rejected the request structurally (bad request, unknown
    /// mutation, ...): never retried.
    Rejected(String),
    /// The server is draining and will not take new work.
    ShuttingDown,
    /// All attempts exhausted on transient failures.
    Exhausted {
        /// Attempts made.
        attempts: u32,
        /// Description of the last failure.
        last: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Protocol(e) => write!(f, "protocol failure: {e}"),
            ClientError::Rejected(m) => write!(f, "request rejected: {m}"),
            ClientError::ShuttingDown => write!(f, "server is shutting down"),
            ClientError::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts (last: {last})")
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// Client knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Where the server listens.
    pub endpoint: Endpoint,
    /// Per-connection read deadline.
    pub read_timeout: Duration,
    /// Per-connection write deadline.
    pub write_timeout: Duration,
    /// Reply-frame payload cap.
    pub max_frame_len: usize,
    /// Total attempts per request (1 = no retry).
    pub max_attempts: u32,
    /// First backoff step; doubles per retry.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Jitter seed (deterministic per client; two clients with different
    /// seeds desynchronise their retry storms).
    pub seed: u64,
}

impl ClientConfig {
    /// Defaults against an endpoint.
    pub fn new(endpoint: Endpoint) -> ClientConfig {
        ClientConfig {
            endpoint,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            max_attempts: 5,
            backoff_base: Duration::from_millis(20),
            backoff_cap: Duration::from_millis(500),
            seed: 1,
        }
    }
}

/// The result of a successful submit.
#[derive(Debug, Clone)]
pub struct SubmitResult {
    /// Per-entry verdicts, in reply order.
    pub verdicts: Vec<Verdict>,
    /// The raw bytes of each verdict frame, exactly as received — the soak
    /// test's bit-identical oracle.
    pub raw_verdict_frames: Vec<Vec<u8>>,
    /// End-of-stream statistics.
    pub done: DoneStats,
    /// Attempts it took (1 = first try).
    pub attempts: u32,
}

enum Attempt<T> {
    Ok(T),
    Transient(String, Option<Duration>),
    Fatal(ClientError),
}

/// A detection-service client.
pub struct Client {
    config: ClientConfig,
    rng: Mutex<u64>,
}

impl Client {
    /// A client with default knobs.
    pub fn new(endpoint: Endpoint) -> Client {
        Client::with_config(ClientConfig::new(endpoint))
    }

    /// A client with explicit knobs.
    pub fn with_config(config: ClientConfig) -> Client {
        let seed = config.seed.max(1); // xorshift's one forbidden state is 0
        Client {
            config,
            rng: Mutex::new(seed),
        }
    }

    fn connect(&self) -> io::Result<Box<dyn Conn>> {
        let conn: Box<dyn Conn> = match &self.config.endpoint {
            #[cfg(unix)]
            Endpoint::Unix(path) => Box::new(UnixStream::connect(path)?),
            Endpoint::Tcp(addr) => Box::new(TcpStream::connect(addr)?),
        };
        conn.set_timeouts(
            Some(self.config.read_timeout),
            Some(self.config.write_timeout),
        )?;
        Ok(conn)
    }

    /// 0..=25% of the step, from a deterministic xorshift64 stream.
    fn jitter(&self, step: Duration) -> Duration {
        let mut state = self.rng.lock().unwrap();
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        step.mul_f64((x % 256) as f64 / 1024.0)
    }

    fn backoff(&self, attempt: u32, floor: Option<Duration>) -> Duration {
        let step = self
            .config
            .backoff_base
            .saturating_mul(1u32 << attempt.min(10))
            .min(self.config.backoff_cap);
        let step = floor.map_or(step, |f| step.max(f));
        step + self.jitter(step)
    }

    fn retrying<T>(
        &self,
        mut attempt: impl FnMut() -> Attempt<T>,
    ) -> Result<(T, u32), ClientError> {
        let mut last = String::new();
        for n in 0..self.config.max_attempts {
            match attempt() {
                Attempt::Ok(value) => return Ok((value, n + 1)),
                Attempt::Fatal(e) => return Err(e),
                Attempt::Transient(why, floor) => {
                    last = why;
                    if n + 1 < self.config.max_attempts {
                        std::thread::sleep(self.backoff(n, floor));
                    }
                }
            }
        }
        Err(ClientError::Exhausted {
            attempts: self.config.max_attempts,
            last,
        })
    }

    /// One request/reply exchange on a fresh connection, reading frames
    /// until `until` says the stream is complete.
    fn exchange(
        &self,
        request: &Request,
        mut on_reply: impl FnMut(Reply, &[u8]) -> Option<Attempt<()>>,
    ) -> Attempt<()> {
        let mut conn = match self.connect() {
            Ok(c) => c,
            Err(e) => return Attempt::Transient(format!("connect: {e}"), None),
        };
        let mut wc = 0;
        if let Err(e) = write_frame(&mut conn, &encode_request(request), None, &mut wc) {
            return Attempt::Transient(format!("send: {e}"), None);
        }
        let mut rc = 0;
        loop {
            let payload = match read_frame(&mut conn, self.config.max_frame_len, None, &mut rc) {
                Ok(p) => p,
                Err(e) => return Attempt::Transient(format!("recv: {e}"), None),
            };
            let reply = match decode_reply(&payload) {
                Ok(r) => r,
                Err(e) => return Attempt::Fatal(ClientError::Protocol(e)),
            };
            match reply {
                Reply::Busy { retry_after_ms } => {
                    return Attempt::Transient(
                        format!("busy (retry after {retry_after_ms}ms)"),
                        Some(Duration::from_millis(retry_after_ms)),
                    )
                }
                Reply::ShuttingDown => return Attempt::Fatal(ClientError::ShuttingDown),
                Reply::Error { message } => return Attempt::Fatal(ClientError::Rejected(message)),
                other => {
                    if let Some(done) = on_reply(other, &payload) {
                        return done;
                    }
                }
            }
        }
    }

    /// Liveness probe.
    pub fn ping(&self) -> Result<(), ClientError> {
        self.retrying(|| {
            self.exchange(&Request::Ping, |reply, _| match reply {
                Reply::Pong => Some(Attempt::Ok(())),
                other => Some(Attempt::Fatal(ClientError::Protocol(
                    ProtocolError::Malformed(format!("unexpected reply {other:?}")),
                ))),
            })
        })
        .map(|_| ())
    }

    /// Fetches the server's counters snapshot.
    pub fn stats(&self) -> Result<Value, ClientError> {
        let mut out = None;
        self.retrying(|| {
            self.exchange(&Request::Stats, |reply, _| match reply {
                Reply::Stats(counters) => {
                    out = Some(counters);
                    Some(Attempt::Ok(()))
                }
                other => Some(Attempt::Fatal(ClientError::Protocol(
                    ProtocolError::Malformed(format!("unexpected reply {other:?}")),
                ))),
            })
        })?;
        Ok(out.expect("set on success"))
    }

    /// Asks the server to drain and exit.  Not retried: a torn reply after
    /// the server read the command still means the drain has begun.
    pub fn shutdown(&self) -> Result<(), ClientError> {
        // The expected `ShuttingDown` reply is intercepted by `exchange`;
        // any reply that reaches the closure is a protocol violation.
        match self.exchange(&Request::Shutdown, |reply, _| {
            Some(Attempt::Fatal(ClientError::Protocol(
                ProtocolError::Malformed(format!("unexpected reply {reply:?}")),
            )))
        }) {
            Attempt::Fatal(ClientError::ShuttingDown) | Attempt::Ok(()) => Ok(()),
            Attempt::Fatal(e) => Err(e),
            Attempt::Transient(why, _) => Err(ClientError::Exhausted {
                attempts: 1,
                last: why,
            }),
        }
    }

    /// Reads a counter out of a stats snapshot.
    pub fn counter(stats: &Value, name: &str) -> u64 {
        stats
            .get("counters")
            .unwrap_or(stats)
            .get(name)
            .and_then(|v| v.as_u64())
            .unwrap_or(0)
    }

    /// Submits a detection request, retrying transient failures, and
    /// collects the full verdict stream.
    pub fn submit(&self, request: &SubmitRequest) -> Result<SubmitResult, ClientError> {
        let request = Request::Submit(request.clone());
        let mut collected: Option<SubmitResult> = None;
        let (_, attempts) = self.retrying(|| {
            let mut verdicts = Vec::new();
            let mut raw = Vec::new();
            let mut done = None;
            let outcome = self.exchange(&request, |reply, payload| match reply {
                Reply::Verdict(v) => {
                    verdicts.push(v);
                    raw.push(payload.to_vec());
                    None
                }
                Reply::Done(d) => {
                    done = Some(d);
                    Some(Attempt::Ok(()))
                }
                other => Some(Attempt::Fatal(ClientError::Protocol(
                    ProtocolError::Malformed(format!("unexpected reply {other:?}")),
                ))),
            });
            if let (Attempt::Ok(()), Some(done)) = (&outcome, done) {
                collected = Some(SubmitResult {
                    verdicts: std::mem::take(&mut verdicts),
                    raw_verdict_frames: std::mem::take(&mut raw),
                    done,
                    attempts: 0, // patched below
                });
            }
            outcome
        })?;
        let mut result = collected.expect("set on success");
        result.attempts = attempts;
        Ok(result)
    }
}
