//! The detection-server binary.
//!
//! ```text
//! sepe_serve --unix /tmp/sepe.sock --cache-dir /var/cache/sepe
//! sepe_serve --tcp 127.0.0.1:0 --cache-dir ./cache --workers 2 --queue 8
//! ```
//!
//! On startup it prints one `ready` line (endpoint + cache recovery
//! counts) and flushes it, so a supervisor or test can wait for it before
//! connecting.  Test-only flags (`--crash-after-jobs`, `--job-delay-ms`)
//! arm the crash-safety and overload scenarios of the integration suite.

use std::io::Write as _;
use std::process::ExitCode;
use std::time::Duration;

use sepe_service::server::{Endpoint, Server, ServerConfig};
use sepe_sqed::RetryPolicy;

fn usage() -> ! {
    eprintln!(
        "usage: sepe_serve (--unix PATH | --tcp ADDR) --cache-dir DIR\n\
         \x20      [--workers N] [--engine-workers N] [--queue N] [--retries N]\n\
         \x20      [--read-timeout-ms N] [--busy-retry-ms N] [--drain-grace-ms N]\n\
         \x20      [--max-deadline-ms N] [--crash-after-jobs N] [--job-delay-ms N]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut endpoint = None;
    let mut cache_dir = None;
    type ConfigTweak = Box<dyn FnOnce(&mut ServerConfig)>;
    let mut apply: Vec<ConfigTweak> = Vec::new();
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        let parse = |v: String| v.parse::<u64>().unwrap_or_else(|_| usage());
        match flag.as_str() {
            "--unix" => endpoint = Some(Endpoint::Unix(value().into())),
            "--tcp" => {
                let addr = value().parse().unwrap_or_else(|_| usage());
                endpoint = Some(Endpoint::Tcp(addr));
            }
            "--cache-dir" => cache_dir = Some(value()),
            "--workers" => {
                let n = parse(value()) as usize;
                apply.push(Box::new(move |c| c.job_workers = n));
            }
            "--engine-workers" => {
                let n = parse(value()) as usize;
                apply.push(Box::new(move |c| c.engine_workers = n));
            }
            "--queue" => {
                let n = parse(value()) as usize;
                apply.push(Box::new(move |c| c.queue_capacity = n));
            }
            "--retries" => {
                let n = parse(value()) as u32;
                apply.push(Box::new(move |c| c.retry = RetryPolicy::ladder(n)));
            }
            "--read-timeout-ms" => {
                let ms = parse(value());
                apply.push(Box::new(move |c| {
                    c.read_timeout = Duration::from_millis(ms);
                }));
            }
            "--busy-retry-ms" => {
                let ms = parse(value());
                apply.push(Box::new(move |c| {
                    c.busy_retry_after = Duration::from_millis(ms);
                }));
            }
            "--drain-grace-ms" => {
                let ms = parse(value());
                apply.push(Box::new(move |c| {
                    c.drain_grace = Duration::from_millis(ms);
                }));
            }
            "--max-deadline-ms" => {
                let ms = parse(value());
                apply.push(Box::new(move |c| {
                    c.max_deadline = Duration::from_millis(ms);
                }));
            }
            "--crash-after-jobs" => {
                let n = parse(value());
                apply.push(Box::new(move |c| c.crash_after_jobs = Some(n)));
            }
            "--job-delay-ms" => {
                let ms = parse(value());
                apply.push(Box::new(move |c| {
                    c.job_delay = Some(Duration::from_millis(ms));
                }));
            }
            _ => usage(),
        }
    }
    let (Some(endpoint), Some(cache_dir)) = (endpoint, cache_dir) else {
        usage();
    };
    let mut config = ServerConfig::new(endpoint, cache_dir);
    for f in apply {
        f(&mut config);
    }
    let server = match Server::bind(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sepe_serve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let recovery = server.recovery();
    // The `ready` line doubles as the supervisor handshake; tests read the
    // printed TCP port when binding port 0.
    let listening = server
        .local_addr()
        .map_or("unix".to_string(), |a| a.to_string());
    println!(
        "ready endpoint={listening} recovered={} corrupted={} temps={} clean={}",
        recovery.recovered,
        recovery.corrupted,
        recovery.temps_discarded,
        u8::from(recovery.clean_shutdown),
    );
    let _ = std::io::stdout().flush();
    match server.run() {
        Ok(report) => {
            // `println!` would panic if the supervisor closed our stdout
            // pipe early; the drain already succeeded, so exit 0 anyway.
            let _ = writeln!(
                std::io::stdout(),
                "drained cache_entries={} recovered={}",
                report.cache_entries,
                report.recovery.recovered
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("sepe_serve: {e}");
            ExitCode::FAILURE
        }
    }
}
