//! The persistent detection server.
//!
//! One process owns a listening socket (Unix or TCP), a bounded admission
//! queue, a small pool of job workers driving the engine
//! ([`Engine`]/[`BatchedDetector`]), and the crash-safe
//! [`ResultCache`].  The failure-containment ladder:
//!
//! * **Per connection** — read/write deadlines and the frame-length cap
//!   mean a stalled, slow-loris or garbage-spewing client costs one
//!   handler thread for at most one timeout, then is disconnected.
//!   Protocol errors on one connection never touch another.
//! * **Per request** — deadlines and memory budgets clamp to the server's
//!   own ceilings and ride the engine's `StopReason` machinery; a request
//!   whose client vanishes mid-stream has its chained
//!   [`CancelFlag`] raised so the engine stops paying for it.
//! * **Per server** — admission control: when the job queue is full the
//!   request is shed *immediately* with `Busy{retry_after}` instead of
//!   queueing without bound, so latency under overload stays flat for the
//!   jobs that are admitted.
//! * **Across restarts** — every conclusive verdict is committed to the
//!   cache (temp file + fsync + atomic rename) the moment it is produced,
//!   so `kill -9` loses at most the jobs in flight; the startup recovery
//!   scan discards torn entries by checksum.
//!
//! Graceful shutdown (`shutdown` command) drains: the listener closes, the
//! queue's sender is dropped so workers finish what was admitted and exit,
//! a watchdog raises the drain cancel flag after the grace period for
//! stragglers, and the cache is flushed.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use sepe_processor::{Mutation, ProcessorConfig};
use sepe_smt::CancelFlag;
use sepe_sqed::{
    BatchedDetector, CatalogueEntry, DetectorConfig, Engine, FaultPlan, Method, RetryPolicy,
};
use sepe_tsys::ProofMethod;
use serde::Value;

use crate::cache::{job_descriptor, RecoveryStats, ResultCache};
use crate::protocol::{
    self, encode_reply, read_frame, write_frame, DoneStats, ProtocolError, Reply, Request,
    SubmitRequest, Verdict, DEFAULT_MAX_FRAME_LEN,
};

/// Where a server listens (or a client connects).
#[derive(Debug, Clone)]
pub enum Endpoint {
    /// A Unix-domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
    /// A TCP address (use port 0 to let the OS pick).
    Tcp(SocketAddr),
}

/// A bidirectional connection with settable I/O deadlines — the one
/// abstraction both transports satisfy.
pub(crate) trait Conn: Read + Write + Send {
    /// Applies read/write timeouts (`None` disables one).
    fn set_timeouts(&self, read: Option<Duration>, write: Option<Duration>) -> io::Result<()>;
}

#[cfg(unix)]
impl Conn for UnixStream {
    fn set_timeouts(&self, read: Option<Duration>, write: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(read)?;
        self.set_write_timeout(write)
    }
}

impl Conn for TcpStream {
    fn set_timeouts(&self, read: Option<Duration>, write: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(read)?;
        self.set_write_timeout(write)
    }
}

enum Listener {
    #[cfg(unix)]
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn bind(endpoint: &Endpoint) -> io::Result<Listener> {
        match endpoint {
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                // A stale socket file from a crashed predecessor would make
                // the bind fail; remove it (connect-probing would race).
                let _ = std::fs::remove_file(path);
                Ok(Listener::Unix(UnixListener::bind(path)?))
            }
            Endpoint::Tcp(addr) => Ok(Listener::Tcp(TcpListener::bind(addr)?)),
        }
    }

    fn set_nonblocking(&self, on: bool) -> io::Result<()> {
        match self {
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(on),
            Listener::Tcp(l) => l.set_nonblocking(on),
        }
    }

    fn accept(&self) -> io::Result<Box<dyn Conn>> {
        match self {
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(s, _)| Box::new(s) as Box<dyn Conn>),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Box::new(s) as Box<dyn Conn>),
        }
    }

    fn local_addr(&self) -> Option<SocketAddr> {
        match self {
            #[cfg(unix)]
            Listener::Unix(_) => None,
            Listener::Tcp(l) => l.local_addr().ok(),
        }
    }
}

/// Server configuration.  [`ServerConfig::new`] gives conservative
/// defaults; everything is a public field.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Where to listen.
    pub endpoint: Endpoint,
    /// Root directory of the crash-safe result cache.
    pub cache_dir: PathBuf,
    /// Job-worker threads (each runs one admitted request at a time).
    pub job_workers: usize,
    /// Engine worker threads per job.
    pub engine_workers: usize,
    /// Admission queue depth: requests beyond `job_workers` in flight plus
    /// this many queued are shed with `Busy`.
    pub queue_capacity: usize,
    /// Per-connection read deadline (a stalled client is disconnected).
    pub read_timeout: Duration,
    /// Per-connection write deadline.
    pub write_timeout: Duration,
    /// Frame payload cap.
    pub max_frame_len: usize,
    /// Suggested client backoff carried in `Busy` replies.
    pub busy_retry_after: Duration,
    /// Ceiling on any request's wall-clock deadline; also the default when
    /// a request names none.
    pub max_deadline: Duration,
    /// Default per-request SAT memory cap (a request may ask for less).
    pub default_memory_limit: Option<usize>,
    /// Grace period between drain start and the watchdog raising the
    /// cancel flag on stragglers.
    pub drain_grace: Duration,
    /// Retry ladder applied to computed jobs.
    pub retry: RetryPolicy,
    /// Protocol-layer fault plan applied to every connection's frame I/O
    /// (test machinery; `None` in production).
    pub fault: Option<FaultPlan>,
    /// Abort the process (as `SIGKILL` would) right after this many cache
    /// commits — the crash-safety test's trigger.
    pub crash_after_jobs: Option<u64>,
    /// Artificial pause before each computed entry (makes overload and
    /// drain timing deterministic in tests).
    pub job_delay: Option<Duration>,
}

impl ServerConfig {
    /// Conservative defaults on the given endpoint and cache directory.
    pub fn new(endpoint: Endpoint, cache_dir: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            endpoint,
            cache_dir: cache_dir.into(),
            job_workers: 1,
            engine_workers: 1,
            queue_capacity: 4,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            busy_retry_after: Duration::from_millis(50),
            max_deadline: Duration::from_secs(60),
            default_memory_limit: None,
            drain_grace: Duration::from_secs(5),
            retry: RetryPolicy::ladder(1),
            fault: None,
            crash_after_jobs: None,
            job_delay: None,
        }
    }
}

/// Monotonic service counters (all writes relaxed: they are reporting,
/// never synchronisation).
#[derive(Debug, Default)]
struct Counters {
    accepted: AtomicU64,
    requests: AtomicU64,
    submits: AtomicU64,
    jobs: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    busy_rejections: AtomicU64,
    protocol_errors: AtomicU64,
    cancelled_requests: AtomicU64,
    encodes: AtomicU64,
    witness_validations: AtomicU64,
    witness_mismatches: AtomicU64,
    retries: AtomicU64,
    degraded_runs: AtomicU64,
    panics: AtomicU64,
}

macro_rules! bump {
    ($shared:expr, $field:ident) => {
        $shared.counters.$field.fetch_add(1, Ordering::Relaxed)
    };
    ($shared:expr, $field:ident, $n:expr) => {
        $shared.counters.$field.fetch_add($n, Ordering::Relaxed)
    };
}

/// One entry of an admitted request that missed the cache.
struct MissEntry {
    label: String,
    mutation: Option<Mutation>,
    descriptor: String,
}

/// What a worker streams back to the connection handler.
enum WorkerMsg {
    Verdict(Verdict),
    Finished(DoneStats),
}

/// An admitted unit of work.
struct Ticket {
    method: Method,
    processor: ProcessorConfig,
    bound: usize,
    simplify: bool,
    aig: bool,
    conflict_limit: Option<u64>,
    memory_limit: Option<usize>,
    deadline: Duration,
    batched: bool,
    prove: Option<ProofMethod>,
    entries: Vec<MissEntry>,
    cancel: CancelFlag,
    replies: Sender<WorkerMsg>,
}

struct Shared {
    config: ServerConfig,
    cache: ResultCache,
    recovery: RecoveryStats,
    counters: Counters,
    draining: AtomicBool,
    drain_cancel: CancelFlag,
    queue: Mutex<Option<SyncSender<Ticket>>>,
    committed_jobs: AtomicU64,
    active_handlers: AtomicU64,
}

impl Shared {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Counters snapshot as an ordered JSON object (the `stats` reply).
    fn snapshot(&self) -> Value {
        let c = &self.counters;
        let get = |a: &AtomicU64| Value::UInt(a.load(Ordering::Relaxed));
        Value::Object(
            vec![
                ("accepted", get(&c.accepted)),
                ("requests", get(&c.requests)),
                ("submits", get(&c.submits)),
                ("jobs", get(&c.jobs)),
                ("cache_hits", get(&c.cache_hits)),
                ("cache_misses", get(&c.cache_misses)),
                ("busy_rejections", get(&c.busy_rejections)),
                ("protocol_errors", get(&c.protocol_errors)),
                ("cancelled_requests", get(&c.cancelled_requests)),
                ("encodes", get(&c.encodes)),
                ("witness_validations", get(&c.witness_validations)),
                ("witness_mismatches", get(&c.witness_mismatches)),
                ("retries", get(&c.retries)),
                ("degraded_runs", get(&c.degraded_runs)),
                ("panics", get(&c.panics)),
                ("cache_entries", Value::UInt(self.cache.len() as u64)),
                ("recovered_entries", Value::UInt(self.recovery.recovered)),
                ("corrupted_entries", Value::UInt(self.recovery.corrupted)),
                (
                    "temps_discarded",
                    Value::UInt(self.recovery.temps_discarded),
                ),
                (
                    "clean_shutdown",
                    Value::UInt(u64::from(self.recovery.clean_shutdown)),
                ),
                ("draining", Value::UInt(u64::from(self.draining()))),
            ]
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
        )
    }

    /// Commits one conclusive verdict and fires the crash hook if armed.
    fn commit(&self, descriptor: &str, verdict: &Verdict) {
        let core = protocol::verdict_core(verdict);
        let json = serde_json::to_string(&core).expect("rendering is total");
        if self.cache.insert(descriptor, &json).is_ok() {
            let committed = self.committed_jobs.fetch_add(1, Ordering::SeqCst) + 1;
            if let Some(limit) = self.config.crash_after_jobs {
                if committed >= limit {
                    // Simulate a power cut: no unwinding, no flush, no
                    // clean marker.  The recovery scan must make this safe.
                    std::process::abort();
                }
            }
        }
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    shared: Arc<Shared>,
    listener: Listener,
    workers: Vec<thread::JoinHandle<()>>,
}

/// What `run` observed, returned after a graceful drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerReport {
    /// What the startup recovery scan found.
    pub recovery: RecoveryStats,
    /// Entries in the cache at shutdown.
    pub cache_entries: usize,
}

impl Server {
    /// Binds the endpoint, opens (and recovers) the cache, and spawns the
    /// job workers.  The server does not accept connections until
    /// [`Server::run`].
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let (cache, recovery) = ResultCache::open(&config.cache_dir)?;
        let listener = Listener::bind(&config.endpoint)?;
        let (tx, rx) = mpsc::sync_channel::<Ticket>(config.queue_capacity.max(1));
        let shared = Arc::new(Shared {
            config,
            cache,
            recovery,
            counters: Counters::default(),
            draining: AtomicBool::new(false),
            drain_cancel: CancelFlag::default(),
            queue: Mutex::new(Some(tx)),
            committed_jobs: AtomicU64::new(0),
            active_handlers: AtomicU64::new(0),
        });
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..shared.config.job_workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&rx);
                thread::spawn(move || worker_loop(&shared, &rx))
            })
            .collect();
        Ok(Server {
            shared,
            listener,
            workers,
        })
    }

    /// What the startup recovery scan found.
    pub fn recovery(&self) -> RecoveryStats {
        self.shared.recovery
    }

    /// The bound TCP address (None for Unix endpoints) — lets tests bind
    /// port 0.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until a `shutdown` request completes the drain.
    pub fn run(self) -> io::Result<ServerReport> {
        let Server {
            shared,
            listener,
            workers,
        } = self;
        listener.set_nonblocking(true)?;
        while !shared.draining() {
            match listener.accept() {
                Ok(conn) => {
                    bump!(shared, accepted);
                    let shared = Arc::clone(&shared);
                    shared.active_handlers.fetch_add(1, Ordering::SeqCst);
                    thread::spawn(move || {
                        handle_connection(&shared, conn);
                        shared.active_handlers.fetch_sub(1, Ordering::SeqCst);
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Drain: stop accepting, let workers finish what was admitted.
        drop(listener);
        #[cfg(unix)]
        if let Endpoint::Unix(path) = &shared.config.endpoint {
            let _ = std::fs::remove_file(path);
        }
        shared.queue.lock().unwrap().take(); // workers exit after the queue empties
        let watchdog = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || {
                thread::sleep(shared.config.drain_grace);
                shared.drain_cancel.store(true, Ordering::SeqCst);
            })
        };
        for worker in workers {
            let _ = worker.join();
        }
        // Handlers still streaming already-computed verdicts get a bounded
        // courtesy window; their sockets have write deadlines anyway.
        let patience = Instant::now();
        while shared.active_handlers.load(Ordering::SeqCst) > 0
            && patience.elapsed() < shared.config.drain_grace + Duration::from_secs(1)
        {
            thread::sleep(Duration::from_millis(5));
        }
        shared.drain_cancel.store(true, Ordering::SeqCst);
        let _ = watchdog.join();
        shared.cache.flush()?;
        Ok(ServerReport {
            recovery: shared.recovery,
            cache_entries: shared.cache.len(),
        })
    }
}

/// One connection: serve requests until the peer closes, errs, or stalls
/// past a deadline.
fn handle_connection(shared: &Shared, mut conn: Box<dyn Conn>) {
    let _ = conn.set_timeouts(
        Some(shared.config.read_timeout),
        Some(shared.config.write_timeout),
    );
    let fault = shared.config.fault;
    let mut read_count = 0u64;
    let mut write_count = 0u64;
    loop {
        let payload = match read_frame(
            &mut conn,
            shared.config.max_frame_len,
            fault.as_ref(),
            &mut read_count,
        ) {
            Ok(p) => p,
            Err(ProtocolError::Closed) => return,
            Err(e) => {
                bump!(shared, protocol_errors);
                // Best-effort parting error; the stream state is unknown,
                // so close regardless.
                let _ = send(
                    &mut conn,
                    &Reply::Error {
                        message: e.to_string(),
                    },
                    fault.as_ref(),
                    &mut write_count,
                );
                return;
            }
        };
        bump!(shared, requests);
        let request = match protocol::decode_request(&payload) {
            Ok(r) => r,
            Err(e) => {
                bump!(shared, protocol_errors);
                let _ = send(
                    &mut conn,
                    &Reply::Error {
                        message: e.to_string(),
                    },
                    fault.as_ref(),
                    &mut write_count,
                );
                continue; // the frame itself was well-delimited; keep going
            }
        };
        let keep_going = match request {
            Request::Ping => {
                send(&mut conn, &Reply::Pong, fault.as_ref(), &mut write_count).is_ok()
            }
            Request::Stats => send(
                &mut conn,
                &Reply::Stats(shared.snapshot()),
                fault.as_ref(),
                &mut write_count,
            )
            .is_ok(),
            Request::Shutdown => {
                let _ = send(
                    &mut conn,
                    &Reply::ShuttingDown,
                    fault.as_ref(),
                    &mut write_count,
                );
                shared.draining.store(true, Ordering::SeqCst);
                false
            }
            Request::Submit(submit) => {
                handle_submit(shared, &mut conn, submit, fault.as_ref(), &mut write_count).is_ok()
            }
        };
        if !keep_going {
            return;
        }
    }
}

fn send(
    conn: &mut Box<dyn Conn>,
    reply: &Reply,
    fault: Option<&FaultPlan>,
    counter: &mut u64,
) -> Result<(), ProtocolError> {
    write_frame(conn, &encode_reply(reply), fault, counter)
}

/// Serves one submit: admission first, then cache hits, then the streamed
/// verdicts of the computed remainder, then `done`.
fn handle_submit(
    shared: &Shared,
    conn: &mut Box<dyn Conn>,
    submit: SubmitRequest,
    fault: Option<&FaultPlan>,
    write_count: &mut u64,
) -> Result<(), ProtocolError> {
    bump!(shared, submits);
    if shared.draining() {
        return send(conn, &Reply::ShuttingDown, fault, write_count);
    }
    // Resolve the catalogue: an empty mutation list checks the clean design.
    let labels: Vec<(String, Option<Mutation>)> = if submit.mutations.is_empty() {
        vec![("clean".to_string(), None)]
    } else {
        submit
            .mutations
            .iter()
            .map(|name| (name.clone(), protocol::mutation_by_name(name)))
            .collect()
    };
    let mut hits: Vec<Verdict> = Vec::new();
    let mut misses: Vec<MissEntry> = Vec::new();
    for (label, mutation) in labels {
        let descriptor = job_descriptor(
            &submit.processor,
            submit.method,
            submit.bound,
            mutation.as_ref().map(|_| label.as_str()),
            submit.simplify,
            submit.aig,
            submit.prove,
        );
        match shared.cache.lookup(&descriptor) {
            Some(json) => {
                let core = serde_json::from_str(&json)
                    .map_err(|e| ProtocolError::Malformed(e.to_string()))?;
                hits.push(protocol::verdict_from_core(&core, true)?);
            }
            None => misses.push(MissEntry {
                label,
                mutation,
                descriptor,
            }),
        }
    }
    bump!(shared, cache_hits, hits.len() as u64);
    bump!(shared, cache_misses, misses.len() as u64);

    // Admission control happens before the first reply frame, so a shed
    // request is *all* Busy, never half a verdict stream.
    let mut worker_rx: Option<Receiver<WorkerMsg>> = None;
    let cancel = CancelFlag::default();
    if !misses.is_empty() {
        let (tx, rx) = mpsc::channel();
        let deadline = submit
            .deadline_ms
            .map(Duration::from_millis)
            .unwrap_or(shared.config.max_deadline)
            .min(shared.config.max_deadline);
        let ticket = Ticket {
            method: submit.method,
            processor: submit.processor.clone(),
            bound: submit.bound,
            simplify: submit.simplify,
            aig: submit.aig,
            conflict_limit: submit.conflict_limit,
            memory_limit: submit.memory_limit.or(shared.config.default_memory_limit),
            deadline,
            batched: submit.batched,
            prove: submit.prove,
            entries: misses,
            cancel: cancel.clone(),
            replies: tx,
        };
        let queue = shared.queue.lock().unwrap();
        match queue.as_ref() {
            None => return send(conn, &Reply::ShuttingDown, fault, write_count),
            Some(sender) => match sender.try_send(ticket) {
                Ok(()) => worker_rx = Some(rx),
                Err(TrySendError::Full(_)) => {
                    bump!(shared, busy_rejections);
                    return send(
                        conn,
                        &Reply::Busy {
                            retry_after_ms: shared.config.busy_retry_after.as_millis() as u64,
                        },
                        fault,
                        write_count,
                    );
                }
                Err(TrySendError::Disconnected(_)) => {
                    return send(conn, &Reply::ShuttingDown, fault, write_count)
                }
            },
        }
    }

    let mut done = DoneStats {
        jobs: hits.len() as u64,
        from_cache: hits.len() as u64,
        ..DoneStats::default()
    };
    let mut stream_dead = false;
    for verdict in hits {
        if send(conn, &Reply::Verdict(verdict), fault, write_count).is_err() {
            stream_dead = true;
            break;
        }
    }
    if let Some(rx) = worker_rx {
        // Keep draining the worker even after a write failure: the channel
        // must empty so the worker never blocks, and the cancel flag stops
        // the engine at its next check.
        for msg in rx {
            match msg {
                WorkerMsg::Verdict(verdict) => {
                    if !stream_dead
                        && send(conn, &Reply::Verdict(verdict), fault, write_count).is_err()
                    {
                        stream_dead = true;
                        cancel.store(true, Ordering::SeqCst);
                        bump!(shared, cancelled_requests);
                    }
                }
                WorkerMsg::Finished(computed) => {
                    done.jobs += computed.jobs;
                    done.computed += computed.computed;
                    done.encodes += computed.encodes;
                    done.witness_validations += computed.witness_validations;
                    done.witness_mismatches += computed.witness_mismatches;
                    done.retries += computed.retries;
                    done.degraded_runs += computed.degraded_runs;
                    done.panics += computed.panics;
                    done.cancelled += computed.cancelled;
                    done.proved += computed.proved;
                    done.proof_mismatches += computed.proof_mismatches;
                }
            }
        }
    }
    bump!(shared, jobs, done.jobs);
    if stream_dead {
        return Err(ProtocolError::Closed);
    }
    send(conn, &Reply::Done(done), fault, write_count)
}

/// Job-worker main loop: pull tickets until the queue closes.
fn worker_loop(shared: &Shared, rx: &Mutex<Receiver<Ticket>>) {
    loop {
        // Holding the lock across `recv` is the standard shared-receiver
        // pattern: exactly one idle worker sleeps in recv at a time.
        let ticket = {
            let guard = rx.lock().unwrap();
            guard.recv()
        };
        match ticket {
            Err(_) => return, // queue sender dropped: drain complete
            Ok(ticket) => run_ticket(shared, ticket),
        }
    }
}

/// Builds the detector configuration for a ticket, budgets applied.
fn ticket_config(shared: &Shared, ticket: &Ticket, remaining: Duration) -> DetectorConfig {
    let mut builder = DetectorConfig::builder()
        .processor(ticket.processor.clone())
        .bound(ticket.bound)
        .simplify(ticket.simplify)
        .aig(ticket.aig)
        .time_limit(remaining)
        .cancel(ticket.cancel.clone())
        .cancel(shared.drain_cancel.clone());
    if let Some(limit) = ticket.conflict_limit {
        builder = builder.conflict_limit(limit);
    }
    if let Some(limit) = ticket.memory_limit {
        builder = builder.memory_limit(limit);
    }
    if let Some(method) = ticket.prove {
        builder = builder.prove(method);
    }
    builder.build()
}

fn stream_verdict(shared: &Shared, ticket: &Ticket, entry: &MissEntry, verdict: Verdict) {
    // Only conclusive verdicts are cached: an inconclusive answer is a
    // budget artefact, not a property of the job.
    if !verdict.inconclusive {
        shared.commit(&entry.descriptor, &verdict);
    }
    let _ = ticket.replies.send(WorkerMsg::Verdict(verdict));
}

/// Runs one admitted request to completion, streaming verdicts and
/// committing each conclusive one before moving on.
fn run_ticket(shared: &Shared, ticket: Ticket) {
    let started = Instant::now();
    let mut computed = DoneStats::default();
    let batched: Vec<&MissEntry> = if ticket.batched {
        ticket
            .entries
            .iter()
            .filter(|e| e.mutation.is_some())
            .collect()
    } else {
        Vec::new()
    };
    if !batched.is_empty() {
        if let Some(delay) = shared.config.job_delay {
            thread::sleep(delay);
        }
        let remaining = ticket.deadline.saturating_sub(started.elapsed());
        let config = ticket_config(shared, &ticket, remaining);
        let detector = BatchedDetector::new(config).with_retry_policy(shared.config.retry);
        let catalogue: Vec<CatalogueEntry> = batched
            .iter()
            .map(|e| CatalogueEntry::new(e.label.clone(), e.mutation.clone().unwrap()))
            .collect();
        let outcome = detector.run(ticket.method, &catalogue);
        for (entry, detection) in batched.iter().zip(&outcome.detections) {
            let verdict = protocol::verdict_from_detection(&entry.label, detection, false);
            stream_verdict(shared, &ticket, entry, verdict);
        }
        computed.jobs += outcome.stats.entries;
        computed.computed += outcome.stats.entries;
        computed.encodes += outcome.stats.encodes;
        computed.witness_validations += outcome.stats.witness_validations;
        computed.witness_mismatches += outcome.stats.witness_mismatches;
        computed.retries += outcome.stats.retries;
        computed.degraded_runs += outcome.stats.degraded_runs;
        computed.panics += outcome.stats.panics;
        computed.cancelled += outcome.stats.cancelled;
        computed.proved += outcome.stats.proved;
        computed.proof_mismatches += outcome.stats.proof_mismatches;
    }
    // Per-entry jobs: everything not covered by the batched group.  One
    // engine run per entry keeps the crash-loss granularity at a single
    // job and lets each verdict stream (and commit) as soon as it exists.
    for entry in ticket
        .entries
        .iter()
        .filter(|e| !ticket.batched || e.mutation.is_none())
    {
        if let Some(delay) = shared.config.job_delay {
            thread::sleep(delay);
        }
        let remaining = ticket.deadline.saturating_sub(started.elapsed());
        let config = ticket_config(shared, &ticket, remaining);
        let engine =
            Engine::new(shared.config.engine_workers).with_retry_policy(shared.config.retry);
        let job = sepe_sqed::DetectionJob::new(
            entry.label.clone(),
            config,
            ticket.method,
            entry.mutation.clone(),
        );
        let outcome = engine.run(vec![job]).expect_jobs();
        let detection = &outcome.detections[0];
        let verdict = protocol::verdict_from_detection(&entry.label, detection, false);
        stream_verdict(shared, &ticket, entry, verdict);
        computed.jobs += 1;
        computed.computed += 1;
        computed.encodes += 1; // one transition-system encoding charged per computed entry
        computed.witness_validations += outcome.stats.witness_validations;
        computed.witness_mismatches += outcome.stats.witness_mismatches;
        computed.retries += outcome.stats.retries;
        computed.degraded_runs += outcome.stats.degraded_runs;
        computed.panics += outcome.stats.panics;
        computed.cancelled += outcome.stats.cancelled;
        computed.proved += u64::from(detection.proved);
        computed.proof_mismatches += u64::from(detection.proof_checked == Some(false));
    }
    let c = &shared.counters;
    c.encodes.fetch_add(computed.encodes, Ordering::Relaxed);
    c.witness_validations
        .fetch_add(computed.witness_validations, Ordering::Relaxed);
    c.witness_mismatches
        .fetch_add(computed.witness_mismatches, Ordering::Relaxed);
    c.retries.fetch_add(computed.retries, Ordering::Relaxed);
    c.degraded_runs
        .fetch_add(computed.degraded_runs, Ordering::Relaxed);
    c.panics.fetch_add(computed.panics, Ordering::Relaxed);
    let _ = ticket.replies.send(WorkerMsg::Finished(computed));
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            #[cfg(unix)]
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}
