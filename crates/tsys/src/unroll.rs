//! Frame unrolling of transition systems.

use std::collections::HashMap;

use sepe_smt::{subst, TermId, TermManager};

use crate::ts::{CoiInfo, TransitionSystem};

/// Unrolls a [`TransitionSystem`] into per-frame copies of its variables.
///
/// Frame `k` has one fresh variable per state variable and per input, named
/// `<original>@<k>`.  The unroller produces the standard BMC constraints:
///
/// * `init`: frame-0 state variables equal their initial values,
/// * `transition(k)`: frame-`k+1` state variables equal the next-state
///   functions evaluated over frame `k`,
/// * `constraint(k)` / `bad(k)`: the invariant constraints and bad-state
///   properties instantiated at frame `k`.
#[derive(Debug)]
pub struct Unroller<'a> {
    ts: &'a TransitionSystem,
    /// frame -> (original var -> frame var)
    frame_maps: Vec<HashMap<TermId, TermId>>,
}

impl<'a> Unroller<'a> {
    /// Creates an unroller for `ts`.
    pub fn new(ts: &'a TransitionSystem) -> Self {
        Unroller {
            ts,
            frame_maps: Vec::new(),
        }
    }

    /// Ensures frame `k` variables exist and returns the substitution map of
    /// that frame.
    ///
    /// The `expect`s below restate an invariant enforced at registration
    /// time: [`TransitionSystem::add_state_var`] and
    /// [`TransitionSystem::add_input`] reject non-variable terms, so every
    /// state var and input reaching here has a name.
    pub fn frame_map(&mut self, tm: &mut TermManager, k: usize) -> &HashMap<TermId, TermId> {
        while self.frame_maps.len() <= k {
            let frame = self.frame_maps.len();
            let mut map = HashMap::new();
            for sv in self.ts.state_vars() {
                let name = tm
                    .var_name(sv.current)
                    .expect("state vars are variables")
                    .to_string();
                let fresh = tm.var(&format!("{name}@{frame}"), tm.sort(sv.current));
                map.insert(sv.current, fresh);
            }
            for &input in self.ts.inputs() {
                let name = tm
                    .var_name(input)
                    .expect("inputs are variables")
                    .to_string();
                let fresh = tm.var(&format!("{name}@{frame}"), tm.sort(input));
                map.insert(input, fresh);
            }
            self.frame_maps.push(map);
        }
        &self.frame_maps[k]
    }

    /// The frame-`k` copy of an original state/input variable.
    pub fn var_at(&mut self, tm: &mut TermManager, original: TermId, k: usize) -> TermId {
        self.frame_map(tm, k)[&original]
    }

    /// Instantiates an arbitrary term (over current-state vars and inputs) at
    /// frame `k`.
    pub fn term_at(&mut self, tm: &mut TermManager, term: TermId, k: usize) -> TermId {
        let map = self.frame_map(tm, k).clone();
        subst::substitute_once(tm, term, &map)
    }

    /// The conjunction of frame-0 initial-state equalities.
    pub fn init(&mut self, tm: &mut TermManager) -> TermId {
        let mut conj = tm.tru();
        let state_vars: Vec<_> = self.ts.state_vars().to_vec();
        for sv in state_vars {
            if let Some(init) = sv.init {
                let lhs = self.var_at(tm, sv.current, 0);
                let rhs = self.term_at(tm, init, 0);
                let eq = tm.eq(lhs, rhs);
                conj = tm.and(conj, eq);
            }
        }
        conj
    }

    /// The transition relation between frame `k` and frame `k + 1`.
    pub fn transition(&mut self, tm: &mut TermManager, k: usize) -> TermId {
        self.transition_filtered(tm, k, |_| true)
    }

    /// The transition relation between frame `k` and frame `k + 1`,
    /// restricted to the state variables that can still reach a bad state
    /// or constraint within `remaining` further transition steps: the
    /// next-state update of a variable whose cone distance exceeds the
    /// remaining depth is dropped before anything is encoded (see
    /// [`TransitionSystem::cone_of_influence`]) — for the last frame of a
    /// bounded check (`remaining == 0`) only the updates of variables
    /// occurring directly in the bad states/constraints survive.
    pub fn transition_within(
        &mut self,
        tm: &mut TermManager,
        k: usize,
        coi: &CoiInfo,
        remaining: usize,
    ) -> TermId {
        self.transition_filtered(tm, k, |v| coi.keeps_within(v, remaining))
    }

    /// The *delta* of [`transition_within`](Self::transition_within) when
    /// the remaining depth of an already-asserted frame grows from
    /// `prev_remaining` to `remaining` (the bound was extended): only the
    /// updates newly inside the per-depth cone, so an incremental solver
    /// can top an old frame up without re-asserting what it already has.
    pub fn transition_refinement(
        &mut self,
        tm: &mut TermManager,
        k: usize,
        coi: &CoiInfo,
        prev_remaining: usize,
        remaining: usize,
    ) -> TermId {
        debug_assert!(prev_remaining < remaining);
        self.transition_filtered(tm, k, |v| {
            !coi.keeps_within(v, prev_remaining) && coi.keeps_within(v, remaining)
        })
    }

    fn transition_filtered(
        &mut self,
        tm: &mut TermManager,
        k: usize,
        keep: impl Fn(TermId) -> bool,
    ) -> TermId {
        let mut conj = tm.tru();
        let state_vars: Vec<_> = self.ts.state_vars().to_vec();
        for sv in state_vars {
            if !keep(sv.current) {
                continue;
            }
            let lhs = self.var_at(tm, sv.current, k + 1);
            let rhs = self.term_at(tm, sv.next, k);
            let eq = tm.eq(lhs, rhs);
            conj = tm.and(conj, eq);
        }
        conj
    }

    /// The conjunction of invariant constraints at frame `k`.
    pub fn constraints_at(&mut self, tm: &mut TermManager, k: usize) -> TermId {
        let cs: Vec<_> = self.ts.constraints().to_vec();
        let mut conj = tm.tru();
        for c in cs {
            let at = self.term_at(tm, c, k);
            conj = tm.and(conj, at);
        }
        conj
    }

    /// The disjunction of bad-state properties at frame `k`.
    pub fn bad_at(&mut self, tm: &mut TermManager, k: usize) -> TermId {
        let bads: Vec<_> = self.ts.bad_states().to_vec();
        let mut disj = tm.fls();
        for b in bads {
            let at = self.term_at(tm, b, k);
            disj = tm.or(disj, at);
        }
        disj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepe_smt::{SatResult, Solver, Sort};

    #[test]
    fn frames_get_distinct_variables() {
        let mut tm = TermManager::new();
        let c = tm.var("c", Sort::BitVec(4));
        let one = tm.one(4);
        let next = tm.bv_add(c, one);
        let mut ts = TransitionSystem::new();
        ts.add_state_var(&tm, c, None, next);
        let mut unroller = Unroller::new(&ts);
        let c0 = unroller.var_at(&mut tm, c, 0);
        let c1 = unroller.var_at(&mut tm, c, 1);
        assert_ne!(c0, c1);
        assert_eq!(tm.var_name(c0), Some("c@0"));
        assert_eq!(tm.var_name(c1), Some("c@1"));
        // asking again returns the same frame variable
        assert_eq!(unroller.var_at(&mut tm, c, 0), c0);
    }

    #[test]
    fn transition_encodes_the_next_function() {
        let mut tm = TermManager::new();
        let c = tm.var("c", Sort::BitVec(8));
        let one = tm.one(8);
        let next = tm.bv_add(c, one);
        let zero = tm.zero(8);
        let mut ts = TransitionSystem::new();
        ts.add_state_var(&tm, c, Some(zero), next);
        let mut unroller = Unroller::new(&ts);
        let init = unroller.init(&mut tm);
        let t01 = unroller.transition(&mut tm, 0);
        let t12 = unroller.transition(&mut tm, 1);
        let c2 = unroller.var_at(&mut tm, c, 2);
        let two = tm.bv_const(2, 8);
        let goal = tm.neq(c2, two);
        let mut solver = Solver::new();
        for t in [init, t01, t12, goal] {
            solver.assert_term(&tm, t);
        }
        // after two increments from 0 the counter must be 2, so asking for a
        // different value is unsatisfiable
        assert_eq!(solver.check(&mut tm), SatResult::Unsat);
    }
}
