//! The bounded model checker.

use std::time::{Duration, Instant};

use sepe_smt::concrete::{self, Assignment};
use sepe_smt::{
    CancelFlag, FaultHooks, IncrementalSolver, Model, SatResult, Solver, SolverReuseStats,
    StopReason, TermId, TermManager,
};

use crate::prove::ProofMethod;
use crate::ts::{CoiInfo, TransitionSystem};
use crate::unroll::Unroller;
use crate::witness::{Frame, Witness};

/// How the checker explores depths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BmcMode {
    /// One SAT query per depth on a single persistent [`IncrementalSolver`]:
    /// the unrolling is asserted once and grows monotonically, each depth's
    /// bad state rides along as a retractable assumption, and learnt clauses
    /// carry over between depths.  The first counterexample found is a
    /// shortest one.
    #[default]
    PerDepth,
    /// One SAT query per depth, each on a fresh scratch solver that
    /// re-encodes the whole unrolling prefix (the pre-incremental behavior,
    /// kept for differential testing and benchmarking against
    /// [`BmcMode::PerDepth`]).
    PerDepthScratch,
    /// A single SAT query at the maximum bound with the bad states of every
    /// depth disjoined.  Usually much faster when a counterexample exists;
    /// the returned witness is truncated to the earliest violating frame of
    /// the model that was found.  Note this does not guarantee a *globally*
    /// shortest counterexample — the solver returns an arbitrary model, and
    /// a different model may violate earlier; use [`BmcMode::PerDepth`] when
    /// minimal trace lengths matter.
    Cumulative,
    /// [`BmcMode::Cumulative`] on one persistent [`IncrementalSolver`] owned
    /// by the [`Bmc`] instance: each [`check`](Bmc::check) call asserts only
    /// the transition frames not yet asserted by earlier calls and issues a
    /// single query with the bad-state disjunct of the not-yet-proven depths
    /// as a *retractable* assumption.  Calling `check` repeatedly with a
    /// growing `max_bound` therefore extends one solver across the whole
    /// sweep — depths proven unreachable are never re-checked, learnt
    /// clauses carry over, and the periodic learnt-database reduction keeps
    /// the long-lived solver's memory bounded.  Like `Cumulative`, the
    /// witness is truncated to the earliest violating frame of the model but
    /// is not guaranteed globally shortest.  Every `check` call must receive
    /// the same `TermManager` and `TransitionSystem`; call
    /// [`Bmc::reset`] to start over on a different system.
    CumulativeIncremental,
}

/// Configuration of a BMC run.
#[derive(Debug, Clone)]
pub struct BmcConfig {
    /// Conflict budget per SAT call (`None` = unlimited).
    pub conflict_limit: Option<u64>,
    /// Wall-clock budget for the whole run (`None` = unlimited).  When the
    /// budget is exhausted the check returns [`BmcResult::Unknown`]; the
    /// budget also interrupts in-flight SAT calls (checked every few
    /// conflicts), so a run overshoots it only by a short burst.
    pub time_limit: Option<Duration>,
    /// First depth to check (0 checks the initial state itself).
    pub start_bound: usize,
    /// Depth-exploration strategy.
    pub mode: BmcMode,
    /// Word-level preprocessing (on by default): the solvers run the
    /// `sepe_smt` rewriting pass ahead of bit-blasting, and the unrolling
    /// drops next-state updates outside the cone of influence of the
    /// bad-state properties before frames are asserted
    /// ([`TransitionSystem::cone_of_influence`]).  Witnesses are identical
    /// either way — dropped state variables are reconstructed by forward
    /// evaluation.  [`BmcMode::PerDepthScratch`] honors the flag for the
    /// rewriting pass but never applies the cone-of-influence reduction, so
    /// it stays a faithful differential baseline for the unrolling itself.
    pub simplify: bool,
    /// Gate-level AIG reductions in the solvers (on by default): structural
    /// hashing, local rewriting and polarity-aware Tseitin below the word
    /// level.  Off is the direct-blasting baseline of the `aig_off`
    /// differential/bench arms.  Orthogonal to
    /// [`simplify`](BmcConfig::simplify), which governs the word-level pass
    /// and the cone-of-influence reduction.
    pub aig: bool,
    /// When set, decays the persistent SAT branching activity of every
    /// pre-existing CNF variable by this factor (in `(0, 1]`) each time
    /// [`BmcMode::CumulativeIncremental`] extends the unrolling by new
    /// frames, re-centring VSIDS on the newest frame's variables.  `None`
    /// (default) leaves activities untouched.
    pub frame_rescore: Option<f64>,
    /// Shared cancellation flags (default empty).  *Any* raised flag makes
    /// an in-flight SAT search abort within a short burst of conflicts and
    /// the check return [`BmcResult::Unknown`] with
    /// [`StopReason::Cancelled`]; the flags are also polled between depths.
    /// Independent cancellation sources chain by each pushing their own flag
    /// — a caller's flag and the parallel engine's batch flag coexist
    /// instead of replacing each other (see `sepe_sqed::parallel`).
    pub cancel: Vec<CancelFlag>,
    /// Caps the estimated clause-arena + watcher bytes of each SAT solver
    /// (`None` = unlimited); a query whose estimate exceeds the cap returns
    /// [`BmcResult::Unknown`] with [`StopReason::MemoryBudget`] instead of
    /// growing without bound.
    pub memory_limit: Option<usize>,
    /// Deterministic fault injection (default: no faults).  Test-only
    /// machinery for exercising the failure paths above without wall-clock
    /// coupling; see [`BmcFaultPlan`].
    pub fault: BmcFaultPlan,
}

/// Deterministic fault injection for a BMC run: which failure to force and
/// exactly where.  Everything here is counter-indexed (conflicts, depths),
/// never wall-clock, so an injected failure reproduces bit-identically on
/// any machine.  The default plan injects nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BmcFaultPlan {
    /// Hooks armed on every SAT solver the run constructs: forced panic or
    /// faked memory-cap breach at the k-th conflict (see
    /// [`FaultHooks`]).
    pub sat: FaultHooks,
    /// Acts as a raised cancellation flag at the between-depths poll of the
    /// given depth: the per-depth modes trip when about to query exactly
    /// this depth, the cumulative modes when their single query covers it.
    pub cancel_at_depth: Option<usize>,
}

impl BmcFaultPlan {
    /// Whether the plan injects nothing (the default).
    pub fn is_empty(&self) -> bool {
        *self == BmcFaultPlan::default()
    }
}

impl Default for BmcConfig {
    fn default() -> Self {
        BmcConfig {
            conflict_limit: None,
            time_limit: None,
            start_bound: 0,
            mode: BmcMode::PerDepth,
            simplify: true,
            aig: true,
            frame_rescore: None,
            cancel: Vec::new(),
            memory_limit: None,
            fault: BmcFaultPlan::default(),
        }
    }
}

impl BmcConfig {
    /// Starts a builder over the default configuration.  The struct fields
    /// stay public — the builder is sugar for the common
    /// construct-and-override flow, not a new representation:
    ///
    /// ```
    /// use sepe_tsys::{BmcConfig, BmcMode};
    /// let config = BmcConfig::builder()
    ///     .mode(BmcMode::PerDepth)
    ///     .conflict_limit(100_000)
    ///     .aig(false)
    ///     .build();
    /// assert!(config.simplify);
    /// ```
    pub fn builder() -> BmcConfigBuilder {
        BmcConfigBuilder {
            config: BmcConfig::default(),
        }
    }
}

/// Builder for [`BmcConfig`]; see [`BmcConfig::builder`].
#[derive(Debug, Clone, Default)]
pub struct BmcConfigBuilder {
    config: BmcConfig,
}

impl BmcConfigBuilder {
    /// Conflict budget per SAT call.
    pub fn conflict_limit(mut self, limit: u64) -> Self {
        self.config.conflict_limit = Some(limit);
        self
    }

    /// Wall-clock budget for the whole run.
    pub fn time_limit(mut self, limit: Duration) -> Self {
        self.config.time_limit = Some(limit);
        self
    }

    /// First depth to check.
    pub fn start_bound(mut self, bound: usize) -> Self {
        self.config.start_bound = bound;
        self
    }

    /// Depth-exploration strategy.
    pub fn mode(mut self, mode: BmcMode) -> Self {
        self.config.mode = mode;
        self
    }

    /// Word-level preprocessing on or off.
    pub fn simplify(mut self, on: bool) -> Self {
        self.config.simplify = on;
        self
    }

    /// Gate-level AIG reductions on or off.
    pub fn aig(mut self, on: bool) -> Self {
        self.config.aig = on;
        self
    }

    /// VSIDS re-centring factor applied when the cumulative-incremental
    /// unrolling grows.
    pub fn frame_rescore(mut self, factor: f64) -> Self {
        self.config.frame_rescore = Some(factor);
        self
    }

    /// Chains one more cancellation flag (never replaces existing ones).
    pub fn cancel(mut self, flag: CancelFlag) -> Self {
        self.config.cancel.push(flag);
        self
    }

    /// Caps the estimated SAT memory per solver.
    pub fn memory_limit(mut self, bytes: usize) -> Self {
        self.config.memory_limit = Some(bytes);
        self
    }

    /// Arms a deterministic fault plan.
    pub fn fault(mut self, fault: BmcFaultPlan) -> Self {
        self.config.fault = fault;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> BmcConfig {
        self.config
    }
}

/// Per-query solver-work deltas: what one depth's query added and cost on
/// top of the previous one.
///
/// The cumulative counters in [`BmcStats`]/[`SolverReuseStats`] only say
/// what a whole sweep cost; the per-depth deltas are what make the effect of
/// learnt-clause reduction readable off a bench run (per-depth conflicts
/// stay flat instead of ballooning with the retained database).
#[derive(Debug, Clone, Copy, Default)]
pub struct DepthStats {
    /// The bound this query checked.
    pub bound: usize,
    /// SAT conflicts of this query alone.
    pub conflicts: u64,
    /// CNF clauses newly encoded for this query.
    pub clauses_added: u64,
    /// Learnt clauses retained when this query returned.
    pub learnt_retained: u64,
    /// Wall-clock time of this query alone.
    pub duration: Duration,
}

/// Statistics of a BMC run.
#[derive(Debug, Clone, Default)]
pub struct BmcStats {
    /// Number of SAT queries issued.
    pub queries: u64,
    /// Total SAT conflicts over all queries.
    pub conflicts: u64,
    /// Total wall-clock time.
    pub duration: Duration,
    /// Deepest bound that was fully checked (or at which a counterexample was
    /// found).
    pub deepest_bound: usize,
    /// Solver-reuse counters (term encodings cached/reused, word-level
    /// rewriting and cone-of-influence work, learnt clauses retained across
    /// depths, learnt-database reduction work).  In
    /// [`BmcMode::PerDepthScratch`] and [`BmcMode::Cumulative`], which build
    /// fresh solvers, only the rewrite/cone counters are populated.
    pub solver: SolverReuseStats,
    /// Per-query deltas, one entry per SAT query in issue order (one per
    /// depth in the per-depth modes, a single entry in the cumulative
    /// modes).
    pub depths: Vec<DepthStats>,
}

/// Outcome of a model-checking run.
///
/// Bounded runs ([`Bmc::check`]) produce the first three variants; the
/// unbounded provers ([`KInduction`](crate::KInduction), [`Pdr`](crate::Pdr))
/// additionally produce [`BmcResult::Proved`] when they certify the bad
/// states unreachable at *every* depth, not just within the bound.
#[derive(Debug, Clone)]
pub enum BmcResult {
    /// A counterexample reaching a bad state was found.
    Counterexample(Witness),
    /// No bad state is reachable within the bound.
    NoCounterexample {
        /// The bound that was exhaustively checked.
        bound: usize,
    },
    /// No bad state is reachable at any depth — an unbounded proof.
    Proved {
        /// Which prover closed the proof.
        method: ProofMethod,
        /// The proof's depth parameter: the induction depth `k`, or the
        /// PDR frame index at which the reachability frames converged.
        depth: usize,
    },
    /// The run stopped without a verdict at the given bound.
    Unknown {
        /// The bound being checked when the run stopped.
        bound: usize,
        /// Which budget ran out or which interruption fired — the previously
        /// indistinguishable give-ups, classified (see [`StopReason`]).
        reason: StopReason,
    },
}

impl BmcResult {
    /// Whether a counterexample was found.
    pub fn is_counterexample(&self) -> bool {
        matches!(self, BmcResult::Counterexample(_))
    }

    /// Whether an unbounded proof was closed.
    pub fn is_proved(&self) -> bool {
        matches!(self, BmcResult::Proved { .. })
    }

    /// The witness, if a counterexample was found.
    pub fn witness(&self) -> Option<&Witness> {
        match self {
            BmcResult::Counterexample(w) => Some(w),
            _ => None,
        }
    }
}

/// Persistent solver state of [`BmcMode::CumulativeIncremental`], carried
/// across [`Bmc::check`] calls.
#[derive(Debug, Clone)]
struct CumulativeState {
    solver: IncrementalSolver,
    /// Per asserted frame, the remaining depth its next-state updates are
    /// topped up to (`levels.len()` frames asserted so far).
    levels: Vec<usize>,
    /// Shallowest depth whose bad state has not been proven unreachable yet.
    next_unproven: usize,
    /// Next-state updates dropped by the cone-of-influence pass at the
    /// current frame levels.
    coi_dropped: u64,
}

/// The bounded model checker.
#[derive(Debug, Clone, Default)]
pub struct Bmc {
    config: BmcConfig,
    stats: BmcStats,
    /// Solver state persisted across `check` calls in
    /// [`BmcMode::CumulativeIncremental`]; `None` in every other mode.
    cumulative: Option<CumulativeState>,
}

impl Bmc {
    /// Creates a checker with the given configuration.
    pub fn new(config: BmcConfig) -> Self {
        Bmc {
            config,
            stats: BmcStats::default(),
            cumulative: None,
        }
    }

    /// Statistics of the most recent [`check`](Self::check) call.
    pub fn stats(&self) -> BmcStats {
        self.stats.clone()
    }

    /// Whether any configured shared cancellation flag has been raised.
    fn cancelled(&self) -> bool {
        self.config
            .cancel
            .iter()
            .any(|c| c.load(std::sync::atomic::Ordering::Relaxed))
    }

    /// Drops the persistent solver state of
    /// [`BmcMode::CumulativeIncremental`], so the next
    /// [`check`](Self::check) starts from scratch (required before reusing
    /// the checker on a different transition system or term manager).
    pub fn reset(&mut self) {
        self.cumulative = None;
    }

    /// Checks whether any bad state of `ts` is reachable within `max_bound`
    /// transition steps, searching depth by depth so that the first
    /// counterexample found is a shortest one.
    pub fn check(
        &mut self,
        tm: &mut TermManager,
        ts: &TransitionSystem,
        max_bound: usize,
    ) -> BmcResult {
        match self.config.mode {
            BmcMode::PerDepth => self.check_per_depth(tm, ts, max_bound),
            BmcMode::PerDepthScratch => self.check_per_depth_scratch(tm, ts, max_bound),
            BmcMode::Cumulative => self.check_cumulative(tm, ts, max_bound),
            BmcMode::CumulativeIncremental => self.check_cumulative_incremental(tm, ts, max_bound),
        }
    }

    /// Per-depth exploration on one persistent incremental solver: the
    /// unrolling prefix is asserted exactly once (each depth adds only the
    /// new frame's transition and constraints), the depth's bad state is a
    /// retractable assumption, and all SAT-level learning carries over.
    fn check_per_depth(
        &mut self,
        tm: &mut TermManager,
        ts: &TransitionSystem,
        max_bound: usize,
    ) -> BmcResult {
        let start = Instant::now();
        self.stats = BmcStats::default();
        let mut unroller = Unroller::new(ts);
        let coi = self.config.simplify.then(|| ts.cone_of_influence(tm));

        let mut solver = IncrementalSolver::new();
        solver.set_aig(self.config.aig);
        solver.set_simplify(self.config.simplify);
        solver.set_conflict_limit(self.config.conflict_limit);
        solver.set_deadline(self.config.time_limit.map(|limit| start + limit));
        solver.set_cancel_flags(self.config.cancel.clone());
        solver.set_memory_limit(self.config.memory_limit);
        solver.set_fault_hooks(self.config.fault.sat);
        let init = unroller.init(tm);
        solver.assert_term(tm, init);
        let c0 = unroller.constraints_at(tm, 0);
        solver.assert_term(tm, c0);
        // Per asserted frame, the remaining depth it is topped up to.
        let mut levels: Vec<usize> = Vec::new();

        for bound in self.config.start_bound..=max_bound {
            for t in extend_unrolling(tm, &mut unroller, coi.as_ref(), &mut levels, bound) {
                solver.assert_term(tm, t);
            }
            let coi_dropped = coi_dropped_total(coi.as_ref(), &levels);
            let budget_gone = self
                .config
                .time_limit
                .is_some_and(|limit| start.elapsed() > limit);
            let fault_cancel = self.config.fault.cancel_at_depth == Some(bound);
            if budget_gone || fault_cancel || self.cancelled() {
                self.stats.solver = solver.stats();
                self.stats.solver.encode.rewrite.coi_dropped_updates = coi_dropped;
                self.stats.duration = start.elapsed();
                let reason = if budget_gone {
                    StopReason::Deadline
                } else {
                    StopReason::Cancelled
                };
                return BmcResult::Unknown { bound, reason };
            }
            let bad = unroller.bad_at(tm, bound);
            let result = solver.check_assuming(tm, &[bad]);
            self.stats.queries += 1;
            let mut sstats = solver.stats();
            sstats.encode.rewrite.coi_dropped_updates = coi_dropped;
            self.stats.conflicts = sstats.conflicts;
            self.stats.solver = sstats;
            self.stats.deepest_bound = bound;
            self.stats.depths.push(DepthStats {
                bound,
                conflicts: sstats.conflicts_last_check,
                clauses_added: sstats.clauses_last_check,
                learnt_retained: sstats.learnt_retained,
                duration: sstats.duration_last_check,
            });
            match result {
                SatResult::Sat => {
                    let model = solver.model(tm).clone();
                    let witness =
                        extract_witness(tm, ts, &mut unroller, &model, bound, coi.as_ref());
                    self.stats.duration = start.elapsed();
                    return BmcResult::Counterexample(witness);
                }
                SatResult::Unsat => {}
                SatResult::Unknown => {
                    self.stats.duration = start.elapsed();
                    let reason = solver.stop_reason().unwrap_or(StopReason::ConflictBudget);
                    return BmcResult::Unknown { bound, reason };
                }
            }
        }
        self.stats.duration = start.elapsed();
        BmcResult::NoCounterexample { bound: max_bound }
    }

    /// Per-depth exploration with a fresh scratch solver per depth — the
    /// pre-incremental code path, kept as the differential-testing and
    /// benchmarking baseline for [`Self::check_per_depth`].
    fn check_per_depth_scratch(
        &mut self,
        tm: &mut TermManager,
        ts: &TransitionSystem,
        max_bound: usize,
    ) -> BmcResult {
        let start = Instant::now();
        self.stats = BmcStats::default();
        let mut unroller = Unroller::new(ts);

        // Path constraints accumulated across depths so that each depth only
        // adds the new frame's transition and constraints.
        let mut path: Vec<sepe_smt::TermId> = vec![unroller.init(tm)];
        path.push(unroller.constraints_at(tm, 0));

        for bound in self.config.start_bound..=max_bound {
            while path.len() < bound + 2 {
                // path[k+1] covers transition k->k+1 plus constraints at k+1
                let k = path.len() - 2;
                let tr = unroller.transition(tm, k);
                let cs = unroller.constraints_at(tm, k + 1);
                let both = tm.and(tr, cs);
                path.push(both);
            }
            let budget_gone = self
                .config
                .time_limit
                .is_some_and(|limit| start.elapsed() > limit);
            let fault_cancel = self.config.fault.cancel_at_depth == Some(bound);
            if budget_gone || fault_cancel || self.cancelled() {
                self.stats.duration = start.elapsed();
                let reason = if budget_gone {
                    StopReason::Deadline
                } else {
                    StopReason::Cancelled
                };
                return BmcResult::Unknown { bound, reason };
            }
            let bad = unroller.bad_at(tm, bound);
            let query_start = Instant::now();
            let mut solver = Solver::new();
            solver.set_aig(self.config.aig);
            solver.set_simplify(self.config.simplify);
            solver.set_conflict_limit(self.config.conflict_limit);
            solver.set_deadline(self.config.time_limit.map(|limit| start + limit));
            solver.set_cancel_flags(self.config.cancel.clone());
            solver.set_memory_limit(self.config.memory_limit);
            solver.set_fault_hooks(self.config.fault.sat);
            for &p in path.iter().take(bound + 2) {
                solver.assert_term(tm, p);
            }
            solver.assert_term(tm, bad);
            let result = solver.check(tm);
            self.stats.queries += 1;
            self.stats.conflicts += solver.stats().conflicts;
            // A scratch solver re-encodes the whole prefix per depth; sum
            // the emissions so the sweep's total encoding cost is readable.
            self.stats
                .solver
                .encode
                .rewrite
                .absorb(&solver.stats().rewrite);
            self.stats.solver.encode.aig.absorb(&solver.stats().aig);
            self.stats.solver.cnf_vars += solver.stats().cnf_vars;
            self.stats.solver.cnf_clauses += solver.stats().cnf_clauses;
            self.stats.deepest_bound = bound;
            self.stats.depths.push(DepthStats {
                bound,
                conflicts: solver.stats().conflicts,
                clauses_added: 0, // a scratch solver re-encodes everything
                learnt_retained: 0,
                duration: query_start.elapsed(),
            });
            match result {
                SatResult::Sat => {
                    let model = solver.model(tm).clone();
                    let witness = extract_witness(tm, ts, &mut unroller, &model, bound, None);
                    self.stats.duration = start.elapsed();
                    return BmcResult::Counterexample(witness);
                }
                SatResult::Unsat => {}
                SatResult::Unknown => {
                    self.stats.duration = start.elapsed();
                    let reason = solver.stop_reason().unwrap_or(StopReason::ConflictBudget);
                    return BmcResult::Unknown { bound, reason };
                }
            }
        }
        self.stats.duration = start.elapsed();
        BmcResult::NoCounterexample { bound: max_bound }
    }

    fn check_cumulative(
        &mut self,
        tm: &mut TermManager,
        ts: &TransitionSystem,
        max_bound: usize,
    ) -> BmcResult {
        let start = Instant::now();
        self.stats = BmcStats::default();
        let mut unroller = Unroller::new(ts);
        let coi = self.config.simplify.then(|| ts.cone_of_influence(tm));

        let mut solver = Solver::new();
        solver.set_aig(self.config.aig);
        solver.set_simplify(self.config.simplify);
        solver.set_conflict_limit(self.config.conflict_limit);
        solver.set_deadline(self.config.time_limit.map(|limit| start + limit));
        solver.set_cancel_flags(self.config.cancel.clone());
        solver.set_memory_limit(self.config.memory_limit);
        solver.set_fault_hooks(self.config.fault.sat);
        let init = unroller.init(tm);
        solver.assert_term(tm, init);
        let c0 = unroller.constraints_at(tm, 0);
        solver.assert_term(tm, c0);
        let mut bads = Vec::new();
        let mut levels: Vec<usize> = Vec::new();
        for t in extend_unrolling(tm, &mut unroller, coi.as_ref(), &mut levels, max_bound) {
            solver.assert_term(tm, t);
        }
        let coi_dropped = coi_dropped_total(coi.as_ref(), &levels);
        let mut any_bad = tm.fls();
        for k in self.config.start_bound..=max_bound {
            let bad = unroller.bad_at(tm, k);
            bads.push((k, bad));
            any_bad = tm.or(any_bad, bad);
        }
        solver.assert_term(tm, any_bad);
        if self
            .config
            .fault
            .cancel_at_depth
            .is_some_and(|d| d <= max_bound)
        {
            // The single query covers this depth: act as a raised flag at
            // the pre-query poll, like the per-depth modes do.
            self.stats.duration = start.elapsed();
            return BmcResult::Unknown {
                bound: max_bound,
                reason: StopReason::Cancelled,
            };
        }
        let outcome = solver.check(tm);
        self.stats.queries = 1;
        self.stats.conflicts = solver.stats().conflicts;
        self.stats.deepest_bound = max_bound;
        self.stats.solver.encode.rewrite = solver.stats().rewrite;
        self.stats.solver.encode.rewrite.coi_dropped_updates = coi_dropped;
        self.stats.solver.encode.aig = solver.stats().aig;
        self.stats.solver.cnf_vars = solver.stats().cnf_vars;
        self.stats.solver.cnf_clauses = solver.stats().cnf_clauses;
        self.stats.depths.push(DepthStats {
            bound: max_bound,
            conflicts: solver.stats().conflicts,
            clauses_added: 0,
            learnt_retained: 0,
            duration: start.elapsed(),
        });
        let result = match outcome {
            SatResult::Sat => {
                let model = solver.model(tm).clone();
                // the earliest violated depth gives the counterexample length
                let violated = bads
                    .iter()
                    .find(|(_, bad)| model.eval(tm, *bad) == 1)
                    .map(|(k, _)| *k)
                    .unwrap_or(max_bound);
                self.stats.deepest_bound = violated;
                let witness =
                    extract_witness(tm, ts, &mut unroller, &model, violated, coi.as_ref());
                BmcResult::Counterexample(witness)
            }
            SatResult::Unsat => BmcResult::NoCounterexample { bound: max_bound },
            SatResult::Unknown => BmcResult::Unknown {
                bound: max_bound,
                reason: solver.stop_reason().unwrap_or(StopReason::ConflictBudget),
            },
        };
        self.stats.duration = start.elapsed();
        result
    }

    /// Cumulative exploration on the persistent solver owned by this `Bmc`:
    /// only the transition frames beyond what earlier calls asserted are
    /// encoded, the bad-state disjunct over the not-yet-proven depths rides
    /// along as a retractable assumption, and a proven `max_bound` is
    /// remembered so a later, deeper call checks only the new depths.
    fn check_cumulative_incremental(
        &mut self,
        tm: &mut TermManager,
        ts: &TransitionSystem,
        max_bound: usize,
    ) -> BmcResult {
        let start = Instant::now();
        self.stats = BmcStats::default();
        let mut unroller = Unroller::new(ts);
        let coi = self.config.simplify.then(|| ts.cone_of_influence(tm));

        if self.cumulative.is_none() {
            let mut solver = IncrementalSolver::new();
            solver.set_aig(self.config.aig);
            solver.set_simplify(self.config.simplify);
            let init = unroller.init(tm);
            solver.assert_term(tm, init);
            let c0 = unroller.constraints_at(tm, 0);
            solver.assert_term(tm, c0);
            self.cumulative = Some(CumulativeState {
                solver,
                levels: Vec::new(),
                next_unproven: self.config.start_bound,
                coi_dropped: 0,
            });
        }
        let state = self.cumulative.as_mut().expect("state initialized above");
        let solver = &mut state.solver;
        solver.set_conflict_limit(self.config.conflict_limit);
        solver.set_deadline(self.config.time_limit.map(|limit| start + limit));
        solver.set_cancel_flags(self.config.cancel.clone());
        solver.set_memory_limit(self.config.memory_limit);
        solver.set_fault_hooks(self.config.fault.sat);

        let var_watermark = solver.num_cnf_vars();
        let frames_before = state.levels.len();
        for t in extend_unrolling(
            tm,
            &mut unroller,
            coi.as_ref(),
            &mut state.levels,
            max_bound,
        ) {
            solver.assert_term(tm, t);
        }
        state.coi_dropped = coi_dropped_total(coi.as_ref(), &state.levels);
        if let Some(factor) = self.config.frame_rescore {
            // The unrolling grew: decay the branching activity accumulated
            // on the old frames so VSIDS re-centres on the new ones.
            if state.levels.len() > frames_before && var_watermark > 0 {
                solver.rescale_activities_before(var_watermark, factor);
            }
        }
        self.stats.deepest_bound = max_bound;
        if state.next_unproven > max_bound {
            // Every depth up to max_bound was proven unreachable by an
            // earlier call on this solver.
            self.stats.solver = solver.stats();
            self.stats.solver.encode.rewrite.coi_dropped_updates = state.coi_dropped;
            self.stats.duration = start.elapsed();
            return BmcResult::NoCounterexample { bound: max_bound };
        }

        // One query: the disjunction of the unproven depths' bad states as a
        // retractable assumption (a deeper follow-up call assumes a fresh
        // disjunct, so nothing about the bads is asserted permanently).
        let mut bads = Vec::new();
        let mut any_bad = tm.fls();
        for k in state.next_unproven..=max_bound {
            let bad = unroller.bad_at(tm, k);
            bads.push((k, bad));
            any_bad = tm.or(any_bad, bad);
        }
        if self
            .config
            .fault
            .cancel_at_depth
            .is_some_and(|d| d <= max_bound)
        {
            // The single query covers this depth: act as a raised flag at
            // the pre-query poll, like the per-depth modes do.
            self.stats.duration = start.elapsed();
            return BmcResult::Unknown {
                bound: max_bound,
                reason: StopReason::Cancelled,
            };
        }
        let outcome = solver.check_assuming(tm, &[any_bad]);
        let mut sstats = solver.stats();
        sstats.encode.rewrite.coi_dropped_updates = state.coi_dropped;
        self.stats.queries = 1;
        self.stats.conflicts = sstats.conflicts;
        self.stats.solver = sstats;
        self.stats.depths.push(DepthStats {
            bound: max_bound,
            conflicts: sstats.conflicts_last_check,
            clauses_added: sstats.clauses_last_check,
            learnt_retained: sstats.learnt_retained,
            duration: sstats.duration_last_check,
        });
        let result = match outcome {
            SatResult::Sat => {
                let model = solver.model(tm).clone();
                let violated = bads
                    .iter()
                    .find(|(_, bad)| model.eval(tm, *bad) == 1)
                    .map(|(k, _)| *k)
                    .unwrap_or(max_bound);
                self.stats.deepest_bound = violated;
                let witness =
                    extract_witness(tm, ts, &mut unroller, &model, violated, coi.as_ref());
                BmcResult::Counterexample(witness)
            }
            SatResult::Unsat => {
                state.next_unproven = max_bound + 1;
                BmcResult::NoCounterexample { bound: max_bound }
            }
            SatResult::Unknown => BmcResult::Unknown {
                bound: max_bound,
                reason: solver.stop_reason().unwrap_or(StopReason::ConflictBudget),
            },
        };
        self.stats.duration = start.elapsed();
        result
    }
}

/// Extends the asserted unrolling so that frames `0..bound` cover the
/// per-depth cone of influence at that bound: the update into frame `k + 1`
/// is needed only for variables within `bound - k - 1` remaining transition
/// steps of a bad state or constraint ([`CoiInfo::keeps_within`]).  New
/// frames contribute their depth-restricted transition plus the next
/// frame's constraints; frames asserted by an earlier, shallower bound
/// contribute only the refinement delta for the levels they gained
/// ([`Unroller::transition_refinement`]), so an incremental solver never
/// re-asserts what it already has.  `levels[k]` tracks the remaining depth
/// frame `k` is topped up to.  Without a cone (`coi == None`, preprocessing
/// off) frames are asserted whole, once.  Returns the terms to assert, in
/// order — one definition of the frame dispatch for all BMC modes.
pub(crate) fn extend_unrolling(
    tm: &mut TermManager,
    unroller: &mut Unroller<'_>,
    coi: Option<&CoiInfo>,
    levels: &mut Vec<usize>,
    bound: usize,
) -> Vec<TermId> {
    let mut out = Vec::new();
    for k in 0..bound {
        // The per-frame cone saturates at the largest finite distance:
        // capping here makes old frames' levels converge, so deep sweeps
        // skip them instead of re-filtering every variable per bound.
        let required = match coi {
            Some(coi) => (bound - k - 1).min(coi.max_dist()),
            None => 0, // whole frames are asserted once, never refined
        };
        if k >= levels.len() {
            let tr = match coi {
                Some(coi) => unroller.transition_within(tm, k, coi, required),
                None => unroller.transition(tm, k),
            };
            out.push(tr);
            out.push(unroller.constraints_at(tm, k + 1));
            levels.push(required);
        } else if levels[k] < required {
            if let Some(coi) = coi {
                out.push(unroller.transition_refinement(tm, k, coi, levels[k], required));
            }
            levels[k] = required;
        }
    }
    out
}

/// Total next-state updates dropped across the asserted frames at their
/// current refinement levels.
pub(crate) fn coi_dropped_total(coi: Option<&CoiInfo>, levels: &[usize]) -> u64 {
    match coi {
        Some(coi) => levels.iter().map(|&r| coi.dropped_within(r) as u64).sum(),
        None => 0,
    }
}

/// Reads the counterexample trace out of a model.
///
/// When a cone-of-influence reduction was active, dropped state variables
/// have no encoded frame copies — statically dropped ones beyond frame 0,
/// per-depth dropped ones in the frames whose remaining depth was below
/// their cone distance.  Their values are reconstructed by evaluating their
/// next-state functions forward over the (progressively extended)
/// assignment, so the witness is complete and consistent with a concrete
/// replay either way.  Variables the solver did encode (e.g. because the
/// persistent cumulative solver was topped up past this counterexample's
/// bound) re-evaluate to their model values — the asserted frame equality
/// forces agreement — so the overwrite is harmless.
pub(crate) fn extract_witness(
    tm: &mut TermManager,
    ts: &TransitionSystem,
    unroller: &mut Unroller<'_>,
    model: &Model,
    bound: usize,
    coi: Option<&CoiInfo>,
) -> Witness {
    let mut env: Assignment = model.assignment().clone();
    if let Some(coi) = coi {
        let state_vars: Vec<_> = ts.state_vars().to_vec();
        for k in 1..=bound {
            let remaining = bound - k;
            for sv in &state_vars {
                if coi.keeps_within(sv.current, remaining) {
                    continue;
                }
                let next_at = unroller.term_at(tm, sv.next, k - 1);
                let value = concrete::eval(tm, next_at, &env);
                let var_at = unroller.var_at(tm, sv.current, k);
                env.insert(var_at, value);
            }
        }
    }
    let mut frames = Vec::with_capacity(bound + 1);
    // The `expect`s below restate the registration-time invariant of
    // `TransitionSystem::add_state_var`/`add_input`: state vars and inputs
    // are variable terms, so they always have names.
    for k in 0..=bound {
        let mut frame = Frame::default();
        for sv in ts.state_vars() {
            let name = tm
                .var_name(sv.current)
                .expect("state vars are variables")
                .to_string();
            let at = unroller.var_at(tm, sv.current, k);
            frame.states.insert(name, concrete::eval(tm, at, &env));
        }
        for &input in ts.inputs() {
            let name = tm
                .var_name(input)
                .expect("inputs are variables")
                .to_string();
            let at = unroller.var_at(tm, input, k);
            frame.inputs.insert(name, concrete::eval(tm, at, &env));
        }
        frames.push(frame);
    }
    Witness::new(frames)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepe_smt::Sort;
    use std::collections::HashMap;

    /// Counter with symbolic increment input; bad state: counter == target.
    fn counter_system(
        tm: &mut TermManager,
        width: u32,
        target: u64,
        constrain_inc_to_one: bool,
    ) -> TransitionSystem {
        let c = tm.var("count", Sort::BitVec(width));
        let inc = tm.var("inc", Sort::BitVec(width));
        let next = tm.bv_add(c, inc);
        let zero = tm.zero(width);
        let tgt = tm.bv_const(target, width);
        let bad = tm.eq(c, tgt);
        let mut ts = TransitionSystem::new();
        ts.add_state_var(tm, c, Some(zero), next);
        ts.add_input(tm, inc);
        ts.add_bad(bad);
        if constrain_inc_to_one {
            let one = tm.one(width);
            let c1 = tm.eq(inc, one);
            ts.add_constraint(c1);
        }
        ts
    }

    #[test]
    fn finds_shortest_counterexample_with_free_inputs() {
        let mut tm = TermManager::new();
        let ts = counter_system(&mut tm, 8, 200, false);
        let mut bmc = Bmc::new(BmcConfig::default());
        // with a free increment the counter can jump to 200 in one step
        match bmc.check(&mut tm, &ts, 10) {
            BmcResult::Counterexample(w) => {
                assert_eq!(w.num_steps(), 1);
                assert_eq!(w.last().state("count"), 200);
                assert_eq!(w.frame(0).input("inc"), 200);
            }
            other => panic!("expected a counterexample, got {other:?}"),
        }
        assert!(bmc.stats().queries >= 1);
    }

    #[test]
    fn respects_constraints_when_searching() {
        let mut tm = TermManager::new();
        let ts = counter_system(&mut tm, 8, 5, true);
        let mut bmc = Bmc::new(BmcConfig::default());
        // increments constrained to one: needs exactly 5 steps
        match bmc.check(&mut tm, &ts, 10) {
            BmcResult::Counterexample(w) => {
                assert_eq!(w.num_steps(), 5);
                let counts: Vec<u64> = w.frames().iter().map(|f| f.state("count")).collect();
                assert_eq!(counts, vec![0, 1, 2, 3, 4, 5]);
            }
            other => panic!("expected a counterexample, got {other:?}"),
        }
    }

    #[test]
    fn reports_no_counterexample_when_unreachable_within_bound() {
        let mut tm = TermManager::new();
        let ts = counter_system(&mut tm, 8, 50, true);
        let mut bmc = Bmc::new(BmcConfig::default());
        match bmc.check(&mut tm, &ts, 10) {
            BmcResult::NoCounterexample { bound } => assert_eq!(bound, 10),
            other => panic!("expected no counterexample, got {other:?}"),
        }
    }

    #[test]
    fn witness_replays_on_the_concrete_simulator() {
        let mut tm = TermManager::new();
        let ts = counter_system(&mut tm, 8, 42, false);
        let mut bmc = Bmc::new(BmcConfig::default());
        let witness = match bmc.check(&mut tm, &ts, 10) {
            BmcResult::Counterexample(w) => w,
            other => panic!("expected a counterexample, got {other:?}"),
        };
        // replay the witness inputs through TransitionSystem::simulate
        let inc = tm.find_var("inc").expect("input exists");
        let count = tm.find_var("count").expect("state exists");
        let inputs: Vec<HashMap<_, _>> = witness.frames()[..witness.num_steps()]
            .iter()
            .map(|f| HashMap::from([(inc, f.input("inc"))]))
            .collect();
        let trace = ts.simulate(&tm, &inputs);
        assert_eq!(trace.last().expect("trace non-empty")[&count], 42);
    }

    #[test]
    fn zero_bound_checks_the_initial_state() {
        let mut tm = TermManager::new();
        // bad state: count == 0 (true initially)
        let ts = counter_system(&mut tm, 8, 0, true);
        let mut bmc = Bmc::new(BmcConfig::default());
        match bmc.check(&mut tm, &ts, 4) {
            BmcResult::Counterexample(w) => assert_eq!(w.num_steps(), 0),
            other => panic!("expected an immediate counterexample, got {other:?}"),
        }
    }

    #[test]
    fn incremental_per_depth_matches_scratch_per_depth() {
        // Same systems, both verdict polarities, depth by depth.
        for (target, constrain) in [(5u64, true), (50, true), (200, false), (3, true)] {
            let mut tm = TermManager::new();
            let ts = counter_system(&mut tm, 8, target, constrain);
            let mut incremental = Bmc::new(BmcConfig::default());
            let inc_result = incremental.check(&mut tm, &ts, 8);
            let mut tm2 = TermManager::new();
            let ts2 = counter_system(&mut tm2, 8, target, constrain);
            let mut scratch = Bmc::new(BmcConfig {
                mode: BmcMode::PerDepthScratch,
                ..BmcConfig::default()
            });
            let scr_result = scratch.check(&mut tm2, &ts2, 8);
            match (&inc_result, &scr_result) {
                (BmcResult::Counterexample(a), BmcResult::Counterexample(b)) => {
                    assert_eq!(a.num_steps(), b.num_steps(), "target {target}");
                }
                (
                    BmcResult::NoCounterexample { bound: a },
                    BmcResult::NoCounterexample { bound: b },
                ) => {
                    assert_eq!(a, b);
                }
                other => panic!("verdicts diverge for target {target}: {other:?}"),
            }
            assert_eq!(incremental.stats().queries, scratch.stats().queries);
        }
    }

    #[test]
    fn incremental_per_depth_reuses_encodings_across_depths() {
        let mut tm = TermManager::new();
        let ts = counter_system(&mut tm, 8, 50, true); // unreachable in 10 steps
        let mut bmc = Bmc::new(BmcConfig::default());
        let result = bmc.check(&mut tm, &ts, 10);
        assert!(matches!(result, BmcResult::NoCounterexample { .. }));
        let reuse = bmc.stats().solver;
        assert_eq!(reuse.checks, 11, "one check per depth 0..=10");
        assert!(
            reuse.encode.total_reuse() > 0,
            "later depths must reuse encodings or rewrites"
        );
        assert!(
            reuse.encode.rewrite.pins > 0,
            "frame equalities must become pins"
        );
    }

    #[test]
    fn cumulative_incremental_matches_per_depth_across_growing_bounds() {
        // One checker driven through growing max_bound calls; every verdict
        // must match a fresh per-depth run over the same system.
        let mut tm = TermManager::new();
        let ts = counter_system(&mut tm, 8, 5, true);
        let mut cumulative = Bmc::new(BmcConfig {
            mode: BmcMode::CumulativeIncremental,
            ..BmcConfig::default()
        });
        for bound in 0..8 {
            let got = cumulative.check(&mut tm, &ts, bound);
            let mut tm2 = TermManager::new();
            let ts2 = counter_system(&mut tm2, 8, 5, true);
            let mut per_depth = Bmc::new(BmcConfig::default());
            let want = per_depth.check(&mut tm2, &ts2, bound);
            match (&got, &want) {
                (BmcResult::Counterexample(a), BmcResult::Counterexample(b)) => {
                    // the counter is deterministic, so the earliest violating
                    // frame of any model is the genuinely shortest trace
                    assert_eq!(a.num_steps(), b.num_steps(), "bound {bound}");
                }
                (
                    BmcResult::NoCounterexample { bound: a },
                    BmcResult::NoCounterexample { bound: b },
                ) => assert_eq!(a, b),
                other => panic!("verdicts diverge at bound {bound}: {other:?}"),
            }
        }
    }

    #[test]
    fn cumulative_incremental_skips_proven_depths_and_reuses_the_solver() {
        let mut tm = TermManager::new();
        let ts = counter_system(&mut tm, 8, 50, true); // unreachable in 8 steps
        let mut bmc = Bmc::new(BmcConfig {
            mode: BmcMode::CumulativeIncremental,
            ..BmcConfig::default()
        });
        match bmc.check(&mut tm, &ts, 6) {
            BmcResult::NoCounterexample { bound } => assert_eq!(bound, 6),
            other => panic!("expected no counterexample, got {other:?}"),
        }
        assert_eq!(bmc.stats().queries, 1);
        let first_conflicts = bmc.stats().solver.conflicts;
        // Re-checking an already-proven bound issues no SAT query at all.
        match bmc.check(&mut tm, &ts, 6) {
            BmcResult::NoCounterexample { bound } => assert_eq!(bound, 6),
            other => panic!("expected no counterexample, got {other:?}"),
        }
        assert_eq!(bmc.stats().queries, 0);
        assert_eq!(bmc.stats().solver.conflicts, first_conflicts);
        // A deeper call extends the same solver: one query over the two new
        // depths only, with the earlier encodings served from the cache.
        match bmc.check(&mut tm, &ts, 8) {
            BmcResult::NoCounterexample { bound } => assert_eq!(bound, 8),
            other => panic!("expected no counterexample, got {other:?}"),
        }
        assert_eq!(bmc.stats().queries, 1);
        assert!(bmc.stats().solver.encode.total_reuse() > 0);
        // reset drops the persistent solver; the next call starts cold but
        // still answers correctly.
        bmc.reset();
        match bmc.check(&mut tm, &ts, 4) {
            BmcResult::NoCounterexample { bound } => assert_eq!(bound, 4),
            other => panic!("expected no counterexample, got {other:?}"),
        }
    }

    #[test]
    fn cumulative_incremental_finds_counterexamples_with_free_inputs() {
        let mut tm = TermManager::new();
        let ts = counter_system(&mut tm, 8, 200, false);
        let mut bmc = Bmc::new(BmcConfig {
            mode: BmcMode::CumulativeIncremental,
            ..BmcConfig::default()
        });
        match bmc.check(&mut tm, &ts, 10) {
            BmcResult::Counterexample(w) => {
                assert_eq!(w.last().state("count"), 200);
                assert!(w.num_steps() <= 10);
            }
            other => panic!("expected a counterexample, got {other:?}"),
        }
    }

    #[test]
    fn per_depth_stats_report_per_query_deltas() {
        let mut tm = TermManager::new();
        let ts = counter_system(&mut tm, 8, 50, true);
        let mut bmc = Bmc::new(BmcConfig::default());
        let result = bmc.check(&mut tm, &ts, 10);
        assert!(matches!(result, BmcResult::NoCounterexample { .. }));
        let stats = bmc.stats();
        assert_eq!(stats.depths.len(), 11, "one delta entry per depth 0..=10");
        assert_eq!(
            stats.depths.iter().map(|d| d.bound).collect::<Vec<_>>(),
            (0..=10).collect::<Vec<_>>()
        );
        let total: u64 = stats.depths.iter().map(|d| d.conflicts).sum();
        assert_eq!(
            total, stats.conflicts,
            "per-depth conflict deltas must sum to the cumulative count"
        );
    }

    /// Counter system plus a "shadow" accumulator state variable that the
    /// bad state never observes (it is outside the cone of influence) and a
    /// second dead variable feeding only the shadow.
    fn counter_with_shadow(tm: &mut TermManager, target: u64) -> TransitionSystem {
        let mut ts = counter_system(tm, 8, target, true);
        let c = tm.find_var("count").expect("state exists");
        let shadow = tm.var("shadow", Sort::BitVec(8));
        let dead = tm.var("dead", Sort::BitVec(8));
        let sum = tm.bv_add(shadow, c);
        let next_shadow = tm.bv_add(sum, dead);
        let zero = tm.zero(8);
        ts.add_state_var(tm, shadow, Some(zero), next_shadow);
        let one = tm.one(8);
        let next_dead = tm.bv_add(dead, one);
        ts.add_state_var(tm, dead, Some(zero), next_dead);
        ts
    }

    #[test]
    fn coi_reduction_matches_the_full_unrolling() {
        // Both verdict polarities, simplify+COI on vs the scratch baseline
        // with everything off.
        for target in [4u64, 50] {
            let mut tm = TermManager::new();
            let ts = counter_with_shadow(&mut tm, target);
            let mut reduced = Bmc::new(BmcConfig::default());
            let got = reduced.check(&mut tm, &ts, 6);
            assert!(
                reduced.stats().solver.encode.rewrite.coi_dropped_updates > 0,
                "shadow/dead updates must be dropped"
            );
            let mut tm2 = TermManager::new();
            let ts2 = counter_with_shadow(&mut tm2, target);
            let mut full = Bmc::new(BmcConfig {
                mode: BmcMode::PerDepthScratch,
                simplify: false,
                ..BmcConfig::default()
            });
            let want = full.check(&mut tm2, &ts2, 6);
            match (&got, &want) {
                (BmcResult::Counterexample(a), BmcResult::Counterexample(b)) => {
                    assert_eq!(a.num_steps(), b.num_steps(), "target {target}");
                }
                (
                    BmcResult::NoCounterexample { bound: a },
                    BmcResult::NoCounterexample { bound: b },
                ) => assert_eq!(a, b),
                other => panic!("verdicts diverge for target {target}: {other:?}"),
            }
        }
    }

    #[test]
    fn coi_dropped_variables_still_read_back_in_witnesses() {
        let mut tm = TermManager::new();
        let ts = counter_with_shadow(&mut tm, 3);
        let mut bmc = Bmc::new(BmcConfig::default());
        let witness = match bmc.check(&mut tm, &ts, 6) {
            BmcResult::Counterexample(w) => w,
            other => panic!("expected a counterexample, got {other:?}"),
        };
        assert_eq!(witness.num_steps(), 3);
        // count: 0,1,2,3; dead: 0,1,2,3; shadow accumulates count+dead:
        // 0, 0+0+0=0, 0+1+1=2, 2+2+2=6 — reconstructed, not solver-assigned.
        let shadows: Vec<u64> = witness.frames().iter().map(|f| f.state("shadow")).collect();
        assert_eq!(shadows, vec![0, 0, 2, 6]);
        let deads: Vec<u64> = witness.frames().iter().map(|f| f.state("dead")).collect();
        assert_eq!(deads, vec![0, 1, 2, 3]);
    }

    /// A dependency chain `c -> b -> a` with only `a` observed by the bad
    /// state: dist(a)=0, dist(b)=1, dist(c)=2, nothing statically dropped.
    /// a: 0,0,0,1,4,10,20,…  b: 0,0,1,3,6,…  c: 0,1,2,3,…
    fn chain_system(tm: &mut TermManager, target: u64) -> TransitionSystem {
        let a = tm.var("a", Sort::BitVec(8));
        let b = tm.var("b", Sort::BitVec(8));
        let c = tm.var("c", Sort::BitVec(8));
        let one = tm.one(8);
        let zero = tm.zero(8);
        let next_a = tm.bv_add(a, b);
        let next_b = tm.bv_add(b, c);
        let next_c = tm.bv_add(c, one);
        let tgt = tm.bv_const(target, 8);
        let bad = tm.eq(a, tgt);
        let mut ts = TransitionSystem::new();
        ts.add_state_var(tm, a, Some(zero), next_a);
        ts.add_state_var(tm, b, Some(zero), next_b);
        ts.add_state_var(tm, c, Some(zero), next_c);
        ts.add_bad(bad);
        ts
    }

    #[test]
    fn per_depth_refinement_drops_beyond_the_static_cone() {
        // Every variable is in the static cone (static dropped == 0), yet
        // the per-depth refinement drops the tail frames' b/c updates; the
        // verdicts must match the unreduced scratch baseline either way.
        for target in [4u64, 3] {
            // a reaches 4 at depth 4; it never equals 3
            let mut tm = TermManager::new();
            let ts = chain_system(&mut tm, target);
            assert_eq!(ts.cone_of_influence(&tm).dropped, 0);
            let mut refined = Bmc::new(BmcConfig::default());
            let got = refined.check(&mut tm, &ts, 6);
            assert!(
                refined.stats().solver.encode.rewrite.coi_dropped_updates > 0,
                "tail-frame b/c updates must be dropped per depth"
            );
            let mut tm2 = TermManager::new();
            let ts2 = chain_system(&mut tm2, target);
            let mut full = Bmc::new(BmcConfig {
                mode: BmcMode::PerDepthScratch,
                simplify: false,
                ..BmcConfig::default()
            });
            let want = full.check(&mut tm2, &ts2, 6);
            match (&got, &want) {
                (BmcResult::Counterexample(a), BmcResult::Counterexample(b)) => {
                    assert_eq!(a.num_steps(), b.num_steps(), "target {target}");
                }
                (
                    BmcResult::NoCounterexample { bound: a },
                    BmcResult::NoCounterexample { bound: b },
                ) => assert_eq!(a, b),
                other => panic!("verdicts diverge for target {target}: {other:?}"),
            }
        }
    }

    #[test]
    fn per_depth_refinement_witnesses_reconstruct_tail_frames() {
        // The counterexample ends at depth 4, where the last frames' b/c
        // updates were never encoded — the witness must still carry their
        // forward-evaluated values.
        let mut tm = TermManager::new();
        let ts = chain_system(&mut tm, 4);
        let mut bmc = Bmc::new(BmcConfig::default());
        let witness = match bmc.check(&mut tm, &ts, 6) {
            BmcResult::Counterexample(w) => w,
            other => panic!("expected a counterexample, got {other:?}"),
        };
        assert_eq!(witness.num_steps(), 4);
        let values =
            |name: &str| -> Vec<u64> { witness.frames().iter().map(|f| f.state(name)).collect() };
        assert_eq!(values("a"), vec![0, 0, 0, 1, 4]);
        assert_eq!(values("b"), vec![0, 0, 1, 3, 6]);
        assert_eq!(values("c"), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn cumulative_incremental_tops_refined_frames_up_across_bounds() {
        // Growing max_bound calls on one persistent solver: every extension
        // must top the old frames' cones up, so verdicts match a fresh
        // per-depth run at every bound (both polarities appear: target 4 is
        // reached at depth 4, so bounds 0..=3 are UNSAT, 4.. SAT).
        let mut tm = TermManager::new();
        let ts = chain_system(&mut tm, 4);
        let mut cumulative = Bmc::new(BmcConfig {
            mode: BmcMode::CumulativeIncremental,
            ..BmcConfig::default()
        });
        for bound in 0..7 {
            let got = cumulative.check(&mut tm, &ts, bound);
            let mut tm2 = TermManager::new();
            let ts2 = chain_system(&mut tm2, 4);
            let mut per_depth = Bmc::new(BmcConfig::default());
            let want = per_depth.check(&mut tm2, &ts2, bound);
            match (&got, &want) {
                (BmcResult::Counterexample(a), BmcResult::Counterexample(b)) => {
                    assert_eq!(a.num_steps(), b.num_steps(), "bound {bound}");
                }
                (
                    BmcResult::NoCounterexample { bound: a },
                    BmcResult::NoCounterexample { bound: b },
                ) => assert_eq!(a, b),
                other => panic!("verdicts diverge at bound {bound}: {other:?}"),
            }
        }
    }

    #[test]
    fn aig_off_is_a_faithful_baseline() {
        for (target, constrain) in [(5u64, true), (50, true), (200, false)] {
            let mut tm = TermManager::new();
            let ts = counter_system(&mut tm, 8, target, constrain);
            let mut on = Bmc::new(BmcConfig::default());
            let got = on.check(&mut tm, &ts, 8);
            let mut tm2 = TermManager::new();
            let ts2 = counter_system(&mut tm2, 8, target, constrain);
            let mut off = Bmc::new(BmcConfig {
                aig: false,
                ..BmcConfig::default()
            });
            let want = off.check(&mut tm2, &ts2, 8);
            match (&got, &want) {
                (BmcResult::Counterexample(a), BmcResult::Counterexample(b)) => {
                    assert_eq!(a.num_steps(), b.num_steps(), "target {target}");
                }
                (
                    BmcResult::NoCounterexample { bound: a },
                    BmcResult::NoCounterexample { bound: b },
                ) => assert_eq!(a, b),
                other => panic!("verdicts diverge for target {target}: {other:?}"),
            }
            assert!(
                on.stats().solver.encode.aig.strash_hits
                    >= off.stats().solver.encode.aig.strash_hits,
                "aig off must not structurally hash"
            );
            assert_eq!(off.stats().solver.encode.aig.strash_hits, 0);
        }
    }

    #[test]
    fn simplify_off_is_a_faithful_baseline() {
        for (target, constrain) in [(5u64, true), (50, true), (200, false)] {
            let mut tm = TermManager::new();
            let ts = counter_system(&mut tm, 8, target, constrain);
            let mut on = Bmc::new(BmcConfig::default());
            let got = on.check(&mut tm, &ts, 8);
            let mut tm2 = TermManager::new();
            let ts2 = counter_system(&mut tm2, 8, target, constrain);
            let mut off = Bmc::new(BmcConfig {
                simplify: false,
                ..BmcConfig::default()
            });
            let want = off.check(&mut tm2, &ts2, 8);
            match (&got, &want) {
                (BmcResult::Counterexample(a), BmcResult::Counterexample(b)) => {
                    assert_eq!(a.num_steps(), b.num_steps(), "target {target}");
                }
                (
                    BmcResult::NoCounterexample { bound: a },
                    BmcResult::NoCounterexample { bound: b },
                ) => assert_eq!(a, b),
                other => panic!("verdicts diverge for target {target}: {other:?}"),
            }
            assert!(
                off.stats().solver.encode.rewrite.pins == 0,
                "simplify off must not pin"
            );
        }
    }

    #[test]
    fn frame_rescoring_keeps_cumulative_incremental_verdicts() {
        // One checker with VSIDS frame rescoring, one without, driven
        // through the same growing bounds: every verdict must match.
        let mut tm = TermManager::new();
        let ts = counter_system(&mut tm, 8, 5, true);
        let mut rescored = Bmc::new(BmcConfig {
            mode: BmcMode::CumulativeIncremental,
            frame_rescore: Some(0.2),
            ..BmcConfig::default()
        });
        let mut plain = Bmc::new(BmcConfig {
            mode: BmcMode::CumulativeIncremental,
            ..BmcConfig::default()
        });
        for bound in 0..8 {
            let got = rescored.check(&mut tm, &ts, bound);
            let want = plain.check(&mut tm, &ts, bound);
            match (&got, &want) {
                (BmcResult::Counterexample(a), BmcResult::Counterexample(b)) => {
                    assert_eq!(a.num_steps(), b.num_steps(), "bound {bound}");
                }
                (
                    BmcResult::NoCounterexample { bound: a },
                    BmcResult::NoCounterexample { bound: b },
                ) => assert_eq!(a, b),
                other => panic!("verdicts diverge at bound {bound}: {other:?}"),
            }
        }
    }

    #[test]
    fn unknown_on_tiny_conflict_budget() {
        let mut tm = TermManager::new();
        // a harder target at 16 bits with constrained increments of exactly 3
        let c = tm.var("count", Sort::BitVec(16));
        let inc = tm.var("inc", Sort::BitVec(16));
        let prod = tm.bv_mul(c, inc);
        let next = tm.bv_add(prod, inc);
        let one = tm.one(16);
        let tgt = tm.bv_const(0x8d2b, 16);
        let bad = tm.eq(c, tgt);
        let mut ts = TransitionSystem::new();
        ts.add_state_var(&tm, c, Some(one), next);
        ts.add_input(&tm, inc);
        ts.add_bad(bad);
        let mut bmc = Bmc::new(BmcConfig {
            conflict_limit: Some(1),
            ..BmcConfig::default()
        });
        let result = bmc.check(&mut tm, &ts, 6);
        assert!(
            matches!(
                result,
                BmcResult::Unknown { .. } | BmcResult::Counterexample(_)
            ),
            "tiny budgets either give up or get lucky, got {result:?}"
        );
    }
}
